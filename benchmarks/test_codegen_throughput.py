"""Benchmarks of the code generator itself (legalization + optimization).

The paper's artifact notes that "code generation time increases exponentially
with the input bit-width"; the first benchmark measures the rewrite system's
throughput on the butterfly kernel at the evaluation bit-widths and checks
that the generated kernel is machine legal.

The second benchmark measures what the driver's content-addressed kernel
cache buys: compiling the Figure 3 NTT kernel set (128/256/384/768-bit
butterflies) cold versus recompiling it warm through the same session.  Warm
recompiles only re-fingerprint the small wide-typed IR and hit the cache, so
they must be at least an order of magnitude faster.
"""

import time

import pytest

from repro.core.driver import CompilerSession
from repro.core.rewrite import kernel_is_machine_legal
from repro.kernels import KernelConfig, build_butterfly_kernel, compile_butterfly_kernel
from repro.evaluation.fig3_ntt import NTT_BIT_WIDTHS


@pytest.mark.parametrize("bits", [128, 256, 384])
def test_butterfly_codegen_throughput(benchmark, bits):
    config = KernelConfig(bits=bits)
    wide = build_butterfly_kernel(config)
    session = CompilerSession()

    def generate():
        return session.lower(wide, options=config.rewrite_options())

    kernel = benchmark.pedantic(generate, rounds=1, iterations=1)
    assert kernel_is_machine_legal(kernel, 64)
    print(f"\n# {bits}-bit butterfly: {len(kernel.body)} machine statements")


def _compile_fig3_kernel_set(session):
    return [
        compile_butterfly_kernel(KernelConfig(bits=bits), session=session)
        for bits in NTT_BIT_WIDTHS
    ]


#: Warm-cache recompiles must beat cold compilation by at least this much.
REQUIRED_CACHE_SPEEDUP = 10.0


@pytest.mark.perf_floor
def test_kernel_cache_cold_vs_warm(benchmark, floor_scale):
    """Warm-cache recompiles of the fig3 kernel set are >= 10x faster than cold."""
    session = CompilerSession()

    started = time.perf_counter()
    cold_kernels = _compile_fig3_kernel_set(session)
    cold_seconds = time.perf_counter() - started
    assert session.cache_info().hits == 0

    def warm_recompile():
        warm_started = time.perf_counter()
        kernels = _compile_fig3_kernel_set(session)
        return kernels, time.perf_counter() - warm_started

    warm_kernels, warm_seconds = benchmark.pedantic(warm_recompile, rounds=1, iterations=1)

    # Warm compiles return the cached artifacts themselves.
    assert all(warm is cold for warm, cold in zip(warm_kernels, cold_kernels))
    assert session.cache_info().hits == len(NTT_BIT_WIDTHS)

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    floor = REQUIRED_CACHE_SPEEDUP * floor_scale
    benchmark.extra_info["cache_speedup"] = speedup
    benchmark.extra_info["floor_speedup"] = floor
    print(f"\n# cold {cold_seconds * 1e3:.1f} ms, warm {warm_seconds * 1e3:.3f} ms, "
          f"speedup {speedup:.0f}x")
    assert speedup >= floor, (
        f"kernel cache speedup {speedup:.1f}x below the {floor:g}x bar "
        f"(cold {cold_seconds:.3f}s, warm {warm_seconds:.3f}s)"
    )
