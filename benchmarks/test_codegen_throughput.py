"""Benchmark of the code generator itself (legalization + optimization).

The paper's artifact notes that "code generation time increases exponentially
with the input bit-width"; this benchmark measures the rewrite system's
throughput on the butterfly kernel at the evaluation bit-widths and checks
that the generated kernel is machine legal.
"""

import pytest

from repro.core.passes import optimize
from repro.core.rewrite import kernel_is_machine_legal, legalize
from repro.kernels import KernelConfig, build_butterfly_kernel


@pytest.mark.parametrize("bits", [128, 256, 384])
def test_butterfly_codegen_throughput(benchmark, bits):
    config = KernelConfig(bits=bits)
    wide = build_butterfly_kernel(config)

    def generate():
        return optimize(legalize(wide, config.rewrite_options()))

    kernel = benchmark.pedantic(generate, rounds=1, iterations=1)
    assert kernel_is_machine_legal(kernel, 64)
    print(f"\n# {bits}-bit butterfly: {len(kernel.body)} machine statements")
