"""Ablation: non-power-of-two zero-limb pruning (Section 4, Equation 35).

Compares the generated 384-bit butterfly (stored in a 512-bit container with
the known-zero high words declared, so the rewrite system prunes them at
code-generation time) against the same butterfly generated *without* that
knowledge — i.e. plain zero-padding of the inputs to 512 bits, which is what
the paper identifies as the naive alternative.
"""

from repro.core.driver import get_default_session
from repro.core.ir import KernelBuilder
from repro.gpu import cost_kernel, estimate_ntt
from repro.kernels import KernelConfig, generate_butterfly_kernel


def _padded_butterfly_kernel(container_bits: int, modulus_bits: int):
    """The 384-bit butterfly built as if inputs were zero-padded to 512 bits.

    Identical to the frontend's kernel except that no ``effective_bits`` are
    declared, so the rewrite system cannot prune the high words.
    """
    builder = KernelBuilder(f"ntt_butterfly_padded_{container_bits}")
    x = builder.param("x", container_bits)
    y = builder.param("y", container_bits)
    twiddle = builder.param("w", container_bits)
    q = builder.param("q", container_bits)
    mu = builder.param("mu", container_bits)
    scaled = builder.mulmod(twiddle, y, q, mu, modulus_bits=modulus_bits)
    builder.output("x_out", builder.addmod(x, scaled, q))
    builder.output("y_out", builder.submod(x, scaled, q))
    builder.metadata(
        family="ntt", bits=container_bits, modulus_bits=modulus_bits,
        uniform_params=["q", "mu"],
    )
    config = KernelConfig(bits=container_bits, modulus_bits=modulus_bits)
    session = get_default_session()
    return session.lower(builder.build(), options=config.rewrite_options()), config


def _pruning_comparison():
    pruned_config = KernelConfig(bits=384)
    pruned = cost_kernel(generate_butterfly_kernel(pruned_config))
    padded_kernel, padded_config = _padded_butterfly_kernel(512, 380)
    padded = cost_kernel(padded_kernel)
    pruned_ntt = estimate_ntt(pruned_config, 1 << 16, "h100").per_butterfly_ns
    return pruned, padded, pruned_ntt


def test_zero_limb_pruning_ablation(run_once):
    pruned, padded, pruned_ntt = run_once(_pruning_comparison)
    print()
    print(f"# pruned (384 declared in 512): {pruned.statement_count} statements, "
          f"{pruned.weighted_ops:.0f} weighted ops, {pruned.input_words} input words, "
          f"{pruned_ntt:.3f} ns/butterfly on the H100")
    print(f"# zero-padded to 512           : {padded.statement_count} statements, "
          f"{padded.weighted_ops:.0f} weighted ops, {padded.input_words} input words")
    # Pruning must reduce the static operation count, the weighted cost and
    # the per-operand interface; the paper relies on this optimization for
    # its 384- and 768-bit results.
    assert pruned.statement_count < padded.statement_count
    assert pruned.weighted_ops < padded.weighted_ops
    assert pruned.input_words < padded.input_words
    # The saving is substantial (the 512-bit container wastes 128 bits per
    # operand, i.e. a quarter of every multiplication's work).
    assert padded.weighted_ops / pruned.weighted_ops > 1.2
