"""Wall-clock micro-benchmarks of the executable engines on this machine.

These complement the cost-model figures: they measure the actual Python
runtime of (i) the MoMA-generated machine-word kernels, (ii) Python's
arbitrary-precision integers (the GMP stand-in), and (iii) the RNS/GRNS-style
baseline, on identical 128-bit modular vector workloads.  Absolute numbers
reflect the Python interpreter, not GPU silicon, so no cross-engine speedup
assertions are made here — only correctness agreement.
"""

import random

import pytest

from repro.baselines import BigIntBaseline, GrnsBaseline
from repro.kernels import KernelConfig
from repro.ntheory import find_ntt_prime
from repro.poly import MomaBlasEngine

BITS = 128
LENGTH = 64
Q = find_ntt_prime(BITS - 4, 64)


def _vectors(seed=0):
    rng = random.Random(seed)
    x = [rng.randrange(Q) for _ in range(LENGTH)]
    y = [rng.randrange(Q) for _ in range(LENGTH)]
    return x, y


@pytest.fixture(scope="module")
def engines():
    return {
        "moma": MomaBlasEngine(KernelConfig(bits=BITS)),
        "bigint": BigIntBaseline(),
        "grns": GrnsBaseline(BITS - 4),
    }


@pytest.mark.parametrize("engine_name", ["moma", "bigint", "grns"])
def test_vmul_wallclock(benchmark, engines, engine_name):
    engine = engines[engine_name]
    x, y = _vectors()
    result = benchmark(engine.vmul, x, y, Q)
    assert result == [(a * b) % Q for a, b in zip(x, y)]


@pytest.mark.parametrize("engine_name", ["moma", "bigint", "grns"])
def test_vadd_wallclock(benchmark, engines, engine_name):
    engine = engines[engine_name]
    x, y = _vectors(1)
    result = benchmark(engine.vadd, x, y, Q)
    assert result == [(a + b) % Q for a, b in zip(x, y)]
