"""Tracing-overhead non-regression: instrumentation must be off-path cheap.

The observability plane (``repro.obs``) is compiled into the serving hot
path permanently — every warm serve crosses its instrumentation points.
Two properties keep that acceptable:

* **1% sampling stays near the untraced floor** — warm TCP throughput
  with a supervisor tracing every 100th request (the production posture)
  must stay within 10% of :data:`REQUIRED_WARM_TCP_RPS`, the same floor
  ``test_wire_throughput.py`` holds the untraced path to.  The floor is
  compared, not two noisy measurements against each other, so the test
  fails on real regressions (a span allocated per untraced request, an
  un-gated clock read) rather than CI jitter.
* **the sampled runs actually traced** — the tracer must have committed
  traces and recorded wire/serve spans, or the "overhead" being measured
  is vacuously zero.

Fully-forced tracing (``--trace``, rate 1.0) is a diagnostic mode and has
no floor; its throughput is reported in the benchmark artifact for
tracking.
"""

import time

import pytest

from repro.obs.trace import Tracer
from repro.serve import ServeRequest, ShardSupervisor
from repro.serve.client import serve_many

from benchmarks.test_wire_throughput import (
    REQUIRED_WARM_TCP_RPS,
    _shut_down_listener,
    _start_listener,
)

BITS = 128
SIZE = 16

#: Warm TCP throughput with 1% sampling must stay within 10% of the
#: untraced floor.
TRACED_FLOOR_FRACTION = 0.9

_WARM_REQUESTS = 300


def _measure_traced_tcp(sample_rate: float):
    address, thread = _start_listener()
    tracer = Tracer(sample_rate=sample_rate)
    supervisor = ShardSupervisor(
        shards=0, devices=("rtx4090",), connect=(address,), tracer=tracer
    )
    try:
        request = ServeRequest(kind="ntt", bits=BITS, size=SIZE)
        supervisor.serve(request)  # tune + compile once; the rest is warm

        started = time.perf_counter()
        results = serve_many(supervisor, [request] * _WARM_REQUESTS)
        elapsed = time.perf_counter() - started
        assert len(results) == _WARM_REQUESTS
        assert all(result.warm for result in results)

        spans = supervisor.drain_spans()
        return _WARM_REQUESTS / elapsed, tracer.committed_traces, spans
    finally:
        supervisor.close()
        _shut_down_listener(address, thread)


@pytest.mark.perf_floor
def test_one_percent_sampling_holds_the_warm_floor(run_once, benchmark, floor_scale):
    rps, committed, spans = run_once(_measure_traced_tcp, 0.01)
    floor = TRACED_FLOOR_FRACTION * REQUIRED_WARM_TCP_RPS * floor_scale
    benchmark.extra_info["traced_warm_tcp_requests_per_s"] = rps
    benchmark.extra_info["floor_requests_per_s"] = floor
    benchmark.extra_info["committed_traces"] = committed
    benchmark.extra_info["merged_spans"] = len(spans)
    print(
        f"\n# warm TCP @1% sampling {rps:8.0f} req/s "
        f"({committed} traces committed, {len(spans)} spans merged, "
        f"floor {floor:.0f} req/s)"
    )
    # Deterministic 1-in-100 sampling over 1 cold + 300 warm requests.
    assert committed >= 3, "sampling never fired; the overhead run is vacuous"
    names = {one.name for one in spans}
    assert "cluster.request" in names
    assert "shard.serve" in names, "adopted traces never reached the shard"
    assert rps >= floor, (
        f"warm TCP with 1% tracing ran at {rps:.0f} req/s; expected at "
        f"least {floor:.0f} req/s ({TRACED_FLOOR_FRACTION:.0%} of the "
        f"untraced {REQUIRED_WARM_TCP_RPS:.0f} req/s floor x {floor_scale:g})"
    )


def test_forced_tracing_throughput_is_tracked(run_once, benchmark):
    rps, committed, spans = run_once(_measure_traced_tcp, 1.0)
    benchmark.extra_info["forced_warm_tcp_requests_per_s"] = rps
    benchmark.extra_info["committed_traces"] = committed
    print(
        f"\n# warm TCP @100% tracing {rps:8.0f} req/s "
        f"({committed} traces, {len(spans)} spans)"
    )
    # Every request traced: the full diagnostic mode must still serve.
    assert committed == _WARM_REQUESTS + 1
    assert {"cluster.request", "shard.serve", "wire.encode"} <= {
        one.name for one in spans
    }
