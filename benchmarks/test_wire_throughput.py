"""Fast-wire non-regression: the warm TCP path and the v2 binary frames.

Two floors guard the shard tier's hot path:

* **warm TCP throughput** — requests/sec for already-served families
  through a real localhost TCP socket (supervisor → listener → reply),
  crossing the full path the paper's serving tier uses in production:
  consistent-hash routing, envelope encode, coalesced socket flush,
  stream framing, decode, future resolution.  Submitted as one batch so
  the sender threads can coalesce; the floor is deliberately conservative
  (CI machines are noisy) but catches order-of-magnitude regressions like
  an accidental per-request Nagle stall or a re-introduced per-ping
  ``json.dumps``.
* **v2 beats v1 on kernel-artifact replies** — the point of the binary
  payload frames: a pickled-kernel reply must be *smaller* on the wire
  (no base64, no JSON string-escaping) and *faster* to encode+decode than
  its v1 JSON form.  Both are asserted strictly; the measured numbers
  land in the BENCH artifact via ``extra_info``.
"""

import queue
import socket
import threading
import time

import pytest

from repro.serve import (
    KernelServer,
    ServeRequest,
    ShardSupervisor,
    serve_shard_tcp,
)
from repro.serve import protocol
from repro.serve.client import serve_many

BITS = 128
SIZE = 16

#: Warm requests/sec over real TCP must stay above this (conservative) floor.
REQUIRED_WARM_TCP_RPS = 200.0

_WARM_REQUESTS = 300
_CODEC_REPS = 30


def _start_listener():
    bound: queue.Queue = queue.Queue()
    thread = threading.Thread(
        target=serve_shard_tcp,
        kwargs=dict(
            host="127.0.0.1", port=0, shard_id=0, workers=2, on_bound=bound.put
        ),
        daemon=True,
    )
    thread.start()
    return bound.get(timeout=60), thread


def _shut_down_listener(address, thread):
    try:
        sock = socket.create_connection(address, timeout=5)
    except OSError:
        return  # already gone
    connection = protocol.StreamConnection(sock)
    try:
        connection.send_bytes(
            protocol.encode_message(
                protocol.HelloCall(
                    request_id=1,
                    protocol_version=protocol.PROTOCOL_VERSION,
                    shard_id=-1,
                    trust=protocol.TRUST_SOURCE,
                )
            )
        )
        connection.recv_bytes()  # the hello reply
        connection.send_bytes(
            protocol.encode_message(protocol.ShutdownCall(request_id=2))
        )
    except (OSError, EOFError):
        pass
    finally:
        connection.close()
    thread.join(timeout=60)


def _measure_tcp():
    address, thread = _start_listener()
    supervisor = ShardSupervisor(shards=0, devices=("rtx4090",), connect=(address,))
    try:
        request = ServeRequest(kind="ntt", bits=BITS, size=SIZE)
        supervisor.serve(request)  # tune + compile once; everything after is warm

        started = time.perf_counter()
        results = serve_many(supervisor, [request] * _WARM_REQUESTS)
        elapsed = time.perf_counter() - started
        assert len(results) == _WARM_REQUESTS
        assert all(result.warm for result in results)

        wire = supervisor.wire_snapshot()
        return _WARM_REQUESTS / elapsed, wire
    finally:
        supervisor.close()
        _shut_down_listener(address, thread)


def _measure_codec():
    with KernelServer(devices=("rtx4090",)) as server:
        result = server.serve(ServeRequest(kind="ntt", bits=BITS, size=SIZE))
    reply = protocol.ServeReply(request_id=1, result=result)

    def round_trip_seconds(version):
        samples = []
        for _ in range(_CODEC_REPS):
            started = time.perf_counter()
            data = protocol.encode_message(reply, version=version)
            decoded = protocol.decode_message(data, allow_pickled=True)
            samples.append(time.perf_counter() - started)
            assert decoded.request_id == 1
        # min, not mean: the best observed run is the least noisy estimate
        # of the codec's intrinsic cost on a shared CI machine.
        return min(samples), len(data)

    v1_seconds, v1_bytes = round_trip_seconds(protocol.PROTOCOL_VERSION)
    v2_seconds, v2_bytes = round_trip_seconds(protocol.PROTOCOL_VERSION_2)
    return v1_seconds, v1_bytes, v2_seconds, v2_bytes


@pytest.mark.perf_floor
def test_warm_tcp_throughput_floor(run_once, benchmark, floor_scale):
    rps, wire = run_once(_measure_tcp)
    floor = REQUIRED_WARM_TCP_RPS * floor_scale
    benchmark.extra_info["warm_tcp_requests_per_s"] = rps
    benchmark.extra_info["floor_requests_per_s"] = floor
    benchmark.extra_info["wire_messages_sent"] = wire.messages_sent
    benchmark.extra_info["wire_flushes"] = wire.flushes
    benchmark.extra_info["wire_coalescing_ratio"] = wire.coalescing_ratio
    print(
        f"\n# warm TCP {rps:8.0f} req/s "
        f"({wire.messages_sent} messages in {wire.flushes} flushes, "
        f"{wire.coalescing_ratio:.2f} msgs/flush)"
    )
    # The coalescer must actually coalesce: batched submission lands more
    # than one message per socket flush on average.
    assert wire.flushes < wire.messages_sent
    assert rps >= floor, (
        f"warm TCP serving ran at {rps:.0f} req/s; "
        f"expected at least {floor:.0f} req/s "
        f"({REQUIRED_WARM_TCP_RPS:.0f} x {floor_scale:g})"
    )


def test_v2_frames_beat_v1_on_kernel_replies(run_once, benchmark):
    v1_seconds, v1_bytes, v2_seconds, v2_bytes = run_once(_measure_codec)
    benchmark.extra_info["v1_reply_bytes"] = v1_bytes
    benchmark.extra_info["v2_reply_bytes"] = v2_bytes
    benchmark.extra_info["v1_roundtrip_us"] = v1_seconds * 1e6
    benchmark.extra_info["v2_roundtrip_us"] = v2_seconds * 1e6
    shrink = 1.0 - v2_bytes / v1_bytes
    speedup = v1_seconds / v2_seconds
    print(
        f"\n# kernel reply v1 {v1_bytes} B / {v1_seconds * 1e6:.0f} us, "
        f"v2 {v2_bytes} B / {v2_seconds * 1e6:.0f} us "
        f"({shrink:.1%} smaller, {speedup:.2f}x faster)"
    )
    assert v2_bytes < v1_bytes, (
        f"v2 kernel reply ({v2_bytes} B) should be smaller than v1 "
        f"({v1_bytes} B): binary frames exist to drop the base64 tax"
    )
    assert v2_seconds < v1_seconds, (
        f"v2 round-trip ({v2_seconds * 1e6:.0f} us) should beat v1 "
        f"({v1_seconds * 1e6:.0f} us) on kernel-artifact replies"
    )
