"""Figure 2: BLAS operations at 128/256/512/1,024 bits (MoMA vs GRNS vs GMP)."""

import pytest

from repro.evaluation import format_table, run_figure2_panel
from repro.kernels.blas_gen import BLAS_OPERATIONS


@pytest.mark.parametrize("bits", [128, 256, 512, 1024])
def test_figure2_panel(run_once, bits):
    figure = run_once(run_figure2_panel, bits)
    print()
    print(format_table(figure))

    moma = figure.get("MoMA")
    gmp = figure.get("GMP")
    grns = figure.get("GRNS")
    for index, operation in enumerate(BLAS_OPERATIONS):
        # Paper: "speedups of at least 13 times" across every operation and
        # bit-width, ">= 31x over GRNS and >= 527x over GMP" for add/sub.
        assert gmp.at(index) / moma.at(index) >= 13
        assert grns.at(index) / moma.at(index) >= 13
        if operation in ("vadd", "vsub"):
            assert gmp.at(index) / moma.at(index) >= 500
            assert grns.at(index) / moma.at(index) >= 30
