"""Figure 4: 2^16-point NTT across input bit-widths, all systems."""

from repro.evaluation import format_table, run_figure4


def test_figure4_crosscut(run_once):
    figure = run_once(run_figure4)
    print()
    print(format_table(figure))

    moma = figure.get("MoMA (H100)")
    gmp = figure.get("GMP-NTT")
    # MoMA beats the general-purpose multi-precision CPU library at every
    # bit-width, and per-butterfly cost grows monotonically with the width.
    for bits in moma.xs():
        assert gmp.at(bits) > moma.at(bits)
    values = [moma.at(bits) for bits in moma.xs()]
    assert all(later > earlier for earlier, later in zip(values, values[1:]))
    # Published specialised systems appear only at their supported widths.
    assert figure.get("ICICLE").xs() == [256, 384]
    assert set(figure.get("RPU").xs()) == {128}
