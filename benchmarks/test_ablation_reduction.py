"""Ablation: Barrett versus Montgomery modular multiplication.

The paper's evaluation uses Barrett reduction with a modulus four bits below
the operand width, and notes that the infrastructure also supports
full-bit-width moduli via Montgomery multiplication.  This ablation compares
the two reduction strategies at the executable-arithmetic level (wall-clock
of the reference multi-word implementations) for 256-bit operands.
"""

import random

from repro.arith import BarrettParams, MoMAContext, MontgomeryParams
from repro.arith.limbs import int_to_limbs
from repro.arith.montgomery import montgomery_mulmod_limbs
from repro.ntheory import find_prime_with_bits

BITS = 256
TRIALS = 64


def _workload():
    barrett_modulus = find_prime_with_bits(BITS - 4)
    montgomery_modulus = find_prime_with_bits(BITS)
    rng = random.Random(0)
    barrett_pairs = [
        (rng.randrange(barrett_modulus), rng.randrange(barrett_modulus)) for _ in range(TRIALS)
    ]
    montgomery_pairs = [
        (rng.randrange(montgomery_modulus), rng.randrange(montgomery_modulus))
        for _ in range(TRIALS)
    ]
    return barrett_modulus, barrett_pairs, montgomery_modulus, montgomery_pairs


def test_barrett_vs_montgomery(benchmark):
    barrett_modulus, barrett_pairs, montgomery_modulus, montgomery_pairs = _workload()
    context = MoMAContext(BITS)
    barrett = BarrettParams.create(barrett_modulus, BITS, BITS - 4)
    montgomery = MontgomeryParams.create(montgomery_modulus, 64)

    def barrett_run():
        return [context.mulmod(a, b, barrett_modulus, barrett.mu) for a, b in barrett_pairs]

    def montgomery_run():
        results = []
        for a, b in montgomery_pairs:
            a_limbs = int_to_limbs(montgomery.to_montgomery(a), 64, montgomery.num_limbs)
            b_limbs = int_to_limbs(montgomery.to_montgomery(b), 64, montgomery.num_limbs)
            results.append(montgomery_mulmod_limbs(a_limbs, b_limbs, montgomery))
        return results

    barrett_results = benchmark.pedantic(barrett_run, rounds=1, iterations=1)
    montgomery_results = montgomery_run()

    # Correctness of both reduction strategies on the same workload shape.
    for (a, b), got in zip(barrett_pairs, barrett_results):
        assert got == (a * b) % barrett_modulus
    assert len(montgomery_results) == TRIALS
    print()
    print(f"# Barrett modulus bit-width: {barrett_modulus.bit_length()} "
          f"(operand width {BITS}, 4 bits of headroom)")
    print(f"# Montgomery modulus bit-width: {montgomery_modulus.bit_length()} "
          f"(full operand width, no headroom needed)")
