"""Serving non-regression: warm serving crushes per-request cold compilation.

The point of the ``repro.serve`` subsystem is that a long-running server
pays tuning + compilation once per kernel family, then answers identical
requests from its resident table.  This benchmark measures both regimes for
one NTT butterfly family:

* **cold** — what per-request compilation costs: a fresh
  :class:`CompilerSession` per request (no shared cache, the pre-server
  world), legalizing and compiling the kernel every time;
* **warm** — the same request served repeatedly by a warm
  :class:`KernelServer`.

and asserts a wide separation, plus the serving invariant that the warm loop
performed zero compilations and zero tuning-database lookups.  The measured
per-request latencies land in the BENCH artifact via ``extra_info``.
"""

import time

import pytest

from repro.core.driver import CompilerSession
from repro.kernels.config import KernelConfig
from repro.kernels.ntt_gen import build_butterfly_kernel
from repro.serve import KernelServer, ServeRequest

#: The served kernel family (modest size keeps the cold loop affordable).
BITS = 256
SIZE = 256
#: Warm serving must beat per-request cold compilation by at least this much.
REQUIRED_SPEEDUP = 25.0

_WARM_REQUESTS = 200
_COLD_REQUESTS = 5


def _measure():
    server = KernelServer(devices=("rtx4090",))
    try:
        request = ServeRequest(kind="ntt", bits=BITS, size=SIZE)
        server.serve(request)  # tune + compile once (the warmup equivalent)

        compilations_before = server.session.stats().compilations
        db_before = server.db.stats()
        started = time.perf_counter()
        for _ in range(_WARM_REQUESTS):
            result = server.serve(request)
            assert result.warm
        warm_seconds = (time.perf_counter() - started) / _WARM_REQUESTS
        compilations = server.session.stats().compilations - compilations_before
        db_after = server.db.stats()
        db_lookups = (db_after.hits + db_after.misses) - (db_before.hits + db_before.misses)

        config = KernelConfig(bits=BITS)
        started = time.perf_counter()
        for _ in range(_COLD_REQUESTS):
            cold_session = CompilerSession()
            cold_session.compile(
                build_butterfly_kernel(config),
                target="python_exec",
                options=config.rewrite_options(),
            )
        cold_seconds = (time.perf_counter() - started) / _COLD_REQUESTS
        return warm_seconds, cold_seconds, compilations, db_lookups
    finally:
        server.close()


@pytest.mark.perf_floor
def test_warm_serving_beats_cold_compilation(run_once, benchmark, floor_scale):
    warm_seconds, cold_seconds, compilations, db_lookups = run_once(_measure)
    speedup = cold_seconds / warm_seconds
    floor = REQUIRED_SPEEDUP * floor_scale
    benchmark.extra_info["warm_us_per_request"] = warm_seconds * 1e6
    benchmark.extra_info["cold_ms_per_request"] = cold_seconds * 1e3
    benchmark.extra_info["serving_speedup"] = speedup
    benchmark.extra_info["floor_speedup"] = floor
    print(
        f"\n# warm serve {warm_seconds * 1e6:8.1f} us/request, "
        f"cold compile {cold_seconds * 1e3:8.2f} ms/request "
        f"({speedup:,.0f}x)"
    )

    # The serving invariant: the warm loop never compiled and never touched
    # the tuning database.
    assert compilations == 0
    assert db_lookups == 0
    assert speedup >= floor, (
        f"warm serving is only {speedup:.1f}x faster than per-request cold "
        f"compilation; expected at least {floor:g}x "
        f"({REQUIRED_SPEEDUP}x x {floor_scale:g})"
    )
