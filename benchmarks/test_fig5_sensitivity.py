"""Figure 5: sensitivity analyses (bit-width scaling, Karatsuba vs schoolbook)."""

from repro.evaluation import format_table, run_figure5a, run_figure5b


def test_figure5a_bitwidth_scaling(run_once):
    figure = run_once(run_figure5a)
    print()
    print(format_table(figure))

    h100 = figure.get("H100")
    rtx = figure.get("RTX 4090")
    widths = h100.xs()
    # Runtime grows monotonically with the input bit-width on both GPUs.
    for series in (h100, rtx):
        values = [series.at(bits) for bits in widths]
        assert all(later > earlier for earlier, later in zip(values, values[1:]))
    # Each doubling of the bit-width costs a factor in the 2x-8x range
    # (paper: 2.9x / 5.6x / 4.8x / 4.7x on the H100).
    for low, high in ((64, 128), (128, 256), (256, 512), (512, 1024)):
        assert 2.0 <= h100.at(high) / h100.at(low) <= 8.0
    # The H100 curve bends upward (relative to the RTX 4090) past 512 bits,
    # where the occupancy penalty kicks in earlier.
    assert h100.at(1024) / rtx.at(1024) >= h100.at(512) / rtx.at(512)


def test_figure5b_multiplication_algorithm(run_once):
    figure = run_once(run_figure5b)
    print()
    print(format_table(figure))

    schoolbook = figure.get("Schoolbook")
    karatsuba = figure.get("Karatsuba")
    ratios = {bits: karatsuba.at(bits) / schoolbook.at(bits) for bits in schoolbook.xs()}
    # Paper: Karatsuba wins at 128/256 bits and loses at 768 bits.  Our
    # generated Karatsuba carries more addition/compare overhead than
    # SPIRAL's, so it does not win outright at small widths (documented in
    # EXPERIMENTS.md); the reproduction asserts the robust part of the
    # finding — schoolbook is the better choice at 768 bits, and Karatsuba's
    # relative cost at 768 bits is no better than at 128 bits.
    assert ratios[768] > 1.0
    assert ratios[768] >= ratios[128] * 0.95
    print(f"# karatsuba/schoolbook runtime ratios: {ratios}")
