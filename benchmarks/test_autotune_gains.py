"""Autotuner non-regression: tuned configs beat (or tie) the paper defaults.

Two properties anchor the ``repro.tune`` subsystem:

* for every Figure 5b bit-width — on both Figure 5 devices — the tuned
  configuration's modeled cost is never worse than the paper-default
  configuration's (the default is always in the search space, so the winner
  can only improve on it); and
* a warm tuning-database lookup skips the search entirely: zero candidates
  scored, zero additional kernel compilations (verified through both the
  session's cache counters and the database's hit counters).
"""

from repro.core.driver import CompilerSession
from repro.evaluation.fig5_sensitivity import FIG5B_BIT_WIDTHS, SENSITIVITY_SIZE
from repro.tune import Autotuner, TuningDatabase, Workload


_STATE = {}


def _tune_all(devices=("rtx4090", "h100")):
    # The cold sweep is shared between the two tests: the first call tunes
    # every (bit-width, device) pair, the second exercises the warm path.
    if "results" not in _STATE:
        session = CompilerSession()
        db = TuningDatabase()
        tuner = Autotuner(session=session, db=db)
        _STATE["results"] = {
            (bits, device): tuner.tune(
                Workload(kind="ntt", bits=bits, size=SENSITIVITY_SIZE), device
            )
            for bits in FIG5B_BIT_WIDTHS
            for device in devices
        }
        _STATE["session"], _STATE["db"], _STATE["tuner"] = session, db, tuner
    return _STATE["session"], _STATE["db"], _STATE["tuner"], _STATE["results"]


def test_tuned_never_worse_than_paper_default(run_once):
    _, _, _, results = run_once(_tune_all)
    print()
    for (bits, device), result in sorted(results.items()):
        print(
            f"# {device:8s} {bits:4d}b: default {result.baseline_seconds * 1e6:8.3f} us, "
            f"tuned {result.score_seconds * 1e6:8.3f} us "
            f"({result.speedup:.2f}x, {result.candidate.label()})"
        )
    for (bits, device), result in results.items():
        assert result.score_seconds <= result.baseline_seconds, (
            f"tuned config for {bits}b on {device} is worse than the paper default"
        )
        assert not result.from_database
        assert result.evaluations > 0


def test_warm_tuning_db_skips_search_entirely(run_once):
    session, db, tuner, cold = run_once(_tune_all)
    hits_before = db.stats().hits
    misses_before = session.cache_info().misses

    for (bits, device), cold_result in cold.items():
        warm = tuner.tune(Workload(kind="ntt", bits=bits, size=SENSITIVITY_SIZE), device)
        assert warm.from_database
        assert warm.strategy == "database"
        assert warm.evaluations == 0
        assert warm.candidate == cold_result.candidate
        assert warm.score_seconds == cold_result.score_seconds

    # Zero additional candidate compilations: every warm answer came from the
    # database, not from the compiler.
    assert session.cache_info().misses == misses_before
    assert db.stats().hits == hits_before + len(cold)
    print(
        f"\n# warm lookups: {len(cold)} served from the tuning db, "
        f"0 additional kernel compilations"
    )
