"""Figure 3: NTT runtime per butterfly across sizes for 128/256/384/768 bits."""

import pytest

from repro.evaluation import format_table, geometric_mean_ratio, run_figure3_panel

SIZES = tuple(1 << k for k in range(8, 23))


def test_figure3a_128bit(run_once):
    figure = run_once(run_figure3_panel, 128, SIZES)
    print()
    print(format_table(figure))
    moma = figure.get("MoMA (H100)")
    # Near-ASIC: RPU and FPMM are within ~2x of MoMA (paper: MoMA wins by
    # 1.4x / 1.8x); CPU baselines are orders of magnitude slower.
    assert 1.0 <= geometric_mean_ratio(figure.get("RPU"), moma) <= 2.0
    assert 1.0 <= geometric_mean_ratio(figure.get("FPMM"), moma) <= 2.5
    assert geometric_mean_ratio(figure.get("OpenFHE"), moma) > 100
    # Going out of shared memory costs extra (compare 2^10 vs 2^11 on V100).
    v100 = figure.get("MoMA (V100)")
    assert v100.at(1 << 11) / v100.at(1 << 10) > 1.3


def test_figure3b_256bit(run_once):
    figure = run_once(run_figure3_panel, 256, SIZES)
    print()
    print(format_table(figure))
    assert 10 <= geometric_mean_ratio(figure.get("ICICLE"), figure.get("MoMA (H100)")) <= 16
    for device in ("MoMA (H100)", "MoMA (RTX 4090)", "MoMA (V100)"):
        assert geometric_mean_ratio(figure.get("PipeZK"), figure.get(device)) > 1
    # GZKP crossover on the V100: MoMA wins small sizes, loses large ones.
    gzkp, v100 = figure.get("GZKP"), figure.get("MoMA (V100)")
    assert gzkp.at(1 << 8) > v100.at(1 << 8)
    assert gzkp.at(1 << 22) < v100.at(1 << 22)


def test_figure3c_384bit(run_once):
    figure = run_once(run_figure3_panel, 384, SIZES)
    print()
    print(format_table(figure))
    assert 3.5 <= geometric_mean_ratio(figure.get("ICICLE"), figure.get("MoMA (H100)")) <= 6.5
    # The FPMM ASIC wins at 384 bits (paper: by 1.7x).
    assert geometric_mean_ratio(figure.get("MoMA (H100)"), figure.get("FPMM")) > 1.3


def test_figure3d_768bit(run_once):
    figure = run_once(run_figure3_panel, 768, SIZES)
    print()
    print(format_table(figure))
    # RTX 4090 outperforms H100 at 768 bits (higher clock).
    assert geometric_mean_ratio(figure.get("MoMA (H100)"), figure.get("MoMA (RTX 4090)")) > 1
    # H100 beats PipeZK by ~2x in the 2^14..2^20 range.
    pipezk, h100 = figure.get("PipeZK"), figure.get("MoMA (H100)")
    assert 1.5 <= pipezk.at(1 << 16) / h100.at(1 << 16) <= 2.5
    # GZKP overtakes MoMA from 2^16 onwards, not before.
    gzkp = figure.get("GZKP")
    assert gzkp.at(1 << 10) > h100.at(1 << 10)
    assert gzkp.at(1 << 20) < h100.at(1 << 20)
    assert geometric_mean_ratio(figure.get("Libsnark"), h100) > 50
