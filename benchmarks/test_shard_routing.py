"""Shard-routing non-regression: the router must never be the bottleneck.

The sharded serving tier puts a :class:`ShardRouter` decision in front of
every request, so routing must be orders of magnitude cheaper than even a
warm serve (which is itself microseconds).  This benchmark measures
steady-state routing throughput over a synthetic key population and checks
the two structural properties that justify consistent hashing at all:

* **spread** — no shard owns a degenerate share of the key space;
* **minimal movement** — when one of N shards is lost, close to 1/N of the
  keys move (and never the majority, which a naive ``hash % N`` would do).

The measured numbers land in the BENCH artifact via ``extra_info``.
"""

import time

import pytest

from repro.serve.shard import ShardRouter

SHARDS = 4
KEYS = [f"family-{index:05x}::rtx4090" for index in range(4096)]

#: Routing must stay comfortably below warm-serve latency (~tens of µs).
REQUIRED_ROUTES_PER_S = 50_000.0

#: Losing 1 of 4 shards should move about a quarter of the keys; a naive
#: modulo scheme moves ~3/4.  Anything under half keeps resident tables warm.
MAX_MOVED_FRACTION = 0.5


def _measure():
    router = ShardRouter(range(SHARDS))

    started = time.perf_counter()
    before = {key: router.route_key(key) for key in KEYS}
    seconds = time.perf_counter() - started
    routes_per_s = len(KEYS) / seconds if seconds else float("inf")

    counts = {shard_id: 0 for shard_id in range(SHARDS)}
    for owner in before.values():
        counts[owner] += 1

    router.remove_shard(0)
    after = {key: router.route_key(key) for key in KEYS}
    moved = sum(1 for key in KEYS if before[key] != after[key])

    return {
        "routes_per_s": routes_per_s,
        "max_share": max(counts.values()) / len(KEYS),
        "moved_fraction": moved / len(KEYS),
        "lost_share": counts[0] / len(KEYS),
    }


@pytest.mark.perf_floor
def test_routing_throughput_and_rebalance(run_once, benchmark, floor_scale):
    measured = run_once(_measure)
    floor = REQUIRED_ROUTES_PER_S * floor_scale
    benchmark.extra_info.update(measured)
    benchmark.extra_info["floor_routes_per_s"] = floor

    assert measured["routes_per_s"] >= floor
    assert measured["max_share"] < 0.5
    # Only keys owned by the lost shard move: the moved fraction equals the
    # lost shard's share exactly, and stays far below the modulo disaster.
    assert measured["moved_fraction"] == measured["lost_share"]
    assert measured["moved_fraction"] <= MAX_MOVED_FRACTION
