"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures.  The
figure-producing call is wrapped in ``benchmark.pedantic(..., rounds=1)``
because the quantity of interest is the *output* (the regenerated series,
printed below each benchmark and asserted for shape), not the wall-clock of
the harness itself.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a harness exactly once under the benchmark fixture and return its result."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
