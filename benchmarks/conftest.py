"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures or holds a
performance floor.  The figure-producing call is wrapped in
``benchmark.pedantic(..., rounds=1)`` because the quantity of interest is
the *output* (the regenerated series, printed below each benchmark and
asserted for shape), not the wall-clock of the harness itself.

Floor benchmarks — the ones asserting ``measured >= REQUIRED_*`` — carry
``@pytest.mark.perf_floor`` and scale their thresholds by the
:func:`floor_scale` fixture: 1.0 locally, more generous on shared CI
runners (override with ``REPRO_FLOOR_SCALE``).  The floors exist to catch
order-of-magnitude regressions, not to measure the runner.

After a benchmark run, every ``perf_floor`` record (name + ``extra_info``)
is merged into the per-commit ``benchmarks/BENCH_<sha>.json`` artifact via
the same read-merge-write helper the loadgen SLO reporter uses — so the
artifact accumulates floors, SLO reports, and pytest-benchmark's own
payload without any writer clobbering another.
"""

import os

import pytest

#: How much CI runners are allowed to miss the local floors by.
_CI_FLOOR_SCALE = 0.5


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf_floor: benchmark asserting a scaled performance floor "
        "(threshold x floor_scale); recorded in the BENCH artifact",
    )


@pytest.fixture
def run_once(benchmark):
    """Run a harness exactly once under the benchmark fixture and return its result."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


@pytest.fixture
def floor_scale():
    """Multiplier applied to every performance floor before asserting.

    1.0 locally; :data:`_CI_FLOOR_SCALE` when ``CI`` is set (shared runners
    are noisy and oversubscribed — the floors still catch order-of-magnitude
    regressions at half strength).  ``REPRO_FLOOR_SCALE`` overrides both,
    which is how a deflake investigation can pin the exact local thresholds
    on a CI runner or vice versa.
    """
    override = os.environ.get("REPRO_FLOOR_SCALE")
    if override:
        return float(override)
    return _CI_FLOOR_SCALE if os.environ.get("CI") else 1.0


def pytest_collection_modifyitems(config, items):
    marked = {item.nodeid for item in items if item.get_closest_marker("perf_floor")}
    config._repro_perf_floor_nodeids = marked


@pytest.hookimpl(trylast=True)
def pytest_sessionfinish(session):
    """Merge perf_floor records into ``BENCH_<sha>.json`` after the run.

    ``trylast`` orders this after pytest-benchmark's own ``--benchmark-json``
    write, so when CI points that flag at the BENCH file this hook *appends*
    to the freshly written payload instead of racing it.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not getattr(bench_session, "benchmarks", None):
        return
    marked = getattr(session.config, "_repro_perf_floor_nodeids", set())
    entries = [
        {
            "name": bench.fullname,
            "extra_info": dict(bench.extra_info),
        }
        for bench in bench_session.benchmarks
        if bench.fullname in marked
    ]
    if not entries:
        return
    from repro.loadgen.report import bench_artifact_path, merge_bench_payload

    merge_bench_payload(bench_artifact_path(), "perf_floors", entries)
