"""Figure 1: headline 256-bit NTT comparison (GPUs vs ICICLE vs ASIC)."""

from repro.evaluation import format_table, geometric_mean_ratio, run_figure1

SIZES = tuple(1 << k for k in range(8, 23, 2))


def test_figure1_headline(run_once):
    figure = run_once(run_figure1, SIZES)
    print()
    print(format_table(figure))

    moma_rtx = figure.get("MoMA (RTX 4090)")
    icicle = figure.get("ICICLE")
    fpmm = figure.get("FPMM")
    # Paper: MoMA on a $2,000 consumer GPU outperforms ICICLE on an H100 by
    # ~14x on average and achieves near-ASIC performance.
    speedup = geometric_mean_ratio(icicle, moma_rtx)
    assert 8 <= speedup <= 25
    assert geometric_mean_ratio(moma_rtx, fpmm) <= 1.3
