"""Autotuning walkthrough: let the system pick the kernel configuration.

The paper fixes one configuration per experiment by hand (schoolbook
multiplication, 64-bit words, one butterfly stage per launch).  The
``repro.tune`` subsystem searches that configuration space against the GPU
cost model and remembers winners per device:

1. describe the workload — a 4,096-point NTT on 256-bit operands,
2. tune it for the RTX 4090: space -> search -> evaluate, winner stored in a
   persistent JSON tuning database,
3. tune it again — the warm database answers instantly, with zero candidate
   compilations (watch the session's cache counters not move),
4. compile the tuned kernel in one driver call with
   :meth:`CompilerSession.compile_tuned`, and
5. sweep the Figure 5b bit-widths with tuned configurations
   (:func:`repro.evaluation.run_figure5b_tuned`).

Run with:  python examples/autotune_ntt.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core.driver import CompilerSession
from repro.evaluation import format_table, run_figure5b_tuned
from repro.tune import Autotuner, TuningDatabase, Workload


def main() -> None:
    session = CompilerSession()
    db_path = Path(tempfile.gettempdir()) / "repro_autotune_ntt.json"
    db = TuningDatabase(db_path)
    tuner = Autotuner(session=session, db=db)

    # 1. The workload: what is computed, not how.
    workload = Workload(kind="ntt", bits=256, size=4096)
    print(f"=== tuning {workload.key} for the RTX 4090 ===")

    # 2. Cold tune: search the configuration space against the cost model.
    result = tuner.tune(workload, "rtx4090")
    print(f"strategy     {result.strategy}")
    print(f"space        {result.space_size} candidates, {result.evaluations} scored")
    print(f"winner       {result.candidate.label()}")
    print(
        f"cost         {result.score_seconds * 1e6:.3f} us/NTT "
        f"(paper default {result.baseline_seconds * 1e6:.3f}, "
        f"speedup {result.speedup:.2f}x)"
    )
    print(f"database     saved to {db_path}")

    # 3. Warm tune: the database remembers, the search never runs.
    misses_before = session.cache_info().misses
    warm = tuner.tune(workload, "rtx4090")
    print()
    print("=== tuning the same workload again ===")
    print(f"from_database={warm.from_database}, evaluations={warm.evaluations}")
    print(
        f"additional kernel compilations: "
        f"{session.cache_info().misses - misses_before}"
    )

    # 4. One driver call: tune (warm) + compile the winner.
    tuned = session.compile_tuned(workload, target="cuda", device="rtx4090", db=db)
    first_line = str(tuned.artifact).splitlines()[0]
    print()
    print("=== compile_tuned -> CUDA ===")
    print(f"config   {tuned.config.label()} (word_bits={tuned.config.word_bits})")
    print(f"artifact {first_line}")

    # 5. The Figure 5b sweep, self-optimized per bit-width.
    print()
    print("=== Figure 5b with autotuned configurations ===")
    print(format_table(run_figure5b_tuned(session=session, tuning_db=db)))


if __name__ == "__main__":
    main()
