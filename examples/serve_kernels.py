"""Kernel-serving walkthrough: one warm server, many cheap requests.

``repro.tune`` finds and remembers winning kernel configurations; the
``repro.serve`` subsystem serves them from a long-running process:

1. tune two kernel families once, persisting the winners to a JSON tuning
   database (this is the state a production deployment ships with),
2. start a fresh :class:`KernelServer` over that database and **pre-warm**
   it — every recorded winner is compiled into the kernel cache before any
   traffic arrives,
3. serve requests: the first identical request after warmup is answered
   *warm* — zero compilations, zero tuning-database lookups — and
   concurrent identical requests deduplicate to one compilation,
4. run the classic frontends (``GeneratedNTT``-style transforms, a BLAS
   engine) against the server via :class:`ServedNTT`/:class:`ServedBlasEngine`,
5. print the server's metrics snapshot: warm rate, dedup hits, latency
   percentiles.

This walkthrough is the **single-process** tier (``python -m repro.serve``
with the default ``--shards 1``).  The same request surface also scales
horizontally: ``--shards N`` — or a :class:`ShardSupervisor` in code — runs
N such servers as separate processes behind a consistent-hash router; see
``examples/shard_cluster.py`` and ``docs/serving.md`` for that tier.

Run with:  python examples/serve_kernels.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.serve import KernelServer, ServedBlasEngine, ServedNTT, ServeRequest
from repro.tune import TuningDatabase

SIZE = 256
BITS = 256


def main() -> None:
    db_path = Path(tempfile.gettempdir()) / "repro_serve_kernels.json"
    db_path.unlink(missing_ok=True)

    # 1. Tune once, persist the winners (the "offline" half).
    print("=== offline: tune and persist winners ===")
    with KernelServer(db=TuningDatabase(db_path), devices=("rtx4090",)) as offline:
        for request in (
            ServeRequest(kind="ntt", bits=BITS, size=SIZE),
            ServeRequest(kind="blas", bits=BITS, operation="vmul"),
        ):
            result = offline.serve(request)
            print(
                f"tuned {request.workload().key}: {result.config.label()} "
                f"({result.tuning.speedup:.2f}x over the paper default)"
            )
    print(f"database saved to {db_path}")

    # 2. A fresh process's server: pre-warm from the database.
    print()
    print("=== online: pre-warm a fresh server ===")
    server = KernelServer(db=TuningDatabase(db_path), devices=("rtx4090",))
    print(server.warm().report())

    # 3. Warm serving: no compilation, no database access per request.
    compilations_before = server.session.stats().compilations
    db_before = server.db.stats()
    result = server.serve(ServeRequest(kind="ntt", bits=BITS, size=SIZE))
    db_after = server.db.stats()
    print()
    print(
        f"warm serve: warm={result.warm}, "
        f"compilations={server.session.stats().compilations - compilations_before}, "
        f"db lookups={db_after.hits + db_after.misses - db_before.hits - db_before.misses}, "
        f"latency {result.latency_s * 1e3:.3f} ms"
    )

    # 4. The familiar frontends, backed by the server's shared caches.
    ntt = ServedNTT(server, size=SIZE, bits=BITS)
    values = list(range(SIZE))
    assert ntt.inverse(ntt.forward(values)) == values
    engine = ServedBlasEngine(server, bits=BITS)
    q = ntt.modulus
    assert engine.vmul([3, 5], [7, 11], q) == [21, 55]
    print(f"ServedNTT round trip ok (modulus {q:#x})")
    print(f"ServedBlasEngine vmul ok (config {engine.operation_configs['vmul'].label()})")

    # 5. Observability.
    print()
    print("=== metrics ===")
    print(server.metrics_snapshot().report())
    server.close()
    print()
    print(
        "next: examples/shard_cluster.py serves this same traffic across "
        "multiple server processes (python -m repro.serve --shards 2 --demo)"
    )


if __name__ == "__main__":
    main()
