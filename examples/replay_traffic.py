"""Traffic replay walkthrough: seeded workloads, a chaos kill, an SLO report.

The ``repro.loadgen`` harness turns "does the cluster serve?" into
"how well does it serve a named workload, and what happens when a shard
dies mid-traffic?":

1. generate a deterministic trace — a seeded mix of the FHE-pipeline and
   RNS-conversion suites; the same seed always yields byte-identical
   canonical JSON, so a trace file replays exactly, anywhere,
2. replay it closed-loop against a real 2-shard cluster through the
   supervisor's front door (the engine itself only ever calls
   ``submit``),
3. inject a fault at the midpoint: the supervisor's public
   :meth:`~repro.serve.supervisor.ShardSupervisor.kill_shard` hook takes
   one shard down; its pending work reroutes to the ring successor and
   the monitor respawns the process — no request is lost,
4. build the SLO report: client-observed p50/p95/p99, warm ratio, error
   and deadline-miss rates, and the recovery window the kill caused.

The CLI wraps the same flow:  python -m repro.loadgen --shards 2 \\
    --suite fhe_pipeline --suite rns_conversion --kill-shard 0

Run with:  python examples/replay_traffic.py
"""

from __future__ import annotations

from repro.loadgen import (
    ReplayFault,
    TraceConfig,
    build_slo_report,
    generate_trace,
    replay,
)
from repro.serve import ShardSupervisor

SEED = 7
REQUESTS = 24
SHARDS = 2


def main() -> None:
    # 1. A deterministic trace: same seed, same bytes, every time.
    config = TraceConfig(
        suites=("fhe_pipeline", "rns_conversion"),
        seed=SEED,
        requests=REQUESTS,
        arrival="closed",
        clients=4,
    )
    trace = generate_trace(config)
    print(f"=== trace: {len(trace.events)} requests, seed {SEED} ===")
    print(f"suites: {', '.join(trace.suites_used)}")
    print(f"canonical bytes: {len(trace.serialize())}")

    # 2–3. Replay against a live 2-shard cluster, killing the busiest
    # shard once half the trace has been injected.
    print()
    print(f"=== replay across {SHARDS} shards, with a midpoint kill ===")
    supervisor = ShardSupervisor(shards=SHARDS, devices=("rtx4090",))
    try:

        def kill_busiest() -> None:
            routed = supervisor.routed_counts()
            victim = max(routed, key=lambda shard_id: routed[shard_id])
            print(f"!!! killing shard {victim} mid-replay")
            supervisor.kill_shard(victim)

        wire_before = supervisor.wire_snapshot()
        result = replay(
            supervisor,
            trace,
            fault=ReplayFault(action=kill_busiest, at_fraction=0.5),
        )

        # 4. The SLO report, with the cluster's own view riding along.
        print()
        print("=== SLO report ===")
        report = build_slo_report(
            result,
            cluster=supervisor.stats(),
            wire_delta=supervisor.wire_snapshot().delta(wire_before),
        )
        print(report.report())
        assert report.lost == 0, "a shard kill must never lose a request"
    finally:
        supervisor.close()


if __name__ == "__main__":
    main()
