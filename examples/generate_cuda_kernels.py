"""Emit the full set of CUDA kernels the paper's evaluation uses.

Generates the BLAS kernels (vadd/vsub/vmul/axpy) and the NTT butterfly for a
chosen bit-width through one :class:`~repro.core.driver.CompilerSession`,
writes both the ``cuda`` and ``c99`` target artifacts to ``generated_cuda/``,
and prints a summary of their interfaces and instruction mixes.  On a machine
with ``nvcc`` these files compile as-is; in this environment they are the
artifact the golden tests inspect.

Run with:  python examples/generate_cuda_kernels.py [bits]
"""

from __future__ import annotations

import pathlib
import sys

from repro.core.driver import CompilerSession
from repro.gpu import cost_kernel
from repro.kernels import (
    BLAS_OPERATIONS,
    KernelConfig,
    build_blas_kernel,
    build_butterfly_kernel,
)

OUTPUT_DIRECTORY = pathlib.Path(__file__).resolve().parent / "generated_cuda"


def main() -> None:
    bits = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    config = KernelConfig(bits=bits)
    session = CompilerSession(options=config.rewrite_options())
    OUTPUT_DIRECTORY.mkdir(exist_ok=True)

    wide_kernels = {
        operation: build_blas_kernel(operation, config) for operation in BLAS_OPERATIONS
    }
    wide_kernels["ntt_butterfly"] = build_butterfly_kernel(config)

    print(f"Generating {bits}-bit kernels into {OUTPUT_DIRECTORY}/")
    for name, wide in wide_kernels.items():
        # Both emissions share one cached lowering inside the session.
        cuda_source = session.compile(wide, target="cuda")
        c_source = session.compile(wide, target="c99")
        lowered = session.lower(wide)
        cuda_path = OUTPUT_DIRECTORY / f"{lowered.name}.cu"
        c_path = OUTPUT_DIRECTORY / f"{lowered.name}.c"
        cuda_path.write_text(cuda_source)
        c_path.write_text(c_source)
        cost = cost_kernel(lowered)
        print(f"  {name:>14}: {cost.statement_count:5d} statements, "
              f"{cost.multiplications:4d} word multiplies, "
              f"{len(lowered.params):3d} word parameters -> {cuda_path.name}")

    cache = session.cache_info()
    print(f"session cache: {cache.hits} hits / {cache.misses} misses; "
          f"one lowering serves both targets per kernel")


if __name__ == "__main__":
    main()
