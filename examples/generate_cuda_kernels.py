"""Emit the full set of CUDA kernels the paper's evaluation uses.

Generates the BLAS kernels (vadd/vsub/vmul/axpy) and the NTT butterfly for a
chosen bit-width, writes them to ``generated_cuda/``, and prints a summary of
their interfaces and instruction mixes.  On a machine with ``nvcc`` these
files compile as-is; in this environment they are the artifact the golden
tests inspect.

Run with:  python examples/generate_cuda_kernels.py [bits]
"""

from __future__ import annotations

import pathlib
import sys

from repro.core.codegen import generate_c99, generate_cuda
from repro.gpu import cost_kernel
from repro.kernels import (
    BLAS_OPERATIONS,
    KernelConfig,
    generate_blas_kernel,
    generate_butterfly_kernel,
)

OUTPUT_DIRECTORY = pathlib.Path(__file__).resolve().parent / "generated_cuda"


def main() -> None:
    bits = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    config = KernelConfig(bits=bits)
    OUTPUT_DIRECTORY.mkdir(exist_ok=True)

    kernels = {
        operation: generate_blas_kernel(operation, config) for operation in BLAS_OPERATIONS
    }
    kernels["ntt_butterfly"] = generate_butterfly_kernel(config)

    print(f"Generating {bits}-bit kernels into {OUTPUT_DIRECTORY}/")
    for name, kernel in kernels.items():
        cuda_path = OUTPUT_DIRECTORY / f"{kernel.name}.cu"
        c_path = OUTPUT_DIRECTORY / f"{kernel.name}.c"
        cuda_path.write_text(generate_cuda(kernel))
        c_path.write_text(generate_c99(kernel))
        cost = cost_kernel(kernel)
        print(f"  {name:>14}: {cost.statement_count:5d} statements, "
              f"{cost.multiplications:4d} word multiplies, "
              f"{len(kernel.params):3d} word parameters -> {cuda_path.name}")


if __name__ == "__main__":
    main()
