"""ZKP-style workload: 384-bit polynomial arithmetic via generated kernels.

Zero-knowledge proof systems (the paper's motivating application alongside
FHE) evaluate and multiply polynomials over ~381-bit fields (BLS12-381) or
~753-bit fields (MNT4753).  This example mirrors that workload at 384 bits:

* an NTT-based polynomial product where every butterfly runs the
  MoMA-generated machine-word kernel (the non-power-of-two optimization of
  Section 4 prunes the 512-bit container down to 6 words per operand), and
* the finite-field BLAS operations (vector add / axpy) that surround NTTs in
  real provers, executed with the generated element-wise kernels.

Run with:  python examples/zkp_polynomial_commitment.py
"""

from __future__ import annotations

import random

from repro.core.driver import CompilerSession
from repro.gpu import cost_kernel, estimate_ntt
from repro.kernels import KernelConfig
from repro.ntt import GeneratedNTT
from repro.poly import MomaBlasEngine, PythonBlasEngine

FIELD_BITS = 384
TRANSFORM_SIZE = 16


def main() -> None:
    config = KernelConfig(bits=FIELD_BITS)
    session = CompilerSession()
    transform = GeneratedNTT(TRANSFORM_SIZE, config, session=session)
    q = transform.modulus
    print(f"384-bit ZKP-style field: q has {q.bit_length()} bits")
    print(f"container width {config.container_bits} bits, "
          f"{config.operand_words} machine words per element after pruning")

    rng = random.Random(42)
    # Two random polynomials of degree < n/2 so the cyclic product equals the
    # full product (as a commitment scheme would arrange).
    a = [rng.randrange(q) if i < TRANSFORM_SIZE // 2 else 0 for i in range(TRANSFORM_SIZE)]
    b = [rng.randrange(q) if i < TRANSFORM_SIZE // 2 else 0 for i in range(TRANSFORM_SIZE)]

    product = transform.polynomial_multiply(a, b)

    # Verify against schoolbook multiplication on Python integers.
    expected = [0] * TRANSFORM_SIZE
    for i in range(TRANSFORM_SIZE // 2):
        for j in range(TRANSFORM_SIZE // 2):
            expected[i + j] = (expected[i + j] + a[i] * b[j]) % q
    assert product == expected
    print(f"{TRANSFORM_SIZE}-point NTT-based polynomial product with generated "
          f"384-bit butterflies: OK")

    # The surrounding prover arithmetic: batched vector operations.
    moma = MomaBlasEngine(config, session=session)
    python_engine = PythonBlasEngine()
    x = [rng.randrange(q) for _ in range(8)]
    y = [rng.randrange(q) for _ in range(8)]
    scale = rng.randrange(q)
    assert moma.axpy(scale, x, y, q) == python_engine.axpy(scale, x, y, q)
    print("generated 384-bit axpy agrees with big-integer arithmetic: OK")

    # What the evaluation section would report for this configuration.
    butterfly_cost = cost_kernel(transform.compiled_kernel.kernel)
    print()
    print(f"generated butterfly: {butterfly_cost.statement_count} machine statements, "
          f"{butterfly_cost.multiplications} word multiplications")
    for size_log in (12, 16, 20):
        estimate = estimate_ntt(config, 1 << size_log, "rtx4090", session=session)
        print(f"  2^{size_log:>2} NTT on RTX 4090 (modelled): "
              f"{estimate.per_ntt_us:9.1f} us / transform, "
              f"{estimate.per_butterfly_ns:6.3f} ns / butterfly")

    cache = session.cache_info()
    print(f"\nsession kernel cache: {cache.hits} hits / {cache.misses} misses "
          f"(the butterfly is compiled once, reused everywhere)")


if __name__ == "__main__":
    main()
