"""Quickstart: generate, inspect and run a MoMA kernel via the driver.

Walks through the paper's pipeline on one kernel, driven by the unified
compiler entry point (:class:`repro.core.driver.CompilerSession`):

1. build a 256-bit NTT butterfly as wide-typed abstract code,
2. lower it — MoMA legalization (Table 1) down to 64-bit words plus the
   optimization passes — through the session (one call, cached),
3. emit CUDA (what the paper ships) and compile the same kernel for the
   executable Python backend to check it against big-integer arithmetic,
4. read the session's pipeline instrumentation and cache counters, and
5. ask the GPU cost model what it would cost on the paper's three GPUs.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.core.driver import CompilerSession
from repro.core.ir import format_kernel, format_signature
from repro.gpu import estimate_ntt
from repro.kernels import KernelConfig, build_butterfly_kernel
from repro.ntheory import find_ntt_prime


def main() -> None:
    config = KernelConfig(bits=256)
    session = CompilerSession()

    # 1. Frontend: the butterfly as wide-typed IR.
    wide = build_butterfly_kernel(config)
    print("=== wide-typed kernel (before MoMA) ===")
    print(format_kernel(wide))

    # 2. One driver call replaces the old legalize + optimize hand-chain.
    legalized = session.lower(wide, options=config.rewrite_options())
    print()
    print("=== after MoMA legalization ===")
    print(f"signature: {format_signature(legalized)[:120]}...")
    print(f"machine-word statements: {len(legalized.body)}")

    # 3a. CUDA emission (the artifact the paper generates with SPIRAL).
    cuda_source = session.compile(wide, target="cuda", options=config.rewrite_options())
    print()
    print("=== generated CUDA (first 12 lines) ===")
    print("\n".join(cuda_source.splitlines()[:12]))

    # 3b. Execute the generated machine-word code and verify it.
    compiled = session.compile(wide, target="python_exec", options=config.rewrite_options())
    q = find_ntt_prime(config.effective_modulus_bits, 1 << 10)
    mu = (1 << (2 * config.effective_modulus_bits + 3)) // q
    rng = random.Random(0)
    x, y, w = (rng.randrange(q) for _ in range(3))
    outputs = compiled(x=x, y=y, w=w, q=q, mu=mu)
    assert outputs["x_out"] == (x + w * y) % q
    assert outputs["y_out"] == (x - w * y) % q
    print()
    print("=== execution check ===")
    print("butterfly on 256-bit operands matches big-integer arithmetic: OK")

    # 4. The driver instruments every compilation: per-pass timings,
    #    statement deltas, and kernel-cache hit/miss counters.
    print()
    print("=== session instrumentation ===")
    print(session.stats().report())
    cache = session.cache_info()
    print(f"kernel cache: {cache.hits} hits / {cache.misses} misses "
          f"({cache.currsize}/{cache.maxsize} entries)")

    # 5. What would this cost on the paper's GPUs?
    print()
    print("=== modelled 2^16-point NTT cost (ns / butterfly) ===")
    for device in ("h100", "rtx4090", "v100"):
        estimate = estimate_ntt(config, 1 << 16, device, session=session)
        print(f"  {device:>8}: {estimate.per_butterfly_ns:6.3f} ns")


if __name__ == "__main__":
    main()
