"""Sharded serving walkthrough: N server processes behind one router.

One :class:`KernelServer` process eventually saturates; the
``repro.serve.shard`` tier scales horizontally by adding processes:

1. start a :class:`ShardSupervisor` — it spawns two shard processes, each a
   full kernel server owning its own tuning-database *replica* file,
2. serve a mix of kernel families: the supervisor consistent-hashes each
   request's (kernel-family fingerprint, device) onto a shard, so one
   family's traffic always lands on the shard holding its resident table,
3. repeat a request and watch it come back warm — from the owning shard,
   over the wire protocol (the executable kernel crosses as a pickled
   artifact and still computes),
4. print the cluster stats: per-shard counters merged into global
   warm/cold/dedup counts and p50/p95 from summed latency histograms,
5. close the cluster: shards drain, and their replicas are reconciled into
   the primary database by merge-on-save — winners tuned by *any* shard
   survive into the next deployment's warmup.

Run with:  python examples/shard_cluster.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.serve import ServedNTT, ServeRequest, ShardSupervisor
from repro.tune import TuningDatabase

SIZE = 256
SHARDS = 2


def main() -> None:
    db_path = Path(tempfile.gettempdir()) / "repro_shard_cluster.json"
    db_path.unlink(missing_ok=True)

    # 1. Two real shard processes, each with its own tuning-db replica.
    print(f"=== spawn {SHARDS} shard processes ===")
    supervisor = ShardSupervisor(shards=SHARDS, db=db_path, devices=("rtx4090",))
    for shard_id, pong in sorted(supervisor.ping().items()):
        print(f"shard {shard_id}: alive (pid {pong.pid})")

    # 2. Mixed families: the router spreads them by (fingerprint, device).
    print()
    print("=== routed serving ===")
    mix = [
        ServeRequest(kind="ntt", bits=128, size=SIZE),
        ServeRequest(kind="ntt", bits=256, size=SIZE),
        ServeRequest(kind="blas", bits=128, operation="vmul"),
        ServeRequest(kind="blas", bits=256, operation="vadd"),
    ]
    for request in mix:
        shard_id = supervisor.router.route(request)
        result = supervisor.serve(request)
        print(
            f"shard {shard_id} served {request.workload().key}: "
            f"{result.config.label()} ({'warm' if result.warm else 'cold'})"
        )

    # 3. Warm repeat: answered by the owning shard's resident table.
    result = supervisor.serve(mix[0])
    print(f"repeat of {mix[0].workload().key}: warm={result.warm}")

    # The classic frontends work against a supervisor unchanged.
    ntt = ServedNTT(supervisor, size=SIZE, bits=128)
    values = list(range(SIZE))
    assert ntt.inverse(ntt.forward(values)) == values
    print("ServedNTT round trip ok (butterfly crossed the wire pickled)")

    # 4. Cross-shard observability.
    print()
    print("=== cluster stats ===")
    print(supervisor.stats().report())

    # 5. Shutdown reconciles every replica into the primary database.
    print()
    print("=== reconcile on close ===")
    report = supervisor.close()
    print(report.report())
    print(f"primary now serves warmup for all shards: {len(TuningDatabase(db_path))} records")


if __name__ == "__main__":
    main()
