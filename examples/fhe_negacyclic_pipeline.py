"""FHE-style workload: 128-bit-residue negacyclic polynomial multiplication.

The paper argues that MoMA lets FHE schemes move from 64-bit RNS residues to
128-bit (or wider) residues, reducing the number of RNS channels and the
frequency of expensive maintenance operations.  This example builds that
comparison end to end for the ring ``Z_q[x]/(x^n + 1)`` used by RLWE-based
schemes:

* a negacyclic polynomial product with a 124-bit modulus where every
  butterfly is a MoMA-generated kernel, verified against the O(n^2)
  reference, and
* the same product carried out the classical way, with an RNS basis of
  word-sized channels (the GRNS/FHE-status-quo representation), showing how
  many channels and CRT reconstructions the RNS route needs.

Run with:  python examples/fhe_negacyclic_pipeline.py
"""

from __future__ import annotations

import random

from repro.core.driver import CompilerSession
from repro.kernels import KernelConfig
from repro.ntt import make_plan, negacyclic_convolution_reference, negacyclic_multiply
from repro.ntt.generated import GeneratedNTT
from repro.rns import from_rns, make_basis, rns_mul, to_rns

RING_DEGREE = 16
RESIDUE_BITS = 128


def main() -> None:
    config = KernelConfig(bits=RESIDUE_BITS)
    plan = make_plan(RING_DEGREE, config.effective_modulus_bits)
    q = plan.modulus
    print(f"RLWE ring: Z_q[x]/(x^{RING_DEGREE} + 1) with a {q.bit_length()}-bit q")

    rng = random.Random(7)
    a = [rng.randrange(q) for _ in range(RING_DEGREE)]
    b = [rng.randrange(q) for _ in range(RING_DEGREE)]

    # MoMA route: 128-bit residues handled directly by generated kernels,
    # compiled through one driver session.
    session = CompilerSession()
    transform = GeneratedNTT(RING_DEGREE, config, plan=plan, session=session)
    product = negacyclic_multiply(a, b, plan, transform._butterfly)
    assert product == negacyclic_convolution_reference(a, b, q)
    print("negacyclic product with generated 128-bit butterflies: OK")

    # Status-quo route: decompose the 128-bit residues into an RNS basis of
    # word-sized channels and reconstruct after every multiplication.
    basis = make_basis(2 * q.bit_length() + RING_DEGREE.bit_length())
    print(f"equivalent RNS representation needs {basis.channel_count} channels "
          f"of <= {max(m.bit_length() for m in basis.moduli)} bits")
    encoded_a = [to_rns(value, basis) for value in a]
    encoded_b = [to_rns(value, basis) for value in b]
    pointwise = [from_rns(rns_mul(x, y)) % q for x, y in zip(encoded_a, encoded_b)]
    assert pointwise == [(x * y) % q for x, y in zip(a, b)]
    print("RNS route reproduces the same point-wise products, at the cost of "
          f"{len(a)} CRT reconstructions per point-wise multiply")

    print()
    print("Take-away: with MoMA the 128-bit residue arithmetic runs natively as")
    print("machine-word code, so the RNS channel bookkeeping (and the modulus")
    print("raising/reduction the paper's introduction describes) disappears.")


if __name__ == "__main__":
    main()
