"""Setuptools entry point.

The pyproject.toml carries all metadata; this shim exists so that legacy
editable installs (``pip install -e .``) work on environments without the
``wheel`` package (PEP 660 editable wheels need it, ``setup.py develop``
does not).
"""

from setuptools import setup

setup()
