"""Recursive multi-word modular arithmetic (MoMA, Section 3.2 of the paper).

The paper defines MoMA recursively: an integer of bit-width ``T`` is treated
as a *double word* made of two abstract *single words* of width ``T/2``; the
double-word algorithms of Listings 2-4 express every operation in terms of
single-word operations, and the construction is applied again to the
single words until their width equals the machine word width.

:class:`MoMAContext` is the executable form of that recursion.  A context for
``total_bits`` delegates every primitive (wide addition, subtraction with
borrow, comparison, widening multiplication) to a child context of half the
width, bottoming out at :mod:`repro.arith.word` when the width reaches the
machine word.  Because only the leaf level touches native operations, the
number of machine-word operations performed by each method is exactly the
operation count of the corresponding MoMA-generated kernel, which is why the
context also keeps an :attr:`MoMAContext.op_counts` tally used by the GPU
cost model's ablation benchmarks.

The module also provides flat ``k``-limb helpers (``mw_add``, ``mw_sub``,
``mw_mul_schoolbook`` ...) that operate on big-endian limb tuples; these are
used by the RNS substrate, the Montgomery path and several tests.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.errors import ArithmeticDomainError
from repro.arith import word as word_ops
from repro.arith.barrett import BarrettParams
from repro.arith.limbs import int_to_limbs, limbs_to_int
from repro.arith.word import mask

__all__ = [
    "MoMAContext",
    "mw_add",
    "mw_sub",
    "mw_lt",
    "mw_eq",
    "mw_addmod",
    "mw_submod",
    "mw_mul_schoolbook",
    "mw_mulmod_barrett",
]


class MoMAContext:
    """Recursive multi-word modular arithmetic for one operand width.

    Args:
        total_bits: operand bit-width; must be ``word_bits * 2**k`` for some
            ``k >= 0`` (non-power-of-two widths are handled one level up, by
            zero-limb pruning in the code generator, and by zero-padding
            here).
        word_bits: machine word width (64 by default, as in the paper's GPU
            evaluation).
        multiplication: ``"schoolbook"`` (Equation 8) or ``"karatsuba"``
            (Equation 9) for the double-word multiplication at every level.
        count_ops: when true, every *machine word* operation executed at the
            leaf level is tallied in :attr:`op_counts`.
    """

    def __init__(
        self,
        total_bits: int,
        word_bits: int = 64,
        multiplication: str = "schoolbook",
        count_ops: bool = False,
    ) -> None:
        if multiplication not in ("schoolbook", "karatsuba"):
            raise ArithmeticDomainError(
                f"multiplication must be 'schoolbook' or 'karatsuba', got {multiplication!r}"
            )
        if total_bits < word_bits:
            raise ArithmeticDomainError(
                f"total_bits ({total_bits}) must be at least word_bits ({word_bits})"
            )
        ratio = total_bits // word_bits
        if total_bits != word_bits * ratio or ratio & (ratio - 1):
            raise ArithmeticDomainError(
                f"total_bits ({total_bits}) must be word_bits ({word_bits}) times a power of two"
            )
        self.total_bits = total_bits
        self.word_bits = word_bits
        self.multiplication = multiplication
        self.op_counts: Counter[str] = Counter()
        self._count_ops = count_ops
        self._mask = mask(total_bits)
        if total_bits == word_bits:
            self._child: MoMAContext | None = None
        else:
            self._child = MoMAContext(
                total_bits // 2, word_bits, multiplication, count_ops=False
            )
            # Share one counter across the whole recursion tree so leaf-level
            # tallies surface at the root.
            self._propagate_counter(self.op_counts, count_ops)

    def _propagate_counter(self, counter: Counter[str], enabled: bool) -> None:
        self.op_counts = counter
        self._count_ops = enabled
        if self._child is not None:
            self._child._propagate_counter(counter, enabled)

    def reset_op_counts(self) -> None:
        """Clear the machine-word operation tally."""
        self.op_counts.clear()

    @property
    def half_bits(self) -> int:
        """Bit-width of the abstract single word one recursion level down."""
        return self.total_bits // 2

    @property
    def num_words(self) -> int:
        """Number of machine words in one operand."""
        return self.total_bits // self.word_bits

    def _tally(self, name: str, amount: int = 1) -> None:
        if self._count_ops:
            self.op_counts[name] += amount

    def _check(self, value: int, name: str) -> int:
        if not isinstance(value, int) or value < 0 or value >> self.total_bits:
            raise ArithmeticDomainError(
                f"{name} must be a non-negative integer of at most "
                f"{self.total_bits} bits, got {value!r}"
            )
        return value

    def _split(self, value: int) -> tuple[int, int]:
        """Rule (19): split a value into (high, low) abstract single words."""
        return value >> self.half_bits, value & mask(self.half_bits)

    def _join(self, hi: int, lo: int) -> int:
        return (hi << self.half_bits) | lo

    # ------------------------------------------------------------------
    # Non-modular primitives (rules 22, 23, 25, 26, 27, 28, 29).
    # ------------------------------------------------------------------

    def add_wide(self, a: int, b: int) -> tuple[int, int]:
        """Return ``(carry, sum)`` with ``a + b = carry * 2**total_bits + sum``."""
        return self.add_with_carry(a, b, 0)

    def add_with_carry(self, a: int, b: int, carry_in: int) -> tuple[int, int]:
        """Addition with incoming carry, decomposed per rules (22)/(23)."""
        self._check(a, "a")
        self._check(b, "b")
        if self._child is None:
            self._tally("add")
            return word_ops.add_with_carry(a, b, carry_in, self.word_bits)
        a_hi, a_lo = self._split(a)
        b_hi, b_lo = self._split(b)
        carry_lo, sum_lo = self._child.add_with_carry(a_lo, b_lo, carry_in)
        carry_out, sum_hi = self._child.add_with_carry(a_hi, b_hi, carry_lo)
        return carry_out, self._join(sum_hi, sum_lo)

    def sub_with_borrow(self, a: int, b: int, borrow_in: int) -> tuple[int, int]:
        """Subtraction with incoming borrow, decomposed per rule (25)."""
        self._check(a, "a")
        self._check(b, "b")
        if self._child is None:
            self._tally("sub")
            return word_ops.sub_with_borrow(a, b, borrow_in, self.word_bits)
        a_hi, a_lo = self._split(a)
        b_hi, b_lo = self._split(b)
        borrow_lo, diff_lo = self._child.sub_with_borrow(a_lo, b_lo, borrow_in)
        borrow_out, diff_hi = self._child.sub_with_borrow(a_hi, b_hi, borrow_lo)
        return borrow_out, self._join(diff_hi, diff_lo)

    def sub_wrap(self, a: int, b: int) -> int:
        """Wrap-around subtraction ``(a - b) mod 2**total_bits``."""
        return self.sub_with_borrow(a, b, 0)[1]

    def lt(self, a: int, b: int) -> int:
        """Comparison ``a < b`` decomposed per rule (26)."""
        self._check(a, "a")
        self._check(b, "b")
        if self._child is None:
            self._tally("cmp")
            return word_ops.lt(a, b)
        a_hi, a_lo = self._split(a)
        b_hi, b_lo = self._split(b)
        high_less = self._child.lt(a_hi, b_hi)
        high_equal = self._child.eq(a_hi, b_hi)
        low_less = self._child.lt(a_lo, b_lo)
        return 1 if (high_less or (high_equal and low_less)) else 0

    def eq(self, a: int, b: int) -> int:
        """Equality decomposed per rule (27)."""
        self._check(a, "a")
        self._check(b, "b")
        if self._child is None:
            self._tally("cmp")
            return word_ops.eq(a, b)
        a_hi, a_lo = self._split(a)
        b_hi, b_lo = self._split(b)
        return 1 if (self._child.eq(a_hi, b_hi) and self._child.eq(a_lo, b_lo)) else 0

    def mul_wide(self, a: int, b: int) -> tuple[int, int]:
        """Widening multiplication ``(hi, lo)`` decomposed per rule (28) or Eq. 9."""
        self._check(a, "a")
        self._check(b, "b")
        if self._child is None:
            self._tally("mul")
            return word_ops.mul_wide(a, b, self.word_bits)
        if self.multiplication == "karatsuba":
            return self._mul_wide_karatsuba(a, b)
        return self._mul_wide_schoolbook(a, b)

    def _mul_wide_schoolbook(self, a: int, b: int) -> tuple[int, int]:
        child = self._child
        assert child is not None
        a_hi, a_lo = self._split(a)
        b_hi, b_lo = self._split(b)
        lo_lo = child.mul_wide(a_lo, b_lo)
        hi_hi = child.mul_wide(a_hi, b_hi)
        hi_lo = child.mul_wide(a_hi, b_lo)
        lo_hi = child.mul_wide(a_lo, b_hi)
        # cross = a_hi*b_lo + a_lo*b_hi, at most total_bits + 1 bits.
        cross_carry, cross = self.add_wide(
            self._join(*hi_lo), self._join(*lo_hi)
        )
        # result = hi_hi * 2**total + cross * 2**half + lo_lo, assembled with
        # a carry chain over half-width limbs (rule 29).
        base = (hi_hi[0], hi_hi[1], lo_lo[0], lo_lo[1])
        cross_hi, cross_lo = self._split(cross)
        addend = (cross_carry, cross_hi, cross_lo, 0)
        limbs = []
        carry = 0
        for index in (3, 2, 1, 0):
            carry, limb = child.add_with_carry(base[index], addend[index], carry)
            limbs.append(limb)
        limbs.reverse()
        return self._join(limbs[0], limbs[1]), self._join(limbs[2], limbs[3])

    def _mul_wide_karatsuba(self, a: int, b: int) -> tuple[int, int]:
        child = self._child
        assert child is not None
        half = self.half_bits
        a_hi, a_lo = self._split(a)
        b_hi, b_lo = self._split(b)
        # Three recursive multiplications (Equation 9) ...
        lo_lo = child.mul_wide(a_lo, b_lo)
        hi_hi = child.mul_wide(a_hi, b_hi)
        carry_a, sum_a = child.add_wide(a_hi, a_lo)
        carry_b, sum_b = child.add_wide(b_hi, b_lo)
        partial = child.mul_wide(sum_a, sum_b)
        # ... plus carry corrections implemented with selects, as the
        # generated code does (the carries are single bits, so the "extra"
        # products are selects rather than multiplications).
        correction_b = sum_b if carry_a else 0
        correction_a = sum_a if carry_b else 0
        self._tally("select", 2 * (half // self.word_bits if half >= self.word_bits else 1))
        # cross = partial + (correction_a + correction_b) << half + (ca & cb) << 2*half
        carry_corr, corr = child.add_wide(correction_a, correction_b)
        carry_mid, cross_mid = child.add_wide(partial[0], corr)
        cross_top = (carry_a & carry_b) + carry_corr + carry_mid
        self._tally("add", 2)
        cross = (cross_top, cross_mid, partial[1])  # three half-width limbs
        # middle = cross - hi_hi - lo_lo, computed with borrow chains.
        middle = self._sub3(cross, hi_hi, child)
        middle = self._sub3(middle, lo_lo, child)
        # result = hi_hi << total + middle << half + lo_lo, assembled with a
        # four-limb carry chain (rule 29).
        base = (hi_hi[0], hi_hi[1], lo_lo[0], lo_lo[1])
        addend = (middle[0], middle[1], middle[2], 0)
        limbs = []
        carry = 0
        for index in (3, 2, 1, 0):
            carry, limb = child.add_with_carry(base[index], addend[index], carry)
            limbs.append(limb)
        limbs.reverse()
        return self._join(limbs[0], limbs[1]), self._join(limbs[2], limbs[3])

    @staticmethod
    def _sub3(
        value: tuple[int, int, int], subtrahend: tuple[int, int], child: "MoMAContext"
    ) -> tuple[int, int, int]:
        """Subtract a two-limb value from a three-limb value (borrow chain)."""
        borrow, low = child.sub_with_borrow(value[2], subtrahend[1], 0)
        borrow, mid = child.sub_with_borrow(value[1], subtrahend[0], borrow)
        return value[0] - borrow, mid, low

    # ------------------------------------------------------------------
    # Modular operations (rules 24 and the Barrett decomposition).
    # ------------------------------------------------------------------

    def addmod(self, a: int, b: int, q: int) -> int:
        """Modular addition of reduced operands (Equation 2 / rule 24)."""
        self._check_reduced(a, b, q)
        carry, total = self.add_wide(a, b)
        exceeds = 1 if (carry or not self.lt(total, q)) else 0
        reduced = self.sub_wrap(total, q)
        return reduced if exceeds else total

    def submod(self, a: int, b: int, q: int) -> int:
        """Modular subtraction of reduced operands (Equation 3)."""
        self._check_reduced(a, b, q)
        diff = self.sub_wrap(a, b)
        wrapped = self.add_wide(diff, q)[1]
        return wrapped if self.lt(a, b) else diff

    def mulmod(self, a: int, b: int, q: int, mu: int | None = None) -> int:
        """Barrett modular multiplication of reduced operands (Listing 4).

        The modulus must have exactly ``total_bits - 4`` bits (the paper's
        ``MBITS`` convention); ``mu`` may be supplied to avoid recomputing
        ``floor(2**(2*MBITS + 3) / q)`` on every call.
        """
        self._check_reduced(a, b, q)
        params = self.barrett_params(q, mu)
        modulus_bits = params.modulus_bits

        product_hi, product_lo = self.mul_wide(a, b)
        product = (product_hi << self.total_bits) | product_lo
        # Shift right by MBITS - 2; always within [half, total] bits so it is
        # the _qshr of Listing 4.
        estimate = product >> (modulus_bits - 2)
        estimate_hi, estimate_lo = self.mul_wide(estimate, params.mu)
        estimate_product = (estimate_hi << self.total_bits) | estimate_lo
        quotient = estimate_product >> (modulus_bits + 5)
        # Only the low double word of quotient*q is needed (Listing 4).
        quotient_q_lo = self.mul_wide(quotient, q)[1]
        remainder = self.sub_wrap(product_lo, quotient_q_lo)
        corrected = self.sub_wrap(remainder, q)
        return corrected if not self.lt(remainder, q) else remainder

    def barrett_params(self, q: int, mu: int | None = None) -> BarrettParams:
        """Barrett parameters for this context's modulus-width convention."""
        modulus_bits = self.total_bits - 4
        if q.bit_length() != modulus_bits:
            raise ArithmeticDomainError(
                f"MoMA at {self.total_bits} bits expects a modulus of exactly "
                f"{modulus_bits} bits, got {q.bit_length()} bits"
            )
        if mu is not None:
            return BarrettParams(
                modulus=q, modulus_bits=modulus_bits, mu=mu, word_bits=self.total_bits
            )
        return BarrettParams.create(q, self.total_bits, modulus_bits)

    def _check_reduced(self, a: int, b: int, q: int) -> None:
        self._check(a, "a")
        self._check(b, "b")
        self._check(q, "q")
        if q == 0:
            raise ArithmeticDomainError("modulus must be non-zero")
        if a >= q or b >= q:
            raise ArithmeticDomainError(
                "modular operations expect operands reduced modulo q"
            )


# ----------------------------------------------------------------------
# Flat k-limb helpers (big-endian limb tuples).
# ----------------------------------------------------------------------


def _check_same_length(a: Sequence[int], b: Sequence[int]) -> None:
    if len(a) != len(b):
        raise ArithmeticDomainError(
            f"operands must have the same number of limbs, got {len(a)} and {len(b)}"
        )


def mw_add(a: Sequence[int], b: Sequence[int], word_bits: int) -> tuple[int, ...]:
    """Add two k-limb numbers, returning k+1 limbs (carry limb first)."""
    _check_same_length(a, b)
    word_mask = mask(word_bits)
    result = []
    carry = 0
    for limb_a, limb_b in zip(reversed(a), reversed(b)):
        total = limb_a + limb_b + carry
        result.append(total & word_mask)
        carry = total >> word_bits
    result.append(carry)
    result.reverse()
    return tuple(result)


def mw_sub(a: Sequence[int], b: Sequence[int], word_bits: int) -> tuple[int, tuple[int, ...]]:
    """Subtract two k-limb numbers, returning ``(borrow, k limbs)`` (wrap-around)."""
    _check_same_length(a, b)
    word_mask = mask(word_bits)
    result = []
    borrow = 0
    for limb_a, limb_b in zip(reversed(a), reversed(b)):
        total = limb_a - limb_b - borrow
        borrow = 1 if total < 0 else 0
        result.append(total & word_mask)
    result.reverse()
    return borrow, tuple(result)


def mw_lt(a: Sequence[int], b: Sequence[int]) -> int:
    """Numeric ``a < b`` on equal-length big-endian limb tuples."""
    _check_same_length(a, b)
    for limb_a, limb_b in zip(a, b):
        if limb_a != limb_b:
            return 1 if limb_a < limb_b else 0
    return 0


def mw_eq(a: Sequence[int], b: Sequence[int]) -> int:
    """Numeric equality on equal-length big-endian limb tuples."""
    _check_same_length(a, b)
    return 1 if tuple(a) == tuple(b) else 0


def mw_addmod(
    a: Sequence[int], b: Sequence[int], q: Sequence[int], word_bits: int
) -> tuple[int, ...]:
    """Modular addition on k-limb operands reduced modulo ``q``."""
    total = mw_add(a, b, word_bits)
    carry, low = total[0], total[1:]
    if carry or not mw_lt(low, tuple(q)):
        return mw_sub(low, tuple(q), word_bits)[1]
    return low


def mw_submod(
    a: Sequence[int], b: Sequence[int], q: Sequence[int], word_bits: int
) -> tuple[int, ...]:
    """Modular subtraction on k-limb operands reduced modulo ``q``."""
    borrow, diff = mw_sub(a, b, word_bits)
    if borrow:
        return mw_add(diff, tuple(q), word_bits)[1:]
    return diff


def mw_mul_schoolbook(
    a: Sequence[int], b: Sequence[int], word_bits: int
) -> tuple[int, ...]:
    """Schoolbook multiplication of two k-limb numbers, returning 2k limbs."""
    _check_same_length(a, b)
    k = len(a)
    word_mask = mask(word_bits)
    a_le = list(reversed(a))
    b_le = list(reversed(b))
    acc = [0] * (2 * k)
    for i in range(k):
        carry = 0
        for j in range(k):
            total = acc[i + j] + a_le[i] * b_le[j] + carry
            acc[i + j] = total & word_mask
            carry = total >> word_bits
        acc[i + k] += carry
    # Normalise any residual carries.
    carry = 0
    for index in range(2 * k):
        total = acc[index] + carry
        acc[index] = total & word_mask
        carry = total >> word_bits
    acc.reverse()
    return tuple(acc)


def mw_mulmod_barrett(
    a: Sequence[int],
    b: Sequence[int],
    params: BarrettParams,
    word_bits: int,
) -> tuple[int, ...]:
    """Barrett modular multiplication on k-limb operands.

    The limb count is derived from ``params.word_bits`` (the operand width of
    the Barrett configuration); the heavy lifting reuses the schoolbook limb
    multiplication above so that the only "wide" operations are shifts, as in
    the generated kernels.
    """
    k = params.word_bits // word_bits
    if len(a) != k or len(b) != k:
        raise ArithmeticDomainError(
            f"operands must have {k} limbs for a {params.word_bits}-bit Barrett "
            f"configuration, got {len(a)} and {len(b)}"
        )
    product_limbs = mw_mul_schoolbook(a, b, word_bits)
    product = limbs_to_int(product_limbs, word_bits)
    estimate = (product >> params.pre_shift) * params.mu >> params.post_shift
    remainder = product - estimate * params.modulus
    if remainder >= params.modulus:
        remainder -= params.modulus
    return int_to_limbs(remainder, word_bits, k)
