"""Limb-level Karatsuba multiplication for arbitrary limb counts.

Equation 9 of the paper gives Karatsuba for the two-limb (double-word) case;
this module generalises it to ``k``-limb operands by recursive splitting, so
the sensitivity analysis of Figure 5b (schoolbook vs Karatsuba) can be
extended beyond a single recursion level and so the flat multi-word helpers
have a sub-quadratic alternative for very wide operands.

Operands and results use the big-endian limb convention of
:mod:`repro.arith.limbs`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ArithmeticDomainError
from repro.arith.limbs import int_to_limbs, limbs_to_int
from repro.arith.word import mask

__all__ = ["karatsuba_mul_limbs", "karatsuba_threshold_mul"]

#: Below this limb count Karatsuba's extra additions cost more than the saved
#: multiplication; the paper observes the same effect at 768-bit operands
#: (Figure 5b), where schoolbook wins again.
DEFAULT_THRESHOLD_LIMBS = 2


def karatsuba_mul_limbs(
    a: Sequence[int], b: Sequence[int], word_bits: int
) -> tuple[int, ...]:
    """Multiply two equal-length limb sequences with pure Karatsuba recursion.

    Returns ``2*k`` limbs.  The recursion bottoms out at single limbs, where a
    native widening multiplication is used.
    """
    if len(a) != len(b):
        raise ArithmeticDomainError(
            f"operands must have the same number of limbs, got {len(a)} and {len(b)}"
        )
    if len(a) == 0:
        raise ArithmeticDomainError("operands must have at least one limb")
    k = len(a)
    value = _karatsuba_int(
        limbs_to_int(a, word_bits), limbs_to_int(b, word_bits), k * word_bits, word_bits, 1
    )
    return int_to_limbs(value, word_bits, 2 * k)


def karatsuba_threshold_mul(
    a: Sequence[int],
    b: Sequence[int],
    word_bits: int,
    threshold_limbs: int = DEFAULT_THRESHOLD_LIMBS,
) -> tuple[int, ...]:
    """Karatsuba with a schoolbook cutoff below ``threshold_limbs`` limbs.

    This mirrors the practical choice a code generator makes: the user (or an
    autotuner) selects the algorithm per level, as in Figure 5b.
    """
    if threshold_limbs < 1:
        raise ArithmeticDomainError(
            f"threshold_limbs must be at least 1, got {threshold_limbs}"
        )
    if len(a) != len(b):
        raise ArithmeticDomainError(
            f"operands must have the same number of limbs, got {len(a)} and {len(b)}"
        )
    k = len(a)
    value = _karatsuba_int(
        limbs_to_int(a, word_bits),
        limbs_to_int(b, word_bits),
        k * word_bits,
        word_bits,
        threshold_limbs,
    )
    return int_to_limbs(value, word_bits, 2 * k)


def _karatsuba_int(a: int, b: int, bits: int, word_bits: int, threshold_limbs: int) -> int:
    """Recursive Karatsuba on integers of ``bits`` bits; returns the exact product."""
    limbs = max(1, bits // word_bits)
    if limbs <= threshold_limbs or bits <= word_bits:
        return a * b
    half = (bits + 1) // 2
    # Round the split to a limb boundary so sub-operands stay limb-aligned.
    half = ((half + word_bits - 1) // word_bits) * word_bits
    half_mask = mask(half)
    a_hi, a_lo = a >> half, a & half_mask
    b_hi, b_lo = b >> half, b & half_mask
    low = _karatsuba_int(a_lo, b_lo, half, word_bits, threshold_limbs)
    high = _karatsuba_int(a_hi, b_hi, bits - half, word_bits, threshold_limbs)
    # The half-sums may carry one bit past `half`; peel the carries off so the
    # recursive multiplication stays at `half` bits (otherwise the recursion
    # would not shrink for two-limb operands).
    sum_a = a_lo + a_hi
    sum_b = b_lo + b_hi
    carry_a, sum_a_lo = sum_a >> half, sum_a & half_mask
    carry_b, sum_b_lo = sum_b >> half, sum_b & half_mask
    cross = _karatsuba_int(sum_a_lo, sum_b_lo, half, word_bits, threshold_limbs)
    if carry_a:
        cross += sum_b_lo << half
    if carry_b:
        cross += sum_a_lo << half
    if carry_a and carry_b:
        cross += 1 << (2 * half)
    middle = cross - low - high
    return (high << (2 * half)) + (middle << half) + low
