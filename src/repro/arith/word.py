"""Machine-word primitives.

These functions model the behaviour of fixed-width unsigned machine words
(``uint32_t``/``uint64_t`` in the paper's CUDA listings) on top of Python's
arbitrary-precision integers.  They are the executable semantics of the
instructions that MoMA-generated code ultimately runs: addition with carry,
subtraction with borrow, widening multiplication, shifts and comparisons.

All functions are parameterised by the word width ``width`` (in bits) so the
same primitives serve both the final machine word (64 bits in the paper's
evaluation) and the *abstract* single words that appear at intermediate
recursion levels of MoMA (128, 256, ... bits).

Conventions
-----------
* Words are plain Python ``int`` values in ``[0, 2**width)``.
* Functions that produce a carry or borrow return it as a separate ``int``
  equal to ``0`` or ``1``.
* Widening operations return ``(hi, lo)`` pairs, most-significant first,
  matching the paper's big-endian limb convention ``[x0, x1]`` where ``x0``
  is the high word.
"""

from __future__ import annotations

from repro.errors import ArithmeticDomainError

__all__ = [
    "mask",
    "check_word",
    "add_wide",
    "add_with_carry",
    "sub_with_borrow",
    "mul_wide",
    "mul_lo",
    "mul_hi",
    "shr",
    "shl",
    "lt",
    "le",
    "eq",
    "select",
    "bit_or",
    "bit_and",
    "bit_xor",
    "bit_not",
]


def mask(width: int) -> int:
    """Return the bit mask ``2**width - 1`` for a word of ``width`` bits."""
    if width <= 0:
        raise ArithmeticDomainError(f"word width must be positive, got {width}")
    return (1 << width) - 1


def check_word(value: int, width: int, name: str = "value") -> int:
    """Validate that ``value`` fits in ``width`` bits and return it.

    Raises :class:`ArithmeticDomainError` for negative values or values that
    do not fit, so domain bugs surface at the boundary rather than as silent
    wrap-around deep inside a kernel.
    """
    if not isinstance(value, int):
        raise ArithmeticDomainError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ArithmeticDomainError(f"{name} must be non-negative, got {value}")
    if value >> width:
        raise ArithmeticDomainError(
            f"{name}={value:#x} does not fit in a {width}-bit word"
        )
    return value


def add_wide(a: int, b: int, width: int) -> tuple[int, int]:
    """Full-width addition: return ``(carry, lo)`` with ``a + b = carry*2**width + lo``.

    This is the paper's ``_sadd`` (Listing 1): the result of a single-word
    addition is stored in a double-word, here represented as the pair.
    """
    total = a + b
    return total >> width, total & mask(width)


def add_with_carry(a: int, b: int, carry_in: int, width: int) -> tuple[int, int]:
    """Addition with incoming carry: ``(carry_out, lo)`` of ``a + b + carry_in``."""
    total = a + b + carry_in
    return total >> width, total & mask(width)


def sub_with_borrow(a: int, b: int, borrow_in: int, width: int) -> tuple[int, int]:
    """Subtraction with borrow: return ``(borrow_out, diff)``.

    ``diff`` is ``a - b - borrow_in`` wrapped modulo ``2**width`` and
    ``borrow_out`` is ``1`` when the true difference is negative.
    """
    total = a - b - borrow_in
    borrow_out = 1 if total < 0 else 0
    return borrow_out, total & mask(width)


def mul_wide(a: int, b: int, width: int) -> tuple[int, int]:
    """Widening multiplication: ``(hi, lo)`` with ``a*b = hi*2**width + lo``.

    Models ``_smul`` in Listing 1 (``uint64_t * uint64_t -> __int128``).
    """
    product = a * b
    return product >> width, product & mask(width)


def mul_lo(a: int, b: int, width: int) -> int:
    """Low half of the product, i.e. multiplication with wrap-around."""
    return (a * b) & mask(width)


def mul_hi(a: int, b: int, width: int) -> int:
    """High half of the widening product."""
    return (a * b) >> width


def shr(a: int, amount: int, width: int) -> int:
    """Logical right shift within a ``width``-bit word.

    Shift amounts of ``width`` or more yield ``0`` (unlike C, where such
    shifts are undefined behaviour); the code generators never emit them.
    """
    if amount < 0:
        raise ArithmeticDomainError(f"shift amount must be non-negative, got {amount}")
    if amount >= width:
        return 0
    return (a >> amount) & mask(width)


def shl(a: int, amount: int, width: int) -> int:
    """Logical left shift within a ``width``-bit word (high bits discarded)."""
    if amount < 0:
        raise ArithmeticDomainError(f"shift amount must be non-negative, got {amount}")
    if amount >= width:
        return 0
    return (a << amount) & mask(width)


def lt(a: int, b: int) -> int:
    """Comparison ``a < b`` as an integer flag (1 true, 0 false)."""
    return 1 if a < b else 0


def le(a: int, b: int) -> int:
    """Comparison ``a <= b`` as an integer flag (1 true, 0 false)."""
    return 1 if a <= b else 0


def eq(a: int, b: int) -> int:
    """Comparison ``a == b`` as an integer flag (1 true, 0 false)."""
    return 1 if a == b else 0


def select(cond: int, if_true: int, if_false: int) -> int:
    """Conditional select, the ternary ``cond ? if_true : if_false``."""
    return if_true if cond else if_false


def bit_or(a: int, b: int, width: int) -> int:
    """Bitwise OR within a ``width``-bit word."""
    return (a | b) & mask(width)


def bit_and(a: int, b: int, width: int) -> int:
    """Bitwise AND within a ``width``-bit word."""
    return (a & b) & mask(width)


def bit_xor(a: int, b: int, width: int) -> int:
    """Bitwise XOR within a ``width``-bit word."""
    return (a ^ b) & mask(width)


def bit_not(a: int, width: int) -> int:
    """Bitwise complement within a ``width``-bit word."""
    return (~a) & mask(width)
