"""Executable multi-word modular arithmetic (MoMA reference semantics).

This package is the runnable counterpart of the paper's Section 3: machine
word primitives (:mod:`repro.arith.word`), single-word modular arithmetic
(Listing 1, :mod:`repro.arith.singleword`), double-word modular arithmetic
(Listings 2-4, :mod:`repro.arith.doubleword`), the recursive multi-word
construction (:mod:`repro.arith.multiword`), and the Barrett / Montgomery
reduction machinery.  It serves three roles:

1. a standalone large-integer modular arithmetic library,
2. the oracle against which MoMA-generated kernels are verified, and
3. the operation-count source for the GPU cost model's ablations.
"""

from repro.arith.barrett import BarrettParams, barrett_mulmod, barrett_reduce
from repro.arith.limbs import int_to_limbs, limbs_to_int
from repro.arith.montgomery import MontgomeryParams
from repro.arith.multiword import MoMAContext

__all__ = [
    "BarrettParams",
    "barrett_mulmod",
    "barrett_reduce",
    "int_to_limbs",
    "limbs_to_int",
    "MontgomeryParams",
    "MoMAContext",
]
