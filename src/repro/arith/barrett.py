"""Barrett reduction parameters and reference reduction.

The paper (Section 3.1, Listing 1) replaces the division in
``c = a*b - floor(a*b/q)*q`` with multiplications and shifts using a
precomputed constant ``mu``.  With the modulus bit-width ``m`` (``MBITS``),
the generated code computes::

    t  = a * b                      # < 2**(2m)
    r  = t >> (m - 2)
    r  = r * mu                     # mu = floor(2**(2m + 3) / q)
    r  = r >> (m + 5)               # r  ~= floor(a*b / q), error <= 1
    t  = t - r * q
    c  = t - q  if t >= q else t    # single conditional correction

The paper restricts the modulus to ``m <= k - 4`` bits where ``k`` is the
word bit-width (e.g. 60-bit moduli for 64-bit words, 124-bit moduli for
128-bit double words) so that ``mu`` fits in one ``k``-bit word and the
intermediate ``r * mu`` fits in a double word.

This module provides the parameter computation and a reference reduction
that the generated kernels are tested against.  One deliberate deviation
from Listing 1: the final correction uses ``t >= q`` (canonical residues in
``[0, q)``) rather than the listing's ``t > q``, and this convention is used
consistently by the rewrite rules, the code generators and the reference
arithmetic, so generated code and oracle always agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArithmeticDomainError

__all__ = ["BarrettParams", "barrett_reduce", "barrett_mulmod", "max_modulus_bits"]

#: Extra headroom (in bits) the paper reserves between the modulus bit-width
#: and the word bit-width so that ``mu`` fits in a single word.
MODULUS_HEADROOM_BITS = 4

#: Shift applied before multiplying by ``mu`` (Listing 1: ``MBITS - 2``).
PRE_SHIFT_SLACK = 2

#: Shift applied after multiplying by ``mu`` (Listing 1: ``MBITS + 5``).
POST_SHIFT_SLACK = 5


def max_modulus_bits(word_bits: int) -> int:
    """Largest modulus bit-width supported for a given word bit-width.

    Follows the paper's ``k - 4`` rule (e.g. 60 bits for 64-bit words,
    124 bits for 128-bit operands, 252 bits for 256-bit operands).
    """
    if word_bits <= MODULUS_HEADROOM_BITS:
        raise ArithmeticDomainError(
            f"word width {word_bits} too small for Barrett reduction"
        )
    return word_bits - MODULUS_HEADROOM_BITS


@dataclass(frozen=True)
class BarrettParams:
    """Precomputed Barrett constants for a modulus.

    Attributes:
        modulus: the odd (or at least non-trivial) modulus ``q``.
        modulus_bits: ``MBITS`` — the bit-width budget of the modulus; the
            shifts in the reduction are derived from this, not from
            ``q.bit_length()``, so several moduli of the same class share
            identical generated code.
        mu: ``floor(2**(2*modulus_bits + 3) / q)``.
        word_bits: the word width the reduction is meant to run on
            (``modulus_bits + 4`` in the paper's configuration).
    """

    modulus: int
    modulus_bits: int
    mu: int
    word_bits: int

    @classmethod
    def create(cls, modulus: int, word_bits: int, modulus_bits: int | None = None) -> "BarrettParams":
        """Compute Barrett parameters for ``modulus`` on ``word_bits``-bit words.

        ``modulus_bits`` defaults to ``word_bits - 4`` (the paper's choice);
        the modulus must fit in that many bits.
        """
        if modulus < 3:
            raise ArithmeticDomainError(f"modulus must be >= 3, got {modulus}")
        if modulus_bits is None:
            modulus_bits = max_modulus_bits(word_bits)
        if modulus.bit_length() != modulus_bits:
            raise ArithmeticDomainError(
                f"modulus has {modulus.bit_length()} bits; the Barrett variant of "
                f"Listing 1 requires a modulus of exactly {modulus_bits} bits "
                f"(top bit set) so that a single conditional correction suffices"
            )
        mu = (1 << (2 * modulus_bits + 3)) // modulus
        if mu.bit_length() > word_bits:
            raise ArithmeticDomainError(
                f"Barrett constant mu needs {mu.bit_length()} bits which does "
                f"not fit in a {word_bits}-bit word"
            )
        return cls(modulus=modulus, modulus_bits=modulus_bits, mu=mu, word_bits=word_bits)

    @property
    def pre_shift(self) -> int:
        """Right-shift amount applied to ``a*b`` before multiplying by mu."""
        return self.modulus_bits - PRE_SHIFT_SLACK

    @property
    def post_shift(self) -> int:
        """Right-shift amount applied after multiplying by mu."""
        return self.modulus_bits + POST_SHIFT_SLACK


def barrett_reduce(product: int, params: BarrettParams) -> int:
    """Reduce ``product`` (``< q**2``) modulo ``q`` using the paper's recipe.

    Performs exactly the shift/multiply/shift/subtract sequence of Listing 1
    followed by a single conditional subtraction, and verifies that the
    approximation error was indeed at most one (raising otherwise, since a
    larger error would mean the generated kernels are wrong too).
    """
    q = params.modulus
    if product < 0:
        raise ArithmeticDomainError(f"product must be non-negative, got {product}")
    if product >= q * q:
        raise ArithmeticDomainError(
            "Barrett reduction expects a product of two reduced operands "
            f"(product < q**2); got product with {product.bit_length()} bits"
        )
    quotient_estimate = ((product >> params.pre_shift) * params.mu) >> params.post_shift
    remainder = product - quotient_estimate * q
    if remainder >= q:
        remainder -= q
    if not 0 <= remainder < q:
        raise ArithmeticDomainError(
            "Barrett approximation error exceeded one conditional subtraction; "
            f"modulus {q:#x} violates the headroom requirements"
        )
    return remainder


def barrett_mulmod(a: int, b: int, params: BarrettParams) -> int:
    """Modular multiplication ``a*b mod q`` of two reduced operands."""
    q = params.modulus
    if not 0 <= a < q or not 0 <= b < q:
        raise ArithmeticDomainError("barrett_mulmod expects operands reduced mod q")
    return barrett_reduce(a * b, params)
