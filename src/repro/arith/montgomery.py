"""Montgomery modular multiplication.

The paper's evaluation uses Barrett reduction with a modulus four bits
narrower than the word size, but notes (Section 5.2) that the SPIRAL/MoMA
infrastructure "also supports a modulus of full bit-width, employing
Montgomery multiplication".  This module provides that alternative path:
word-oriented (CIOS-style) Montgomery multiplication over the same
big-endian limb convention used by the rest of :mod:`repro.arith`, plus the
whole-integer reference used as an oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArithmeticDomainError
from repro.arith.limbs import int_to_limbs, limbs_to_int
from repro.arith.word import mask

__all__ = ["MontgomeryParams", "montgomery_mulmod_limbs"]


@dataclass(frozen=True)
class MontgomeryParams:
    """Precomputed Montgomery constants for an odd modulus.

    Attributes:
        modulus: the odd modulus ``q``.
        word_bits: machine word width used by the limb-level algorithm.
        num_limbs: number of limbs in the Montgomery representation.
        r_bits: ``word_bits * num_limbs``; ``R = 2**r_bits``.
        n_prime: ``-q^{-1} mod 2**word_bits`` (per-word Montgomery constant).
        r2: ``R**2 mod q``, used to convert into Montgomery form.
    """

    modulus: int
    word_bits: int
    num_limbs: int
    r_bits: int
    n_prime: int
    r2: int

    @classmethod
    def create(cls, modulus: int, word_bits: int, num_limbs: int | None = None) -> "MontgomeryParams":
        """Compute Montgomery parameters for ``modulus`` on ``word_bits``-bit words."""
        if modulus < 3 or modulus % 2 == 0:
            raise ArithmeticDomainError(
                f"Montgomery multiplication requires an odd modulus >= 3, got {modulus}"
            )
        if num_limbs is None:
            num_limbs = max(1, -(-modulus.bit_length() // word_bits))
        if modulus.bit_length() > num_limbs * word_bits:
            raise ArithmeticDomainError(
                f"modulus with {modulus.bit_length()} bits does not fit in "
                f"{num_limbs} limbs of {word_bits} bits"
            )
        r_bits = word_bits * num_limbs
        base = 1 << word_bits
        n_prime = (-pow(modulus, -1, base)) % base
        r2 = pow(1 << r_bits, 2, modulus)
        return cls(
            modulus=modulus,
            word_bits=word_bits,
            num_limbs=num_limbs,
            r_bits=r_bits,
            n_prime=n_prime,
            r2=r2,
        )

    @property
    def r(self) -> int:
        """The Montgomery radix ``R = 2**r_bits``."""
        return 1 << self.r_bits

    def to_montgomery(self, value: int) -> int:
        """Map ``value`` into Montgomery form ``value * R mod q``."""
        if not 0 <= value < self.modulus:
            raise ArithmeticDomainError("value must be reduced modulo q")
        return (value << self.r_bits) % self.modulus

    def from_montgomery(self, value: int) -> int:
        """Map a Montgomery-form value back to the standard representation."""
        if not 0 <= value < self.modulus:
            raise ArithmeticDomainError("value must be reduced modulo q")
        return (value * pow(self.r, -1, self.modulus)) % self.modulus

    def montgomery_reduce(self, product: int) -> int:
        """Whole-integer Montgomery reduction (REDC) of ``product < q*R``."""
        if not 0 <= product < self.modulus * self.r:
            raise ArithmeticDomainError("product out of range for REDC")
        r_mask = self.r - 1
        n_prime_full = (-pow(self.modulus, -1, self.r)) % self.r
        m = ((product & r_mask) * n_prime_full) & r_mask
        t = (product + m * self.modulus) >> self.r_bits
        if t >= self.modulus:
            t -= self.modulus
        return t

    def mulmod(self, a_mont: int, b_mont: int) -> int:
        """Multiply two Montgomery-form operands, result in Montgomery form."""
        if not 0 <= a_mont < self.modulus or not 0 <= b_mont < self.modulus:
            raise ArithmeticDomainError("operands must be reduced modulo q")
        return self.montgomery_reduce(a_mont * b_mont)


def montgomery_mulmod_limbs(
    a_limbs: tuple[int, ...], b_limbs: tuple[int, ...], params: MontgomeryParams
) -> tuple[int, ...]:
    """CIOS (coarsely integrated operand scanning) Montgomery multiplication.

    Operands and result are in Montgomery form, given as big-endian limb
    tuples of ``params.num_limbs`` limbs of ``params.word_bits`` bits.  This
    is the word-level algorithm that a Montgomery-based MoMA backend would
    emit; it only ever manipulates single words and double-word carries.
    """
    n = params.num_limbs
    w = params.word_bits
    word_mask = mask(w)
    if len(a_limbs) != n or len(b_limbs) != n:
        raise ArithmeticDomainError(
            f"operands must have exactly {n} limbs, got {len(a_limbs)} and {len(b_limbs)}"
        )
    # CIOS works little-endian internally; flip the big-endian inputs.
    a = list(reversed(a_limbs))
    b = list(reversed(b_limbs))
    q = list(reversed(int_to_limbs(params.modulus, w, n)))

    t = [0] * (n + 2)
    for i in range(n):
        carry = 0
        for j in range(n):
            total = t[j] + a[j] * b[i] + carry
            t[j] = total & word_mask
            carry = total >> w
        total = t[n] + carry
        t[n] = total & word_mask
        t[n + 1] = total >> w

        m = (t[0] * params.n_prime) & word_mask
        total = t[0] + m * q[0]
        carry = total >> w
        for j in range(1, n):
            total = t[j] + m * q[j] + carry
            t[j - 1] = total & word_mask
            carry = total >> w
        total = t[n] + carry
        t[n - 1] = total & word_mask
        carry = total >> w
        t[n] = t[n + 1] + carry
        t[n + 1] = 0

    result = 0
    for j in reversed(range(n + 1)):
        result = (result << w) | t[j]
    if result >= params.modulus:
        result -= params.modulus
    return int_to_limbs(result, w, n)


def _self_check() -> None:  # pragma: no cover - developer aid
    params = MontgomeryParams.create((1 << 61) - 1, 64)
    a, b = 123456789123456789, 987654321987654321
    am, bm = params.to_montgomery(a % params.modulus), params.to_montgomery(b % params.modulus)
    got = params.from_montgomery(
        limbs_to_int(
            montgomery_mulmod_limbs(
                int_to_limbs(am, 64, params.num_limbs),
                int_to_limbs(bm, 64, params.num_limbs),
                params,
            ),
            64,
        )
    )
    assert got == (a * b) % params.modulus
