"""Conversion between Python integers and multi-word limb sequences.

MoMA (Equation 5 / 13 / 14 of the paper) represents a large integer ``x`` as

    x = [x0, x1, ..., x_{k-1}]_z = x0 * z**(k-1) + x1 * z**(k-2) + ... + x_{k-1}

with base ``z = 2**width``.  Note the *big-endian* convention: limb index 0 is
the most significant word.  This module provides the conversions used by every
other layer (reference arithmetic, rewrite-rule verification, generated-kernel
testing) plus a few structural helpers (padding, splitting, joining).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ArithmeticDomainError
from repro.arith.word import check_word, mask

__all__ = [
    "limb_count",
    "int_to_limbs",
    "limbs_to_int",
    "normalize_limbs",
    "pad_limbs",
    "strip_leading_zero_limbs",
    "split_limb",
    "join_limbs",
    "limbs_lt",
    "limbs_eq",
]


def limb_count(value_bits: int, width: int) -> int:
    """Number of ``width``-bit limbs needed to hold a ``value_bits``-bit integer.

    Matches ``k = ceil(value_bits / width)`` with a minimum of one limb.
    """
    if value_bits <= 0:
        raise ArithmeticDomainError(f"value_bits must be positive, got {value_bits}")
    if width <= 0:
        raise ArithmeticDomainError(f"width must be positive, got {width}")
    return max(1, -(-value_bits // width))


def int_to_limbs(value: int, width: int, count: int) -> tuple[int, ...]:
    """Decompose ``value`` into exactly ``count`` limbs of ``width`` bits each.

    The result is most-significant-first (the paper's ``[x0, ..., x_{k-1}]``).
    Raises :class:`ArithmeticDomainError` if ``value`` does not fit.
    """
    if value < 0:
        raise ArithmeticDomainError(f"value must be non-negative, got {value}")
    if count <= 0:
        raise ArithmeticDomainError(f"count must be positive, got {count}")
    if value >> (width * count):
        raise ArithmeticDomainError(
            f"value with {value.bit_length()} bits does not fit in "
            f"{count} limbs of {width} bits"
        )
    word_mask = mask(width)
    limbs = []
    for index in range(count):
        shift = width * (count - 1 - index)
        limbs.append((value >> shift) & word_mask)
    return tuple(limbs)


def limbs_to_int(limbs: Sequence[int], width: int) -> int:
    """Recompose an integer from most-significant-first limbs.

    Each limb is validated to fit in ``width`` bits.
    """
    if len(limbs) == 0:
        raise ArithmeticDomainError("limb sequence must not be empty")
    value = 0
    for index, limb in enumerate(limbs):
        check_word(limb, width, name=f"limb[{index}]")
        value = (value << width) | limb
    return value


def normalize_limbs(limbs: Sequence[int], width: int) -> tuple[int, ...]:
    """Reduce every entry modulo ``2**width`` (no carry propagation).

    Useful for constructing test vectors from arbitrary integer sequences.
    """
    word_mask = mask(width)
    return tuple(limb & word_mask for limb in limbs)


def pad_limbs(limbs: Sequence[int], count: int) -> tuple[int, ...]:
    """Left-pad a limb sequence with zero limbs up to ``count`` entries.

    Zero limbs are prepended (most-significant side), mirroring Equation 35's
    ``x = [0, ..., 0, x0, ..., x_{k-1}]`` representation used for
    non-power-of-two bit-widths.
    """
    if count < len(limbs):
        raise ArithmeticDomainError(
            f"cannot pad {len(limbs)} limbs down to {count} entries"
        )
    return (0,) * (count - len(limbs)) + tuple(limbs)


def strip_leading_zero_limbs(limbs: Sequence[int]) -> tuple[int, ...]:
    """Drop leading (most-significant) zero limbs, keeping at least one limb."""
    limbs = tuple(limbs)
    first_nonzero = 0
    for index, limb in enumerate(limbs):
        if limb != 0:
            first_nonzero = index
            break
    else:
        return limbs[-1:]
    return limbs[first_nonzero:]


def split_limb(value: int, width: int) -> tuple[int, int]:
    """Split one ``2*width``-bit value into two ``width``-bit limbs ``(hi, lo)``.

    This is rewrite rule (19) of the paper applied to a concrete value.
    """
    if value >> (2 * width):
        raise ArithmeticDomainError(
            f"value with {value.bit_length()} bits does not fit in a "
            f"{2 * width}-bit double word"
        )
    return value >> width, value & mask(width)


def join_limbs(hi: int, lo: int, width: int) -> int:
    """Join two ``width``-bit limbs into one ``2*width``-bit value."""
    check_word(hi, width, name="hi")
    check_word(lo, width, name="lo")
    return (hi << width) | lo


def limbs_lt(a: Sequence[int], b: Sequence[int]) -> int:
    """Lexicographic (i.e. numeric, given equal length) ``a < b`` comparison."""
    if len(a) != len(b):
        raise ArithmeticDomainError(
            f"comparing limb sequences of different lengths: {len(a)} vs {len(b)}"
        )
    for limb_a, limb_b in zip(a, b):
        if limb_a < limb_b:
            return 1
        if limb_a > limb_b:
            return 0
    return 0


def limbs_eq(a: Sequence[int], b: Sequence[int]) -> int:
    """Numeric equality of two equal-length limb sequences."""
    if len(a) != len(b):
        raise ArithmeticDomainError(
            f"comparing limb sequences of different lengths: {len(a)} vs {len(b)}"
        )
    return 1 if tuple(a) == tuple(b) else 0
