"""Single-word modular arithmetic (Listing 1 of the paper).

These are the leaf operations of MoMA: arithmetic on operands that fit in a
single (possibly abstract) word of ``word_bits`` bits, where the compiler is
assumed to provide a double-word type only for *storing* results (not full
double-word arithmetic).  The functions mirror ``_sadd``, ``_saddmod``,
``_ssub``, ``_ssubmod``, ``_smul`` and ``_smulmod`` from the paper, with the
single deviation documented in :mod:`repro.arith.barrett`: conditional
corrections compare with ``>=`` so results are canonical residues in
``[0, q)``.

The functions take the word width explicitly so that the same code serves
both the final machine word and the abstract single words used at
intermediate MoMA recursion steps.
"""

from __future__ import annotations

from repro.errors import ArithmeticDomainError
from repro.arith.barrett import BarrettParams
from repro.arith.word import check_word, mask

__all__ = [
    "sadd",
    "saddmod",
    "ssub",
    "ssubmod",
    "smul",
    "smulmod",
]


def sadd(a: int, b: int, word_bits: int) -> tuple[int, int]:
    """Single-word addition with a double-word result ``(hi, lo)``.

    Mirrors ``_sadd``: the sum of two ``word_bits``-bit operands is returned
    as a two-limb value whose high limb is the carry (0 or 1).
    """
    check_word(a, word_bits, "a")
    check_word(b, word_bits, "b")
    total = a + b
    return total >> word_bits, total & mask(word_bits)


def saddmod(a: int, b: int, q: int, word_bits: int) -> int:
    """Single-word modular addition ``(a + b) mod q`` for reduced operands.

    Mirrors ``_saddmod`` (Equation 2): one addition in a double-word
    temporary followed by a conditional subtraction of ``q``.
    """
    _check_reduced(a, b, q, word_bits)
    total = a + b
    if total >= q:
        total -= q
    return total


def ssub(a: int, b: int, word_bits: int) -> int:
    """Single-word subtraction with wrap-around (the C behaviour of ``a - b``)."""
    check_word(a, word_bits, "a")
    check_word(b, word_bits, "b")
    return (a - b) & mask(word_bits)


def ssubmod(a: int, b: int, q: int, word_bits: int) -> int:
    """Single-word modular subtraction ``(a - b) mod q`` for reduced operands.

    Mirrors ``_ssubmod`` (Equation 3): wrap-around subtraction followed by a
    conditional addition of ``q`` when ``a < b``.
    """
    _check_reduced(a, b, q, word_bits)
    diff = (a - b) & mask(word_bits)
    if a < b:
        diff = (diff + q) & mask(word_bits)
    return diff


def smul(a: int, b: int, word_bits: int) -> tuple[int, int]:
    """Single-word multiplication with a double-word result ``(hi, lo)``.

    Mirrors ``_smul``: the full ``2*word_bits``-bit product split into limbs.
    """
    check_word(a, word_bits, "a")
    check_word(b, word_bits, "b")
    product = a * b
    return product >> word_bits, product & mask(word_bits)


def smulmod(a: int, b: int, params: BarrettParams) -> int:
    """Single-word modular multiplication via Barrett reduction.

    Mirrors ``_smulmod``: widening multiply, shift, multiply by the
    precomputed ``mu``, shift, subtract the estimated multiple of ``q`` and
    apply one conditional correction.  Operands must be reduced modulo
    ``params.modulus``.
    """
    q = params.modulus
    _check_reduced(a, b, q, params.word_bits)
    product = a * b
    estimate = ((product >> params.pre_shift) * params.mu) >> params.post_shift
    remainder = product - estimate * q
    if remainder >= q:
        remainder -= q
    if not 0 <= remainder < q:
        raise ArithmeticDomainError(
            "Barrett approximation error exceeded one conditional subtraction "
            f"for modulus {q:#x}"
        )
    return remainder


def _check_reduced(a: int, b: int, q: int, word_bits: int) -> None:
    check_word(a, word_bits, "a")
    check_word(b, word_bits, "b")
    check_word(q, word_bits, "q")
    if q == 0:
        raise ArithmeticDomainError("modulus must be non-zero")
    if a >= q or b >= q:
        raise ArithmeticDomainError(
            "modular operations expect operands reduced modulo q "
            f"(a={a:#x}, b={b:#x}, q={q:#x})"
        )
