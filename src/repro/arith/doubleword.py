"""Double-word modular arithmetic (Listings 2-4 of the paper).

A *double word* is a value of ``2*w`` bits represented as a big-endian pair
``(hi, lo)`` of ``w``-bit limbs; a *quad word* is the analogous 4-limb tuple.
All functions below perform the computation strictly through single-word
operations (adds with explicit carries, widening multiplies, comparisons and
selects), exactly as the paper's CUDA listings do, so they serve both as an
executable specification of the rewrite rules in Table 1 and as the oracle
for the generated kernels.

Functions provided (paper names in parentheses):

* :func:`dadd`   — quad = double + double        (``_dadd``)
* :func:`dsub`   — double = double - double      (``_dsub``)
* :func:`dlt`    — double < double               (``_dlt``)
* :func:`dle`    — double <= double              (used for canonical residues)
* :func:`daddmod`, :func:`dsubmod`               (``_daddmod``, ``_dsubmod``)
* :func:`qadd`   — quad = quad + quad            (``_qadd``)
* :func:`dmuls`  — quad = double * double, schoolbook (``_dmuls``)
* :func:`dmulk`  — quad = double * double, Karatsuba  (Equation 9)
* :func:`qshr`   — double = quad >> k, k in [w, 2w]   (``_qshr``)
* :func:`dmulmod`— Barrett modular multiplication     (``_dmulmod``)
"""

from __future__ import annotations

from repro.errors import ArithmeticDomainError
from repro.arith.barrett import BarrettParams
from repro.arith.word import check_word, mask

__all__ = [
    "dadd",
    "dsub",
    "dlt",
    "dle",
    "deq",
    "daddmod",
    "dsubmod",
    "qadd",
    "qsub",
    "dmuls",
    "dmulk",
    "qshr",
    "dmulmod",
]

DoubleWord = tuple[int, int]
QuadWord = tuple[int, int, int, int]


def _check_double(value: DoubleWord, word_bits: int, name: str) -> DoubleWord:
    if len(value) != 2:
        raise ArithmeticDomainError(f"{name} must be a (hi, lo) pair, got {value!r}")
    check_word(value[0], word_bits, f"{name}[0]")
    check_word(value[1], word_bits, f"{name}[1]")
    return value


def _check_quad(value: QuadWord, word_bits: int, name: str) -> QuadWord:
    if len(value) != 4:
        raise ArithmeticDomainError(f"{name} must be a 4-limb tuple, got {value!r}")
    for index, limb in enumerate(value):
        check_word(limb, word_bits, f"{name}[{index}]")
    return value


def dadd(a: DoubleWord, b: DoubleWord, word_bits: int) -> QuadWord:
    """Quad-word sum of two double words (``_dadd``).

    The result occupies at most ``2*w + 1`` bits, so limbs 0 and 1 of the
    returned quad word are ``0`` and the carry respectively.
    """
    _check_double(a, word_bits, "a")
    _check_double(b, word_bits, "b")
    word_mask = mask(word_bits)
    low_sum = a[1] + b[1]
    c3 = low_sum & word_mask
    carry = low_sum >> word_bits
    high_sum = a[0] + b[0] + carry
    c2 = high_sum & word_mask
    c1 = high_sum >> word_bits
    return (0, c1, c2, c3)


def dsub(a: DoubleWord, b: DoubleWord, word_bits: int) -> DoubleWord:
    """Wrap-around double-word difference ``a - b`` (``_dsub``)."""
    _check_double(a, word_bits, "a")
    _check_double(b, word_bits, "b")
    word_mask = mask(word_bits)
    c1 = (a[1] - b[1]) & word_mask
    borrow = 1 if a[1] < b[1] else 0
    c0 = (a[0] - b[0] - borrow) & word_mask
    return (c0, c1)


def dlt(a: DoubleWord, b: DoubleWord, word_bits: int) -> int:
    """Comparison ``a < b`` on double words (``_dlt``), returning 0 or 1."""
    _check_double(a, word_bits, "a")
    _check_double(b, word_bits, "b")
    high_less = 1 if a[0] < b[0] else 0
    high_equal = 1 if a[0] == b[0] else 0
    low_less = 1 if a[1] < b[1] else 0
    return 1 if (high_less or (high_equal and low_less)) else 0


def dle(a: DoubleWord, b: DoubleWord, word_bits: int) -> int:
    """Comparison ``a <= b`` on double words, returning 0 or 1."""
    _check_double(a, word_bits, "a")
    _check_double(b, word_bits, "b")
    high_less = 1 if a[0] < b[0] else 0
    high_equal = 1 if a[0] == b[0] else 0
    low_le = 1 if a[1] <= b[1] else 0
    return 1 if (high_less or (high_equal and low_le)) else 0


def deq(a: DoubleWord, b: DoubleWord, word_bits: int) -> int:
    """Equality of two double words (rewrite rule 27), returning 0 or 1."""
    _check_double(a, word_bits, "a")
    _check_double(b, word_bits, "b")
    return 1 if (a[0] == b[0] and a[1] == b[1]) else 0


def daddmod(a: DoubleWord, b: DoubleWord, q: DoubleWord, word_bits: int) -> DoubleWord:
    """Double-word modular addition (``_daddmod``) for reduced operands.

    Computes the quad-word sum, compares against ``q`` (taking the carry limb
    into account) and conditionally subtracts ``q`` once, yielding a
    canonical residue.
    """
    _check_reduced_pair(a, b, q, word_bits)
    total = dadd(a, b, word_bits)
    carry = total[1]
    low_double = (total[2], total[3])
    exceeds = 1 if (carry or dle(q, low_double, word_bits)) else 0
    reduced = dsub(low_double, q, word_bits)
    return reduced if exceeds else low_double


def dsubmod(a: DoubleWord, b: DoubleWord, q: DoubleWord, word_bits: int) -> DoubleWord:
    """Double-word modular subtraction (``_dsubmod``) for reduced operands."""
    _check_reduced_pair(a, b, q, word_bits)
    diff = dsub(a, b, word_bits)
    wrapped = dadd(diff, q, word_bits)
    borrowed = dlt(a, b, word_bits)
    return (wrapped[2], wrapped[3]) if borrowed else diff


def qadd(a: QuadWord, b: QuadWord, word_bits: int) -> QuadWord:
    """Quad-word addition with wrap-around in the top limb (``_qadd``).

    The paper's usage guarantees the true sum fits in four limbs (rule 29's
    final carry is zero); the implementation nevertheless wraps like the C
    code would.
    """
    _check_quad(a, word_bits, "a")
    _check_quad(b, word_bits, "b")
    word_mask = mask(word_bits)
    limbs = []
    carry = 0
    for index in (3, 2, 1, 0):
        total = a[index] + b[index] + carry
        limbs.append(total & word_mask)
        carry = total >> word_bits
    limbs.reverse()
    return (limbs[0], limbs[1], limbs[2], limbs[3])


def qsub(a: QuadWord, b: QuadWord, word_bits: int) -> QuadWord:
    """Quad-word subtraction with wrap-around (borrow chain over four limbs)."""
    _check_quad(a, word_bits, "a")
    _check_quad(b, word_bits, "b")
    word_mask = mask(word_bits)
    limbs = []
    borrow = 0
    for index in (3, 2, 1, 0):
        total = a[index] - b[index] - borrow
        borrow = 1 if total < 0 else 0
        limbs.append(total & word_mask)
    limbs.reverse()
    return (limbs[0], limbs[1], limbs[2], limbs[3])


def dmuls(a: DoubleWord, b: DoubleWord, word_bits: int) -> QuadWord:
    """Schoolbook double-word multiplication (``_dmuls``, Equation 8).

    Four widening single-word multiplications plus multi-word additions.
    """
    _check_double(a, word_bits, "a")
    _check_double(b, word_bits, "b")
    word_mask = mask(word_bits)

    def widening(x: int, y: int) -> tuple[int, int]:
        product = x * y
        return product >> word_bits, product & word_mask

    lo_lo = widening(a[1], b[1])
    hi_hi = widening(a[0], b[0])
    hi_lo = widening(a[0], b[1])
    lo_hi = widening(a[1], b[0])

    # cross = a0*b1 + a1*b0, a value of at most 2w+1 bits.
    cross = dadd(hi_lo, lo_hi, word_bits)
    # result = hi_hi * z**2 + cross * z + lo_lo
    base = (hi_hi[0], hi_hi[1], lo_lo[0], lo_lo[1])
    shifted_cross = (cross[1], cross[2], cross[3], 0)
    return qadd(base, shifted_cross, word_bits)


def dmulk(a: DoubleWord, b: DoubleWord, word_bits: int) -> QuadWord:
    """Karatsuba double-word multiplication (Equation 9).

    Three widening multiplications: ``a0*b0``, ``a1*b1`` and
    ``(a0 + a1)*(b0 + b1)``, with the middle term recovered by subtraction.
    The sums ``a0 + a1`` and ``b0 + b1`` may carry into an extra bit, which
    is handled with explicit single-word corrections as the generated
    Karatsuba kernels do.
    """
    _check_double(a, word_bits, "a")
    _check_double(b, word_bits, "b")
    word_mask = mask(word_bits)

    lo_lo = a[1] * b[1]
    hi_hi = a[0] * b[0]
    sum_a = a[0] + a[1]
    sum_b = b[0] + b[1]
    # (sum_a * sum_b) needs 2w+2 bits; compute it limb-wise.
    carry_a, sum_a_lo = sum_a >> word_bits, sum_a & word_mask
    carry_b, sum_b_lo = sum_b >> word_bits, sum_b & word_mask
    # (ca*z + sa)(cb*z + sb) = ca*cb*z^2 + (ca*sb + cb*sa)*z + sa*sb
    middle = (
        (carry_a * carry_b) << (2 * word_bits)
    ) + ((carry_a * sum_b_lo + carry_b * sum_a_lo) << word_bits) + sum_a_lo * sum_b_lo
    middle = middle - hi_hi - lo_lo
    value = (hi_hi << (2 * word_bits)) + (middle << word_bits) + lo_lo
    value &= mask(4 * word_bits)
    return (
        (value >> (3 * word_bits)) & word_mask,
        (value >> (2 * word_bits)) & word_mask,
        (value >> word_bits) & word_mask,
        value & word_mask,
    )


def qshr(value: QuadWord, amount: int, word_bits: int) -> DoubleWord:
    """Shift a quad word right by ``amount`` bits, keeping the low double word.

    ``amount`` must lie in ``[word_bits, 2*word_bits]`` as in ``_qshr``; the
    Barrett pre-shift of Listing 4 always falls in this range.
    """
    _check_quad(value, word_bits, "value")
    if not word_bits <= amount <= 2 * word_bits:
        raise ArithmeticDomainError(
            f"qshr shift amount must be in [{word_bits}, {2 * word_bits}], got {amount}"
        )
    word_mask = mask(word_bits)
    full = 0
    for limb in value:
        full = (full << word_bits) | limb
    shifted = full >> amount
    return (shifted >> word_bits) & word_mask, shifted & word_mask


def dmulmod(
    a: DoubleWord,
    b: DoubleWord,
    q: DoubleWord,
    mu: DoubleWord,
    word_bits: int,
    use_karatsuba: bool = False,
) -> DoubleWord:
    """Double-word Barrett modular multiplication (``_dmulmod``).

    ``q`` and ``mu`` are the modulus and Barrett constant as double words;
    the modulus bit-width is assumed to be ``2*word_bits - 4`` (the paper's
    ``MBITS`` convention, e.g. 124 for 64-bit words), which is what makes the
    fixed shift amounts of Listing 4 correct.
    """
    _check_double(a, word_bits, "a")
    _check_double(b, word_bits, "b")
    _check_double(q, word_bits, "q")
    _check_double(mu, word_bits, "mu")
    modulus_bits = 2 * word_bits - 4
    multiply = dmulk if use_karatsuba else dmuls

    product = multiply(a, b, word_bits)
    # r = product >> (MBITS - 2); MBITS - 2 = 2w - 6, within [w, 2w] for w >= 6.
    estimate = qshr(product, modulus_bits - 2, word_bits)
    # r = r * mu, keep the high double word after a further shift by MBITS + 5.
    estimate_product = multiply(estimate, mu, word_bits)
    # Shift the quad word right by MBITS + 5 = 2w + 1: take the high double
    # word and shift it right by one more bit.
    high = (estimate_product[0], estimate_product[1])
    shifted_hi = high[0] >> 1
    shifted_lo = ((high[0] << (word_bits - 1)) & mask(word_bits)) | (high[1] >> 1)
    quotient = (shifted_hi, shifted_lo)
    # t -= quotient * q; only the low double word is needed (Listing 4).
    quotient_times_q = multiply(quotient, q, word_bits)
    remainder = dsub((product[2], product[3]), (quotient_times_q[2], quotient_times_q[3]), word_bits)
    # Single conditional correction to the canonical residue.
    corrected = dsub(remainder, q, word_bits)
    needs_correction = dle(q, remainder, word_bits)
    return corrected if needs_correction else remainder


def _check_reduced_pair(a: DoubleWord, b: DoubleWord, q: DoubleWord, word_bits: int) -> None:
    _check_double(a, word_bits, "a")
    _check_double(b, word_bits, "b")
    _check_double(q, word_bits, "q")
    if dlt(a, q, word_bits) == 0 or dlt(b, q, word_bits) == 0:
        raise ArithmeticDomainError("modular operations expect operands reduced mod q")
