"""Request-scoped distributed tracing over :mod:`contextvars`.

One client call through the serving stack crosses a supervisor thread, a
per-connection sender thread, a TCP socket, a shard's connection loop, and
the shard server's worker pool.  This module gives that call **one trace**:

* a :class:`Tracer` decides per request whether to trace (deterministic
  1-in-N sampling, an explicit ``force``, or an adopted wire context) and
  hands back a :class:`TraceHandle` — the root span plus the per-trace
  scratch every child span accumulates into;
* :func:`span` / :func:`record` add child spans from *any* code running
  under the handle's :meth:`~TraceHandle.activate` context (the current
  trace travels in a :class:`contextvars.ContextVar`, so worker threads
  that run a copied context inherit it);
* :meth:`TraceHandle.wire_field` / ``Tracer.begin(wire=...)`` carry the
  trace across process and machine boundaries as a small JSON-safe dict —
  the wire envelope's additive ``trace`` field (absent ⇒ untraced);
* finished traces are committed into a bounded, preallocated
  :class:`SpanBuffer` ring — never any I/O on the serving path; exporters
  (:mod:`repro.obs.export`, the stats drain) pull spans out later.

**Cost when off.**  An unsampled request allocates nothing: ``begin``
returns ``None`` after one counter increment, :func:`span` is a no-op
after a single context-variable read, and no span object is ever built.

**Slow-request exemplars.**  With ``exemplar_threshold_s`` set, requests
that lose the sampling draw still record *provisionally*: their spans are
kept only if the root span ends up slower than the threshold, so the ring
buffer always holds an exemplar trace for tail-latency requests without
tracing the fast majority.  Provisional traces are local to the process
that owns the root span — they are not propagated over the wire.

Span timestamps are wall-clock (``time.time``) microseconds so spans from
different processes land on one shared timeline; durations come from
``time.perf_counter`` so they are monotonic-accurate.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "SpanBuffer",
    "TraceContext",
    "TraceHandle",
    "Tracer",
    "current",
    "current_trace_id",
    "record",
    "span",
]

#: Default bound on retained spans per process (a full cluster trace of a
#: cold request is a few dozen spans; 8192 holds hundreds of traces).
DEFAULT_BUFFER_CAPACITY = 8192

#: Hard cap on child spans one trace may accumulate before commit — a
#: runaway instrumentation loop must not grow the scratch without bound.
MAX_SPANS_PER_TRACE = 512

_CONTEXT: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro-trace", default=None
)


@dataclass(frozen=True)
class Span:
    """One completed, immutable span.

    Attributes:
        trace_id: the request's trace id (shared by every span of the call).
        span_id: this span's id, unique within the trace across processes.
        parent_id: the enclosing span's id (``""`` for a root span).
        name: what happened (``"route"``, ``"compile"``, ``"pass.cse"``...).
        cat: coarse layer tag (``"serve"``, ``"wire"``, ``"compile"``...).
        ts_us: wall-clock start, microseconds since the epoch.
        dur_us: duration in microseconds (``perf_counter``-accurate).
        process_id: OS pid of the recording process.
        thread_id: recording thread's native id.
        args: small JSON-safe annotations (shard id, request key, ...).
    """

    trace_id: str
    span_id: str
    parent_id: str
    name: str
    cat: str
    ts_us: float
    dur_us: float
    process_id: int
    thread_id: int
    args: dict = field(default_factory=dict)

    def to_wire(self) -> dict:
        """The JSON-safe wire form (what a stats drain ships)."""
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "cat": self.cat,
            "ts": self.ts_us,
            "dur": self.dur_us,
            "proc": self.process_id,
            "thread": self.thread_id,
            "args": dict(self.args),
        }

    @classmethod
    def from_wire(cls, payload: dict) -> Span:
        """Rebuild a span from its wire form; ``ValueError`` on malformed."""
        if not isinstance(payload, dict):
            raise ValueError(f"span payload must be a dict, got {type(payload).__name__}")
        try:
            trace_id = payload["trace"]
            span_id = payload["span"]
            name = payload["name"]
            ts_us = payload["ts"]
            dur_us = payload["dur"]
        except KeyError as missing:
            raise ValueError(f"span payload is missing {missing}") from None
        for label, value in (("trace", trace_id), ("span", span_id), ("name", name)):
            if not isinstance(value, str) or not value:
                raise ValueError(f"span field {label!r} must be a non-empty string")
        for label, value in (("ts", ts_us), ("dur", dur_us)):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"span field {label!r} must be a number")
        args = payload.get("args", {})
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=str(payload.get("parent", "")),
            name=name,
            cat=str(payload.get("cat", "")),
            ts_us=float(ts_us),
            dur_us=float(dur_us),
            process_id=int(payload.get("proc", 0)),
            thread_id=int(payload.get("thread", 0)),
            args=dict(args) if isinstance(args, dict) else {},
        )


class SpanBuffer:
    """A bounded ring of completed spans with preallocated slots.

    Committing a trace is a lock, a few slot writes, and nothing else — no
    allocation beyond the spans themselves, no I/O.  When the ring wraps,
    the oldest spans are overwritten and counted in :attr:`dropped`; an
    exporter that drains faster than traffic commits loses nothing.
    """

    def __init__(self, capacity: int = DEFAULT_BUFFER_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"span buffer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._slots: list[Span | None] = [None] * capacity
        self._next = 0  # next slot to write
        self._count = 0  # live spans in the ring (<= capacity)
        self._dropped = 0
        self._lock = threading.Lock()

    def extend(self, spans) -> None:
        """Commit completed spans (oldest evicted once the ring is full)."""
        with self._lock:
            for one in spans:
                if self._count == self.capacity:
                    self._dropped += 1
                else:
                    self._count += 1
                self._slots[self._next] = one
                self._next = (self._next + 1) % self.capacity

    def __len__(self) -> int:
        with self._lock:
            return self._count

    @property
    def dropped(self) -> int:
        """Spans overwritten before any drain (buffer pressure signal)."""
        with self._lock:
            return self._dropped

    def snapshot(self) -> tuple[Span, ...]:
        """The retained spans, oldest first, without clearing them."""
        with self._lock:
            return self._ordered()

    def drain(self) -> tuple[Span, ...]:
        """Remove and return every retained span, oldest first."""
        with self._lock:
            spans = self._ordered()
            self._slots = [None] * self.capacity
            self._next = 0
            self._count = 0
            return spans

    def _ordered(self) -> tuple[Span, ...]:
        start = (self._next - self._count) % self.capacity
        return tuple(
            self._slots[(start + index) % self.capacity]
            for index in range(self._count)
        )


class _Scratch:
    """One in-flight trace's accumulating spans (shared across threads)."""

    __slots__ = ("trace_id", "spans", "overflow", "_ids", "_lock")

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self.spans: list[Span] = []
        self.overflow = 0
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    def next_span_id(self) -> str:
        # The pid prefix keeps ids unique when supervisor and shard both
        # number their spans from 1 within the same trace.
        return f"{os.getpid():x}.{next(self._ids)}"

    def add(self, span_: Span, force: bool = False) -> None:
        # ``force`` exempts the root span: a trace that hit the child cap
        # must still commit its root, or the whole trace becomes orphans.
        with self._lock:
            if not force and len(self.spans) >= MAX_SPANS_PER_TRACE:
                self.overflow += 1
                return
            self.spans.append(span_)


class TraceContext:
    """What the context variable carries: the trace plus the current parent."""

    __slots__ = ("scratch", "span_id")

    def __init__(self, scratch: _Scratch, span_id: str) -> None:
        self.scratch = scratch
        self.span_id = span_id

    @property
    def trace_id(self) -> str:
        return self.scratch.trace_id


def current() -> TraceContext | None:
    """The active trace context, or ``None`` (the untraced fast path)."""
    return _CONTEXT.get()


def current_trace_id() -> str | None:
    """The active trace id, or ``None`` — the log-correlation field."""
    context = _CONTEXT.get()
    return context.trace_id if context is not None else None


def _complete(
    context: TraceContext,
    name: str,
    cat: str,
    ts_us: float,
    dur_us: float,
    args: dict,
) -> Span:
    span_ = Span(
        trace_id=context.trace_id,
        span_id=context.scratch.next_span_id(),
        parent_id=context.span_id,
        name=name,
        cat=cat,
        ts_us=ts_us,
        dur_us=dur_us,
        process_id=os.getpid(),
        thread_id=threading.get_native_id(),
        args=args,
    )
    context.scratch.add(span_)
    return span_


@contextmanager
def span(name: str, cat: str = "serve", **args):
    """Record one child span around a code block (no-op when untraced).

    The block's children see this span as their parent: the context
    variable is swapped to a child context for the duration.
    """
    context = _CONTEXT.get()
    if context is None:
        yield None
        return
    scratch = context.scratch
    child = TraceContext(scratch, scratch.next_span_id())
    token = _CONTEXT.set(child)
    wall = time.time()
    started = time.perf_counter()
    try:
        yield child
    finally:
        dur_s = time.perf_counter() - started
        _CONTEXT.reset(token)
        scratch.add(
            Span(
                trace_id=scratch.trace_id,
                span_id=child.span_id,
                parent_id=context.span_id,
                name=name,
                cat=cat,
                ts_us=wall * 1e6,
                dur_us=dur_s * 1e6,
                process_id=os.getpid(),
                thread_id=threading.get_native_id(),
                args=args,
            )
        )


def record(
    name: str,
    start_wall_s: float,
    dur_s: float,
    cat: str = "serve",
    **args,
) -> None:
    """Record an already-measured child span (no-op when untraced).

    For work that was timed out-of-band — a queue wait known only at
    dequeue, a decode measured before the trace was correlated — where a
    ``with`` block around the code is impossible.
    """
    context = _CONTEXT.get()
    if context is None:
        return
    _complete(context, name, cat, start_wall_s * 1e6, dur_s * 1e6, args)


class TraceHandle:
    """One root span in flight: activate it, annotate it, finish it.

    Handles cross threads freely: :meth:`activate` installs the trace in
    the *current* thread's context, :meth:`record` appends a measured child
    span from any thread, and :meth:`finish` — callable exactly once, from
    wherever the request completes — closes the root span and commits or
    discards the whole trace.
    """

    def __init__(
        self,
        tracer: Tracer,
        scratch: _Scratch,
        name: str,
        cat: str,
        parent_id: str,
        provisional: bool,
        args: dict,
    ) -> None:
        self._tracer = tracer
        self._scratch = scratch
        self._name = name
        self._cat = cat
        self._parent_id = parent_id
        self._provisional = provisional
        self._args = args
        self._root = TraceContext(scratch, scratch.next_span_id())
        self._wall = time.time()
        self._started = time.perf_counter()
        self._finished = False

    @property
    def trace_id(self) -> str:
        return self._scratch.trace_id

    @property
    def sampled(self) -> bool:
        """Whether this trace is committed unconditionally (not provisional)."""
        return not self._provisional

    @contextmanager
    def activate(self):
        """Make this trace the current context for the enclosed block."""
        token = _CONTEXT.set(self._root)
        try:
            yield self._root
        finally:
            _CONTEXT.reset(token)

    def record(
        self, name: str, start_wall_s: float, dur_s: float, cat: str = "serve", **args
    ) -> None:
        """Append a measured child span of the root, from any thread."""
        if not self._finished:
            _complete(self._root, name, cat, start_wall_s * 1e6, dur_s * 1e6, args)

    def wire_field(self) -> dict | None:
        """The envelope ``trace`` field propagating this trace downstream.

        ``None`` for provisional (exemplar-candidate) traces: a peer cannot
        un-record spans for a trace that ends up fast, so provisional
        traces stay local.
        """
        if self._provisional:
            return None
        return {"id": self.trace_id, "span": self._root.span_id, "sampled": True}

    def annotate(self, **args) -> None:
        """Attach annotations to the root span before it finishes."""
        self._args.update(args)

    def finish(self, **args) -> float:
        """Close the root span; commit (or discard) the trace.  Idempotent.

        Returns the root span's duration in seconds.
        """
        dur_s = time.perf_counter() - self._started
        if self._finished:
            return dur_s
        self._finished = True
        if args:
            self._args.update(args)
        if self._scratch.overflow:
            self._args.setdefault("spans_dropped", self._scratch.overflow)
        root = Span(
            trace_id=self.trace_id,
            span_id=self._root.span_id,
            parent_id=self._parent_id,
            name=self._name,
            cat=self._cat,
            ts_us=self._wall * 1e6,
            dur_us=dur_s * 1e6,
            process_id=os.getpid(),
            thread_id=threading.get_native_id(),
            args=self._args,
        )
        self._scratch.add(root, force=True)
        self._tracer._commit(self._scratch, self._provisional, dur_s)
        return dur_s


class Tracer:
    """Issues, samples, and retains traces for one process.

    Args:
        sample_rate: fraction of root requests traced, ``0.0``–``1.0``.
            Sampling is deterministic 1-in-N (``round(1/rate)``), so a 1%
            rate traces exactly every 100th request — no RNG on the hot
            path, and benchmarks are reproducible.
        capacity: ring-buffer bound on retained spans.
        exemplar_threshold_s: when set, requests that lose the sampling
            draw still record provisionally and are committed only if the
            root span exceeds this duration — tail-latency exemplars.
    """

    def __init__(
        self,
        sample_rate: float = 0.0,
        capacity: int = DEFAULT_BUFFER_CAPACITY,
        exemplar_threshold_s: float | None = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {sample_rate!r}")
        if exemplar_threshold_s is not None and exemplar_threshold_s < 0:
            raise ValueError(
                f"exemplar threshold must be non-negative, got {exemplar_threshold_s!r}"
            )
        self.sample_rate = sample_rate
        self.exemplar_threshold_s = exemplar_threshold_s
        self.buffer = SpanBuffer(capacity)
        self._period = round(1.0 / sample_rate) if sample_rate > 0.0 else 0
        self._draws = itertools.count()
        self._committed_traces = 0
        self._exemplar_traces = 0

    # -- root spans ---------------------------------------------------------

    def begin(
        self,
        name: str,
        cat: str = "serve",
        wire: dict | None = None,
        force: bool = False,
        **args,
    ) -> TraceHandle | None:
        """Start a root span, or return ``None`` on the untraced fast path.

        ``wire`` adopts a propagated trace context (the envelope's
        ``trace`` field): the new root joins that trace as a child of the
        sender's span, and is always committed — the sampling decision was
        made upstream.  ``force`` traces unconditionally (the ``--trace``
        CLI mode).  Otherwise the deterministic sampler decides; losers
        still trace provisionally when exemplar capture is configured.
        """
        if wire is not None:
            adopted = self.adopt_wire_field(wire)
            if adopted is None:
                return None
            trace_id, parent_id = adopted
            return TraceHandle(
                self, _Scratch(trace_id), name, cat, parent_id, False, args
            )
        provisional = False
        if not force and not self._sample():
            if self.exemplar_threshold_s is None:
                return None
            provisional = True
        return TraceHandle(
            self, _Scratch(uuid.uuid4().hex[:16]), name, cat, "", provisional, args
        )

    @contextmanager
    def trace(self, name: str, cat: str = "serve", force: bool = False, **args):
        """``begin`` + ``activate`` + ``finish`` for straight-line callers."""
        handle = self.begin(name, cat=cat, force=force, **args)
        if handle is None:
            yield None
            return
        try:
            with handle.activate():
                yield handle
        finally:
            handle.finish()

    @staticmethod
    def adopt_wire_field(wire: dict) -> tuple[str, str] | None:
        """Validate an envelope ``trace`` field → ``(trace id, parent id)``.

        Malformed fields are treated as absent (``None``): a bad peer
        annotation must never fail the request it rides on.
        """
        if not isinstance(wire, dict):
            return None
        trace_id = wire.get("id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        parent = wire.get("span", "")
        return trace_id, parent if isinstance(parent, str) else ""

    def _sample(self) -> bool:
        if self._period == 0:
            return False
        return next(self._draws) % self._period == 0

    def _commit(self, scratch: _Scratch, provisional: bool, root_dur_s: float) -> None:
        if provisional:
            threshold = self.exemplar_threshold_s
            if threshold is None or root_dur_s < threshold:
                return
            self._exemplar_traces += 1
        self._committed_traces += 1
        self.buffer.extend(scratch.spans)

    # -- retained spans -----------------------------------------------------

    def drain(self) -> tuple[Span, ...]:
        """Remove and return every retained span (the stats-drain hook)."""
        return self.buffer.drain()

    def snapshot(self) -> tuple[Span, ...]:
        """The retained spans without clearing them (the HTTP endpoint)."""
        return self.buffer.snapshot()

    @property
    def committed_traces(self) -> int:
        """Traces committed to the buffer (sampled, forced, or exemplar)."""
        return self._committed_traces

    @property
    def exemplar_traces(self) -> int:
        """Committed traces that were retained by the slow-request threshold."""
        return self._exemplar_traces
