"""Chrome trace-event JSON export for merged cluster traces.

Converts :class:`~repro.obs.trace.Span` sequences into the Trace Event
Format's ``"X"`` (complete) events — the JSON that Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` load directly.  Each
process in the cluster becomes one ``pid`` row, each recording thread one
``tid`` row, and every span carries its trace/span/parent ids in ``args``
so one client request is traceable across supervisor, wire, and shard rows.

``tools/trace_summary.py`` validates this format and prints per-layer time
breakdowns from it; ``docs/observability.md`` documents the field mapping.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.trace import Span

__all__ = [
    "chrome_trace",
    "instant_event",
    "write_chrome_trace",
    "spans_from_chrome_trace",
]


def instant_event(name: str, ts_us: float, **args) -> dict:
    """One Trace Event Format ``"i"`` (instant) event.

    Instants mark a moment rather than a duration — the traffic-replay
    harness uses them to pin fault injections and replay phase boundaries
    onto the same timeline as the spans.  Viewers render them as vertical
    markers; :func:`spans_from_chrome_trace` skips them, like all
    non-``"X"`` events, so instants never perturb span validation.
    """
    return {
        "name": name,
        "ph": "i",
        "ts": float(ts_us),
        "pid": 0,
        "tid": 0,
        "s": "g",  # global scope: the marker spans every process row
        "args": dict(args),
    }


def chrome_trace(spans, label: str = "repro", instants=()) -> dict:
    """Spans as a Chrome trace-event JSON object (``traceEvents`` + metadata).

    Events are sorted by start time so the file is stable for diffing and
    streams well into viewers.  ``instants`` are extra pre-built
    :func:`instant_event` markers appended to the timeline.
    """
    events = [dict(event) for event in instants]
    processes: dict[int, str] = {}
    for one in sorted(spans, key=lambda item: item.ts_us):
        events.append(
            {
                "name": one.name,
                "cat": one.cat or "span",
                "ph": "X",
                "ts": one.ts_us,
                "dur": one.dur_us,
                "pid": one.process_id,
                "tid": one.thread_id,
                "args": {
                    **one.args,
                    "trace_id": one.trace_id,
                    "span_id": one.span_id,
                    "parent_id": one.parent_id,
                },
            }
        )
        if one.process_id not in processes:
            shard = one.args.get("shard_id")
            processes[one.process_id] = (
                f"{label} shard {shard}" if shard is not None else f"{label} pid {one.process_id}"
            )
    for pid, name in processes.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms", "otherData": {"exporter": label}}


def write_chrome_trace(path, spans, label: str = "repro", instants=()) -> Path:
    """Write the spans' Chrome trace JSON to ``path``; returns the path."""
    target = Path(path)
    target.write_text(
        json.dumps(chrome_trace(spans, label=label, instants=instants), indent=1)
    )
    return target


def spans_from_chrome_trace(payload: dict) -> list[Span]:
    """Rebuild spans from an exported trace (the validator's inverse).

    Only ``"X"`` events are spans; metadata events are skipped.  Raises
    ``ValueError`` on a structurally invalid document.
    """
    if not isinstance(payload, dict) or not isinstance(payload.get("traceEvents"), list):
        raise ValueError("not a Chrome trace-event document (no traceEvents list)")
    spans: list[Span] = []
    for index, event in enumerate(payload["traceEvents"]):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        if event.get("ph") != "X":
            continue
        args = event.get("args")
        if not isinstance(args, dict) or not isinstance(args.get("trace_id"), str):
            raise ValueError(f"traceEvents[{index}] lacks an args.trace_id")
        for key in ("ts", "dur"):
            if not isinstance(event.get(key), (int, float)):
                raise ValueError(f"traceEvents[{index}] field {key!r} is not numeric")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"traceEvents[{index}] has no name")
        extra = {
            key: value
            for key, value in args.items()
            if key not in ("trace_id", "span_id", "parent_id")
        }
        spans.append(
            Span(
                trace_id=args["trace_id"],
                span_id=str(args.get("span_id", "")),
                parent_id=str(args.get("parent_id", "")),
                name=event["name"],
                cat=str(event.get("cat", "")),
                ts_us=float(event["ts"]),
                dur_us=float(event["dur"]),
                process_id=int(event.get("pid", 0)),
                thread_id=int(event.get("tid", 0)),
                args=extra,
            )
        )
    return spans
