"""The ``--metrics-port`` HTTP endpoint: text exposition + trace export.

A tiny stdlib-only scrape surface (:class:`http.server.ThreadingHTTPServer`
on a daemon thread) with two routes:

* ``GET /metrics`` — the Prometheus-style text exposition rendered by the
  caller-supplied ``metrics_fn`` (``text/plain; version=0.0.4``).
* ``GET /trace.json`` — a Chrome trace-event JSON snapshot of recently
  committed spans from the caller-supplied ``trace_fn``, loadable straight
  into Perfetto.

Both callables run per request on the scrape thread, so responses always
reflect live counters.  Rendering failures answer 500 with the error text
rather than killing the scrape thread.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.export import chrome_trace

__all__ = ["MetricsEndpoint"]

_TEXT_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        endpoint: MetricsEndpoint = self.server.endpoint  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path in ("/", "/metrics"):
            self._answer(endpoint.render_metrics, _TEXT_CONTENT_TYPE)
        elif path == "/trace.json":
            self._answer(endpoint.render_trace, "application/json")
        else:
            self.send_error(404, "unknown path (try /metrics or /trace.json)")

    def _answer(self, render, content_type: str) -> None:
        try:
            body = render().encode("utf-8")
        except Exception as error:  # pragma: no cover - defensive
            self.send_error(500, f"render failed: {error}")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        logging.getLogger("repro.obs.http").debug(
            "%s %s", self.address_string(), format % args
        )


class MetricsEndpoint:
    """Serve ``/metrics`` and ``/trace.json`` from a background thread.

    ``metrics_fn`` returns the text exposition; ``trace_fn`` (optional)
    returns the spans to export — when omitted, ``/trace.json`` serves an
    empty trace document.  Bind to port 0 to let the OS pick; the resolved
    port is available as :attr:`port` after :meth:`start`.
    """

    def __init__(self, port: int, metrics_fn, trace_fn=None, host: str = "127.0.0.1"):
        self._metrics_fn = metrics_fn
        self._trace_fn = trace_fn
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.endpoint = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def render_metrics(self) -> str:
        return self._metrics_fn()

    def render_trace(self) -> str:
        spans = self._trace_fn() if self._trace_fn is not None else ()
        return json.dumps(chrome_trace(spans))

    def start(self) -> "MetricsEndpoint":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-metrics-endpoint",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsEndpoint":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
