"""Prometheus-style text exposition of the serving tier's metrics.

Renders the counters, gauges, and fixed-bucket latency histograms the
serve layer already tracks (:class:`~repro.serve.metrics.MetricsSnapshot`,
:class:`~repro.serve.supervisor.ClusterStats`,
:class:`~repro.serve.metrics.WireSnapshot`) into the text exposition format
scrapers parse (``text/plain; version=0.0.4``): ``# HELP`` / ``# TYPE``
comment pairs followed by sample lines, histograms as cumulative
``_bucket{le="..."}`` series ending in ``+Inf`` plus a ``_count``.

To keep :mod:`repro.obs` import-free of the serve layer, the functions
here take plain objects (attribute access only) and the histogram bucket
bounds as an argument — the serve CLI passes its own
:data:`~repro.serve.metrics.HISTOGRAM_BUCKET_BOUNDS_MS`.
"""

from __future__ import annotations

__all__ = [
    "render_counter",
    "render_gauge",
    "render_histogram",
    "render_server_metrics",
    "render_cluster_metrics",
]


def _labels(labels: dict | None) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in sorted(labels.items()))
    return "{" + body + "}"


def _sample(name: str, value, labels: dict | None = None) -> str:
    if isinstance(value, float):
        rendered = repr(value)
    else:
        rendered = str(value)
    return f"{name}{_labels(labels)} {rendered}"


def _header(name: str, kind: str, help_text: str) -> list[str]:
    return [f"# HELP {name} {help_text}", f"# TYPE {name} {kind}"]


def render_counter(name: str, value, help_text: str, labels: dict | None = None) -> str:
    """One counter metric with its HELP/TYPE header."""
    return "\n".join(_header(name, "counter", help_text) + [_sample(name, value, labels)])


def render_gauge(name: str, value, help_text: str, labels: dict | None = None) -> str:
    """One gauge metric with its HELP/TYPE header."""
    return "\n".join(_header(name, "gauge", help_text) + [_sample(name, value, labels)])


def render_histogram(
    name: str,
    counts,
    bucket_bounds: tuple[float, ...],
    help_text: str,
    labels: dict | None = None,
) -> str:
    """One fixed-bucket histogram as cumulative ``_bucket`` series.

    ``counts`` holds one count per bound plus one trailing overflow bucket
    (the serve tier's :func:`~repro.serve.metrics.latency_histogram`
    layout); extra counts beyond the bounds fold into ``+Inf``.
    """
    lines = _header(name, "histogram", help_text)
    cumulative = 0
    for index, bound in enumerate(bucket_bounds):
        cumulative += counts[index] if index < len(counts) else 0
        bucket_labels = dict(labels or {})
        bucket_labels["le"] = f"{bound:g}"
        lines.append(_sample(f"{name}_bucket", cumulative, bucket_labels))
    total = sum(counts)
    inf_labels = dict(labels or {})
    inf_labels["le"] = "+Inf"
    lines.append(_sample(f"{name}_bucket", total, inf_labels))
    lines.append(_sample(f"{name}_count", total, labels))
    return "\n".join(lines)


_COUNTERS = (
    ("requests", "requests_total", "Requests received."),
    ("warm_serves", "warm_serves_total", "Requests answered from the resident table."),
    ("cold_serves", "cold_serves_total", "Requests that ran tuning and compilation."),
    ("dedup_hits", "dedup_hits_total", "Requests that joined an in-flight twin."),
    ("errors", "errors_total", "Requests that raised."),
    ("tune_batches", "tune_batches_total", "Tuning micro-batches executed."),
    ("batched_tunes", "batched_tunes_total", "Tuning requests inside those batches."),
)

_GAUGES = (
    ("queue_depth", "queue_depth", "Requests submitted but not yet fulfilled."),
    ("resident_kernels", "resident_kernels", "Served results held resident."),
)

#: Per-tenant breakdown fields rendered with a ``tenant`` label.  The
#: blocks are duck-typed dicts (a server's
#: :meth:`~repro.serve.metrics.ServerMetrics.tenant_breakdown` or a
#: supervisor's :attr:`~repro.serve.supervisor.ClusterStats.tenants`);
#: a field absent from every block simply renders nothing.
_TENANT_COUNTERS = (
    ("requests", "tenant_requests_total", "Requests received per tenant."),
    ("warm_serves", "tenant_warm_serves_total", "Warm serves per tenant."),
    ("cold_serves", "tenant_cold_serves_total", "Cold serves per tenant."),
    ("dedup_hits", "tenant_dedup_hits_total", "In-flight dedup joins per tenant."),
    ("errors", "tenant_errors_total", "Failed requests per tenant."),
    (
        "rejected",
        "tenant_quota_rejections_total",
        "Submissions refused over the tenant's admission quota.",
    ),
)

_TENANT_GAUGES = (
    ("in_flight", "tenant_in_flight", "Outstanding requests per tenant."),
    ("warm_ratio", "tenant_warm_ratio", "Warm fraction of served requests per tenant."),
    (
        "p50_latency_ms",
        "tenant_latency_p50_ms",
        "Median serve latency per tenant (merged histograms).",
    ),
    (
        "p95_latency_ms",
        "tenant_latency_p95_ms",
        "95th-percentile serve latency per tenant (merged histograms).",
    ),
)


def _render_tenant_metrics(tenants: dict, prefix: str) -> list[str]:
    """Per-tenant sample blocks, one metric family per known field."""
    blocks: list[str] = []
    for series, kind in ((_TENANT_COUNTERS, "counter"), (_TENANT_GAUGES, "gauge")):
        for attr, metric, help_text in series:
            samples = [
                (tenant, block[attr])
                for tenant, block in sorted(tenants.items())
                if isinstance(block, dict) and attr in block
            ]
            if not samples:
                continue
            lines = _header(f"{prefix}_{metric}", kind, help_text)
            lines.extend(
                _sample(f"{prefix}_{metric}", value, {"tenant": tenant})
                for tenant, value in samples
            )
            blocks.append("\n".join(lines))
    return blocks


_WIRE_COUNTERS = (
    ("messages_sent", "wire_messages_sent_total", "Request messages encoded for shards."),
    ("messages_received", "wire_messages_received_total", "Reply messages decoded."),
    ("flushes", "wire_flushes_total", "Transport flushes carrying those messages."),
    ("bytes_sent", "wire_bytes_sent_total", "Encoded request bytes written."),
    ("bytes_received", "wire_bytes_received_total", "Reply bytes read."),
    ("encode_s", "wire_encode_seconds_total", "Wall time in message encoding."),
    ("decode_s", "wire_decode_seconds_total", "Wall time in reply decoding."),
    ("route_s", "wire_route_seconds_total", "Wall time in shard routing."),
    ("flush_s", "wire_flush_seconds_total", "Wall time in transport flushes."),
)


def render_server_metrics(snapshot, prefix: str = "repro") -> str:
    """A single server's :class:`MetricsSnapshot` as a text exposition."""
    blocks = [
        render_counter(f"{prefix}_{metric}", getattr(snapshot, attr), help_text)
        for attr, metric, help_text in _COUNTERS
    ]
    blocks.extend(
        render_gauge(f"{prefix}_{metric}", getattr(snapshot, attr), help_text)
        for attr, metric, help_text in _GAUGES
    )
    blocks.append(
        render_gauge(
            f"{prefix}_latency_p50_ms",
            float(snapshot.p50_latency_ms),
            "Median serve latency over the retained window.",
        )
    )
    blocks.append(
        render_gauge(
            f"{prefix}_latency_p95_ms",
            float(snapshot.p95_latency_ms),
            "95th-percentile serve latency over the retained window.",
        )
    )
    tenants = getattr(snapshot, "tenants", None)
    if tenants:
        blocks.extend(_render_tenant_metrics(tenants, prefix))
    return "\n".join(blocks) + "\n"


def render_cluster_metrics(stats, bucket_bounds_ms, prefix: str = "repro") -> str:
    """A :class:`ClusterStats` (counters + merged histograms + wire profile).

    Cluster-wide counters come labelless; the per-shard breakdown rides a
    ``shard`` label; the warm/cold latency histograms are summed across
    shards (the supervisor's own merge) and rendered per class.
    """
    blocks = [
        render_counter(f"{prefix}_{metric}", getattr(stats, attr), help_text)
        for attr, metric, help_text in _COUNTERS
    ]
    blocks.extend(
        render_gauge(f"{prefix}_{metric}", getattr(stats, attr), help_text)
        for attr, metric, help_text in _GAUGES
    )
    blocks.append(
        render_gauge(f"{prefix}_shards", len(stats.shards), "Live shards reporting.")
    )
    shard_lines = _header(
        f"{prefix}_shard_requests_total", "counter", "Requests served per shard."
    )
    for shard in stats.shards:
        shard_lines.append(
            _sample(
                f"{prefix}_shard_requests_total",
                shard.requests,
                {"shard": shard.shard_id},
            )
        )
    blocks.append("\n".join(shard_lines))
    for label, attribute in (("warm", "warm_histogram"), ("cold", "cold_histogram")):
        merged = [0] * (len(bucket_bounds_ms) + 1)
        for shard in stats.shards:
            for index, count in enumerate(getattr(shard, attribute)):
                if index < len(merged):
                    merged[index] += count
                else:
                    merged[-1] += count
        blocks.append(
            render_histogram(
                f"{prefix}_serve_latency_ms",
                tuple(merged),
                tuple(bucket_bounds_ms),
                "Serve latency by class, merged across shards (ms buckets).",
                labels={"class": label},
            )
        )
    wire = getattr(stats, "wire", None)
    if wire is not None:
        blocks.extend(
            render_counter(f"{prefix}_{metric}", getattr(wire, attr), help_text)
            for attr, metric, help_text in _WIRE_COUNTERS
        )
    tenants = getattr(stats, "tenants", None)
    if tenants:
        blocks.extend(_render_tenant_metrics(tenants, prefix))
    return "\n".join(blocks) + "\n"
