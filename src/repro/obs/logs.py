"""Structured logging: namespaced loggers, trace correlation, JSON lines.

Every serving module logs through a namespaced child of ``repro`` (e.g.
``repro.serve.supervisor``), so operators tune verbosity per subsystem with
standard :mod:`logging` configuration.  :func:`configure_logging` — what
the CLI's ``--log-level`` / ``--log-json`` flags call — installs one
handler on the ``repro`` root with either a human-readable line format or
JSON lines, both carrying the **active trace id** (via
:class:`TraceCorrelationFilter`) so a log line written anywhere under a
traced request joins that request's trace in search.
"""

from __future__ import annotations

import json
import logging
import time

from repro.obs.trace import current_trace_id

__all__ = [
    "JsonLineFormatter",
    "TraceCorrelationFilter",
    "configure_logging",
    "get_logger",
]

#: The namespace root every repro logger hangs off.
ROOT_LOGGER = "repro"

_TEXT_FORMAT = (
    "%(asctime)s %(levelname)-7s %(name)s [%(trace_id)s] %(message)s"
)


def get_logger(name: str) -> logging.Logger:
    """A namespaced module logger (``repro.``-prefixed, always)."""
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


class TraceCorrelationFilter(logging.Filter):
    """Stamps every record with the active trace id (``-`` when untraced).

    A filter rather than a formatter concern so *any* handler or format —
    including operator-supplied ones — can reference ``%(trace_id)s``.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        record.trace_id = current_trace_id() or "-"
        return True


class JsonLineFormatter(logging.Formatter):
    """One JSON object per line: machine-shippable structured logs."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
            "trace_id": getattr(record, "trace_id", None) or current_trace_id() or "-",
        }
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


def configure_logging(
    level: str = "info", json_lines: bool = False, stream=None
) -> logging.Logger:
    """Install the repro logging pipeline; returns the ``repro`` root logger.

    Idempotent: repeated calls (tests, re-entrant CLIs) replace the
    previously installed handler instead of stacking duplicates.  Only the
    ``repro`` namespace is touched — the process-global root logger and any
    application handlers are left alone.
    """
    resolved = logging.getLevelName(level.upper())
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {level!r}")
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler._repro_obs_handler = True
    handler.addFilter(TraceCorrelationFilter())
    if json_lines:
        handler.setFormatter(JsonLineFormatter())
    else:
        formatter = logging.Formatter(_TEXT_FORMAT)
        formatter.converter = time.gmtime
        handler.setFormatter(formatter)
    root.addHandler(handler)
    root.setLevel(resolved)
    # Propagation stays on: the process root has no handlers in normal CLI
    # use (so nothing double-prints), and root-level capture — pytest's
    # caplog, an application's own root handler — keeps seeing records.
    return root
