"""Observability plane: distributed tracing, structured logs, metrics export.

``repro.obs`` is the dependency-free (stdlib-only) subsystem every other
layer reports into:

* :mod:`repro.obs.trace` — request-scoped distributed tracing: a
  :class:`~repro.obs.trace.Tracer` issues trace/span ids, propagates them
  across threads via :mod:`contextvars` and across shard boundaries via an
  additive ``trace`` field on the wire envelope, and lands completed spans
  in a bounded in-process ring buffer.
* :mod:`repro.obs.export` — Chrome trace-event JSON export (loadable in
  Perfetto or ``chrome://tracing``) for merged cluster traces.
* :mod:`repro.obs.logs` — structured logging: namespaced per-module
  loggers, a trace-id correlation field on every record, optional JSON
  lines output.
* :mod:`repro.obs.promtext` — Prometheus-style text exposition of the
  serving tier's counters and latency histograms.
* :mod:`repro.obs.http` — the ``--metrics-port`` HTTP endpoint serving
  ``/metrics`` (text exposition) and ``/trace.json`` (trace export).

The layering rule is strict: :mod:`repro.obs` imports nothing from the rest
of ``repro`` (so the compiler driver, the serve tier, and the CLI may all
import it without cycles), and instrumentation is sampling-gated so the
untraced hot path pays one context-variable read and nothing else.
"""

from repro.obs.trace import (
    Span,
    SpanBuffer,
    TraceHandle,
    Tracer,
    current,
    record,
    span,
)
from repro.obs.export import chrome_trace, instant_event, write_chrome_trace
from repro.obs.logs import configure_logging, get_logger
from repro.obs.promtext import render_cluster_metrics, render_server_metrics
from repro.obs.http import MetricsEndpoint

__all__ = [
    "Span",
    "SpanBuffer",
    "TraceHandle",
    "Tracer",
    "current",
    "record",
    "span",
    "chrome_trace",
    "instant_event",
    "write_chrome_trace",
    "configure_logging",
    "get_logger",
    "render_cluster_metrics",
    "render_server_metrics",
    "MetricsEndpoint",
]
