"""Figure 1: the headline 256-bit NTT comparison.

MoMA on the RTX 4090 (a consumer GPU) against the state-of-the-art
cryptographic acceleration library (ICICLE on an H100) and an ASIC (FPMM):
the paper reports a 14x average speedup over ICICLE and near-ASIC
performance.  The figure is the 256-bit panel of Figure 3 restricted to the
series shown in Figure 1.
"""

from __future__ import annotations

from repro.core.driver import CompilerSession
from repro.evaluation.common import FigureResult, geometric_mean_ratio
from repro.evaluation.fig3_ntt import DEFAULT_SIZES, run_figure3_panel

__all__ = ["run_figure1", "headline_speedups"]

#: Series shown in Figure 1 (subset of the 256-bit Figure 3 panel).
FIGURE1_SERIES = ("MoMA (RTX 4090)", "MoMA (H100)", "MoMA (V100)", "ICICLE", "FPMM")


def run_figure1(
    sizes: tuple[int, ...] = DEFAULT_SIZES, session: CompilerSession | None = None
) -> FigureResult:
    """Regenerate Figure 1 (256-bit NTT across GPUs and ASIC)."""
    panel = run_figure3_panel(256, sizes, session=session)
    series = [panel.get(name) for name in FIGURE1_SERIES]
    return FigureResult(
        figure="Figure 1",
        title="256-bit NTT on GPUs and ASIC (lower is better)",
        x_label="NTT size",
        y_label="ns / butterfly",
        series=series,
        notes=list(panel.notes),
    )


def headline_speedups(
    sizes: tuple[int, ...] = DEFAULT_SIZES, session: CompilerSession | None = None
) -> dict[str, float]:
    """The two headline numbers of Figure 1's caption.

    Returns the average speedup of MoMA on the RTX 4090 over ICICLE on the
    H100, and the ratio of MoMA (RTX 4090) to the FPMM ASIC (values close to
    or below 1 mean "near-ASIC performance").
    """
    figure = run_figure1(sizes, session=session)
    moma_rtx = figure.get("MoMA (RTX 4090)")
    return {
        "speedup_vs_icicle_h100": geometric_mean_ratio(figure.get("ICICLE"), moma_rtx),
        "ratio_to_fpmm_asic": geometric_mean_ratio(moma_rtx, figure.get("FPMM")),
    }
