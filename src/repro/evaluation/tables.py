"""Tables 1 and 2 of the paper, regenerated from the implementation.

Table 1 is the MoMA rewrite-rule set; here it is reconstructed from the live
rule registry so documentation and code cannot drift apart.  Table 2 is the
GPU specification table, rendered from the device catalog.
"""

from __future__ import annotations

from repro.core.rewrite.rules_expand import EXPANSIONS
from repro.core.rewrite.rules_split import SPLITS
from repro.gpu.device import DEVICES

__all__ = ["table1_rule_inventory", "table2_devices", "format_table2"]


def table1_rule_inventory() -> list[dict[str, str]]:
    """The rewrite rules implementing Table 1, with their paper counterparts."""
    paper_rules = {
        "addmod": "(22)-(24): wide add, compare, conditional subtract",
        "submod": "Eq. 3: compare, wrap-around subtract, add-back, select",
        "mulmod": "Listing 4: Barrett multiply/shift/multiply/subtract",
        "reduce": "(24): conditional subtraction",
        "add": "(22), (23), (29): carry-chain addition",
        "sub": "(25): borrow-chain subtraction",
        "mul": "(28) schoolbook / Eq. 9 Karatsuba",
        "mullo": "Listing 4 optimization: low half of r*q only",
        "lt": "(26): lexicographic limb comparison",
        "le": "(26) adapted to <= for canonical residues",
        "eq": "(27): conjunction of limb equalities",
        "select": "implicit per-limb conditional assignment",
        "mov": "implicit per-limb assignment",
        "shr": "Listing 4 _qshr: cross-limb constant shift",
        "shl": "cross-limb constant shift (mirror of _qshr)",
        "and": "flag/limb bitwise combination",
        "or": "flag/limb bitwise combination",
    }
    inventory = []
    for op, rule in list(EXPANSIONS.items()) + list(SPLITS.items()):
        inventory.append(
            {
                "operation": op.value,
                "kind": "expansion" if op in EXPANSIONS else "split",
                "implementation": f"{rule.__module__}.{rule.__name__}",
                "paper_rule": paper_rules.get(op.value, ""),
            }
        )
    return inventory


def table2_devices() -> list[dict[str, object]]:
    """Table 2 rows: the GPUs used for benchmarking."""
    rows = []
    for device in DEVICES.values():
        rows.append(
            {
                "Model": device.marketing_name,
                "#Cores": device.cuda_cores,
                "Max Freq.": f"{device.max_clock_mhz} MHz",
                "RAM Size": f"{device.memory_gb} GB",
                "Bus Type": device.memory_type,
                "Toolkit": device.toolkit,
            }
        )
    return rows


def format_table2() -> str:
    """Render Table 2 as aligned text."""
    rows = table2_devices()
    columns = list(rows[0].keys())
    widths = {
        column: max(len(column), *(len(str(row[column])) for row in rows)) for column in columns
    }
    lines = ["  ".join(column.ljust(widths[column]) for column in columns)]
    for row in rows:
        lines.append("  ".join(str(row[column]).ljust(widths[column]) for column in columns))
    return "\n".join(lines)
