"""Figure 2: BLAS operations at 128/256/512/1,024 bits on CPU and GPU.

The paper runs four finite-field BLAS kernels over 2^20 elements and reports
steady-state runtime per element for MoMA (V100), GRNS (V100) and GMP (Xeon,
OpenMP).  Here the MoMA number comes from the GPU cost model applied to the
actual generated kernels and the GMP / GRNS curves come from the documented
anchors in :mod:`repro.baselines.published` (see that module and
EXPERIMENTS.md for provenance).
"""

from __future__ import annotations

from repro.baselines.published import blas_baselines
from repro.core.driver import CompilerSession
from repro.errors import EvaluationError
from repro.evaluation.common import FigureResult, Series
from repro.gpu.simulator import estimate_blas
from repro.kernels.blas_gen import BLAS_OPERATIONS
from repro.kernels.config import KernelConfig

__all__ = ["BIT_WIDTHS", "run_figure2", "run_figure2_panel"]

#: The four panels of Figure 2.
BIT_WIDTHS = (128, 256, 512, 1024)

#: Total elements processed per measurement (Section 5.2).
ELEMENTS = 1 << 20

#: The GPU used for the MoMA and GRNS measurements in Figure 2.
MOMA_DEVICE = "v100"


def run_figure2_panel(
    bits: int, elements: int = ELEMENTS, session: CompilerSession | None = None
) -> FigureResult:
    """Regenerate one panel (one bit-width) of Figure 2.

    The series map each BLAS operation to nanoseconds per element for MoMA,
    GRNS and GMP.  Operation names are used as x-axis categories (encoded by
    index, in the order of :data:`BLAS_OPERATIONS`).
    """
    if bits not in BIT_WIDTHS:
        raise EvaluationError(f"Figure 2 covers bit-widths {BIT_WIDTHS}, not {bits}")
    config = KernelConfig(bits=bits)
    moma_points: dict[int, float] = {}
    gmp_points: dict[int, float] = {}
    grns_points: dict[int, float] = {}
    for index, operation in enumerate(BLAS_OPERATIONS):
        estimate = estimate_blas(operation, config, MOMA_DEVICE, elements, session=session)
        moma_points[index] = estimate.per_element_ns
        for anchor in blas_baselines(operation, bits):
            target = gmp_points if anchor.name == "GMP" else grns_points
            target[index] = estimate.per_element_ns * anchor.factor_at(elements)
    result = FigureResult(
        figure=f"Figure 2 ({bits}-bit)",
        title=f"BLAS operations, {bits}-bit operands, runtime per element",
        x_label="operation",
        y_label="ns / element",
        series=[
            Series("MoMA", "NVIDIA V100 (modelled)", moma_points),
            Series("GRNS", "NVIDIA V100 (anchored)", grns_points),
            Series("GMP", "Intel Xeon 6248 (anchored)", gmp_points),
        ],
        notes=[
            "x-axis categories: " + ", ".join(
                f"{index}={operation}" for index, operation in enumerate(BLAS_OPERATIONS)
            ),
            f"{elements} elements per measurement, steady-state batch",
        ],
    )
    return result


def run_figure2(
    elements: int = ELEMENTS, session: CompilerSession | None = None
) -> dict[int, FigureResult]:
    """Regenerate all four panels of Figure 2."""
    return {bits: run_figure2_panel(bits, elements, session=session) for bits in BIT_WIDTHS}
