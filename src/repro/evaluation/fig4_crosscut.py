"""Figure 4: 2^16-point NTT across input bit-widths (128 to 1,024).

A cross-cut of Figure 3 at a fixed transform size (2^16, the size with the
most comparable prior work): runtime per butterfly as a function of the input
bit-width for MoMA on the three GPUs, a GMP-based CPU NTT, and the published
systems relevant at each bit-width.
"""

from __future__ import annotations

from repro.baselines.bigint import gmp_cost_model_ns
from repro.baselines.published import ntt_baselines
from repro.core.driver import CompilerSession
from repro.evaluation.common import FigureResult, Series
from repro.evaluation.fig3_ntt import MOMA_DEVICES, _DEVICE_LABELS
from repro.gpu.simulator import estimate_ntt
from repro.kernels.config import KernelConfig

__all__ = ["CROSSCUT_SIZE", "CROSSCUT_BIT_WIDTHS", "run_figure4"]

#: The transform size of the cross-cut.
CROSSCUT_SIZE = 1 << 16

#: Bit-widths plotted in Figure 4.
CROSSCUT_BIT_WIDTHS = (128, 256, 384, 512, 768, 1024)


def _gmp_ntt_per_butterfly_ns(bits: int) -> float:
    """Per-butterfly cost of a GMP-based CPU NTT.

    One butterfly is one modular multiplication plus a modular addition and
    subtraction (Section 5.3); the GMP cost model of
    :mod:`repro.baselines.bigint` provides the per-operation costs, and a
    modest OpenMP scaling factor reflects the multi-core CPU the paper used.
    """
    single_thread = (
        gmp_cost_model_ns("vmul", bits)
        + gmp_cost_model_ns("vadd", bits)
        + gmp_cost_model_ns("vsub", bits)
    )
    openmp_cores = 20.0
    return single_thread / openmp_cores


def run_figure4(
    size: int = CROSSCUT_SIZE, session: CompilerSession | None = None
) -> FigureResult:
    """Regenerate Figure 4 (2^16-point NTT across bit-widths)."""
    moma_points: dict[str, dict[int, float]] = {device: {} for device in MOMA_DEVICES}
    gmp_points: dict[int, float] = {}
    published_points: dict[str, dict[int, float]] = {}
    published_platform: dict[str, str] = {}

    for bits in CROSSCUT_BIT_WIDTHS:
        config = KernelConfig(bits=bits)
        estimates = {
            device: estimate_ntt(config, size, device, session=session).per_butterfly_ns
            for device in MOMA_DEVICES
        }
        for device in MOMA_DEVICES:
            moma_points[device][bits] = estimates[device]
        gmp_points[bits] = _gmp_ntt_per_butterfly_ns(bits)
        try:
            anchors = ntt_baselines(bits)
        except Exception:
            anchors = ()
        for anchor in anchors:
            published_points.setdefault(anchor.name, {})[bits] = (
                estimates[anchor.reference_device] * anchor.factor_at(size)
            )
            published_platform.setdefault(anchor.name, anchor.platform)

    series = [
        Series(_DEVICE_LABELS[device], device, moma_points[device]) for device in MOMA_DEVICES
    ]
    series.append(Series("GMP-NTT", "CPU (OpenMP)", gmp_points))
    for name, points in published_points.items():
        series.append(Series(name, published_platform[name], points))

    return FigureResult(
        figure="Figure 4",
        title=f"{size}-point NTT across input bit-widths",
        x_label="input bit-width",
        y_label="ns / butterfly",
        series=series,
        notes=[
            "cross-cut of Figure 3 at 2^16 points",
            "published systems plotted only at the bit-widths they support",
        ],
    )
