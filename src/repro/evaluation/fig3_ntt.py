"""Figure 3: NTT runtime per butterfly across sizes, bit-widths and systems.

Four panels (128/256/384/768-bit inputs), x-axis transform sizes 2^8..2^22,
y-axis nanoseconds per butterfly (``2 * t_single / (n log2 n)``).  The MoMA
curves (H100, RTX 4090, V100) come from the GPU cost model applied to the
generated butterfly kernels; the published systems (ICICLE, GZKP, PipeZK,
RPU, FPMM, OpenFHE, AVX-NTT, Libsnark) come from the documented anchors in
:mod:`repro.baselines.published`.
"""

from __future__ import annotations

from repro.baselines.published import ntt_baselines
from repro.core.driver import CompilerSession
from repro.errors import EvaluationError
from repro.evaluation.common import FigureResult, Series
from repro.gpu.simulator import estimate_ntt
from repro.kernels.config import KernelConfig

__all__ = ["NTT_BIT_WIDTHS", "DEFAULT_SIZES", "run_figure3_panel", "run_figure3"]

#: The four panels of Figure 3.
NTT_BIT_WIDTHS = (128, 256, 384, 768)

#: Transform sizes evaluated in the paper (2^8 .. 2^22).
DEFAULT_SIZES = tuple(1 << k for k in range(8, 23))

#: MoMA devices plotted in every panel.
MOMA_DEVICES = ("h100", "rtx4090", "v100")

#: Device labels used for the series names.
_DEVICE_LABELS = {"h100": "MoMA (H100)", "rtx4090": "MoMA (RTX 4090)", "v100": "MoMA (V100)"}


def run_figure3_panel(
    bits: int,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    multiplication: str = "schoolbook",
    session: CompilerSession | None = None,
) -> FigureResult:
    """Regenerate one panel of Figure 3 for a given input bit-width."""
    if bits not in NTT_BIT_WIDTHS:
        raise EvaluationError(f"Figure 3 covers bit-widths {NTT_BIT_WIDTHS}, not {bits}")
    config = KernelConfig(bits=bits, multiplication=multiplication)

    moma_series: dict[str, dict[int, float]] = {device: {} for device in MOMA_DEVICES}
    for size in sizes:
        for device in MOMA_DEVICES:
            moma_series[device][size] = estimate_ntt(
                config, size, device, session=session
            ).per_butterfly_ns

    series = [
        Series(_DEVICE_LABELS[device], device, moma_series[device]) for device in MOMA_DEVICES
    ]
    for anchor in ntt_baselines(bits):
        points = {}
        for size in sizes:
            reference = moma_series[anchor.reference_device][size]
            points[size] = reference * anchor.factor_at(size)
        series.append(Series(anchor.name, anchor.platform, points))

    return FigureResult(
        figure=f"Figure 3 ({bits}-bit)",
        title=f"{bits}-bit NTT, runtime per butterfly vs transform size",
        x_label="NTT size",
        y_label="ns / butterfly",
        series=series,
        notes=[
            f"multiplication algorithm: {multiplication}",
            "published systems anchored to paper-reported ratios (see EXPERIMENTS.md)",
        ],
    )


def run_figure3(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    multiplication: str = "schoolbook",
    session: CompilerSession | None = None,
) -> dict[int, FigureResult]:
    """Regenerate all four panels of Figure 3."""
    return {
        bits: run_figure3_panel(bits, sizes, multiplication, session=session)
        for bits in NTT_BIT_WIDTHS
    }
