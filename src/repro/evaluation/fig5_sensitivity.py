"""Figure 5: sensitivity analyses on a 4,096-point NTT.

Two panels:

* Figure 5a — runtime of a 4,096-point NTT as the input bit-width grows from
  64 to 1,024 bits, on the H100 and the RTX 4090.
* Figure 5b — the same NTT built with the Karatsuba versus the schoolbook
  double-word multiplication, on the RTX 4090, across 128/256/384/768-bit
  inputs.
"""

from __future__ import annotations

from repro.core.driver import CompilerSession
from repro.evaluation.common import FigureResult, Series
from repro.gpu.simulator import estimate_ntt
from repro.kernels.config import KernelConfig

__all__ = [
    "SENSITIVITY_SIZE",
    "FIG5A_BIT_WIDTHS",
    "FIG5B_BIT_WIDTHS",
    "run_figure5a",
    "run_figure5b",
    "run_figure5b_tuned",
    "run_figure5b_served",
]

#: The fixed NTT size of both sensitivity analyses (Section 5.4).
SENSITIVITY_SIZE = 4096

#: Bit-widths swept in Figure 5a (64 to 1,024 bits).
FIG5A_BIT_WIDTHS = (64, 128, 192, 256, 320, 384, 448, 512, 576, 640, 768, 896, 1024)

#: Bit-widths compared in Figure 5b.
FIG5B_BIT_WIDTHS = (128, 256, 384, 768)


def run_figure5a(
    size: int = SENSITIVITY_SIZE, session: CompilerSession | None = None
) -> FigureResult:
    """Regenerate Figure 5a: NTT runtime versus input bit-width."""
    devices = ("h100", "rtx4090")
    points: dict[str, dict[int, float]] = {device: {} for device in devices}
    for bits in FIG5A_BIT_WIDTHS:
        config = KernelConfig(bits=bits)
        for device in devices:
            points[device][bits] = estimate_ntt(config, size, device, session=session).per_ntt_us
    return FigureResult(
        figure="Figure 5a",
        title=f"{size}-point NTT runtime vs input bit-width",
        x_label="input bit-width",
        y_label="us / NTT",
        series=[
            Series("H100", "NVIDIA H100", points["h100"]),
            Series("RTX 4090", "NVIDIA GeForce RTX 4090", points["rtx4090"]),
        ],
        notes=["single-transform steady-state runtime from the GPU cost model"],
    )


def run_figure5b(
    size: int = SENSITIVITY_SIZE, session: CompilerSession | None = None
) -> FigureResult:
    """Regenerate Figure 5b: Karatsuba versus schoolbook multiplication.

    Both series run on the RTX 4090 model; see EXPERIMENTS.md for the
    discussion of where the measured crossover differs from the paper's.
    """
    algorithms = ("schoolbook", "karatsuba")
    points: dict[str, dict[int, float]] = {algorithm: {} for algorithm in algorithms}
    for bits in FIG5B_BIT_WIDTHS:
        for algorithm in algorithms:
            config = KernelConfig(bits=bits, multiplication=algorithm)
            points[algorithm][bits] = estimate_ntt(
                config, size, "rtx4090", session=session
            ).per_ntt_us
    return FigureResult(
        figure="Figure 5b",
        title=f"{size}-point NTT: Karatsuba vs schoolbook multiplication (RTX 4090)",
        x_label="input bit-width",
        y_label="us / NTT",
        series=[
            Series("Schoolbook", "RTX 4090", points["schoolbook"]),
            Series("Karatsuba", "RTX 4090", points["karatsuba"]),
        ],
        notes=["generated-kernel operation counts drive both curves"],
    )


def run_figure5b_tuned(
    size: int = SENSITIVITY_SIZE,
    device: str = "rtx4090",
    session: CompilerSession | None = None,
    tuning_db=None,
) -> FigureResult:
    """The Figure 5b sweep with the autotuner choosing each configuration.

    Compares the paper-default configuration (schoolbook, 64-bit words,
    stage-per-launch) against the tuned winner for every bit-width — the
    "self-optimizing frontend" view of the sensitivity analysis.
    """
    # Imported lazily: repro.tune evaluates candidates through this package's
    # underlying simulator, not through the harnesses.
    from repro.tune import Autotuner, Workload

    tuner = Autotuner(session=session, db=tuning_db)
    default_points: dict[int, float] = {}
    tuned_points: dict[int, float] = {}
    speedups: list[str] = []
    for bits in FIG5B_BIT_WIDTHS:
        workload = Workload(kind="ntt", bits=bits, size=size)
        result = tuner.tune(workload, device)
        default_points[bits] = result.baseline_seconds * 1e6
        tuned_points[bits] = result.score_seconds * 1e6
        speedups.append(f"{bits}b: {result.speedup:.2f}x ({result.candidate.label()})")
    return FigureResult(
        figure="Figure 5b (tuned)",
        title=f"{size}-point NTT: paper-default vs autotuned configuration ({device})",
        x_label="input bit-width",
        y_label="us / NTT",
        series=[
            Series("Default", device, default_points),
            Series("Autotuned", device, tuned_points),
        ],
        notes=["modeled speedups: " + ", ".join(speedups)],
    )


def run_figure5b_served(
    size: int = SENSITIVITY_SIZE,
    device: str = "rtx4090",
    server=None,
    tuning_db=None,
) -> FigureResult:
    """The Figure 5b sweep served by a warm :class:`repro.serve.KernelServer`.

    First pass: every bit-width is requested cold (tune + compile), which is
    what warmup does from a recorded database.  Second pass: the same sweep
    is requested again and must be answered entirely warm — zero additional
    compilations, zero tuning-database accesses — which the notes record
    from the server's metrics.  The modeled runtimes equal the tuned
    harness's; what this view adds is the *serving* behaviour.
    """
    # Imported lazily: repro.serve drives this package's tuner and compiler,
    # not the other way around.
    from repro.serve import KernelServer, ServeRequest

    owns_server = server is None
    if owns_server:
        server = KernelServer(db=tuning_db, devices=(device,))
    try:
        requests = [
            ServeRequest(kind="ntt", bits=bits, size=size, device=device)
            for bits in FIG5B_BIT_WIDTHS
        ]
        for future in [server.submit(request) for request in requests]:
            future.result()  # cold pass (the warmup equivalent)

        compilations_before = server.session.stats().compilations
        db_lookups_before = server.db.stats().hits + server.db.stats().misses
        default_points: dict[int, float] = {}
        served_points: dict[int, float] = {}
        speedups: list[str] = []
        for request in requests:
            result = server.serve(request)
            assert result.warm, "second sweep must be answered from the resident table"
            bits = request.bits
            default_points[bits] = result.tuning.baseline_seconds * 1e6
            served_points[bits] = result.tuning.score_seconds * 1e6
            speedups.append(f"{bits}b: {result.tuning.speedup:.2f}x")
        compilations = server.session.stats().compilations - compilations_before
        db_stats = server.db.stats()
        db_lookups = db_stats.hits + db_stats.misses - db_lookups_before
        snapshot = server.metrics_snapshot()
        return FigureResult(
            figure="Figure 5b (served)",
            title=f"{size}-point NTT: paper-default vs served tuned configuration ({device})",
            x_label="input bit-width",
            y_label="us / NTT",
            series=[
                Series("Default", device, default_points),
                Series("Served (tuned)", device, served_points),
            ],
            notes=[
                "modeled speedups: " + ", ".join(speedups),
                f"warm sweep: {len(requests)} requests, {compilations} compilations, "
                f"{db_lookups} tuning-db lookups, "
                f"warm p50 {snapshot.warm_p50_latency_ms:.3f} ms",
            ],
        )
    finally:
        if owns_server:
            server.close()
