"""Per-figure evaluation harnesses regenerating the paper's results."""

from repro.evaluation.common import FigureResult, Series, format_table, geometric_mean_ratio
from repro.evaluation.fig1_headline import headline_speedups, run_figure1
from repro.evaluation.fig2_blas import run_figure2, run_figure2_panel
from repro.evaluation.fig3_ntt import run_figure3, run_figure3_panel
from repro.evaluation.fig4_crosscut import run_figure4
from repro.evaluation.fig5_sensitivity import (
    run_figure5a,
    run_figure5b,
    run_figure5b_served,
    run_figure5b_tuned,
)
from repro.evaluation.tables import format_table2, table1_rule_inventory, table2_devices

__all__ = [
    "FigureResult",
    "Series",
    "format_table",
    "geometric_mean_ratio",
    "headline_speedups",
    "run_figure1",
    "run_figure2",
    "run_figure2_panel",
    "run_figure3",
    "run_figure3_panel",
    "run_figure4",
    "run_figure5a",
    "run_figure5b",
    "run_figure5b_served",
    "run_figure5b_tuned",
    "format_table2",
    "table1_rule_inventory",
    "table2_devices",
]
