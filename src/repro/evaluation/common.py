"""Shared containers and formatting for the evaluation harnesses.

Each harness regenerates one of the paper's figures as a set of named data
series (system name -> {x: y}); :func:`format_table` renders those series the
way the paper's artifact prints its results (rows of runtimes), and
:class:`FigureResult` carries enough metadata for EXPERIMENTS.md and the
benchmark assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EvaluationError

__all__ = ["Series", "FigureResult", "format_table", "geometric_mean_ratio"]


@dataclass(frozen=True)
class Series:
    """One curve of a figure: a named mapping from x-value to measurement."""

    name: str
    platform: str
    points: dict[int, float]

    def at(self, x: int) -> float:
        """The y-value at ``x`` (raising if the series has no such point)."""
        if x not in self.points:
            raise EvaluationError(f"series {self.name!r} has no point at {x}")
        return self.points[x]

    def xs(self) -> list[int]:
        """Sorted x-values."""
        return sorted(self.points)


@dataclass
class FigureResult:
    """A regenerated figure: axis descriptions plus its data series."""

    figure: str
    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def get(self, name: str) -> Series:
        """Find a series by name."""
        for series in self.series:
            if series.name == name:
                return series
        raise EvaluationError(f"figure {self.figure} has no series named {name!r}")

    def names(self) -> list[str]:
        """All series names, in insertion order."""
        return [series.name for series in self.series]


def geometric_mean_ratio(numerator: Series, denominator: Series) -> float:
    """Geometric-mean ratio numerator/denominator over their common x-values.

    This is how the paper summarises speedups ("outperforms ... by an average
    of N times"): the average of per-point ratios across transform sizes.
    """
    common = sorted(set(numerator.points) & set(denominator.points))
    if not common:
        raise EvaluationError(
            f"series {numerator.name!r} and {denominator.name!r} share no x-values"
        )
    product = 1.0
    for x in common:
        if denominator.points[x] <= 0:
            raise EvaluationError("ratios require positive measurements")
        product *= numerator.points[x] / denominator.points[x]
    return product ** (1.0 / len(common))


def format_table(result: FigureResult, float_format: str = "{:10.3f}") -> str:
    """Render a figure's series as an aligned text table (x-values as rows)."""
    xs = sorted({x for series in result.series for x in series.points})
    header = [f"{result.x_label:>14}"] + [f"{series.name:>14}" for series in result.series]
    lines = [f"# {result.figure}: {result.title}", f"# y-axis: {result.y_label}"]
    lines.append(" ".join(header))
    for x in xs:
        row = [f"{x:>14}"]
        for series in result.series:
            if x in series.points:
                row.append(f"{float_format.format(series.points[x]):>14}")
            else:
                row.append(f"{'-':>14}")
        lines.append(" ".join(row))
    for note in result.notes:
        lines.append(f"# {note}")
    return "\n".join(lines)
