"""The replay engine: drive a serving tier through a trace, faithfully.

Replays a :class:`~repro.loadgen.trace.Trace` against anything with the
server front door — a :class:`~repro.serve.KernelServer` or a
:class:`~repro.serve.supervisor.ShardSupervisor` (local pipe shards or TCP
``--connect`` shards; the engine never cares which).  Per-request deadlines
ride :meth:`submit`'s ``deadline_ms`` onto the wire, where a shard sheds
late results; the engine additionally counts a *client-observed* miss for
any request whose latency exceeded its budget, so deadline accounting works
against a single in-process server too.

**Determinism.**  The replay hot path calls nothing from the ``random``
module (the trace generator's seeded instance is the harness's only RNG) —
a replayed trace is a pure function of the trace document and the cluster's
behaviour, which is what makes byte-identical trace replay meaningful.

**Fault injection.**  A :class:`ReplayFault` runs an arbitrary action —
typically :meth:`~repro.serve.supervisor.ShardSupervisor.kill_shard` — the
moment a configurable fraction of the trace has been injected, and the
engine records when it fired.  The SLO reporter derives the recovery window
(fault time → first completion of a request submitted after the fault) from
the per-request timeline, and the chaos test asserts zero lost requests
across the kill: every future resolves, because the supervisor re-routes a
dead shard's pending work to its ring successors.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Callable

from repro.errors import DeadlineExceededError, LoadGenError, ReproError
from repro.tenancy import DEFAULT_TENANT
from repro.loadgen.trace import ARRIVAL_CLOSED, Trace

__all__ = ["ReplayFault", "ReplayResult", "RequestOutcome", "replay"]

#: How long the engine waits for one straggler future after the last
#: injection before declaring the request lost (a lost request is a harness
#: failure — the supervisor's recovery machinery must resolve every future).
DEFAULT_RESULT_TIMEOUT_S = 120.0


@dataclass(frozen=True)
class RequestOutcome:
    """One replayed request's fate, on the client-observed timeline.

    Timestamps are seconds relative to replay start.  ``ok`` is a served
    result; ``deadline_missed`` covers both shard-side sheds (the
    :class:`~repro.errors.DeadlineExceededError` reply) and client-observed
    budget overruns on otherwise-successful results; ``error`` is the
    exception class name for every other failure (a tenant over its quota
    shows up here as ``"QuotaExceededError"``); ``lost`` marks a future
    that never resolved — always a bug, and what the chaos test pins at
    zero.  ``tenant`` is the namespace the request was submitted under, so
    the SLO reporter can break the run out per tenant.
    """

    suite: str
    index: int
    submitted_at_s: float
    completed_at_s: float
    latency_s: float
    ok: bool
    warm: bool
    deadline_missed: bool
    error: str | None
    lost: bool = False
    tenant: str = DEFAULT_TENANT


@dataclass(frozen=True)
class ReplayFault:
    """Kill something mid-replay: run ``action`` at ``at_fraction`` progress.

    ``at_fraction`` is the fraction of the trace's events injected before
    the action fires (0.5 = the midpoint).  ``action`` is any zero-argument
    callable; the canonical one is
    ``lambda: supervisor.kill_shard(shard_id)``.  An action that raises
    aborts the replay — a broken fault hook must not masquerade as a
    surviving cluster.
    """

    action: Callable[[], None]
    at_fraction: float = 0.5

    def trigger_index(self, total_events: int) -> int:
        """The 0-based event index before which the action fires."""
        if not 0.0 <= self.at_fraction <= 1.0:
            raise LoadGenError(
                f"fault at_fraction must be within [0, 1], got {self.at_fraction}"
            )
        return min(total_events - 1, int(total_events * self.at_fraction))


@dataclass(frozen=True)
class ReplayResult:
    """The whole replay on one timeline: per-request outcomes plus markers."""

    trace: Trace
    outcomes: tuple[RequestOutcome, ...]
    duration_s: float
    fault_at_s: float | None = None

    @property
    def lost_requests(self) -> int:
        """Futures that never resolved — must be zero for a healthy tier."""
        return sum(1 for outcome in self.outcomes if outcome.lost)


class _Recorder:
    """Collects outcomes in event order, from any completing thread."""

    def __init__(self, started_monotonic: float, total: int) -> None:
        self._started = started_monotonic
        self._outcomes: list[RequestOutcome | None] = [None] * total
        self._lock = threading.Lock()

    def now(self) -> float:
        return time.monotonic() - self._started

    def record(self, position: int, outcome: RequestOutcome) -> None:
        with self._lock:
            self._outcomes[position] = outcome

    def outcomes(self) -> tuple[RequestOutcome, ...]:
        with self._lock:
            missing = [pos for pos, one in enumerate(self._outcomes) if one is None]
            if missing:
                raise LoadGenError(
                    f"replay finished with unrecorded outcomes at {missing}"
                )
            return tuple(self._outcomes)  # type: ignore[arg-type]


def _settle(event, recorder, position, submitted_at, future, timeout_s) -> None:
    """Wait for one future and classify its outcome."""
    suite, index, tenant = event.suite, event.index, event.tenant
    try:
        result = future.result(timeout=timeout_s)
    except DeadlineExceededError:
        completed = recorder.now()
        recorder.record(
            position,
            RequestOutcome(
                suite=suite,
                index=index,
                submitted_at_s=submitted_at,
                completed_at_s=completed,
                latency_s=completed - submitted_at,
                ok=False,
                warm=False,
                deadline_missed=True,
                error=None,
                tenant=tenant,
            ),
        )
        return
    except (FutureTimeoutError, TimeoutError):
        completed = recorder.now()
        recorder.record(
            position,
            RequestOutcome(
                suite=suite,
                index=index,
                submitted_at_s=submitted_at,
                completed_at_s=completed,
                latency_s=completed - submitted_at,
                ok=False,
                warm=False,
                deadline_missed=False,
                error="Timeout",
                lost=True,
                tenant=tenant,
            ),
        )
        return
    except BaseException as error:  # noqa: BLE001 - classified, not handled
        completed = recorder.now()
        recorder.record(
            position,
            RequestOutcome(
                suite=suite,
                index=index,
                submitted_at_s=submitted_at,
                completed_at_s=completed,
                latency_s=completed - submitted_at,
                ok=False,
                warm=False,
                deadline_missed=False,
                error=type(error).__name__,
                tenant=tenant,
            ),
        )
        return
    completed = recorder.now()
    latency_s = completed - submitted_at
    missed = (
        event.deadline_ms is not None and latency_s * 1000.0 > event.deadline_ms
    )
    recorder.record(
        position,
        RequestOutcome(
            suite=suite,
            index=index,
            submitted_at_s=submitted_at,
            completed_at_s=completed,
            latency_s=latency_s,
            ok=True,
            warm=bool(getattr(result, "warm", False)),
            deadline_missed=missed,
            error=None,
            tenant=tenant,
        ),
    )


def replay(
    server,
    trace: Trace,
    fault: ReplayFault | None = None,
    result_timeout_s: float = DEFAULT_RESULT_TIMEOUT_S,
) -> ReplayResult:
    """Replay ``trace`` against ``server``; returns the full outcome timeline.

    ``server`` is anything with the ``submit(request, deadline_ms=...)``
    front door.  Open-loop traces are injected on their fixed-rate schedule
    from this thread (results settle in the background and are collected at
    the end); closed-loop traces run ``trace.clients`` worker threads, each
    submitting its next event as soon as the previous result settles.
    """
    if not trace.events:
        raise LoadGenError("cannot replay an empty trace")
    events = trace.events
    fault_index = fault.trigger_index(len(events)) if fault is not None else None
    started = time.monotonic()
    recorder = _Recorder(started, len(events))
    fault_at_s: list[float] = []

    def maybe_inject(position: int) -> None:
        if fault is not None and position == fault_index:
            fault_at_s.append(recorder.now())
            fault.action()

    def submit(position: int):
        """Submit one event; returns (submitted_at, future | None)."""
        event = events[position]
        submitted_at = recorder.now()
        # The tenant kwarg rides along only when the event names one, so
        # untenanted traces still replay against pre-tenant server stand-ins
        # (the same additive-field discipline the wire protocol follows).
        kwargs = (
            {"tenant": event.tenant} if event.tenant != DEFAULT_TENANT else {}
        )
        try:
            future = server.submit(
                event.request(trace.device),
                deadline_ms=event.deadline_ms,
                **kwargs,
            )
        except ReproError as error:
            # A synchronous refusal (closed server, invalid request, a
            # tenant over its admission quota) is an outcome, not a crash:
            # record it and keep replaying.
            recorder.record(
                position,
                RequestOutcome(
                    suite=event.suite,
                    index=event.index,
                    submitted_at_s=submitted_at,
                    completed_at_s=submitted_at,
                    latency_s=0.0,
                    ok=False,
                    warm=False,
                    deadline_missed=False,
                    error=type(error).__name__,
                    tenant=event.tenant,
                ),
            )
            return submitted_at, None
        return submitted_at, future

    if trace.arrival == ARRIVAL_CLOSED:
        positions = iter(range(len(events)))
        cursor_lock = threading.Lock()
        failures: list[BaseException] = []

        def worker() -> None:
            try:
                while True:
                    with cursor_lock:
                        position = next(positions, None)
                        if position is None:
                            return
                        maybe_inject(position)
                    submitted_at, future = submit(position)
                    if future is not None:
                        _settle(
                            events[position],
                            recorder,
                            position,
                            submitted_at,
                            future,
                            result_timeout_s,
                        )
            except BaseException as error:  # noqa: BLE001 - re-raised below
                failures.append(error)

        threads = [
            threading.Thread(
                target=worker, name=f"repro-loadgen-client-{client}", daemon=True
            )
            for client in range(trace.clients or 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            # A harness bug (most likely a broken fault hook) must abort
            # the replay, not masquerade as a clean run with holes in it.
            raise failures[0]
    else:
        in_flight: list[tuple[int, float, object]] = []
        for position, event in enumerate(events):
            # Fixed-rate schedule: injection lag means the *cluster* fell
            # behind, never that the generator slowed down for it.
            target = (event.at_ms or 0.0) / 1000.0
            delay = target - recorder.now()
            if delay > 0:
                time.sleep(delay)
            maybe_inject(position)
            submitted_at, future = submit(position)
            if future is not None:
                in_flight.append((position, submitted_at, future))
        for position, submitted_at, future in in_flight:
            _settle(
                events[position],
                recorder,
                position,
                submitted_at,
                future,
                result_timeout_s,
            )

    return ReplayResult(
        trace=trace,
        outcomes=recorder.outcomes(),
        duration_s=recorder.now(),
        fault_at_s=fault_at_s[0] if fault_at_s else None,
    )
