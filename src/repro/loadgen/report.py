"""The SLO reporter: replay outcomes → a record in the BENCH artifact.

Turns a :class:`~repro.loadgen.replay.ReplayResult` into one
:class:`SLOReport` — client-observed p50/p95/p99 latency, warm ratio,
error and deadline-miss rates, throughput, and (after a fault injection)
the recovery window — optionally merged with the cluster's own view:
:class:`~repro.serve.supervisor.ClusterStats` (summed shard histograms)
and the replay window's :meth:`~repro.serve.metrics.WireSnapshot.delta`.

Reports land in ``benchmarks/BENCH_<sha>.json`` — the same per-commit
artifact CI uploads with the pytest-benchmark payload — under their own
``"loadgen_reports"`` key, **appended** without clobbering whatever the
benchmark run already wrote.  The shared read-merge-write helpers here
(:func:`merge_bench_payload`, :func:`bench_artifact_path`) are also what
``benchmarks/conftest.py`` uses to record the perf-floor entries, so the
BENCH trajectory is populated by local runs too, not only by CI's
``--benchmark-json`` flag.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
from dataclasses import dataclass
from pathlib import Path

from repro.tenancy import DEFAULT_TENANT
from repro.loadgen.replay import ReplayResult

__all__ = [
    "SLOReport",
    "append_loadgen_report",
    "bench_artifact_path",
    "build_slo_report",
    "merge_bench_payload",
    "resolve_sha",
]


def _percentile(sorted_values, q: float) -> float:
    """Exact nearest-rank percentile of pre-sorted values (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[rank]


@dataclass(frozen=True)
class SLOReport:
    """One replay's service-level summary, JSON-ready.

    Latency percentiles are **client-observed** (exact, from the per-request
    timeline — not the cluster's bucketed histograms, which ride along in
    ``cluster`` for cross-checking).  ``recovery_window_s`` is only set
    after a fault injection: the time from the fault to the first
    successful completion of a request *submitted after* the fault — how
    long the cluster's rebalance/re-dial took to show healthy service
    again.  ``tenants`` breaks the same client-observed numbers out per
    tenant namespace (including quota rejections); it stays ``None`` for
    untenanted replays.
    """

    suites: tuple[str, ...]
    seed: int
    arrival: str
    requests: int
    ok: int
    errors: int
    deadline_misses: int
    lost: int
    duration_s: float
    req_per_s: float
    warm_ratio: float
    error_rate: float
    deadline_miss_rate: float
    p50_latency_ms: float
    p95_latency_ms: float
    p99_latency_ms: float
    fault_at_s: float | None = None
    recovery_window_s: float | None = None
    cluster: dict | None = None
    wire: dict | None = None
    tenants: dict | None = None

    def to_payload(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["suites"] = list(self.suites)
        return payload

    def report(self) -> str:
        """Human-readable multi-line summary (the CLI's stdout)."""
        lines = [
            f"replayed      {self.requests} requests over "
            f"{len(self.suites)} suites ({', '.join(self.suites)}) "
            f"in {self.duration_s:.2f}s ({self.req_per_s:.1f} req/s, "
            f"{self.arrival}-loop, seed {self.seed})",
            f"outcomes      {self.ok} ok, {self.errors} errors "
            f"({self.error_rate * 100:.1f}%), {self.deadline_misses} "
            f"deadline misses ({self.deadline_miss_rate * 100:.1f}%), "
            f"{self.lost} lost",
            f"warm ratio    {self.warm_ratio * 100:.1f}%",
            f"latency       p50 {self.p50_latency_ms:.3f} ms, "
            f"p95 {self.p95_latency_ms:.3f} ms, "
            f"p99 {self.p99_latency_ms:.3f} ms (client-observed)",
        ]
        if self.fault_at_s is not None:
            window = (
                f"{self.recovery_window_s:.2f}s"
                if self.recovery_window_s is not None
                else "never recovered"
            )
            lines.append(
                f"fault         injected at {self.fault_at_s:.2f}s; "
                f"recovery window {window}"
            )
        for tenant, block in (self.tenants or {}).items():
            lines.append(
                f"tenant {tenant:<7}{block['requests']} requests, "
                f"{block['ok']} ok, {block['errors']} errors "
                f"({block['quota_rejections']} over quota), "
                f"{block['deadline_misses']} deadline misses; "
                f"warm {block['warm_ratio'] * 100:.1f}%, "
                f"p50 {block['p50_latency_ms']:.3f} ms, "
                f"p95 {block['p95_latency_ms']:.3f} ms, "
                f"p99 {block['p99_latency_ms']:.3f} ms"
            )
        return "\n".join(lines)


def _tenant_blocks(outcomes) -> dict | None:
    """Per-tenant SLO blocks, or ``None`` when only the default tenant ran."""
    tenants = sorted({one.tenant for one in outcomes})
    if tenants in ([], [DEFAULT_TENANT]):
        return None
    blocks: dict[str, dict] = {}
    for tenant in tenants:
        subset = [one for one in outcomes if one.tenant == tenant]
        served = [one for one in subset if one.ok]
        latencies_ms = sorted(one.latency_s * 1000.0 for one in served)
        blocks[tenant] = {
            "requests": len(subset),
            "ok": len(served),
            "errors": sum(
                1 for one in subset if one.error is not None and not one.lost
            ),
            "quota_rejections": sum(
                1 for one in subset if one.error == "QuotaExceededError"
            ),
            "deadline_misses": sum(1 for one in subset if one.deadline_missed),
            "lost": sum(1 for one in subset if one.lost),
            "warm_ratio": (
                sum(1 for one in served if one.warm) / len(served)
                if served
                else 0.0
            ),
            "p50_latency_ms": _percentile(latencies_ms, 0.50),
            "p95_latency_ms": _percentile(latencies_ms, 0.95),
            "p99_latency_ms": _percentile(latencies_ms, 0.99),
        }
    return blocks


def _recovery_window(result: ReplayResult) -> float | None:
    """Fault time → first *post-fault-submitted* successful completion."""
    if result.fault_at_s is None:
        return None
    recovered = [
        outcome.completed_at_s
        for outcome in result.outcomes
        if outcome.ok and outcome.submitted_at_s >= result.fault_at_s
    ]
    if not recovered:
        return None
    return max(0.0, min(recovered) - result.fault_at_s)


def build_slo_report(
    result: ReplayResult,
    cluster=None,
    wire_delta=None,
) -> SLOReport:
    """Assemble the SLO report for one replay.

    ``cluster`` is an optional
    :class:`~repro.serve.supervisor.ClusterStats` (the cluster's own
    summed-histogram view, recorded for cross-checking the client-observed
    numbers); ``wire_delta`` an optional
    :class:`~repro.serve.metrics.WireSnapshot` already differenced over
    the replay window (``after.delta(before)``).
    """
    outcomes = result.outcomes
    served = [one for one in outcomes if one.ok]
    latencies_ms = sorted(one.latency_s * 1000.0 for one in served)
    errors = sum(1 for one in outcomes if one.error is not None and not one.lost)
    misses = sum(1 for one in outcomes if one.deadline_missed)
    lost = result.lost_requests
    total = len(outcomes)
    cluster_payload = None
    if cluster is not None:
        cluster_payload = {
            "shards": len(cluster.shards),
            "requests": cluster.requests,
            "warm_serves": cluster.warm_serves,
            "cold_serves": cluster.cold_serves,
            "dedup_hits": cluster.dedup_hits,
            "errors": cluster.errors,
            "warm_rate": cluster.warm_rate,
            "p50_latency_ms": cluster.p50_latency_ms,
            "p95_latency_ms": cluster.p95_latency_ms,
        }
    return SLOReport(
        suites=result.trace.suites_used,
        seed=result.trace.seed,
        arrival=result.trace.arrival,
        requests=total,
        ok=len(served),
        errors=errors,
        deadline_misses=misses,
        lost=lost,
        duration_s=result.duration_s,
        req_per_s=total / result.duration_s if result.duration_s > 0 else 0.0,
        warm_ratio=(
            sum(1 for one in served if one.warm) / len(served) if served else 0.0
        ),
        error_rate=errors / total if total else 0.0,
        deadline_miss_rate=misses / total if total else 0.0,
        p50_latency_ms=_percentile(latencies_ms, 0.50),
        p95_latency_ms=_percentile(latencies_ms, 0.95),
        p99_latency_ms=_percentile(latencies_ms, 0.99),
        fault_at_s=result.fault_at_s,
        recovery_window_s=_recovery_window(result),
        cluster=cluster_payload,
        wire=dataclasses.asdict(wire_delta) if wire_delta is not None else None,
        tenants=_tenant_blocks(outcomes),
    )


# -- the BENCH artifact -------------------------------------------------------


def resolve_sha() -> str:
    """The commit this run measures: ``$GITHUB_SHA``, else git, else "local"."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        probed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "local"
    sha = probed.stdout.strip()
    return sha if probed.returncode == 0 and sha else "local"


def bench_artifact_path(directory=None, sha: str | None = None) -> Path:
    """``<directory>/BENCH_<sha>.json`` — the per-commit BENCH artifact.

    ``directory`` defaults to the repository's ``benchmarks/`` when run
    from a checkout, else the working directory (matching where CI's
    ``--benchmark-json`` writes and what the upload step globs).
    """
    if directory is None:
        checkout = Path.cwd() / "benchmarks"
        directory = checkout if checkout.is_dir() else Path.cwd()
    return Path(directory) / f"BENCH_{sha or resolve_sha()}.json"


def merge_bench_payload(path, key: str, entries) -> dict:
    """Append ``entries`` to the list at ``key`` in the BENCH file at ``path``.

    Read-merge-write: whatever the file already holds — pytest-benchmark's
    ``{"benchmarks": [...]}`` payload, earlier loadgen reports, earlier
    floor records — survives; only the named list grows.  An unreadable or
    non-object file is preserved aside under ``"previous"`` rather than
    clobbered.  Returns the merged document.
    """
    target = Path(path)
    document: dict = {}
    if target.exists():
        try:
            loaded = json.loads(target.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            loaded = None
        if isinstance(loaded, dict):
            document = loaded
        elif loaded is not None:
            document = {"previous": loaded}
    bucket = document.get(key)
    if not isinstance(bucket, list):
        bucket = []
    bucket = bucket + [dict(entry) for entry in entries]
    document[key] = bucket
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=1, sort_keys=True))
    return document


def append_loadgen_report(report: SLOReport, path=None) -> Path:
    """Append one SLO report to the BENCH artifact; returns the file path."""
    target = bench_artifact_path() if path is None else Path(path)
    merge_bench_payload(target, "loadgen_reports", [report.to_payload()])
    return target
