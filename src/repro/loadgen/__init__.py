"""Traffic replay harness: workload suites, deterministic traces, SLO reports.

The measurement substrate for the ROADMAP's "millions of users" claims:
instead of per-figure microbenchmarks, :mod:`repro.loadgen` replays *mixed*
served traffic — the FHE and ZKP example pipelines plus RNS conversion
chains, batched small-prime NTTs, and BLAS streams — against a real
serving tier and reports whether it held its service-level objectives.

Four layers, each importable on its own:

* :mod:`repro.loadgen.suites` — the **workload suite registry**: named
  bundles of :class:`~repro.serve.server.ServeRequest` specs (what the FHE
  pipeline or a ZKP commitment actually asks a cluster for).
* :mod:`repro.loadgen.trace` — the **deterministic trace generator**: a
  seeded RNG draws a weighted suite mix into a timestamped request trace
  (open-loop fixed-rate or closed-loop N-client arrivals) that serializes
  to canonical JSON, so the same seed always replays byte-identically.
* :mod:`repro.loadgen.replay` — the **replay engine**: drives a
  :class:`~repro.serve.supervisor.ShardSupervisor` (local pipes or TCP
  ``--connect``) or a single :class:`~repro.serve.KernelServer` through
  the trace, honoring per-request deadlines, with an optional
  fault-injection hook that kills a shard mid-replay.
* :mod:`repro.loadgen.report` — the **SLO reporter**: client-observed
  p50/p95/p99, warm ratio, error and deadline-miss rates, and throughput,
  merged with :class:`~repro.serve.supervisor.ClusterStats` histograms and
  the :class:`~repro.serve.metrics.WireSnapshot` delta, appended to the
  ``benchmarks/BENCH_<sha>.json`` artifact CI uploads per commit.

``python -m repro.loadgen`` is the operator front door; see
``docs/workloads.md`` for the suite catalogue and trace format.
"""

from __future__ import annotations

from repro.loadgen.report import SLOReport, append_loadgen_report, build_slo_report
from repro.loadgen.replay import ReplayFault, ReplayResult, RequestOutcome, replay
from repro.loadgen.suites import WorkloadSuite, get_suite, resolve_mix, suite_names
from repro.loadgen.trace import (
    TenantLoad,
    Trace,
    TraceConfig,
    TraceEvent,
    generate_trace,
    parse_tenants,
)

__all__ = [
    "WorkloadSuite",
    "get_suite",
    "suite_names",
    "resolve_mix",
    "TenantLoad",
    "Trace",
    "TraceConfig",
    "TraceEvent",
    "generate_trace",
    "parse_tenants",
    "replay",
    "ReplayFault",
    "ReplayResult",
    "RequestOutcome",
    "SLOReport",
    "build_slo_report",
    "append_loadgen_report",
]
