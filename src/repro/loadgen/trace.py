"""Deterministic trace generation: a seeded request schedule for replay.

A :class:`Trace` is the full description of one replayable traffic run:
which suite each request comes from, which spec within the suite, when it
arrives (open-loop) or how many clients drive it (closed-loop), and each
request's deadline budget.  Generation draws from a *local*
``random.Random(seed)`` — the only RNG in the whole harness, so:

* the same :class:`TraceConfig` (same seed) always generates the same
  trace, and :meth:`Trace.serialize` emits **canonical JSON** (sorted
  keys, fixed separators) so equal traces are byte-equal — the property
  CI's replay smoke and ``tests/loadgen/test_trace.py`` pin;
* replay itself (:mod:`repro.loadgen.replay`) never touches the ``random``
  module at all — a replayed trace is a pure function of its file.

Arrival models:

* ``"open"`` — open-loop, fixed rate: request *i* is injected at
  ``i / rate_rps`` seconds regardless of how fast results come back.  The
  honest load model: a slow cluster falls behind the schedule instead of
  silently slowing the generator down.
* ``"closed"`` — closed-loop, N clients: events carry no timestamps; the
  replay engine runs ``clients`` workers that each submit their next
  request as soon as the previous one resolves (classic think-time-zero
  closed loop, throughput-bounded by the cluster).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from repro.errors import LoadGenError
from repro.serve.server import ServeRequest
from repro.tenancy import DEFAULT_TENANT, validate_tenant
from repro.loadgen.suites import MIXED, get_suite, resolve_mix

__all__ = [
    "TRACE_VERSION",
    "ARRIVAL_OPEN",
    "ARRIVAL_CLOSED",
    "TenantLoad",
    "TraceConfig",
    "TraceEvent",
    "Trace",
    "generate_trace",
    "load_trace",
    "parse_tenants",
    "save_trace",
]

#: Trace document schema version; bumped on incompatible format changes.
TRACE_VERSION = 1

ARRIVAL_OPEN = "open"
ARRIVAL_CLOSED = "closed"
_ARRIVALS = (ARRIVAL_OPEN, ARRIVAL_CLOSED)


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's share of a generated trace.

    ``weight`` is its draw probability relative to the other tenants;
    ``deadline_ms`` overrides the trace-wide deadline for its requests;
    ``suites`` overrides the trace-wide suite mix (empty: inherit it).
    """

    name: str
    weight: float = 1.0
    deadline_ms: float | None = None
    suites: tuple[str, ...] = ()

    def validate(self) -> None:
        try:
            validate_tenant(self.name)
        except ValueError as error:
            raise LoadGenError(str(error)) from None
        if not self.weight > 0:
            raise LoadGenError(
                f"tenant {self.name!r} needs a positive weight, got {self.weight!r}"
            )
        if self.deadline_ms is not None and not self.deadline_ms > 0:
            raise LoadGenError(
                f"tenant {self.name!r} deadline_ms must be positive, "
                f"got {self.deadline_ms!r}"
            )
        if self.suites:
            resolve_mix(self.suites)  # raises on unknown suite names


def parse_tenants(text: str) -> tuple[TenantLoad, ...]:
    """Parse the CLI's ``--tenants`` value into :class:`TenantLoad` specs.

    Format: comma-separated ``name:weight[@deadline_ms][/suite+suite]``
    entries — e.g. ``a:0.7,b:0.3@250/fhe_pipeline+rns_conversion`` gives
    tenant ``a`` 70% of the draw under the trace-wide mix and deadline, and
    tenant ``b`` 30% with a 250 ms deadline drawn from its own two-suite
    mix.  Weight defaults to 1.0 when omitted.
    """
    tenants: list[TenantLoad] = []
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        core, _, suite_part = entry.partition("/")
        core, _, deadline_part = core.partition("@")
        name, _, weight_part = core.partition(":")
        try:
            weight = float(weight_part) if weight_part else 1.0
            deadline = float(deadline_part) if deadline_part else None
        except ValueError:
            raise LoadGenError(
                f"cannot parse tenant spec {entry!r} "
                "(want name:weight[@deadline_ms][/suite+suite])"
            ) from None
        load = TenantLoad(
            name=name,
            weight=weight,
            deadline_ms=deadline,
            suites=tuple(suite_part.split("+")) if suite_part else (),
        )
        load.validate()
        tenants.append(load)
    if not tenants:
        raise LoadGenError(f"--tenants {text!r} names no tenants")
    if len({load.name for load in tenants}) != len(tenants):
        raise LoadGenError(f"--tenants {text!r} repeats a tenant name")
    return tuple(tenants)


@dataclass(frozen=True)
class TraceConfig:
    """Everything :func:`generate_trace` needs; equal configs ⇒ equal traces.

    ``suites`` may name registered suites and/or ``"mixed"`` (every suite);
    duplicates weight the mix (see :func:`~repro.loadgen.suites.resolve_mix`).
    ``tenants`` adds a tenant dimension: each event is attributed to one
    tenant drawn by weight, optionally under that tenant's own suite mix
    and deadline.  An empty tuple (the default) generates exactly the
    byte-identical untenanted traces earlier builds did.
    """

    suites: tuple[str, ...] = (MIXED,)
    seed: int = 0
    requests: int = 64
    arrival: str = ARRIVAL_OPEN
    rate_rps: float = 50.0
    clients: int = 4
    deadline_ms: float | None = None
    device: str = "rtx4090"
    tenants: tuple[TenantLoad, ...] = ()

    def validate(self) -> None:
        for tenant in self.tenants:
            tenant.validate()
        if self.requests < 1:
            raise LoadGenError(
                f"a trace needs at least one request, got {self.requests}"
            )
        if self.arrival not in _ARRIVALS:
            raise LoadGenError(
                f"unknown arrival model {self.arrival!r} (use one of {_ARRIVALS})"
            )
        if self.arrival == ARRIVAL_OPEN and not self.rate_rps > 0:
            raise LoadGenError(
                f"open-loop rate must be positive, got {self.rate_rps!r}"
            )
        if self.arrival == ARRIVAL_CLOSED and self.clients < 1:
            raise LoadGenError(
                f"closed-loop client count must be positive, got {self.clients}"
            )
        if self.deadline_ms is not None and not self.deadline_ms > 0:
            raise LoadGenError(
                f"deadline_ms must be positive, got {self.deadline_ms!r}"
            )


@dataclass(frozen=True)
class TraceEvent:
    """One scheduled request: a (suite, spec index) reference plus timing.

    Events reference suite specs by index instead of embedding the request,
    keeping trace files compact and replay bound to the registry's
    definition of each suite.  ``at_ms`` is the open-loop injection time
    relative to replay start; ``None`` in closed-loop traces.  ``tenant``
    is the namespace the request is submitted under — serialized only when
    non-default, so untenanted traces stay byte-identical to earlier
    builds.
    """

    suite: str
    index: int
    at_ms: float | None = None
    deadline_ms: float | None = None
    tenant: str = DEFAULT_TENANT

    def request(self, device: str | None = None) -> ServeRequest:
        """The concrete request this event replays (validates the reference)."""
        specs = get_suite(self.suite).requests(device)
        if not 0 <= self.index < len(specs):
            raise LoadGenError(
                f"trace event references spec {self.index} of suite "
                f"{self.suite!r}, which has {len(specs)} specs"
            )
        return specs[self.index]

    def to_payload(self) -> dict:
        payload: dict = {"suite": self.suite, "index": self.index}
        if self.at_ms is not None:
            payload["at_ms"] = self.at_ms
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        if self.tenant != DEFAULT_TENANT:
            payload["tenant"] = self.tenant
        return payload


@dataclass(frozen=True)
class Trace:
    """A fully generated, replayable request schedule."""

    seed: int
    arrival: str
    device: str
    mix: dict[str, float] = field(compare=True)
    events: tuple[TraceEvent, ...] = ()
    rate_rps: float | None = None
    clients: int | None = None

    @property
    def suites_used(self) -> tuple[str, ...]:
        """The distinct suites the events actually draw from (sorted)."""
        return tuple(sorted({event.suite for event in self.events}))

    @property
    def tenants_used(self) -> tuple[str, ...]:
        """The distinct tenants the events are attributed to (sorted)."""
        return tuple(sorted({event.tenant for event in self.events}))

    def to_payload(self) -> dict:
        payload: dict = {
            "version": TRACE_VERSION,
            "seed": self.seed,
            "arrival": self.arrival,
            "device": self.device,
            "mix": {name: float(weight) for name, weight in self.mix.items()},
            "events": [event.to_payload() for event in self.events],
        }
        if self.rate_rps is not None:
            payload["rate_rps"] = self.rate_rps
        if self.clients is not None:
            payload["clients"] = self.clients
        return payload

    def serialize(self) -> bytes:
        """Canonical JSON bytes: equal traces serialize byte-identically."""
        return json.dumps(
            self.to_payload(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: dict) -> Trace:
        """Rebuild a trace from its JSON document, validating every field."""
        if not isinstance(payload, dict):
            raise LoadGenError(f"trace document is not an object: {payload!r}")
        version = payload.get("version")
        if version != TRACE_VERSION:
            raise LoadGenError(
                f"unsupported trace version {version!r} (this build reads "
                f"version {TRACE_VERSION})"
            )
        arrival = payload.get("arrival")
        if arrival not in _ARRIVALS:
            raise LoadGenError(f"trace has unknown arrival model {arrival!r}")
        raw_events = payload.get("events")
        if not isinstance(raw_events, list) or not raw_events:
            raise LoadGenError("trace carries no events list")
        events = []
        for position, raw in enumerate(raw_events):
            if not isinstance(raw, dict):
                raise LoadGenError(f"trace event {position} is not an object")
            suite = raw.get("suite")
            index = raw.get("index")
            if not isinstance(suite, str) or not isinstance(index, int):
                raise LoadGenError(
                    f"trace event {position} lacks a suite/index reference"
                )
            tenant = raw.get("tenant", DEFAULT_TENANT)
            try:
                validate_tenant(tenant)
            except (TypeError, ValueError) as error:
                raise LoadGenError(
                    f"trace event {position} has a bad tenant: {error}"
                ) from None
            event = TraceEvent(
                suite=suite,
                index=index,
                at_ms=_number_or_none(raw.get("at_ms")),
                deadline_ms=_number_or_none(raw.get("deadline_ms")),
                tenant=tenant,
            )
            event.request()  # validates the suite name and spec index
            events.append(event)
        mix = payload.get("mix")
        if not isinstance(mix, dict):
            raise LoadGenError("trace carries no suite mix")
        return cls(
            seed=int(payload.get("seed", 0)),
            arrival=arrival,
            device=str(payload.get("device", "rtx4090")),
            mix={str(name): float(weight) for name, weight in mix.items()},
            events=tuple(events),
            rate_rps=_number_or_none(payload.get("rate_rps")),
            clients=(
                int(payload["clients"])
                if isinstance(payload.get("clients"), int)
                else None
            ),
        )


def _number_or_none(value) -> float | None:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


def generate_trace(config: TraceConfig) -> Trace:
    """Generate the trace ``config`` describes — deterministically.

    All randomness comes from one local ``random.Random(config.seed)``:
    the weighted tenant draw (only when ``config.tenants`` is set — an
    untenanted config makes exactly the draws earlier builds did, keeping
    its canonical JSON byte-identical), the weighted suite draw, and the
    spec draw within the suite.  Open-loop injection times are the
    fixed-rate schedule ``i / rate_rps`` (rounded to microseconds so the
    canonical JSON is float-repr stable).
    """
    config.validate()
    weights = resolve_mix(config.suites)

    def _cumulative(mix: dict[str, float]) -> tuple[list[str], list[float]]:
        names = list(mix)
        cum_weights = []
        total = 0.0
        for name in names:
            total += mix[name]
            cum_weights.append(total)
        return names, cum_weights

    names, cum_weights = _cumulative(weights)
    tenant_cum: list[float] = []
    tenant_mixes: dict[str, tuple[list[str], list[float]]] = {}
    if config.tenants:
        total = 0.0
        for load in config.tenants:
            total += load.weight
            tenant_cum.append(total)
            tenant_mixes[load.name] = (
                _cumulative(resolve_mix(load.suites))
                if load.suites
                else (names, cum_weights)
            )
    rng = random.Random(config.seed)
    events = []
    for position in range(config.requests):
        tenant = DEFAULT_TENANT
        deadline_ms = config.deadline_ms
        suite_names, suite_cum = names, cum_weights
        if config.tenants:
            load = rng.choices(config.tenants, cum_weights=tenant_cum)[0]
            tenant = load.name
            suite_names, suite_cum = tenant_mixes[load.name]
            if load.deadline_ms is not None:
                deadline_ms = load.deadline_ms
        suite = get_suite(rng.choices(suite_names, cum_weights=suite_cum)[0])
        event = TraceEvent(
            suite=suite.name,
            index=rng.randrange(len(suite.specs)),
            at_ms=(
                round(position * 1000.0 / config.rate_rps, 3)
                if config.arrival == ARRIVAL_OPEN
                else None
            ),
            deadline_ms=deadline_ms,
            tenant=tenant,
        )
        events.append(event)
    return Trace(
        seed=config.seed,
        arrival=config.arrival,
        device=config.device,
        mix=weights,
        events=tuple(events),
        rate_rps=config.rate_rps if config.arrival == ARRIVAL_OPEN else None,
        clients=config.clients if config.arrival == ARRIVAL_CLOSED else None,
    )


def save_trace(path, trace: Trace):
    """Write the trace's canonical JSON to ``path``; returns the path."""
    from pathlib import Path

    target = Path(path)
    target.write_bytes(trace.serialize())
    return target


def load_trace(path) -> Trace:
    """Read a trace document back; raises :class:`LoadGenError` on damage."""
    from pathlib import Path

    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise LoadGenError(f"cannot read trace file {path}: {error}") from None
    except json.JSONDecodeError as error:
        raise LoadGenError(f"trace file {path} is not JSON: {error}") from None
    return Trace.from_payload(payload)
