"""``python -m repro.loadgen`` entry point."""

import sys

from repro.loadgen.cli import main

if __name__ == "__main__":
    sys.exit(main())
