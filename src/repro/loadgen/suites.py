"""The workload suite registry: named served-traffic shapes.

A :class:`WorkloadSuite` is a bundle of concrete
:class:`~repro.serve.server.ServeRequest` specs — the kernel families one
application repeatedly asks a serving tier for.  Two suites port the
repository's end-to-end examples onto the served tier (the FHE negacyclic
pipeline and the ZKP polynomial commitment, previously driving the compiler
directly); three more cover traffic shapes the examples do not: RNS
basis-conversion chains, batched small-prime NTTs, and mixed-width BLAS
streams.

Sizes here are deliberately small (transform lengths 16–64): a replay
measures *serving* behaviour — routing, residency, dedup, tuning batches,
the wire — not kernel arithmetic throughput, and small kernels keep a
multi-suite replay affordable in CI.  The per-family tuning and codegen
cost a cold request pays is size-independent enough for the SLO numbers to
be meaningful.

The registry is keyed by suite name; ``"mixed"`` is the pseudo-suite naming
every registered suite at equal weight (:func:`resolve_mix`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import LoadGenError
from repro.serve.server import ServeRequest

__all__ = [
    "MIXED",
    "SUITES",
    "WorkloadSuite",
    "get_suite",
    "resolve_mix",
    "suite_names",
]

#: The pseudo-suite name meaning "every registered suite, equally weighted".
MIXED = "mixed"


@dataclass(frozen=True)
class WorkloadSuite:
    """One named served-workload shape: a bundle of request specs.

    ``specs`` are built for the default device; :meth:`requests` rebinds
    them to the device a replay actually targets (a tuned configuration is
    per-device state, so the device is part of the request).
    """

    name: str
    description: str
    specs: tuple[ServeRequest, ...]

    def requests(self, device: str | None = None) -> tuple[ServeRequest, ...]:
        """The suite's request specs, rebound to ``device`` when given."""
        if device is None:
            return self.specs
        return tuple(
            dataclasses.replace(spec, device=device) for spec in self.specs
        )


def _fhe_pipeline() -> WorkloadSuite:
    # The served form of examples/fhe_negacyclic_pipeline.py: negacyclic
    # multiplication at a 128-bit residue is two forward NTTs, a pointwise
    # vmul, and an inverse NTT (the gentleman_sande variant), plus the
    # vadd the pipeline's RNS recombination leans on.
    return WorkloadSuite(
        name="fhe_pipeline",
        description=(
            "FHE negacyclic multiply at 128-bit residues: forward/inverse "
            "NTT butterflies plus the pointwise BLAS the pipeline chains"
        ),
        specs=(
            ServeRequest.ntt(bits=128, size=16),
            ServeRequest.ntt(bits=128, size=16, operation="gentleman_sande"),
            ServeRequest.ntt(bits=128, size=32),
            ServeRequest.blas("vmul", bits=128),
            ServeRequest.blas("vadd", bits=128),
        ),
    )


def _zkp_commitment() -> WorkloadSuite:
    # The served form of examples/zkp_polynomial_commitment.py: a 384-bit
    # pairing-friendly field, NTT-based polynomial evaluation plus the
    # axpy/vadd stream a commitment opening runs.
    return WorkloadSuite(
        name="zkp_commitment",
        description=(
            "ZKP polynomial commitment over a 384-bit field: evaluation "
            "NTTs and the axpy/vadd opening stream"
        ),
        specs=(
            ServeRequest.ntt(bits=384, size=16),
            ServeRequest.ntt(bits=384, size=16, operation="gentleman_sande"),
            ServeRequest.blas("axpy", bits=384),
            ServeRequest.blas("vadd", bits=384),
        ),
    )


def _rns_conversion() -> WorkloadSuite:
    # An RNS basis-conversion chain is per-channel word-sized arithmetic:
    # every channel of a make_basis() decomposition multiplies and
    # accumulates 64-bit vectors, so the served traffic is a stream of
    # single-word BLAS ops (the one case where the multi-word machinery
    # degenerates to its fastest path).
    return WorkloadSuite(
        name="rns_conversion",
        description=(
            "RNS basis-conversion chains: per-channel 64-bit vmul/axpy/vadd "
            "streams across a decomposed basis"
        ),
        specs=(
            ServeRequest.blas("vmul", bits=64),
            ServeRequest.blas("axpy", bits=64),
            ServeRequest.blas("vadd", bits=64),
            ServeRequest.blas("vsub", bits=64),
        ),
    )


def _small_prime_ntt() -> WorkloadSuite:
    # Batched small-prime NTTs: the RNS companion shape — many transforms
    # over word-sized moduli at a few lengths, exactly what an RNS-NTT
    # pipeline fans out per channel.
    return WorkloadSuite(
        name="small_prime_ntt",
        description=(
            "batched small-prime NTTs: 64-bit transforms at several "
            "lengths, the per-channel fan-out of an RNS-NTT pipeline"
        ),
        specs=(
            ServeRequest.ntt(bits=64, size=16),
            ServeRequest.ntt(bits=64, size=32),
            ServeRequest.ntt(bits=64, size=64),
            ServeRequest.ntt(bits=64, size=32, operation="gentleman_sande"),
        ),
    )


def _blas_streams() -> WorkloadSuite:
    # Mixed-width BLAS streams: one tier serving several operand widths at
    # once, so routing spreads families across shards and the resident
    # table holds kernels of very different codegen cost side by side.
    return WorkloadSuite(
        name="blas_streams",
        description=(
            "mixed-width BLAS streams: vector ops from 128 to 512 bits "
            "interleaved through one serving tier"
        ),
        specs=(
            ServeRequest.blas("vmul", bits=128),
            ServeRequest.blas("vadd", bits=256),
            ServeRequest.blas("vsub", bits=128),
            ServeRequest.blas("axpy", bits=256),
            ServeRequest.blas("vmul", bits=512),
        ),
    )


#: Every registered suite, keyed by name.  Insertion order is the stable
#: presentation order (``--list-suites``, docs, the mixed-weight default).
SUITES: dict[str, WorkloadSuite] = {
    suite.name: suite
    for suite in (
        _fhe_pipeline(),
        _zkp_commitment(),
        _rns_conversion(),
        _small_prime_ntt(),
        _blas_streams(),
    )
}


def suite_names() -> tuple[str, ...]:
    """Every registered suite name, in registry order."""
    return tuple(SUITES)


def get_suite(name: str) -> WorkloadSuite:
    """The registered suite called ``name``; raises on unknown names."""
    try:
        return SUITES[name]
    except KeyError:
        known = ", ".join(SUITES)
        raise LoadGenError(
            f"unknown workload suite {name!r} (known: {known}, or {MIXED!r})"
        ) from None


def resolve_mix(names) -> dict[str, float]:
    """Suite names (possibly including ``"mixed"``) as a weighted mix.

    Every named suite gets weight 1.0; ``"mixed"`` expands to all
    registered suites.  Duplicate names accumulate weight, so
    ``("fhe_pipeline", "fhe_pipeline", "rns_conversion")`` is a 2:1 mix.
    """
    weights: dict[str, float] = {}
    for name in names:
        expanded = suite_names() if name == MIXED else (get_suite(name).name,)
        for one in expanded:
            weights[one] = weights.get(one, 0.0) + 1.0
    if not weights:
        raise LoadGenError("a trace needs at least one workload suite")
    return weights
