"""``python -m repro.loadgen`` — generate, replay, and report on traffic.

The operator front door for the traffic-replay harness.  The default run
generates a seeded trace from the named suites, replays it against a local
cluster (``--shards N``, or TCP shards via ``--connect``), prints the SLO
report, and appends it to the per-commit ``benchmarks/BENCH_<sha>.json``
artifact.

Examples::

    # the acceptance run: a mixed-suite trace across 2 local shards
    python -m repro.loadgen --suite mixed --shards 2 --seed 7

    # save a trace, replay the exact same bytes later (or elsewhere)
    python -m repro.loadgen --suite fhe_pipeline --save-trace t.json --dry-run
    python -m repro.loadgen --replay t.json --shards 2

    # replay against remote TCP shards with a merged Chrome trace
    python -m repro.loadgen --connect 127.0.0.1:7401,127.0.0.1:7402 \\
        --trace replay-trace.json

    # chaos: kill shard 0 mid-replay and report the recovery window
    python -m repro.loadgen --shards 2 --kill-shard 0 --kill-at 0.5

Trace files and the Chrome trace are different artifacts: ``--save-trace``/
``--replay`` move the *request schedule* (byte-identical per seed), while
``--trace`` exports the replay's distributed-tracing spans for Perfetto and
``tools/trace_summary.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.errors import ReproError
from repro.gpu.device import DEVICES
from repro.obs import Tracer, configure_logging, instant_event, write_chrome_trace
from repro.serve import protocol
from repro.serve.server import KernelServer
from repro.serve.supervisor import ShardSupervisor
from repro.tenancy import DEFAULT_TENANT
from repro.tune.db import TuningDatabase
from repro.loadgen.replay import ReplayFault, replay
from repro.loadgen.report import (
    append_loadgen_report,
    bench_artifact_path,
    build_slo_report,
)
from repro.loadgen.suites import MIXED, SUITES
from repro.loadgen.trace import (
    ARRIVAL_CLOSED,
    ARRIVAL_OPEN,
    TraceConfig,
    generate_trace,
    load_trace,
    parse_tenants,
    save_trace,
)

__all__ = ["build_parser", "main"]

#: Default request count: enough for every suite in the mixed default to
#: appear and for warm serving to dominate, small enough for CI smoke runs.
DEFAULT_REQUESTS = 48


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.loadgen`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadgen",
        description="Traffic replay harness: deterministic served-workload "
        "traces (FHE/ZKP/RNS/NTT/BLAS suites), replayed against a kernel "
        "server or shard cluster, with SLO reports appended to the "
        "per-commit BENCH artifact.",
    )
    generation = parser.add_argument_group("trace generation")
    generation.add_argument(
        "--suite",
        action="append",
        default=None,
        metavar="NAME",
        help=f"workload suite(s) to mix (repeatable; {MIXED!r} = all; "
        f"default {MIXED!r}); duplicates weight the mix",
    )
    generation.add_argument(
        "--list-suites", action="store_true", help="print the suite registry and exit"
    )
    generation.add_argument(
        "--seed", type=int, default=0, help="trace RNG seed (default 0)"
    )
    generation.add_argument(
        "--requests",
        type=int,
        default=DEFAULT_REQUESTS,
        metavar="N",
        help=f"requests in the generated trace (default {DEFAULT_REQUESTS})",
    )
    generation.add_argument(
        "--arrival",
        choices=(ARRIVAL_OPEN, ARRIVAL_CLOSED),
        default=ARRIVAL_OPEN,
        help="arrival model: open-loop fixed rate or closed-loop N clients "
        f"(default {ARRIVAL_OPEN})",
    )
    generation.add_argument(
        "--rate",
        type=float,
        default=40.0,
        metavar="RPS",
        help="open-loop injection rate in requests/second (default 40)",
    )
    generation.add_argument(
        "--clients",
        type=int,
        default=4,
        metavar="N",
        help="closed-loop client threads (default 4)",
    )
    generation.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-request latency budget; late results are shed shard-side "
        "and counted as deadline misses (default: no deadline)",
    )
    generation.add_argument(
        "--tenants",
        metavar="SPEC",
        default=None,
        help="tenant mix for the generated trace: comma-separated "
        "name:weight[@deadline_ms][/suite+suite] entries, e.g. "
        "'a:0.7,b:0.3@250/fhe_pipeline+rns_conversion'; the replay report "
        "then breaks SLOs out per tenant (default: untenanted)",
    )
    generation.add_argument(
        "--save-trace",
        metavar="PATH",
        default=None,
        help="write the generated trace's canonical JSON to PATH",
    )
    generation.add_argument(
        "--replay",
        metavar="PATH",
        default=None,
        help="replay an existing trace file instead of generating one "
        "(generation flags are then ignored)",
    )
    generation.add_argument(
        "--dry-run",
        action="store_true",
        help="generate (and optionally --save-trace) without replaying",
    )
    cluster = parser.add_argument_group("serving tier")
    cluster.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="local shard processes; 1 replays against an in-process "
        "server (default: 1, or 0 with --connect)",
    )
    cluster.add_argument(
        "--connect",
        action="append",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="remote TCP shards (python -m repro.serve --listen ...) to "
        "replay against; repeatable or comma-separated",
    )
    cluster.add_argument(
        "--trust",
        choices=(protocol.TRUST_SOURCE, protocol.TRUST_PICKLED),
        default=protocol.TRUST_SOURCE,
        help="transport trust requested from --connect shards (default source)",
    )
    cluster.add_argument(
        "--db", metavar="PATH", default=None, help="persistent tuning database file"
    )
    cluster.add_argument(
        "--device",
        choices=sorted(DEVICES),
        default="rtx4090",
        help="device the trace's requests target (default rtx4090)",
    )
    cluster.add_argument(
        "--workers", type=int, default=4, help="worker threads per shard"
    )
    chaos = parser.add_argument_group("fault injection")
    chaos.add_argument(
        "--kill-shard",
        type=int,
        default=None,
        metavar="ID",
        help="kill this shard mid-replay (local: process terminated; "
        "remote: connections dropped) and report the recovery window",
    )
    chaos.add_argument(
        "--kill-at",
        type=float,
        default=0.5,
        metavar="FRACTION",
        help="fraction of the trace injected before --kill-shard fires "
        "(default 0.5)",
    )
    reporting = parser.add_argument_group("reporting")
    reporting.add_argument(
        "--bench",
        metavar="PATH",
        default=None,
        help="BENCH artifact file to append the SLO report to "
        "(default benchmarks/BENCH_<sha>.json)",
    )
    reporting.add_argument(
        "--no-bench",
        action="store_true",
        help="do not append the SLO report to the BENCH artifact",
    )
    reporting.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="also write the SLO report JSON on its own to PATH",
    )
    reporting.add_argument(
        "--stats",
        action="store_true",
        help="print the cluster's own stats view after the replay",
    )
    reporting.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="trace every replayed request end-to-end and write the merged "
        "Chrome trace-event JSON (with replay/fault instant markers) to PATH",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="warning",
        help="verbosity of the repro.* loggers on stderr (default warning)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit log records as JSON lines instead of text",
    )
    return parser


def _list_suites() -> int:
    for suite in SUITES.values():
        print(f"{suite.name:<16} {len(suite.specs)} specs — {suite.description}")
    print(f"{MIXED:<16} every suite above, equally weighted")
    return 0


def _connect_addresses(args: argparse.Namespace) -> tuple[str, ...]:
    """Flatten repeated/comma-separated ``--connect`` values."""
    if not args.connect:
        return ()
    return tuple(
        part.strip()
        for value in args.connect
        for part in value.split(",")
        if part.strip()
    )


def _resolve_trace(args: argparse.Namespace):
    if args.replay is not None:
        trace = load_trace(args.replay)
        print(
            f"trace       loaded {len(trace.events)} events from {args.replay} "
            f"(seed {trace.seed}, {trace.arrival}-loop)"
        )
        return trace
    config = TraceConfig(
        suites=tuple(args.suite) if args.suite else (MIXED,),
        seed=args.seed,
        requests=args.requests,
        arrival=args.arrival,
        rate_rps=args.rate,
        clients=args.clients,
        deadline_ms=args.deadline_ms,
        device=args.device,
        tenants=parse_tenants(args.tenants) if args.tenants else (),
    )
    trace = generate_trace(config)
    tenant_note = (
        f", tenants {', '.join(trace.tenants_used)}" if config.tenants else ""
    )
    print(
        f"trace       generated {len(trace.events)} events over "
        f"{len(trace.suites_used)} suites (seed {trace.seed}, "
        f"{trace.arrival}-loop{tenant_note})"
    )
    return trace


class _TracedSingleServer:
    """A :class:`KernelServer` submit wrapper that begins root spans.

    The supervisor begins each request's root span in its own ``submit``;
    a lone in-process server has no front door above ``submit``, so the
    replay CLI plays that role here — exactly like ``repro.serve``'s
    ``--once``/``--demo`` path.
    """

    def __init__(self, server: KernelServer) -> None:
        self._server = server

    def submit(
        self,
        request,
        deadline_ms: float | None = None,
        tenant: str = DEFAULT_TENANT,
    ):
        attributes = {"kind": request.kind, "bits": request.bits}
        if tenant != DEFAULT_TENANT:
            attributes["tenant"] = tenant
        handle = self._server.tracer.begin("client.request", **attributes)
        if handle is None:
            return self._server.submit(
                request, deadline_ms=deadline_ms, tenant=tenant
            )
        with handle.activate():
            future = self._server.submit(
                request, deadline_ms=deadline_ms, tenant=tenant
            )
        future.add_done_callback(lambda _done, _handle=handle: _handle.finish())
        return future


def _replay_instants(wall_started: float, result) -> list[dict]:
    """Instant markers pinning the replay timeline into the Chrome trace."""
    instants = [
        instant_event("replay.start", wall_started * 1e6, seed=result.trace.seed),
        instant_event(
            "replay.end",
            (wall_started + result.duration_s) * 1e6,
            requests=len(result.outcomes),
        ),
    ]
    if result.fault_at_s is not None:
        instants.append(
            instant_event(
                "fault.injected", (wall_started + result.fault_at_s) * 1e6
            )
        )
    return instants


def _emit_reports(args: argparse.Namespace, report) -> None:
    print(report.report())
    if args.report is not None:
        Path(args.report).write_text(json.dumps(report.to_payload(), indent=1))
        print(f"report      -> {args.report}")
    if not args.no_bench:
        target = (
            Path(args.bench) if args.bench is not None else bench_artifact_path()
        )
        append_loadgen_report(report, target)
        print(f"bench       SLO report appended -> {target}")


def _run_single(args: argparse.Namespace, trace, fault_requested: bool) -> int:
    if fault_requested:
        print(
            "error: --kill-shard needs a shard cluster (--shards >= 2 or "
            "--connect)",
            file=sys.stderr,
        )
        return 2
    tracer = Tracer(sample_rate=1.0) if args.trace else None
    with KernelServer(
        db=TuningDatabase(args.db),
        devices=(args.device,),
        workers=args.workers,
        tracer=tracer,
    ) as server:
        wall_started = time.time()
        result = replay(_TracedSingleServer(server), trace)
        report = build_slo_report(result)
        _emit_reports(args, report)
        if args.stats:
            print(server.metrics_snapshot().report())
        if args.trace:
            spans = server.tracer.drain()
            write_chrome_trace(
                args.trace, spans, instants=_replay_instants(wall_started, result)
            )
            print(f"trace       {len(spans)} spans -> {args.trace}")
    return 0


def _run_sharded(
    args: argparse.Namespace, trace, shards: int, connect: tuple[str, ...]
) -> int:
    supervisor = ShardSupervisor(
        shards=shards,
        db=args.db,
        devices=(args.device,),
        workers=args.workers,
        connect=connect,
        remote_trust=args.trust,
        tracer=Tracer(sample_rate=1.0) if args.trace else None,
    )
    try:
        fault = None
        if args.kill_shard is not None:
            fault = ReplayFault(
                action=lambda: supervisor.kill_shard(args.kill_shard),
                at_fraction=args.kill_at,
            )
        wire_before = supervisor.wire_snapshot()
        wall_started = time.time()
        result = replay(supervisor, trace, fault=fault)
        cluster = supervisor.stats()
        wire_delta = supervisor.wire_snapshot().delta(wire_before)
        report = build_slo_report(result, cluster=cluster, wire_delta=wire_delta)
        _emit_reports(args, report)
        routed = ", ".join(
            f"shard {shard_id}: {count}"
            for shard_id, count in supervisor.routed_counts().items()
        )
        print(f"routing     {routed}")
        if args.stats:
            print(cluster.report())
        if args.trace:
            # Drain before close(): shard processes die with the supervisor.
            spans = supervisor.drain_spans()
            write_chrome_trace(
                args.trace, spans, instants=_replay_instants(wall_started, result)
            )
            print(f"trace       {len(spans)} spans -> {args.trace}")
    finally:
        reconciled = supervisor.close()
        if reconciled is not None:
            print(reconciled.report())
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(args.log_level, json_lines=args.log_json)
    if args.list_suites:
        return _list_suites()
    connect = _connect_addresses(args)
    shards = args.shards if args.shards is not None else (0 if connect else 1)
    if shards < 0 or (shards == 0 and not connect):
        print(f"error: shard count must be positive, got {shards}", file=sys.stderr)
        return 2
    try:
        trace = _resolve_trace(args)
        if args.save_trace is not None:
            save_trace(args.save_trace, trace)
            print(f"trace       saved -> {args.save_trace}")
        if args.dry_run:
            return 0
        if shards == 1 and not connect:
            return _run_single(args, trace, args.kill_shard is not None)
        return _run_sharded(args, trace, shards, connect)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
