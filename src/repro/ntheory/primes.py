"""Prime generation and primality testing.

The NTT (Equation 12) works over ``Z_p`` for a prime ``p`` with
``p ≡ 1 (mod n)`` so that an ``n``-th primitive root of unity exists.  The
paper's evaluation additionally constrains the modulus bit-width to ``k - 4``
(for Barrett reduction headroom) and deliberately avoids "specialised" primes
such as Goldilocks or Montgomery-friendly primes, so this module generates
ordinary NTT-friendly primes of a requested bit-width.

Primality testing uses deterministic Miller-Rabin for 64-bit inputs and a
randomised-but-derandomised (fixed witness schedule) Miller-Rabin for wider
inputs, which is standard practice for cryptographic tooling that must be
reproducible.
"""

from __future__ import annotations

import random

from repro.errors import ArithmeticDomainError

__all__ = [
    "is_prime",
    "next_prime",
    "find_prime_with_bits",
    "find_ntt_prime",
    "SMALL_PRIMES",
]

#: Primes below 100, used for quick trial division before Miller-Rabin.
SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
    53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
)

#: Witnesses that make Miller-Rabin deterministic for all n < 3.3 * 10**24
#: (covers every 64-bit and 80-bit input).
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)

#: Number of random witnesses for wide inputs; error probability <= 4**-24.
_WIDE_ROUNDS = 24


def is_prime(candidate: int) -> bool:
    """Miller-Rabin primality test.

    Deterministic for inputs below ~3.3e24; for wider inputs uses 64 rounds
    of Miller-Rabin with witnesses drawn from a seeded generator, so results
    are reproducible across runs.
    """
    if candidate < 2:
        return False
    for prime in SMALL_PRIMES:
        if candidate == prime:
            return True
        if candidate % prime == 0:
            return False

    # Write candidate - 1 as d * 2**r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    def is_composite_for(witness: int) -> bool:
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            return False
        for _ in range(r - 1):
            x = (x * x) % candidate
            if x == candidate - 1:
                return False
        return True

    if candidate < 3_317_044_064_679_887_385_961_981:
        witnesses = _DETERMINISTIC_WITNESSES
    else:
        rng = random.Random(candidate & 0xFFFFFFFF)
        witnesses = tuple(rng.randrange(2, candidate - 1) for _ in range(_WIDE_ROUNDS))
    return not any(is_composite_for(witness) for witness in witnesses)


def next_prime(start: int) -> int:
    """Smallest prime strictly greater than ``start``."""
    if start < 2:
        return 2
    candidate = start + 1
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def find_prime_with_bits(bits: int, seed: int = 0) -> int:
    """Find a prime with exactly ``bits`` bits (top bit set).

    The search walks downward from ``2**bits - 1 - 2*seed`` so different
    seeds give different primes while remaining fully deterministic.
    """
    if bits < 2:
        raise ArithmeticDomainError(f"bits must be at least 2, got {bits}")
    candidate = (1 << bits) - 1 - 2 * seed
    if candidate % 2 == 0:
        candidate -= 1
    while candidate.bit_length() == bits:
        if is_prime(candidate):
            return candidate
        candidate -= 2
    raise ArithmeticDomainError(f"no prime found with exactly {bits} bits (seed={seed})")


def find_ntt_prime(bits: int, transform_size: int, seed: int = 0) -> int:
    """Find a prime ``p`` with exactly ``bits`` bits and ``p ≡ 1 (mod 2*n)``.

    The ``2*n`` congruence (rather than ``n``) also admits the 2n-th roots of
    unity needed for negacyclic NTTs, which FHE schemes use for polynomial
    multiplication modulo ``x^n + 1``.
    """
    if bits < 4:
        raise ArithmeticDomainError(f"bits must be at least 4, got {bits}")
    if transform_size < 2 or transform_size & (transform_size - 1):
        raise ArithmeticDomainError(
            f"transform_size must be a power of two >= 2, got {transform_size}"
        )
    step = 2 * transform_size
    if step >= (1 << bits):
        raise ArithmeticDomainError(
            f"transform size {transform_size} too large for a {bits}-bit modulus"
        )
    # Largest value of the form k*step + 1 with exactly `bits` bits.
    candidate = (((1 << bits) - 1 - 1) // step) * step + 1
    candidate -= seed * step
    while candidate.bit_length() == bits:
        if is_prime(candidate):
            return candidate
        candidate -= step
    raise ArithmeticDomainError(
        f"no NTT-friendly prime with {bits} bits for size {transform_size} (seed={seed})"
    )
