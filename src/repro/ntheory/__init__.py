"""Number-theory substrate: primes, roots of unity, modular inverses, CRT.

These utilities back the NTT planner (prime/root selection), the Barrett and
Montgomery parameter computations, and the RNS baseline.
"""

from repro.ntheory.crt import crt_reconstruct, garner_reconstruct
from repro.ntheory.modinv import modexp, modinv, xgcd
from repro.ntheory.primes import find_ntt_prime, find_prime_with_bits, is_prime, next_prime
from repro.ntheory.roots import (
    find_generator,
    inverse_root,
    is_primitive_root_of_unity,
    primitive_root_of_unity,
)

__all__ = [
    "crt_reconstruct",
    "garner_reconstruct",
    "modexp",
    "modinv",
    "xgcd",
    "find_ntt_prime",
    "find_prime_with_bits",
    "is_prime",
    "next_prime",
    "find_generator",
    "inverse_root",
    "is_primitive_root_of_unity",
    "primitive_root_of_unity",
]
