"""Chinese remainder theorem utilities.

The residue number system (RNS) substrate — the paper's GRNS baseline and
the FHE-style residue decomposition discussed in the introduction — relies
on CRT reconstruction: a large integer is represented by its residues modulo
a basis of pairwise-coprime word-sized moduli and recovered with
:func:`crt_reconstruct`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ArithmeticDomainError
from repro.ntheory.modinv import modinv

__all__ = ["check_pairwise_coprime", "crt_reconstruct", "garner_reconstruct"]


def check_pairwise_coprime(moduli: Sequence[int]) -> None:
    """Raise if any two moduli share a common factor."""
    for index, first in enumerate(moduli):
        if first < 2:
            raise ArithmeticDomainError(f"modulus {first} must be >= 2")
        for second in moduli[index + 1 :]:
            a, b = first, second
            while b:
                a, b = b, a % b
            if a != 1:
                raise ArithmeticDomainError(
                    f"moduli {first} and {second} are not coprime (gcd={a})"
                )


def crt_reconstruct(residues: Sequence[int], moduli: Sequence[int]) -> int:
    """Recover ``x mod prod(moduli)`` from ``x mod m_i`` via the explicit CRT."""
    if len(residues) != len(moduli):
        raise ArithmeticDomainError(
            f"need one residue per modulus, got {len(residues)} residues "
            f"and {len(moduli)} moduli"
        )
    if not moduli:
        raise ArithmeticDomainError("at least one modulus is required")
    check_pairwise_coprime(moduli)
    product = 1
    for modulus in moduli:
        product *= modulus
    result = 0
    for residue, modulus in zip(residues, moduli):
        if not 0 <= residue < modulus:
            raise ArithmeticDomainError(
                f"residue {residue} not reduced modulo {modulus}"
            )
        partial = product // modulus
        result += residue * partial * modinv(partial, modulus)
    return result % product


def garner_reconstruct(residues: Sequence[int], moduli: Sequence[int]) -> int:
    """Garner's algorithm: mixed-radix CRT reconstruction.

    Produces the same value as :func:`crt_reconstruct` but only ever reduces
    intermediate values modulo single basis elements, which is the form a
    word-level implementation (e.g. on GPU) would use.
    """
    if len(residues) != len(moduli):
        raise ArithmeticDomainError(
            f"need one residue per modulus, got {len(residues)} residues "
            f"and {len(moduli)} moduli"
        )
    if not moduli:
        raise ArithmeticDomainError("at least one modulus is required")
    check_pairwise_coprime(moduli)
    # Mixed-radix digits d_i satisfy x = d_0 + d_1*m_0 + d_2*m_0*m_1 + ...
    digits: list[int] = []
    for index, (residue, modulus) in enumerate(zip(residues, moduli)):
        if not 0 <= residue < modulus:
            raise ArithmeticDomainError(
                f"residue {residue} not reduced modulo {modulus}"
            )
        value = residue
        coefficient = 1
        accumulated = 0
        for j in range(index):
            accumulated = (accumulated + digits[j] * coefficient) % modulus
            coefficient = (coefficient * moduli[j]) % modulus
        digit = ((value - accumulated) * modinv(coefficient, modulus)) % modulus
        digits.append(digit)
    result = 0
    radix = 1
    for digit, modulus in zip(digits, moduli):
        result += digit * radix
        radix *= modulus
    return result
