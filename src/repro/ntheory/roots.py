"""Primitive roots of unity for NTT moduli.

An ``n``-point NTT over ``Z_p`` needs a primitive ``n``-th root of unity
``omega_n`` (Equation 12).  For a prime ``p`` with ``n | p - 1`` such a root
is obtained from a generator of the multiplicative group:
``omega_n = g**((p-1)/n) mod p``.  Negacyclic transforms additionally need a
primitive ``2n``-th root ``psi`` with ``psi**2 = omega_n``.
"""

from __future__ import annotations

from repro.errors import ArithmeticDomainError
from repro.ntheory.modinv import modinv
from repro.ntheory.primes import is_prime

__all__ = [
    "factorize",
    "find_generator",
    "primitive_root_of_unity",
    "is_primitive_root_of_unity",
    "inverse_root",
]


def factorize(value: int) -> dict[int, int]:
    """Prime factorization by trial division with a Pollard-rho fallback.

    Sufficient for the group orders encountered here: the factored quantity
    is always ``p - 1`` where ``p`` is chosen by us, or a transform size
    (a power of two).
    """
    if value < 1:
        raise ArithmeticDomainError(f"can only factorize positive integers, got {value}")
    factors: dict[int, int] = {}
    remaining = value
    for prime in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        while remaining % prime == 0:
            factors[prime] = factors.get(prime, 0) + 1
            remaining //= prime
    divisor = 41
    while divisor * divisor <= remaining and divisor < 1_000_000:
        while remaining % divisor == 0:
            factors[divisor] = factors.get(divisor, 0) + 1
            remaining //= divisor
        divisor += 2
    if remaining > 1:
        if is_prime(remaining):
            factors[remaining] = factors.get(remaining, 0) + 1
        else:
            for prime in _pollard_rho_factor(remaining):
                factors[prime] = factors.get(prime, 0) + 1
    return factors


def _pollard_rho_factor(value: int) -> list[int]:
    """Fully factor ``value`` (known composite, no small factors) via Pollard rho."""
    if value == 1:
        return []
    if is_prime(value):
        return [value]
    divisor = _pollard_rho(value)
    return _pollard_rho_factor(divisor) + _pollard_rho_factor(value // divisor)


def _pollard_rho(value: int) -> int:
    """Find one non-trivial factor of a composite ``value``."""
    if value % 2 == 0:
        return 2
    increment = 1
    while True:
        x = 2
        y = 2
        d = 1
        while d == 1:
            x = (x * x + increment) % value
            y = (y * y + increment) % value
            y = (y * y + increment) % value
            d = _gcd(abs(x - y), value)
        if d != value:
            return d
        increment += 1


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def find_generator(prime: int) -> int:
    """Find a generator of the multiplicative group of ``Z_p``."""
    if not is_prime(prime):
        raise ArithmeticDomainError(f"{prime} is not prime")
    if prime == 2:
        return 1
    order = prime - 1
    factors = factorize(order)
    candidate = 2
    while candidate < prime:
        if all(pow(candidate, order // factor, prime) != 1 for factor in factors):
            return candidate
        candidate += 1
    raise ArithmeticDomainError(f"no generator found for {prime}")  # pragma: no cover


def primitive_root_of_unity(order: int, prime: int) -> int:
    """Return a primitive ``order``-th root of unity modulo ``prime``.

    The search raises candidate bases to the power ``(p-1)/order`` and checks
    that the result has exact order ``order``; this only ever factorizes the
    (small) order, never ``p - 1``, so it stays fast for the multi-hundred-bit
    NTT primes used in the evaluation.
    """
    if order < 1:
        raise ArithmeticDomainError(f"order must be positive, got {order}")
    if not is_prime(prime):
        raise ArithmeticDomainError(f"{prime} is not prime")
    if (prime - 1) % order != 0:
        raise ArithmeticDomainError(
            f"no {order}-th root of unity modulo {prime}: {order} does not divide p-1"
        )
    if order == 1:
        return 1
    exponent = (prime - 1) // order
    for base in range(2, 1000):
        candidate = pow(base, exponent, prime)
        if candidate in (0, 1):
            continue
        if is_primitive_root_of_unity(candidate, order, prime):
            return candidate
    raise ArithmeticDomainError(  # pragma: no cover - practically unreachable
        f"failed to find a primitive {order}-th root of unity modulo {prime}"
    )


def is_primitive_root_of_unity(root: int, order: int, prime: int) -> bool:
    """Check that ``root`` has exact multiplicative order ``order`` mod ``prime``."""
    if pow(root, order, prime) != 1:
        return False
    for factor in factorize(order):
        if pow(root, order // factor, prime) == 1:
            return False
    return True


def inverse_root(root: int, prime: int) -> int:
    """Inverse of a root of unity, used by the inverse NTT."""
    return modinv(root, prime)
