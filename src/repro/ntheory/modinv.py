"""Modular inverses and exponentiation helpers."""

from __future__ import annotations

from repro.errors import ArithmeticDomainError

__all__ = ["xgcd", "modinv", "modexp"]


def xgcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: return ``(g, x, y)`` with ``a*x + b*y = g = gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
        old_t, t = t, old_t - quotient * t
    return old_r, old_s, old_t


def modinv(value: int, modulus: int) -> int:
    """Multiplicative inverse of ``value`` modulo ``modulus``.

    Raises :class:`ArithmeticDomainError` when the inverse does not exist
    (i.e. ``gcd(value, modulus) != 1``).
    """
    if modulus <= 1:
        raise ArithmeticDomainError(f"modulus must be > 1, got {modulus}")
    value %= modulus
    g, x, _ = xgcd(value, modulus)
    if g != 1:
        raise ArithmeticDomainError(
            f"{value} has no inverse modulo {modulus} (gcd = {g})"
        )
    return x % modulus


def modexp(base: int, exponent: int, modulus: int) -> int:
    """Modular exponentiation; negative exponents use the modular inverse."""
    if modulus <= 0:
        raise ArithmeticDomainError(f"modulus must be positive, got {modulus}")
    if exponent < 0:
        return pow(modinv(base, modulus), -exponent, modulus)
    return pow(base, exponent, modulus)
