"""Arbitrary-precision CPU baseline (the role GMP plays in the paper).

The paper compares MoMA-generated GPU kernels against GMP running on a Xeon
(Figure 2) and against GMP-based NTTs (Figure 4).  GMP itself is a C library;
its closest stand-in available in a pure-Python environment is Python's own
arbitrary-precision integers, which the related-work section of the paper
itself groups with GMP as "languages ... [that] support large integer
arithmetic natively".  This module packages that baseline:

* executable vector operations and NTTs on Python integers (used for
  correctness checks and wall-clock micro-benchmarks), and
* helpers describing the baseline's asymptotic cost (limb-count based, with
  the FFT crossover the paper mentions for very wide multiplications).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ArithmeticDomainError
from repro.ntt.iterative import ntt_forward, ntt_inverse
from repro.ntt.planner import NTTPlan

__all__ = ["BigIntBaseline", "gmp_cost_model_ns"]


class BigIntBaseline:
    """Vector modular arithmetic and NTTs on arbitrary-precision integers."""

    name = "bigint-cpu"

    def vadd(self, x: Sequence[int], y: Sequence[int], q: int) -> list[int]:
        """Element-wise modular addition."""
        self._check(q, x, y)
        return [(a + b) % q for a, b in zip(x, y)]

    def vsub(self, x: Sequence[int], y: Sequence[int], q: int) -> list[int]:
        """Element-wise modular subtraction."""
        self._check(q, x, y)
        return [(a - b) % q for a, b in zip(x, y)]

    def vmul(self, x: Sequence[int], y: Sequence[int], q: int) -> list[int]:
        """Element-wise modular multiplication."""
        self._check(q, x, y)
        return [(a * b) % q for a, b in zip(x, y)]

    def axpy(self, scale: int, x: Sequence[int], y: Sequence[int], q: int) -> list[int]:
        """Element-wise ``scale * x + y``."""
        self._check(q, x, y)
        return [(scale * a + b) % q for a, b in zip(x, y)]

    def ntt(self, values: Sequence[int], plan: NTTPlan) -> list[int]:
        """Forward NTT on Python integers."""
        return ntt_forward(values, plan)

    def intt(self, values: Sequence[int], plan: NTTPlan) -> list[int]:
        """Inverse NTT on Python integers."""
        return ntt_inverse(values, plan)

    @staticmethod
    def _check(q: int, *vectors: Sequence[int]) -> None:
        if q < 3:
            raise ArithmeticDomainError(f"modulus must be >= 3, got {q}")
        lengths = {len(vector) for vector in vectors}
        if len(lengths) != 1:
            raise ArithmeticDomainError("vectors must have equal lengths")


@dataclass(frozen=True)
class _GmpCostParameters:
    """Calibration constants for the GMP CPU cost model (nanoseconds).

    The constants reproduce the magnitudes reported in Section 5.2: GMP
    addition/subtraction is hundreds of times slower than MoMA on a GPU
    (the paper reports >= 527x), and GMP multiplication narrows the gap as
    the bit-width grows because it switches to sub-quadratic algorithms
    (the paper observes GMP's 512/1,024-bit multiplies running faster than
    its 128-bit ones due to FFT-based code paths and amortised overheads).
    """

    add_base_ns: float = 25.0
    add_per_limb_ns: float = 4.0
    mul_base_ns: float = 45.0
    mul_per_limb_pair_ns: float = 6.5
    #: Past this many 64-bit limbs the model charges the sub-quadratic path.
    fft_crossover_limbs: int = 6
    reduction_overhead: float = 1.9


def gmp_cost_model_ns(operation: str, bits: int) -> float:
    """Estimated CPU nanoseconds per element for a GMP-style library.

    Args:
        operation: ``"vadd"``, ``"vsub"``, ``"vmul"`` or ``"axpy"``.
        bits: operand bit-width.
    """
    parameters = _GmpCostParameters()
    limbs = max(1, -(-bits // 64))
    if operation in ("vadd", "vsub"):
        return parameters.add_base_ns + parameters.add_per_limb_ns * limbs
    if operation in ("vmul", "axpy"):
        if limbs <= parameters.fft_crossover_limbs:
            multiply = parameters.mul_base_ns + parameters.mul_per_limb_pair_ns * limbs * limbs
        else:
            # Sub-quadratic regime: n^1.585 (Karatsuba/Toom) growth.
            multiply = parameters.mul_base_ns + parameters.mul_per_limb_pair_ns * (
                limbs ** 1.585
            ) * 2.2
        extra = parameters.add_base_ns if operation == "axpy" else 0.0
        return multiply * parameters.reduction_overhead + extra
    raise ArithmeticDomainError(f"unknown BLAS operation {operation!r}")
