"""Baselines: arbitrary-precision CPU (GMP stand-in), RNS GPU (GRNS-like),
and published-system performance anchors."""

from repro.baselines.bigint import BigIntBaseline, gmp_cost_model_ns
from repro.baselines.grns import GrnsBaseline
from repro.baselines.published import (
    BaselineAnchor,
    baseline_runtime_ns,
    blas_baselines,
    ntt_baselines,
)

__all__ = [
    "BigIntBaseline",
    "gmp_cost_model_ns",
    "GrnsBaseline",
    "BaselineAnchor",
    "baseline_runtime_ns",
    "blas_baselines",
    "ntt_baselines",
]
