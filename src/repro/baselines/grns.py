"""GRNS-like baseline: RNS-based vector arithmetic.

GRNS (Isupov, 2021) is the GPU multi-precision baseline of Figure 2.  It
represents each large integer by word-sized residues and performs channel
arithmetic with floating-point units.  This module provides an executable
equivalent built on :mod:`repro.rns` — channel-parallel vector operations
plus the CRT round trip needed whenever a result must be reduced modulo the
cryptographic modulus ``q`` — which is used for correctness checks and
wall-clock micro-benchmarks against the MoMA engine.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ArithmeticDomainError
from repro.rns.arith import from_rns, rns_add, rns_mul, to_rns
from repro.rns.basis import RnsBasis, make_basis

__all__ = ["GrnsBaseline"]


class GrnsBaseline:
    """Vector modular arithmetic in residue-number-system form.

    Args:
        operand_bits: bit-width of the operands (the basis is sized to hold
            full products, i.e. twice this width, before reduction).
        word_bits: channel word width.
    """

    name = "grns-gpu"

    def __init__(self, operand_bits: int, word_bits: int = 64) -> None:
        if operand_bits < 8:
            raise ArithmeticDomainError(f"operand_bits must be >= 8, got {operand_bits}")
        self.operand_bits = operand_bits
        self.basis: RnsBasis = make_basis(2 * operand_bits + 1, word_bits)

    @property
    def channel_count(self) -> int:
        """Number of RNS channels used per value."""
        return self.basis.channel_count

    def _encode(self, values: Sequence[int], q: int) -> list:
        for index, value in enumerate(values):
            if not 0 <= value < q:
                raise ArithmeticDomainError(f"element {index} is not reduced modulo q")
        return [to_rns(value, self.basis) for value in values]

    def vadd(self, x: Sequence[int], y: Sequence[int], q: int) -> list[int]:
        """Element-wise modular addition via RNS channels plus CRT reduction."""
        encoded_x = self._encode(x, q)
        encoded_y = self._encode(y, q)
        return [from_rns(rns_add(a, b)) % q for a, b in zip(encoded_x, encoded_y)]

    def vsub(self, x: Sequence[int], y: Sequence[int], q: int) -> list[int]:
        """Element-wise modular subtraction.

        Performed as ``x + (q - y)`` so every channel value stays
        non-negative and well below the basis range; the sum is reduced
        modulo ``q`` after reconstruction (the usual RNS recipe, since RNS
        has no cheap notion of "negative").
        """
        self._encode(y, q)  # validates y is reduced
        encoded_x = self._encode(x, q)
        encoded_negated_y = [to_rns((q - value) % q, self.basis) for value in y]
        return [
            from_rns(rns_add(a, b)) % q for a, b in zip(encoded_x, encoded_negated_y)
        ]

    def vmul(self, x: Sequence[int], y: Sequence[int], q: int) -> list[int]:
        """Element-wise modular multiplication via RNS channels plus CRT reduction."""
        encoded_x = self._encode(x, q)
        encoded_y = self._encode(y, q)
        return [from_rns(rns_mul(a, b)) % q for a, b in zip(encoded_x, encoded_y)]

    def axpy(self, scale: int, x: Sequence[int], y: Sequence[int], q: int) -> list[int]:
        """Element-wise ``scale * x + y`` via RNS channels plus CRT reduction."""
        if not 0 <= scale < q:
            raise ArithmeticDomainError("scale must be reduced modulo q")
        encoded_scale = to_rns(scale, self.basis)
        encoded_x = self._encode(x, q)
        encoded_y = self._encode(y, q)
        return [
            from_rns(rns_add(rns_mul(encoded_scale, a), b)) % q
            for a, b in zip(encoded_x, encoded_y)
        ]
