"""Published-system baselines (ICICLE, GZKP, PipeZK, RPU, FPMM, Libsnark,
OpenFHE, AVX-NTT, GMP, GRNS) as documented performance anchors.

The systems the paper compares against are closed-source GPU libraries,
ASICs, or CPU libraries running on hardware we do not have.  Their curves in
Figures 1-4 are therefore reconstructed from the *relationships the paper
reports in its text* (e.g. "a 13x speedup over ICICLE for 256-bit inputs",
"MoMA outperforms RPU by 1.4x on average", ">= 527x speedup over GMP for
addition"), expressed as factors relative to the MoMA estimate produced by
the GPU cost model.  This guarantees that regenerated figures preserve the
paper's orderings, gaps and crossovers — the reproduction target — while
making the provenance of every baseline number explicit and auditable.

Each anchor records the reference MoMA device, the factor (possibly
size-dependent, to model crossovers such as GZKP overtaking MoMA at large
transforms), and the sentence of the paper it was derived from.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.errors import EvaluationError

__all__ = [
    "BaselineAnchor",
    "ntt_baselines",
    "blas_baselines",
    "baseline_runtime_ns",
]


@dataclass(frozen=True)
class BaselineAnchor:
    """One published system's performance, anchored to a MoMA estimate.

    Attributes:
        name: system name as used in the paper's figures.
        platform: hardware the system ran on in the paper.
        reference_device: which MoMA device estimate the factor multiplies
            (``"h100"``, ``"rtx4090"`` or ``"v100"``).
        factor: multiplier applied to the MoMA per-butterfly / per-element
            estimate; either a constant or a callable of the transform size.
        source: the statement in the paper this factor encodes.
    """

    name: str
    platform: str
    reference_device: str
    factor: float | Callable[[int], float]
    source: str

    def factor_at(self, size: int) -> float:
        """The multiplier for a given transform size (or batch size)."""
        if callable(self.factor):
            return float(self.factor(size))
        return float(self.factor)


def _gzkp_256_factor(size: int) -> float:
    # Section 5.3 (256-bit): "On V100, MoMA is outperformed by GZKP for large
    # NTT sizes ... However, MoMA outperforms GZKP on smaller sizes."
    return 0.55 if size >= 1 << 16 else (1.1 if size >= 1 << 13 else 2.4)


def _gzkp_768_factor(size: int) -> float:
    # Section 5.3 (768-bit): "from size 2^16 onwards, MoMA is outperformed by
    # GZKP".
    return 0.45 if size >= 1 << 16 else 1.6


def _pipezk_768_factor(size: int) -> float:
    # Section 5.3 (768-bit): "H100 achieving a 2x speedup over PipeZK for
    # sizes ranging from 2^14 to 2^20"; outside that window the ASIC's fixed
    # pipeline fares relatively better.
    return 2.0 if (1 << 14) <= size <= (1 << 20) else 1.4


#: NTT baselines per input bit-width (Figures 1, 3 and 4).
_NTT_BASELINES: dict[int, tuple[BaselineAnchor, ...]] = {
    128: (
        BaselineAnchor(
            "OpenFHE", "CPU (Xeon)", "h100", 320.0,
            "Fig. 3a: CPU library baselines are orders of magnitude slower",
        ),
        BaselineAnchor(
            "AVX-NTT", "CPU (AVX-512)", "h100", 45.0,
            "Fig. 3a: vectorised CPU NTT baseline",
        ),
        BaselineAnchor(
            "RPU", "ASIC", "h100", 1.4,
            "Sec. 5.3: 'MoMA outperforms RPU ... by 1.4 times on average' (H100)",
        ),
        BaselineAnchor(
            "FPMM", "ASIC", "h100", 1.8,
            "Sec. 5.3: 'and FPMM by 1.8 times on average' (H100, 128-bit)",
        ),
    ),
    256: (
        BaselineAnchor(
            "ICICLE", "NVIDIA H100", "h100", 13.0,
            "Sec. 5.3: 'a 13 times average speedup ... over ICICLE' (256-bit)",
        ),
        BaselineAnchor(
            "GZKP", "NVIDIA V100", "v100", _gzkp_256_factor,
            "Sec. 5.3: GZKP wins at large sizes on V100, loses at small sizes",
        ),
        BaselineAnchor(
            "PipeZK", "ASIC", "v100", 1.6,
            "Sec. 5.3: 'On all three tested GPUs, MoMA outperforms PipeZK'",
        ),
        BaselineAnchor(
            "FPMM", "ASIC", "h100", 1.3,
            "Sec. 5.3: 'On the H100 and RTX 4090, MoMA also outperforms FPMM'",
        ),
    ),
    384: (
        BaselineAnchor(
            "ICICLE", "NVIDIA H100", "h100", 4.8,
            "Sec. 5.3: 'an average speedup of 4.8 times ... against ICICLE' (384-bit)",
        ),
        BaselineAnchor(
            "FPMM", "ASIC", "h100", 1.0 / 1.7,
            "Sec. 5.3: 'FPMM achieves a 1.7 times speedup over our approach at 384-bit'",
        ),
    ),
    768: (
        BaselineAnchor(
            "PipeZK", "ASIC", "h100", _pipezk_768_factor,
            "Sec. 5.3: 'H100 achieving a 2 times speedup over PipeZK for sizes 2^14..2^20'",
        ),
        BaselineAnchor(
            "GZKP", "NVIDIA V100", "h100", _gzkp_768_factor,
            "Sec. 5.3: 'from size 2^16 onwards, MoMA is outperformed by GZKP' (768-bit)",
        ),
        BaselineAnchor(
            "Libsnark", "CPU", "h100", 130.0,
            "Fig. 3d: CPU ZKP library baseline (as reported by GZKP)",
        ),
    ),
}

#: BLAS baselines per (operation class, bit-width) for Figure 2, anchored to
#: the MoMA estimate on the V100 (the GPU used for Figure 2).
_BLAS_ADD_SUB_FACTORS = {
    "GMP": {128: 1500.0, 256: 1150.0, 512: 780.0, 1024: 530.0},
    "GRNS": {128: 46.0, 256: 41.0, 512: 36.0, 1024: 31.0},
}
_BLAS_MUL_FACTORS = {
    "GMP": {128: 210.0, 256: 120.0, 512: 36.0, 1024: 13.5},
    "GRNS": {128: 13.5, 256: 21.0, 512: 38.0, 1024: 64.0},
}

_BLAS_SOURCES = {
    ("GMP", "add"): "Sec. 5.2: 'at least 527 times speedup over GMP for addition and subtraction'",
    ("GRNS", "add"): "Sec. 5.2: 'at least 31 times speedup over GRNS' (add/sub)",
    ("GMP", "mul"): "Sec. 5.2: speedup over GMP diminishes with bit-width but stays above 10x",
    ("GRNS", "mul"): "Sec. 5.2: speedup over GRNS increases with bit-width (>= 13x)",
}


def ntt_baselines(bits: int) -> tuple[BaselineAnchor, ...]:
    """The published NTT baselines plotted for a given input bit-width."""
    if bits not in _NTT_BASELINES:
        raise EvaluationError(
            f"the paper reports NTT baselines for 128/256/384/768-bit inputs, not {bits}"
        )
    return _NTT_BASELINES[bits]


def blas_baselines(operation: str, bits: int) -> tuple[BaselineAnchor, ...]:
    """The published BLAS baselines (GMP, GRNS) for one operation/bit-width."""
    if bits not in (128, 256, 512, 1024):
        raise EvaluationError(
            f"Figure 2 covers 128/256/512/1024-bit inputs, not {bits}"
        )
    if operation in ("vadd", "vsub"):
        table, kind = _BLAS_ADD_SUB_FACTORS, "add"
    elif operation in ("vmul", "axpy"):
        table, kind = _BLAS_MUL_FACTORS, "mul"
    else:
        raise EvaluationError(f"unknown BLAS operation {operation!r}")
    anchors = []
    for system in ("GMP", "GRNS"):
        platform = "CPU (Xeon 6248)" if system == "GMP" else "NVIDIA V100"
        anchors.append(
            BaselineAnchor(
                system,
                platform,
                "v100",
                table[system][bits],
                _BLAS_SOURCES[(system, kind)],
            )
        )
    return tuple(anchors)


def baseline_runtime_ns(
    anchor: BaselineAnchor, moma_estimates_ns: dict[str, float], size: int
) -> float:
    """Baseline runtime derived from a MoMA estimate and the anchor factor.

    Args:
        anchor: the published-system anchor.
        moma_estimates_ns: MoMA per-butterfly (or per-element) estimates
            keyed by device name (``"h100"``, ``"rtx4090"``, ``"v100"``).
        size: transform or batch size (for size-dependent factors).
    """
    reference = moma_estimates_ns.get(anchor.reference_device)
    if reference is None:
        raise EvaluationError(
            f"no MoMA estimate available for reference device {anchor.reference_device!r}"
        )
    return reference * anchor.factor_at(size)
