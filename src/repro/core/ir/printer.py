"""Textual pretty-printer for kernels.

The printed form mirrors the paper's notation: destination groups in square
brackets, operations by name, and operand groups as bracketed limb lists.
It is used in documentation, examples and golden tests.
"""

from __future__ import annotations

from repro.core.ir.kernel import Kernel

__all__ = ["format_kernel", "format_signature"]


def format_signature(kernel: Kernel) -> str:
    """Return the one-line signature ``name(params) -> (outputs)``."""
    params = []
    for param in kernel.params:
        rendered = f"{param.name}: {param.type}"
        if param.effective_bits is not None and param.effective_bits != param.bits:
            rendered += f" [effective {param.effective_bits}]"
        params.append(rendered)
    outputs = ", ".join(f"{output.name}: {output.type}" for output in kernel.outputs)
    return f"{kernel.name}({', '.join(params)}) -> ({outputs})"


def format_kernel(kernel: Kernel, indent: str = "  ") -> str:
    """Render a kernel as indented text."""
    lines = [f"kernel {format_signature(kernel)} {{"]
    for key, value in sorted(kernel.metadata.items()):
        lines.append(f"{indent}// {key}: {value}")
    for statement in kernel.body:
        lines.append(f"{indent}{statement}")
    lines.append("}")
    return "\n".join(lines)
