"""Integer data types for the abstract-code IR.

MoMA is a rewrite system *on data types* (Section 4): every value in the IR
carries an :class:`IntType` whose bit-width drives the rewriting.  A type is
"machine" when its width does not exceed the machine word width; legalization
(Section 4's recursive pass) terminates when every variable in a kernel has a
machine type.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import IRError

__all__ = ["IntType", "FLAG", "u1", "u32", "u64", "u128", "u256", "u512", "u1024"]


@dataclass(frozen=True, order=True)
class IntType:
    """An unsigned integer type of a given bit-width.

    Widths are not restricted to powers of two — 1-bit carry/borrow flags and
    padded non-power-of-two widths both occur — but the arithmetic rewrite
    rules only ever split power-of-two-width types in half (rule 19).
    """

    bits: int

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise IRError(f"type width must be positive, got {self.bits}")

    def __str__(self) -> str:
        return f"u{self.bits}"

    @property
    def mask(self) -> int:
        """The value mask ``2**bits - 1``."""
        return (1 << self.bits) - 1

    def fits(self, value: int) -> bool:
        """Whether a non-negative ``value`` is representable in this type."""
        return 0 <= value <= self.mask

    def half(self) -> "IntType":
        """The single-word type for this double-word type (rule 19)."""
        if self.bits % 2:
            raise IRError(f"cannot halve odd width {self.bits}")
        return IntType(self.bits // 2)

    def double(self) -> "IntType":
        """The double-word type for this single-word type."""
        return IntType(self.bits * 2)

    def is_machine(self, word_bits: int) -> bool:
        """Whether this type is natively supported for a given machine word."""
        return self.bits <= word_bits

    def is_flag(self) -> bool:
        """Whether this is the 1-bit carry/borrow/comparison type."""
        return self.bits == 1


@lru_cache(maxsize=None)
def _cached(bits: int) -> IntType:
    return IntType(bits)


#: The 1-bit flag type used for carries, borrows and comparison results.
FLAG = _cached(1)
u1 = FLAG
u32 = _cached(32)
u64 = _cached(64)
u128 = _cached(128)
u256 = _cached(256)
u512 = _cached(512)
u1024 = _cached(1024)
