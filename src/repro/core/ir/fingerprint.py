"""Structural fingerprints of kernels.

Two distinct consumers need to know "is this the same kernel?":

* the optimization pipeline's fixed-point loop, which only has to detect
  *change between rounds inside one process* — :func:`body_signature` builds a
  cheap hashable tuple per statement (no string formatting) and hashes it;
* the driver's content-addressed kernel cache, which needs a key that is
  *stable across sessions and processes* — :func:`kernel_digest` feeds a
  canonical rendering of the whole kernel (interface, body, metadata) through
  SHA-256, so equal IR always produces the same hex key regardless of object
  identity or hash randomization.

Both walk the same per-statement structure, so the two views cannot drift
apart.
"""

from __future__ import annotations

import hashlib

from repro.core.ir.kernel import Kernel
from repro.core.ir.ops import Statement
from repro.core.ir.values import Const, Var

__all__ = [
    "statement_signature",
    "body_signature",
    "kernel_signature",
    "kernel_digest",
]


def _part_token(part) -> tuple:
    """A hashable token for one group part (variable or constant)."""
    if isinstance(part, Const):
        return ("c", part.value, part.type.bits)
    return ("v", part.name, part.type.bits, part.effective_bits)


def statement_signature(statement: Statement) -> tuple:
    """A hashable structural summary of one statement."""
    return (
        statement.op.value,
        tuple(_part_token(part) for part in statement.dests),
        tuple(
            tuple(_part_token(part) for part in group) for group in statement.operands
        ),
        tuple(sorted(statement.attrs.items())),
    )


def body_signature(kernel: Kernel) -> int:
    """A cheap intra-process hash of the kernel body.

    Used by :func:`repro.core.passes.pipeline.optimize` to detect its fixed
    point without re-stringifying every statement each round.  The value is
    only meaningful within one process (``hash`` of strings is randomized per
    interpreter); use :func:`kernel_digest` for persistent keys.
    """
    return hash(tuple(statement_signature(statement) for statement in kernel.body))


def kernel_signature(kernel: Kernel) -> tuple:
    """A hashable structural summary of the whole kernel (interface + body)."""
    return (
        kernel.name,
        tuple(_part_token(param) for param in kernel.params),
        tuple(_part_token(output) for output in kernel.outputs),
        tuple(statement_signature(statement) for statement in kernel.body),
    )


def _canonical(value) -> str:
    """Render a metadata value deterministically (sorted dicts, typed reprs)."""
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda item: repr(item[0]))
        return "{" + ",".join(f"{_canonical(k)}:{_canonical(v)}" for k, v in items) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(item) for item in value) + "]"
    return repr(value)


def kernel_digest(kernel: Kernel, extra: tuple = ()) -> str:
    """A stable SHA-256 content address for a kernel.

    The digest covers the kernel's name, interface, body and metadata, plus
    any ``extra`` context the caller mixes in (compilation options, target
    name, pipeline identity).  Equal inputs give equal digests across
    processes, which is what makes the driver cache content-addressed rather
    than identity-based.
    """
    hasher = hashlib.sha256()
    hasher.update(repr(kernel_signature(kernel)).encode())
    hasher.update(_canonical(kernel.metadata).encode())
    hasher.update(_canonical(extra).encode())
    return hasher.hexdigest()
