"""Operations and statements of the abstract-code IR.

Each :class:`Statement` is one assignment in the paper's notation: a
destination group, an operation, and operand groups, e.g.

    [c0, c1] = addmod([a0, a1], [b0, b1], [q0, q1])

Statements are deliberately flat (no nested expressions); this keeps the
rewrite rules of Table 1 one-to-one with code and makes the generated CUDA
follow the listings' three-address style.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique

from repro.errors import IRError
from repro.core.ir.values import Const, Group, Var

__all__ = ["OpKind", "Statement"]


@unique
class OpKind(Enum):
    """The operation set of the IR.

    High-level (modular) operations appear in frontend-built kernels and are
    progressively rewritten away; the low-level operations are what survives
    legalization and maps directly onto CUDA/C statements.
    """

    # Data movement.
    MOV = "mov"
    # Plain multi-digit arithmetic (Section 2.2).
    ADD = "add"          # dests = op0 + op1 (+ op2), must fit exactly
    SUB = "sub"          # dests = op0 - op1 (- op2), wrap-around
    MUL = "mul"          # dests = op0 * op1, must fit exactly
    MULLO = "mullo"      # dests = (op0 * op1) mod 2**dest_bits (low half only)
    # Comparisons; destination is a 1-bit flag.
    LT = "lt"
    LE = "le"
    EQ = "eq"
    # Flag logic.
    AND = "and"
    OR = "or"
    NOT = "not"
    # Conditional assignment.
    SELECT = "select"    # dests = op1 if op0 != 0 else op2
    # Constant shifts (amount in attrs["amount"]).
    SHR = "shr"
    SHL = "shl"
    # Conditional-subtraction reduction (rule 24's `mod`): requires
    # value(op0) < 2 * value(op1).
    REDUCE = "reduce"
    # Modular arithmetic on reduced operands (Section 2.1).
    ADDMOD = "addmod"    # dests = (op0 + op1) mod op2
    SUBMOD = "submod"    # dests = (op0 - op1) mod op2
    MULMOD = "mulmod"    # dests = (op0 * op1) mod op2, op3 = Barrett mu


#: Expected operand-count ranges per operation (min, max).
_ARITY: dict[OpKind, tuple[int, int]] = {
    OpKind.MOV: (1, 1),
    OpKind.ADD: (2, 3),
    OpKind.SUB: (2, 3),
    OpKind.MUL: (2, 2),
    OpKind.MULLO: (2, 2),
    OpKind.LT: (2, 2),
    OpKind.LE: (2, 2),
    OpKind.EQ: (2, 2),
    OpKind.AND: (2, 2),
    OpKind.OR: (2, 2),
    OpKind.NOT: (1, 1),
    OpKind.SELECT: (3, 3),
    OpKind.SHR: (1, 1),
    OpKind.SHL: (1, 1),
    OpKind.REDUCE: (2, 2),
    OpKind.ADDMOD: (3, 3),
    OpKind.SUBMOD: (3, 3),
    OpKind.MULMOD: (3, 4),
}

#: Operations whose destination is a single 1-bit (or wider) flag.
FLAG_OPS = frozenset(
    {OpKind.LT, OpKind.LE, OpKind.EQ, OpKind.AND, OpKind.OR, OpKind.NOT}
)

#: Operations that require an ``amount`` attribute.
SHIFT_OPS = frozenset({OpKind.SHR, OpKind.SHL})

#: Modular operations (operands must be reduced mod the modulus operand).
MODULAR_OPS = frozenset({OpKind.ADDMOD, OpKind.SUBMOD, OpKind.MULMOD})


@dataclass
class Statement:
    """One flat assignment: ``dests = op(operands)``.

    Attributes:
        op: the operation kind.
        dests: destination group; every part must be a variable.
        operands: operand groups (variables and/or constants).
        attrs: operation attributes (currently only ``amount`` for shifts and
            ``algorithm`` for multiplications).
    """

    op: OpKind
    dests: Group
    operands: tuple[Group, ...]
    attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.dests, Group):
            raise IRError("statement destinations must be a Group")
        for part in self.dests:
            if not isinstance(part, Var):
                raise IRError(f"destination parts must be variables, got {part}")
        self.operands = tuple(self.operands)
        for operand in self.operands:
            if not isinstance(operand, Group):
                raise IRError("statement operands must be Groups")
        low, high = _ARITY[self.op]
        if not low <= len(self.operands) <= high:
            raise IRError(
                f"{self.op.value} expects between {low} and {high} operands, "
                f"got {len(self.operands)}"
            )
        if self.op in SHIFT_OPS and "amount" not in self.attrs:
            raise IRError(f"{self.op.value} requires an 'amount' attribute")
        if self.op in SHIFT_OPS and self.attrs["amount"] < 0:
            raise IRError("shift amount must be non-negative")

    def __str__(self) -> str:
        operands = ", ".join(str(operand) for operand in self.operands)
        suffix = ""
        if self.attrs:
            rendered = ", ".join(f"{key}={value}" for key, value in sorted(self.attrs.items()))
            suffix = f" {{{rendered}}}"
        return f"{self.dests} = {self.op.value}({operands}){suffix}"

    @property
    def max_part_bits(self) -> int:
        """The widest part referenced by this statement (dest or operand)."""
        widths = [self.dests.max_part_bits]
        widths.extend(operand.max_part_bits for operand in self.operands)
        return max(widths)

    def defined_vars(self) -> tuple[Var, ...]:
        """Variables written by this statement."""
        return tuple(part for part in self.dests if isinstance(part, Var))

    def used_vars(self) -> tuple[Var, ...]:
        """Variables read by this statement, in operand order."""
        used: list[Var] = []
        for operand in self.operands:
            used.extend(operand.variables())
        return tuple(used)

    def used_consts(self) -> tuple[Const, ...]:
        """Constants read by this statement, in operand order."""
        consts: list[Const] = []
        for operand in self.operands:
            consts.extend(part for part in operand if isinstance(part, Const))
        return tuple(consts)
