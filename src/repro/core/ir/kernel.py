"""Kernels: straight-line abstract-code functions.

A :class:`Kernel` is the unit the rewrite system operates on: a named,
straight-line sequence of statements over typed scalar parameters.  This
mirrors the paper's setting — MoMA rewrites the *scalar* computation (one
butterfly, one vector element) while the surrounding GPU structure (thread
indexing, batching, array layout) is added by the backend wrappers in
:mod:`repro.core.codegen` and costed by :mod:`repro.gpu`.

Kernels are in SSA form: every variable is assigned by exactly one statement
(or is a parameter), which keeps the rewrite rules, the optimization passes
and the backends simple.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IRError
from repro.core.ir.ops import Statement
from repro.core.ir.values import Var

__all__ = ["Kernel"]


@dataclass
class Kernel:
    """A straight-line abstract-code function.

    Attributes:
        name: kernel name (becomes the CUDA ``__global__`` / C function name).
        params: input parameters, in signature order.
        outputs: variables whose final values are the kernel results, in
            signature order; each must be defined by the body (or be a
            parameter, for pass-through outputs).
        body: the statements.
        metadata: free-form information recorded by frontends (operand
            bit-width, modulus bit-width, kernel family, ...), consumed by the
            evaluation harnesses and backends.
    """

    name: str
    params: list[Var]
    outputs: list[Var]
    body: list[Statement]
    metadata: dict = field(default_factory=dict)

    def validate(self) -> None:
        """Check SSA form and use-before-definition; raise :class:`IRError` if violated."""
        if not self.name:
            raise IRError("kernel name must be non-empty")
        defined: dict[str, Var] = {}
        for param in self.params:
            if param.name in defined:
                raise IRError(f"duplicate parameter name {param.name!r}")
            defined[param.name] = param
        for index, statement in enumerate(self.body):
            for used in statement.used_vars():
                known = defined.get(used.name)
                if known is None:
                    raise IRError(
                        f"statement {index} ({statement}) uses undefined variable {used.name!r}"
                    )
                if known.type != used.type:
                    raise IRError(
                        f"statement {index} uses {used.name!r} at type {used.type} "
                        f"but it was defined at type {known.type}"
                    )
            for dest in statement.defined_vars():
                if dest.name in defined:
                    raise IRError(
                        f"statement {index} redefines {dest.name!r}; kernels are SSA"
                    )
                defined[dest.name] = dest
        for output in self.outputs:
            known = defined.get(output.name)
            if known is None:
                raise IRError(f"output {output.name!r} is never defined")
            if known.type != output.type:
                raise IRError(
                    f"output {output.name!r} declared as {output.type} but defined as {known.type}"
                )

    def defined_vars(self) -> dict[str, Var]:
        """All variables defined by parameters or statements, keyed by name."""
        defined = {param.name: param for param in self.params}
        for statement in self.body:
            for dest in statement.defined_vars():
                defined[dest.name] = dest
        return defined

    def max_part_bits(self) -> int:
        """Widest variable/constant part appearing anywhere in the kernel."""
        widths = [param.bits for param in self.params]
        widths.extend(statement.max_part_bits for statement in self.body)
        return max(widths) if widths else 0

    def statement_count(self) -> int:
        """Number of statements in the body."""
        return len(self.body)

    def copy(self) -> "Kernel":
        """Shallow-ish copy: new lists, shared (immutable) statements' values."""
        return Kernel(
            name=self.name,
            params=list(self.params),
            outputs=list(self.outputs),
            body=[
                Statement(stmt.op, stmt.dests, tuple(stmt.operands), dict(stmt.attrs))
                for stmt in self.body
            ],
            metadata=dict(self.metadata),
        )
