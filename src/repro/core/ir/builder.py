"""Convenience builder for constructing kernels.

Frontends (:mod:`repro.kernels`) use :class:`KernelBuilder` to assemble
wide-typed kernels without manually managing SSA names.  The builder emits
flat statements and hands back destination variables, so a modular butterfly
reads naturally::

    b = KernelBuilder("ntt_butterfly_256")
    x = b.param("x", 256)
    y = b.param("y", 256)
    w = b.param("w", 256)
    q = b.param("q", 256)
    mu = b.param("mu", 256)
    t = b.mulmod(w, y, q, mu)
    b.output("x_out", b.addmod(x, t, q))
    b.output("y_out", b.submod(x, t, q))
    kernel = b.build()
"""

from __future__ import annotations

from repro.errors import IRError
from repro.core.ir.kernel import Kernel
from repro.core.ir.ops import OpKind, Statement
from repro.core.ir.types import FLAG, IntType
from repro.core.ir.values import Const, Group, NameGenerator, Var, as_group

__all__ = ["KernelBuilder"]


class KernelBuilder:
    """Incrementally builds a :class:`~repro.core.ir.kernel.Kernel`."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._params: list[Var] = []
        self._outputs: list[Var] = []
        self._body: list[Statement] = []
        self._names = NameGenerator()
        self._metadata: dict = {}

    # ------------------------------------------------------------------
    # Declarations.
    # ------------------------------------------------------------------

    def param(self, name: str, bits: int, effective_bits: int | None = None) -> Var:
        """Declare an input parameter of the given bit-width."""
        var = Var(name, IntType(bits), effective_bits=effective_bits)
        self._names.reserve(name)
        self._params.append(var)
        return var

    def constant(self, value: int, bits: int) -> Const:
        """Create a typed constant."""
        return Const(value, IntType(bits))

    def fresh(self, bits: int, hint: str = "t") -> Var:
        """Create a fresh temporary variable."""
        return Var(self._names.fresh(hint), IntType(bits))

    def output(self, name: str, value) -> Var:
        """Declare an output equal to ``value`` (a Var, Const or Group).

        A ``mov`` is emitted so the output has a stable, caller-chosen name
        regardless of how the value was produced.
        """
        group = as_group(value)
        dest = Var(self._names.fresh(name) if name in self._taken_names() else name, IntType(group.bits))
        self._names.reserve(dest.name)
        self.emit(OpKind.MOV, Group((dest,)), [group])
        self._outputs.append(dest)
        return dest

    def metadata(self, **entries) -> None:
        """Attach free-form metadata to the kernel."""
        self._metadata.update(entries)

    def _taken_names(self) -> set[str]:
        taken = {param.name for param in self._params}
        taken.update(output.name for output in self._outputs)
        for statement in self._body:
            taken.update(var.name for var in statement.defined_vars())
        return taken

    # ------------------------------------------------------------------
    # Statement emission.
    # ------------------------------------------------------------------

    def emit(self, op: OpKind, dests, operands, **attrs) -> Statement:
        """Emit a raw statement (low-level escape hatch)."""
        statement = Statement(op, as_group(dests), tuple(as_group(o) for o in operands), dict(attrs))
        self._body.append(statement)
        return statement

    def mov(self, source, bits: int | None = None, hint: str = "t") -> Var:
        """Copy ``source`` into a fresh variable."""
        group = as_group(source)
        dest = self.fresh(bits if bits is not None else group.bits, hint)
        self.emit(OpKind.MOV, dest, [group])
        return dest

    def add(self, a, b, carry_in=None, result_bits: int | None = None, hint: str = "t"):
        """Plain addition; result is one bit wider than the widest operand by default."""
        group_a, group_b = as_group(a), as_group(b)
        bits = result_bits if result_bits is not None else max(group_a.bits, group_b.bits) + 1
        dest = self.fresh(bits, hint)
        operands = [group_a, group_b]
        if carry_in is not None:
            operands.append(as_group(carry_in))
        self.emit(OpKind.ADD, dest, operands)
        return dest

    def sub(self, a, b, borrow_in=None, hint: str = "t"):
        """Wrap-around subtraction at the width of the first operand."""
        group_a, group_b = as_group(a), as_group(b)
        dest = self.fresh(group_a.bits, hint)
        operands = [group_a, group_b]
        if borrow_in is not None:
            operands.append(as_group(borrow_in))
        self.emit(OpKind.SUB, dest, operands)
        return dest

    def mul(self, a, b, hint: str = "t"):
        """Widening multiplication; the result has the combined width."""
        group_a, group_b = as_group(a), as_group(b)
        dest = self.fresh(group_a.bits + group_b.bits, hint)
        self.emit(OpKind.MUL, dest, [group_a, group_b])
        return dest

    def compare(self, op: OpKind, a, b, hint: str = "flag"):
        """Emit a comparison returning a 1-bit flag variable."""
        if op not in (OpKind.LT, OpKind.LE, OpKind.EQ):
            raise IRError(f"compare expects a comparison op, got {op}")
        dest = Var(self._names.fresh(hint), FLAG)
        self.emit(op, dest, [as_group(a), as_group(b)])
        return dest

    def select(self, cond, if_true, if_false, hint: str = "t"):
        """Conditional assignment."""
        group_true = as_group(if_true)
        dest = self.fresh(group_true.bits, hint)
        self.emit(OpKind.SELECT, dest, [as_group(cond), group_true, as_group(if_false)])
        return dest

    def shr(self, a, amount: int, result_bits: int, hint: str = "t"):
        """Right shift by a constant amount."""
        dest = self.fresh(result_bits, hint)
        self.emit(OpKind.SHR, dest, [as_group(a)], amount=amount)
        return dest

    def shl(self, a, amount: int, result_bits: int, hint: str = "t"):
        """Left shift by a constant amount (wrap-around at result width)."""
        dest = self.fresh(result_bits, hint)
        self.emit(OpKind.SHL, dest, [as_group(a)], amount=amount)
        return dest

    def reduce(self, a, q, hint: str = "t"):
        """Conditional-subtraction reduction of a value known to be < 2q."""
        group_q = as_group(q)
        dest = self.fresh(group_q.bits, hint)
        self.emit(OpKind.REDUCE, dest, [as_group(a), group_q])
        return dest

    def addmod(self, a, b, q, hint: str = "t"):
        """Modular addition of reduced operands."""
        group_q = as_group(q)
        dest = self.fresh(group_q.bits, hint)
        self.emit(OpKind.ADDMOD, dest, [as_group(a), as_group(b), group_q])
        return dest

    def submod(self, a, b, q, hint: str = "t"):
        """Modular subtraction of reduced operands."""
        group_q = as_group(q)
        dest = self.fresh(group_q.bits, hint)
        self.emit(OpKind.SUBMOD, dest, [as_group(a), as_group(b), group_q])
        return dest

    def mulmod(
        self,
        a,
        b,
        q,
        mu=None,
        algorithm: str | None = None,
        modulus_bits: int | None = None,
        hint: str = "t",
    ):
        """Barrett modular multiplication of reduced operands.

        ``modulus_bits`` pins the Barrett shift amounts; when omitted it is
        derived from the modulus operand's ``effective_bits`` (or defaults to
        the operand width minus four).  ``mu`` may be omitted only when the
        modulus is a compile-time constant.
        """
        group_q = as_group(q)
        dest = self.fresh(group_q.bits, hint)
        operands = [as_group(a), as_group(b), group_q]
        if mu is not None:
            operands.append(as_group(mu))
        attrs = {}
        if algorithm is not None:
            attrs["algorithm"] = algorithm
        if modulus_bits is not None:
            attrs["modulus_bits"] = modulus_bits
        self.emit(OpKind.MULMOD, dest, operands, **attrs)
        return dest

    # ------------------------------------------------------------------
    # Finalisation.
    # ------------------------------------------------------------------

    def build(self) -> Kernel:
        """Assemble and validate the kernel."""
        kernel = Kernel(
            name=self._name,
            params=list(self._params),
            outputs=list(self._outputs),
            body=list(self._body),
            metadata=dict(self._metadata),
        )
        kernel.validate()
        return kernel
