"""Typed abstract-code IR (the SPIRAL "icode" analogue).

The IR is the substrate the MoMA rewrite system operates on: typed scalar
variables and constants, operand groups (the paper's bracketed multi-word
values), flat statements, and straight-line kernels in SSA form.
"""

from repro.core.ir.builder import KernelBuilder
from repro.core.ir.fingerprint import body_signature, kernel_digest, kernel_signature
from repro.core.ir.interp import interpret
from repro.core.ir.kernel import Kernel
from repro.core.ir.ops import OpKind, Statement
from repro.core.ir.printer import format_kernel, format_signature
from repro.core.ir.types import FLAG, IntType, u64, u128, u256
from repro.core.ir.values import Const, Group, NameGenerator, Var, as_group

__all__ = [
    "KernelBuilder",
    "body_signature",
    "kernel_digest",
    "kernel_signature",
    "interpret",
    "Kernel",
    "OpKind",
    "Statement",
    "format_kernel",
    "format_signature",
    "FLAG",
    "IntType",
    "u64",
    "u128",
    "u256",
    "Const",
    "Group",
    "NameGenerator",
    "Var",
    "as_group",
]
