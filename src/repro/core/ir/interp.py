"""Reference interpreter for the abstract-code IR.

The interpreter executes a kernel at *any* stage of rewriting — wide-typed
frontend output, partially legalized code, or fully machine-legal code — so
the test suite can check that every rewrite rule and every optimization pass
preserves semantics, statement list by statement list, against the same
inputs.  It is intentionally simple and defensive rather than fast; the
performance path is the generated-Python backend in
:mod:`repro.core.codegen.python_exec`.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.core.ir.kernel import Kernel
from repro.core.ir.ops import OpKind, Statement
from repro.core.ir.values import Const, Group, Var

__all__ = ["interpret", "evaluate_statement"]


def interpret(kernel: Kernel, inputs: dict[str, int]) -> dict[str, int]:
    """Execute ``kernel`` on the given parameter values.

    Args:
        kernel: the kernel to run (validated).
        inputs: mapping from parameter name to integer value.

    Returns:
        Mapping from output name to integer value.
    """
    kernel.validate()
    env: dict[str, int] = {}
    for param in kernel.params:
        if param.name not in inputs:
            raise IRError(f"missing value for parameter {param.name!r}")
        value = inputs[param.name]
        if not param.type.fits(value):
            raise IRError(
                f"value {value} for parameter {param.name!r} does not fit in {param.type}"
            )
        if param.effective_bits is not None and value >> param.effective_bits:
            raise IRError(
                f"value for {param.name!r} exceeds its declared effective "
                f"width of {param.effective_bits} bits"
            )
        env[param.name] = value
    extra = set(inputs) - {param.name for param in kernel.params}
    if extra:
        raise IRError(f"unknown parameters supplied: {sorted(extra)}")

    for statement in kernel.body:
        evaluate_statement(statement, env)

    return {output.name: env[output.name] for output in kernel.outputs}


def _read(group: Group, env: dict[str, int]) -> int:
    parts = []
    for part in group:
        if isinstance(part, Const):
            parts.append(part.value)
        else:
            parts.append(env[part.name])
    return group.compose(parts)


def _write(group: Group, value: int, env: dict[str, int]) -> None:
    for part, part_value in zip(group, group.decompose(value)):
        assert isinstance(part, Var)
        env[part.name] = part_value


def evaluate_statement(statement: Statement, env: dict[str, int]) -> None:
    """Evaluate one statement, updating ``env`` in place."""
    op = statement.op
    operands = [_read(group, env) for group in statement.operands]
    dest_bits = statement.dests.bits

    if op is OpKind.MOV:
        result = operands[0]
    elif op is OpKind.ADD:
        result = sum(operands)
        if result >> dest_bits:
            raise IRError(f"addition overflowed its destination: {statement}")
    elif op is OpKind.SUB:
        value = operands[0] - operands[1] - (operands[2] if len(operands) == 3 else 0)
        result = value % (1 << dest_bits)
    elif op is OpKind.MUL:
        result = operands[0] * operands[1]
        if result >> dest_bits:
            raise IRError(f"multiplication overflowed its destination: {statement}")
    elif op is OpKind.MULLO:
        result = (operands[0] * operands[1]) % (1 << dest_bits)
    elif op is OpKind.LT:
        result = int(operands[0] < operands[1])
    elif op is OpKind.LE:
        result = int(operands[0] <= operands[1])
    elif op is OpKind.EQ:
        result = int(operands[0] == operands[1])
    elif op is OpKind.AND:
        result = operands[0] & operands[1]
    elif op is OpKind.OR:
        result = operands[0] | operands[1]
    elif op is OpKind.NOT:
        result = (~operands[0]) % (1 << dest_bits)
    elif op is OpKind.SELECT:
        result = operands[1] if operands[0] else operands[2]
    elif op is OpKind.SHR:
        result = operands[0] >> statement.attrs["amount"]
    elif op is OpKind.SHL:
        result = (operands[0] << statement.attrs["amount"]) % (1 << dest_bits)
    elif op is OpKind.REDUCE:
        value, modulus = operands
        if modulus == 0:
            raise IRError(f"reduction by zero modulus: {statement}")
        if value >= 2 * modulus:
            raise IRError(
                f"reduce expects a value below twice the modulus, got {value} "
                f"vs modulus {modulus}: {statement}"
            )
        result = value - modulus if value >= modulus else value
    elif op is OpKind.ADDMOD:
        a, b, q = operands[:3]
        _require_reduced(a, b, q, statement)
        result = (a + b) % q
    elif op is OpKind.SUBMOD:
        a, b, q = operands[:3]
        _require_reduced(a, b, q, statement)
        result = (a - b) % q
    elif op is OpKind.MULMOD:
        a, b, q = operands[:3]
        _require_reduced(a, b, q, statement)
        result = (a * b) % q
    else:  # pragma: no cover - exhaustiveness guard
        raise IRError(f"unhandled operation {op}")

    if result >> dest_bits:
        raise IRError(f"result {result} does not fit destination of {statement}")
    _write(statement.dests, result, env)


def _require_reduced(a: int, b: int, q: int, statement: Statement) -> None:
    if q == 0:
        raise IRError(f"zero modulus in {statement}")
    if a >= q or b >= q:
        raise IRError(
            f"modular operation requires reduced operands (a={a}, b={b}, q={q}): {statement}"
        )
