"""Values of the abstract-code IR: variables, constants and operand groups.

The paper writes multi-word quantities as bracketed sequences such as
``[c0, c1] = [a0, a1] + [b0, b1]`` (Table 1).  :class:`Group` is that bracket:
an ordered, most-significant-first sequence of typed values whose combined
numeric value is the base-``2**width`` composition of its parts.  Groups may
mix widths — ``[delta, c2]`` combines a 1-bit carry with an omega-bit word —
exactly as the rules do.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Union

from repro.errors import IRError
from repro.core.ir.types import IntType

__all__ = ["Var", "Const", "Value", "Group", "NameGenerator", "as_group"]


@dataclass(frozen=True)
class Var:
    """A typed scalar variable.

    Attributes:
        name: unique name within a kernel.
        type: the variable's integer type.
        effective_bits: for kernel inputs of padded (power-of-two) types this
            records how many low bits can actually be non-zero at runtime
            (e.g. 384 for a BLS12-381-style operand stored in a u512).  The
            legalizer uses it to substitute known-zero high halves with
            constants, which is the paper's non-power-of-two optimization
            (Section 4, Equation 35).
    """

    name: str
    type: IntType
    effective_bits: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise IRError("variable name must be non-empty")
        if self.effective_bits is not None and not 0 <= self.effective_bits <= self.type.bits:
            raise IRError(
                f"effective_bits {self.effective_bits} out of range for {self.type}"
            )

    def __str__(self) -> str:
        return f"{self.name}:{self.type}"

    @property
    def bits(self) -> int:
        """The variable's declared bit-width."""
        return self.type.bits


@dataclass(frozen=True)
class Const:
    """A typed constant."""

    value: int
    type: IntType

    def __post_init__(self) -> None:
        if not self.type.fits(self.value):
            raise IRError(f"constant {self.value} does not fit in {self.type}")

    def __str__(self) -> str:
        return f"{self.value:#x}:{self.type}"

    @property
    def bits(self) -> int:
        """The constant's declared bit-width."""
        return self.type.bits


Value = Union[Var, Const]


@dataclass(frozen=True)
class Group:
    """A most-significant-first sequence of values forming one number.

    The numeric value of ``Group((p0, p1, ..., pk))`` is
    ``p0 * 2**(bits(p1)+...+bits(pk)) + p1 * 2**(bits(p2)+...+bits(pk)) + ...``.
    """

    parts: tuple[Value, ...]

    def __post_init__(self) -> None:
        if not self.parts:
            raise IRError("a group must contain at least one value")
        for part in self.parts:
            if not isinstance(part, (Var, Const)):
                raise IRError(f"group parts must be Var or Const, got {part!r}")

    def __str__(self) -> str:
        if len(self.parts) == 1:
            return str(self.parts[0])
        return "[" + ", ".join(str(part) for part in self.parts) + "]"

    def __iter__(self):
        return iter(self.parts)

    def __len__(self) -> int:
        return len(self.parts)

    @property
    def bits(self) -> int:
        """Total bit-width of the group."""
        return sum(part.bits for part in self.parts)

    @property
    def max_part_bits(self) -> int:
        """Width of the widest part; drives legalization."""
        return max(part.bits for part in self.parts)

    def variables(self) -> tuple[Var, ...]:
        """All variables referenced by this group, in order."""
        return tuple(part for part in self.parts if isinstance(part, Var))

    def compose(self, part_values: list[int]) -> int:
        """Combine per-part integer values into the group's numeric value."""
        if len(part_values) != len(self.parts):
            raise IRError(
                f"expected {len(self.parts)} part values, got {len(part_values)}"
            )
        value = 0
        for part, part_value in zip(self.parts, part_values):
            if not part.type.fits(part_value):
                raise IRError(f"value {part_value} does not fit in {part.type}")
            value = (value << part.bits) | part_value
        return value

    def decompose(self, value: int) -> list[int]:
        """Split a numeric value into per-part values (inverse of compose)."""
        if value < 0 or value >> self.bits:
            raise IRError(f"value {value} does not fit in a {self.bits}-bit group")
        part_values = []
        remaining = value
        for part in reversed(self.parts):
            part_values.append(remaining & part.type.mask)
            remaining >>= part.bits
        part_values.reverse()
        return part_values


def as_group(value: Union[Value, Group, tuple, list]) -> Group:
    """Coerce a value, tuple of values, or group into a :class:`Group`."""
    if isinstance(value, Group):
        return value
    if isinstance(value, (Var, Const)):
        return Group((value,))
    if isinstance(value, (tuple, list)):
        return Group(tuple(value))
    raise IRError(f"cannot interpret {value!r} as an operand group")


class NameGenerator:
    """Generates unique temporary names (``t0``, ``t1``, ...) within a kernel."""

    def __init__(self, prefix: str = "t") -> None:
        self._prefix = prefix
        self._counter = itertools.count()
        self._taken: set[str] = set()

    def reserve(self, name: str) -> None:
        """Mark a name as already in use (kernel parameters, existing temps)."""
        self._taken.add(name)

    def fresh(self, hint: str | None = None) -> str:
        """Return a fresh, never-before-issued name.

        If ``hint`` is given and still free it is used verbatim (so split
        halves keep the paper's ``x_0`` / ``x_1`` style names); otherwise a
        numeric suffix is appended.
        """
        if hint is not None and hint not in self._taken:
            self._taken.add(hint)
            return hint
        while True:
            base = hint if hint is not None else self._prefix
            candidate = f"{base}{next(self._counter)}"
            if candidate not in self._taken:
                self._taken.add(candidate)
                return candidate
