"""Constant folding and zero-operation pruning.

This pass is what turns the paper's non-power-of-two representation
(Equation 35: high words known to be zero become constants during splitting)
into actual savings: operations whose operands are compile-time constants are
evaluated at code-generation time, additions of zero and multiplications by
zero collapse, selects with constant conditions pick a branch, and the
resulting constants keep propagating until nothing more folds.

The pass works on legalized or non-legalized kernels alike; it only assumes
SSA form.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.core.ir.kernel import Kernel
from repro.core.ir.ops import OpKind, Statement
from repro.core.ir.values import Const, Group, Var

__all__ = ["fold_constants"]


def _const_value(part, known: dict[str, Const]):
    """Return the constant for a part if it is known, else None."""
    if isinstance(part, Const):
        return part.value
    replacement = known.get(part.name)
    return replacement.value if replacement is not None else None


def _group_const_value(group: Group, known: dict[str, Const]):
    """Numeric value of a group if every part is known, else None."""
    values = []
    for part in group:
        value = _const_value(part, known)
        if value is None:
            return None
        values.append(value)
    return group.compose(values)


def _substitute(group: Group, known: dict[str, Const]) -> Group:
    """Replace known-constant variables inside a group with constants."""
    parts = []
    changed = False
    for part in group:
        if isinstance(part, Var) and part.name in known:
            constant = known[part.name]
            parts.append(Const(constant.value, part.type))
            changed = True
        else:
            parts.append(part)
    return Group(tuple(parts)) if changed else group


def fold_constants(kernel: Kernel) -> Kernel:
    """Return a new kernel with constants propagated and folded.

    Statements whose destinations all become known constants are dropped
    (their values flow into later statements as constants), except when a
    destination is a kernel output, in which case a ``mov`` of the constant
    is kept so the output remains defined.
    """
    output_names = {output.name for output in kernel.outputs}
    known: dict[str, Const] = {}
    new_body: list[Statement] = []

    for statement in kernel.body:
        operands = tuple(_substitute(group, known) for group in statement.operands)
        statement = Statement(statement.op, statement.dests, operands, dict(statement.attrs))

        folded = _try_fold(statement, known)
        if folded is None:
            new_body.append(statement)
            continue
        # All destinations have compile-time values.
        keep: list[Statement] = []
        for dest, value in folded.items():
            known[dest.name] = Const(value, dest.type)
            if dest.name in output_names:
                keep.append(
                    Statement(OpKind.MOV, Group((dest,)), (Group((Const(value, dest.type),)),))
                )
        new_body.extend(keep)

    folded_kernel = Kernel(
        name=kernel.name,
        params=list(kernel.params),
        outputs=list(kernel.outputs),
        body=new_body,
        metadata=dict(kernel.metadata),
    )
    folded_kernel.validate()
    return folded_kernel


def _try_fold(statement: Statement, known: dict[str, Const]):
    """Try to evaluate a statement at compile time.

    Returns a mapping ``{dest_var: value}`` when every destination value is
    known, or ``None`` when the statement must be kept.  Partial
    simplifications (e.g. ``x + 0``) are handled by returning ``None`` here
    and leaving them to :func:`simplify_statement` via the pipeline.
    """
    op = statement.op
    values = [_group_const_value(group, known) for group in statement.operands]
    if any(value is None for value in values):
        return None
    dest_bits = statement.dests.bits

    if op is OpKind.MOV:
        result = values[0]
    elif op is OpKind.ADD:
        result = sum(values)
    elif op is OpKind.SUB:
        result = (values[0] - values[1] - (values[2] if len(values) == 3 else 0)) % (1 << dest_bits)
    elif op is OpKind.MUL:
        result = values[0] * values[1]
    elif op is OpKind.MULLO:
        result = (values[0] * values[1]) % (1 << dest_bits)
    elif op is OpKind.LT:
        result = int(values[0] < values[1])
    elif op is OpKind.LE:
        result = int(values[0] <= values[1])
    elif op is OpKind.EQ:
        result = int(values[0] == values[1])
    elif op is OpKind.AND:
        result = values[0] & values[1]
    elif op is OpKind.OR:
        result = values[0] | values[1]
    elif op is OpKind.NOT:
        result = (~values[0]) % (1 << dest_bits)
    elif op is OpKind.SELECT:
        result = values[1] if values[0] else values[2]
    elif op is OpKind.SHR:
        result = values[0] >> statement.attrs["amount"]
    elif op is OpKind.SHL:
        result = (values[0] << statement.attrs["amount"]) % (1 << dest_bits)
    elif op is OpKind.REDUCE:
        value, modulus = values
        result = value - modulus if value >= modulus else value
    elif op in (OpKind.ADDMOD, OpKind.SUBMOD, OpKind.MULMOD):
        a, b, q = values[:3]
        if q == 0:
            raise IRError(f"zero modulus constant in {statement}")
        if op is OpKind.ADDMOD:
            result = (a + b) % q
        elif op is OpKind.SUBMOD:
            result = (a - b) % q
        else:
            result = (a * b) % q
    else:  # pragma: no cover - exhaustiveness guard
        return None

    if result >> dest_bits:
        raise IRError(f"constant folding overflowed destination in {statement}")
    part_values = statement.dests.decompose(result)
    return {dest: value for dest, value in zip(statement.dests.parts, part_values)}
