"""Dead code elimination.

Removes statements none of whose destinations are ever used (by later
statements or as kernel outputs).  This cleans up the copies left behind by
copy propagation and CSE, the unused high halves of multiplications whose
results feed only a shift (Listing 4's "will not be used" temporaries when
they really are unused), and any operations orphaned by zero-pruning.
"""

from __future__ import annotations

from repro.core.ir.kernel import Kernel
from repro.core.ir.ops import Statement

__all__ = ["eliminate_dead_code"]


def eliminate_dead_code(kernel: Kernel) -> Kernel:
    """Return a new kernel without statements whose results are never used."""
    live = {output.name for output in kernel.outputs}
    keep_flags = [False] * len(kernel.body)

    # Walk backwards: a statement is live if any destination is live; its
    # operands then become live too.
    for index in range(len(kernel.body) - 1, -1, -1):
        statement = kernel.body[index]
        if any(dest.name in live for dest in statement.defined_vars()):
            keep_flags[index] = True
            for used in statement.used_vars():
                live.add(used.name)

    new_body = [statement for statement, keep in zip(kernel.body, keep_flags) if keep]
    pruned = Kernel(
        name=kernel.name,
        params=list(kernel.params),
        outputs=list(kernel.outputs),
        body=new_body,
        metadata=dict(kernel.metadata),
    )
    pruned.validate()
    return pruned
