"""Optimization passes run after MoMA legalization."""

from repro.core.passes.constant_fold import fold_constants
from repro.core.passes.copy_propagation import propagate_copies
from repro.core.passes.cse import eliminate_common_subexpressions
from repro.core.passes.dce import eliminate_dead_code
from repro.core.passes.pipeline import DEFAULT_PIPELINE, optimize, run_pipeline
from repro.core.passes.simplify import simplify

__all__ = [
    "fold_constants",
    "propagate_copies",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "DEFAULT_PIPELINE",
    "optimize",
    "run_pipeline",
    "simplify",
]
