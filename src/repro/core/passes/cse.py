"""Common subexpression elimination.

The comparison chains of rules (24)-(26) recompute limb equalities and
less-thans that earlier statements already produced (visible in Listing 4,
where the same comparisons appear in ``_dlt`` and ``_dsub``).  Because
kernels are straight-line SSA, CSE is a single forward sweep with a value
table keyed by (operation, operand identities, attributes); later identical
statements become copies of the first result and are then cleaned up by copy
propagation + DCE.
"""

from __future__ import annotations

from repro.core.ir.kernel import Kernel
from repro.core.ir.ops import OpKind, Statement
from repro.core.ir.values import Const, Group, Var

__all__ = ["eliminate_common_subexpressions"]

#: Operations safe to deduplicate (pure, deterministic — which is all of them;
#: MOV is excluded because copy propagation already handles it).
_CSE_OPS = frozenset(
    {
        OpKind.ADD,
        OpKind.SUB,
        OpKind.MUL,
        OpKind.MULLO,
        OpKind.LT,
        OpKind.LE,
        OpKind.EQ,
        OpKind.AND,
        OpKind.OR,
        OpKind.NOT,
        OpKind.SELECT,
        OpKind.SHR,
        OpKind.SHL,
        OpKind.REDUCE,
        OpKind.ADDMOD,
        OpKind.SUBMOD,
        OpKind.MULMOD,
    }
)


def _part_key(part) -> tuple:
    if isinstance(part, Const):
        return ("const", part.value, part.bits)
    return ("var", part.name, part.bits)


def _statement_key(statement: Statement) -> tuple:
    operand_keys = tuple(
        tuple(_part_key(part) for part in group) for group in statement.operands
    )
    dest_widths = tuple(part.bits for part in statement.dests)
    attrs = tuple(sorted(statement.attrs.items()))
    return (statement.op, operand_keys, dest_widths, attrs)


def eliminate_common_subexpressions(kernel: Kernel) -> Kernel:
    """Return a new kernel where repeated computations reuse earlier results."""
    seen: dict[tuple, tuple[Var, ...]] = {}
    new_body: list[Statement] = []

    for statement in kernel.body:
        if statement.op not in _CSE_OPS:
            new_body.append(statement)
            continue
        key = _statement_key(statement)
        previous = seen.get(key)
        if previous is None:
            seen[key] = statement.dests.parts
            new_body.append(statement)
            continue
        # Replace with moves from the earlier destinations.
        for dest, source in zip(statement.dests.parts, previous):
            new_body.append(Statement(OpKind.MOV, Group((dest,)), (Group((source,)),)))

    deduplicated = Kernel(
        name=kernel.name,
        params=list(kernel.params),
        outputs=list(kernel.outputs),
        body=new_body,
        metadata=dict(kernel.metadata),
    )
    deduplicated.validate()
    return deduplicated
