"""Copy propagation.

Legalization produces a fair number of single-part ``mov`` statements (for
example the destination of a comparison chain being copied into the flag
variable a later rule expects).  This pass forwards such copies to their
uses so that dead-code elimination can then delete the movs.  Only
single-part to single-part copies of identical width are propagated; moves
that narrow, widen or regroup values are left alone.
"""

from __future__ import annotations

from repro.core.ir.kernel import Kernel
from repro.core.ir.ops import OpKind, Statement
from repro.core.ir.values import Const, Group, Var

__all__ = ["propagate_copies"]


def propagate_copies(kernel: Kernel) -> Kernel:
    """Return a new kernel with single-part copies forwarded to their uses."""
    replacements: dict[str, object] = {}
    output_names = {output.name for output in kernel.outputs}
    new_body: list[Statement] = []

    def resolve(part):
        seen = set()
        while isinstance(part, Var) and part.name in replacements and part.name not in seen:
            seen.add(part.name)
            part = replacements[part.name]
        return part

    for statement in kernel.body:
        new_operands = []
        for group in statement.operands:
            parts = tuple(resolve(part) for part in group)
            new_operands.append(Group(parts) if parts != group.parts else group)
        statement = Statement(statement.op, statement.dests, tuple(new_operands), dict(statement.attrs))

        if (
            statement.op is OpKind.MOV
            and len(statement.dests) == 1
            and len(statement.operands[0]) == 1
        ):
            dest = statement.dests.parts[0]
            source = statement.operands[0].parts[0]
            same_width = dest.bits == source.bits
            if same_width and dest.name not in output_names:
                # Record the copy; keep the statement for now (DCE removes it
                # once nothing refers to the destination any more).
                replacements[dest.name] = source
        new_body.append(statement)

    propagated = Kernel(
        name=kernel.name,
        params=list(kernel.params),
        outputs=list(kernel.outputs),
        body=new_body,
        metadata=dict(kernel.metadata),
    )
    propagated.validate()
    return propagated
