"""Algebraic simplification of statements with partially-constant operands.

Complements :mod:`repro.core.passes.constant_fold`: where the folder handles
statements whose operands are *all* constants, this pass rewrites statements
where only *some* operands are constant — ``x + 0``, ``x * 0``, ``x * 1``,
``select`` with a constant condition, comparisons against values a type
cannot exceed, and shift-by-zero — into moves or constants.  Together with
the folder it implements the paper's pruning of redundant operations for
non-power-of-two bit-widths (Section 4).
"""

from __future__ import annotations

from repro.core.ir.kernel import Kernel
from repro.core.ir.ops import OpKind, Statement
from repro.core.ir.values import Const, Group

__all__ = ["simplify"]


def _is_const(group: Group, value: int | None = None) -> bool:
    if len(group) != 1 or not isinstance(group.parts[0], Const):
        return False
    return value is None or group.parts[0].value == value


def _mov(dests: Group, source: Group) -> Statement:
    return Statement(OpKind.MOV, dests, (source,))


def simplify(kernel: Kernel) -> Kernel:
    """Return a new kernel with algebraic identities applied statement-wise."""
    new_body = []
    for statement in kernel.body:
        new_body.append(_simplify_statement(statement))
    simplified = Kernel(
        name=kernel.name,
        params=list(kernel.params),
        outputs=list(kernel.outputs),
        body=new_body,
        metadata=dict(kernel.metadata),
    )
    simplified.validate()
    return simplified


def _simplify_statement(statement: Statement) -> Statement:
    op = statement.op
    operands = statement.operands
    dests = statement.dests

    if op is OpKind.ADD:
        non_zero = [group for group in operands if not _is_const(group, 0)]
        if not non_zero:
            return _mov(dests, Group((Const(0, dests.parts[-1].type),)))
        if len(non_zero) == 1:
            return _mov(dests, non_zero[0])
        if len(non_zero) < len(operands):
            return Statement(OpKind.ADD, dests, tuple(non_zero), dict(statement.attrs))
        return statement

    if op is OpKind.SUB:
        # x - 0 - 0 == x.
        if all(_is_const(group, 0) for group in operands[1:]):
            return _mov(dests, operands[0])
        if len(operands) == 3 and _is_const(operands[2], 0):
            return Statement(OpKind.SUB, dests, operands[:2], dict(statement.attrs))
        return statement

    if op in (OpKind.MUL, OpKind.MULLO):
        if any(_is_const(group, 0) for group in operands):
            return _mov(dests, Group((Const(0, dests.parts[-1].type),)))
        if _is_const(operands[0], 1):
            return _mov(dests, operands[1])
        if _is_const(operands[1], 1):
            return _mov(dests, operands[0])
        return statement

    if op is OpKind.SELECT:
        condition, if_true, if_false = operands
        if _is_const(condition):
            chosen = if_true if condition.parts[0].value else if_false
            return _mov(dests, chosen)
        if if_true == if_false:
            return _mov(dests, if_true)
        return statement

    if op in (OpKind.AND, OpKind.OR):
        left, right = operands
        if op is OpKind.AND:
            if _is_const(left, 0) or _is_const(right, 0):
                return _mov(dests, Group((Const(0, dests.parts[0].type),)))
            if _is_const(left, 1) and dests.bits == 1:
                return _mov(dests, right)
            if _is_const(right, 1) and dests.bits == 1:
                return _mov(dests, left)
        else:
            if _is_const(left, 0):
                return _mov(dests, right)
            if _is_const(right, 0):
                return _mov(dests, left)
            if (_is_const(left, 1) or _is_const(right, 1)) and dests.bits == 1:
                return _mov(dests, Group((Const(1, dests.parts[0].type),)))
        return statement

    if op in (OpKind.SHR, OpKind.SHL):
        if statement.attrs.get("amount", 0) == 0 and operands[0].bits <= dests.bits:
            return _mov(dests, operands[0])
        if _is_const(operands[0], 0):
            return _mov(dests, Group((Const(0, dests.parts[-1].type),)))
        return statement

    if op is OpKind.LT:
        # x < 0 is always false.
        if _is_const(operands[1], 0):
            return _mov(dests, Group((Const(0, dests.parts[0].type),)))
        return statement

    if op is OpKind.LE:
        # 0 <= x is always true.
        if _is_const(operands[0], 0):
            return _mov(dests, Group((Const(1, dests.parts[0].type),)))
        return statement

    return statement
