"""Optimization pass pipeline.

The standard pipeline mirrors what the SPIRAL backend does after the MoMA
rewrite pass: propagate and fold the constants introduced by zero-limb
pruning, remove duplicate comparisons, forward copies, and delete dead code,
iterating to a fixed point (each pass can expose work for the others).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.ir.kernel import Kernel
from repro.core.passes.constant_fold import fold_constants
from repro.core.passes.copy_propagation import propagate_copies
from repro.core.passes.cse import eliminate_common_subexpressions
from repro.core.passes.dce import eliminate_dead_code
from repro.core.passes.simplify import simplify

__all__ = ["optimize", "run_pipeline", "DEFAULT_PIPELINE"]

Pass = Callable[[Kernel], Kernel]

#: The default pass order; one round of this list is one pipeline iteration.
DEFAULT_PIPELINE: tuple[Pass, ...] = (
    fold_constants,
    simplify,
    propagate_copies,
    eliminate_common_subexpressions,
    propagate_copies,
    eliminate_dead_code,
)


def run_pipeline(kernel: Kernel, passes: Sequence[Pass]) -> Kernel:
    """Run an explicit sequence of passes once, in order."""
    for optimization in passes:
        kernel = optimization(kernel)
    return kernel


def optimize(kernel: Kernel, max_rounds: int = 8) -> Kernel:
    """Run the default pipeline until the body stops changing.

    ``max_rounds`` bounds the iteration; in practice two or three rounds
    reach the fixed point even for 1,024-bit kernels.
    """
    previous_fingerprint = None
    for _ in range(max_rounds):
        kernel = run_pipeline(kernel, DEFAULT_PIPELINE)
        fingerprint = tuple(str(statement) for statement in kernel.body)
        if fingerprint == previous_fingerprint:
            break
        previous_fingerprint = fingerprint
    return kernel
