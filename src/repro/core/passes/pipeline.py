"""Optimization pass pipeline.

The standard pipeline mirrors what the SPIRAL backend does after the MoMA
rewrite pass: propagate and fold the constants introduced by zero-limb
pruning, remove duplicate comparisons, forward copies, and delete dead code,
iterating to a fixed point (each pass can expose work for the others).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence

from repro.core.ir.fingerprint import body_signature
from repro.core.ir.kernel import Kernel
from repro.core.passes.constant_fold import fold_constants
from repro.core.passes.copy_propagation import propagate_copies
from repro.core.passes.cse import eliminate_common_subexpressions
from repro.core.passes.dce import eliminate_dead_code
from repro.core.passes.simplify import simplify

__all__ = ["optimize", "run_pipeline", "DEFAULT_PIPELINE", "PassObserver"]

Pass = Callable[[Kernel], Kernel]

#: Callback invoked after each pass application:
#: ``observer(pass_name, round_index, seconds, statements_before, statements_after)``.
PassObserver = Callable[[str, int, float, int, int], None]

#: The default pass order; one round of this list is one pipeline iteration.
DEFAULT_PIPELINE: tuple[Pass, ...] = (
    fold_constants,
    simplify,
    propagate_copies,
    eliminate_common_subexpressions,
    propagate_copies,
    eliminate_dead_code,
)


def run_pipeline(kernel: Kernel, passes: Sequence[Pass]) -> Kernel:
    """Run an explicit sequence of passes once, in order."""
    for optimization in passes:
        kernel = optimization(kernel)
    return kernel


def optimize(
    kernel: Kernel,
    max_rounds: int = 8,
    pipeline: Sequence[Pass] = DEFAULT_PIPELINE,
    observer: PassObserver | None = None,
) -> Kernel:
    """Run the pipeline until the body stops changing.

    ``max_rounds`` bounds the iteration; in practice two or three rounds
    reach the fixed point even for 1,024-bit kernels.  The fixed point is
    detected with :func:`body_signature` — a structural hash, much cheaper
    than re-stringifying every statement each round.  ``observer`` (used by
    the driver's :class:`~repro.core.driver.session.CompilerSession` for
    pipeline instrumentation) receives per-pass timing and statement counts.
    """
    previous_signature = body_signature(kernel)
    for round_index in range(max_rounds):
        for optimization in pipeline:
            statements_before = len(kernel.body)
            started = time.perf_counter()
            kernel = optimization(kernel)
            if observer is not None:
                observer(
                    optimization.__name__,
                    round_index,
                    time.perf_counter() - started,
                    statements_before,
                    len(kernel.body),
                )
        signature = body_signature(kernel)
        if signature == previous_signature:
            break
        previous_signature = signature
    return kernel
