"""The paper's contribution: abstract-code IR, MoMA rewrite system,
optimization passes, code generators, and the compiler driver that ties
them together behind one entry point."""

from repro.core.ir import KernelBuilder, Kernel, interpret
from repro.core.rewrite import RewriteOptions, legalize
from repro.core.driver import CompilerSession, Target, get_default_session

__all__ = [
    "KernelBuilder",
    "Kernel",
    "interpret",
    "RewriteOptions",
    "legalize",
    "CompilerSession",
    "Target",
    "get_default_session",
]
