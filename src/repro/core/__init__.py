"""The paper's contribution: abstract-code IR, MoMA rewrite system,
optimization passes and code generators."""

from repro.core.ir import KernelBuilder, Kernel, interpret
from repro.core.rewrite import RewriteOptions, legalize

__all__ = ["KernelBuilder", "Kernel", "interpret", "RewriteOptions", "legalize"]
