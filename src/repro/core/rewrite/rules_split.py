"""Width-splitting rules (Table 1 of the paper).

Each rule takes one statement whose widest part exceeds the machine word,
splits those parts in half (rule 19, via :class:`SplitContext`), and emits an
equivalent sequence of statements at the halved width:

================  ==========================================================
Rule(s)           Implementation
================  ==========================================================
(19)              ``SplitContext.split_var`` / ``split_const``
(20), (21)        implicit: splitting a value yields its high/low halves
(22), (23), (29)  :func:`split_add` — carry-chain addition over columns
(24)              handled by ``expand_addmod`` + :func:`split_sub`/`split_lt`
(25)              :func:`split_sub` — borrow-chain subtraction
(26)              :func:`split_lt` (and the ``<=`` variant used for
                  canonical residues)
(27)              :func:`split_eq`
(28)              :func:`split_mul` (schoolbook); the Karatsuba alternative
                  of Equation 9 is :func:`split_mul` with
                  ``algorithm="karatsuba"``
================  ==========================================================

plus structural rules the paper leaves implicit (multi-word ``mov``,
``select``, constant shifts — the ``_qshr`` of Listing 4).
"""

from __future__ import annotations

from repro.errors import RewriteError
from repro.core.ir.ops import OpKind, Statement
from repro.core.ir.types import IntType
from repro.core.ir.values import Const, Group, Var
from repro.core.rewrite.emitter import Emitter
from repro.core.rewrite.options import KARATSUBA, RewriteOptions
from repro.core.rewrite.splitting import SplitContext, group_columns
from repro.core.ir.values import as_group

__all__ = [
    "split_add",
    "split_sub",
    "split_mul",
    "split_mullo",
    "split_lt",
    "split_le",
    "split_eq",
    "split_select",
    "split_mov",
    "split_shift",
    "SPLITS",
]


def _limb_bits(statement: Statement, options: RewriteOptions) -> int:
    """The limb width for one splitting step: half the widest part."""
    widest = statement.max_part_bits
    if widest <= options.word_bits:
        raise RewriteError(
            f"statement does not need splitting (widest part {widest} bits): {statement}"
        )
    if widest % 2:
        raise RewriteError(f"cannot split odd width {widest}: {statement}")
    return widest // 2


def _is_zero(part) -> bool:
    return isinstance(part, Const) and part.value == 0


def split_add(statement: Statement, context: SplitContext, options: RewriteOptions) -> list[Statement]:
    """Rules (22)/(23)/(29): carry-chain addition over split limbs."""
    limb = _limb_bits(statement, options)
    dest_columns = group_columns(context.split_group(statement.dests, limb), limb)
    addend_groups = list(statement.operands)
    carry_in = None
    if len(addend_groups) == 3:
        carry_group = context.split_group(addend_groups.pop(), limb)
        if len(carry_group) != 1:
            raise RewriteError(f"carry-in operand must be a single part: {statement}")
        carry_in = carry_group.parts[0]
    addend_columns = [
        group_columns(context.split_group(group, limb), limb) for group in addend_groups
    ]
    emit = Emitter(context)
    emit.column_add(dest_columns, addend_columns, carry_in)
    return emit.statements


def split_sub(statement: Statement, context: SplitContext, options: RewriteOptions) -> list[Statement]:
    """Rule (25): borrow-chain subtraction over split limbs."""
    limb = _limb_bits(statement, options)
    dest_columns = group_columns(context.split_group(statement.dests, limb), limb)
    minuend = group_columns(context.split_group(statement.operands[0], limb), limb)
    subtrahend = group_columns(context.split_group(statement.operands[1], limb), limb)
    borrow_in = None
    if len(statement.operands) == 3:
        borrow_group = context.split_group(statement.operands[2], limb)
        if len(borrow_group) != 1:
            raise RewriteError(f"borrow-in operand must be a single part: {statement}")
        borrow_in = borrow_group.parts[0]
    emit = Emitter(context)
    emit.column_sub(dest_columns, minuend, subtrahend, borrow_in)
    return emit.statements


def _binary_operand_columns(statement: Statement, context: SplitContext, limb: int) -> tuple[list, list]:
    left = group_columns(context.split_group(statement.operands[0], limb), limb)
    right = group_columns(context.split_group(statement.operands[1], limb), limb)
    count = max(len(left), len(right))
    zero = Const(0, IntType(limb))
    left = left + [zero] * (count - len(left))
    right = right + [zero] * (count - len(right))
    return left, right


def _split_comparison(
    statement: Statement, context: SplitContext, options: RewriteOptions, final_op: OpKind
) -> list[Statement]:
    """Rules (26)/(27) generalised to any number of limbs.

    Lexicographic comparison from the most significant limb downward:
    ``a < b  <=>  (a0 < b0) or (a0 == b0 and [a1..] < [b1..])``.
    """
    limb = _limb_bits(statement, options)
    left, right = _binary_operand_columns(statement, context, limb)
    emit = Emitter(context)
    # Work most-significant-first.
    left_ms = list(reversed(left))
    right_ms = list(reversed(right))
    result = None
    equal_so_far = None
    for index, (a, b) in enumerate(zip(left_ms, right_ms)):
        is_last = index == len(left_ms) - 1
        op = final_op if is_last else OpKind.LT
        this_cmp = emit.compare(op, a, b, hint="lt")
        if equal_so_far is not None:
            this_cmp = emit.logic(OpKind.AND, equal_so_far, this_cmp, hint="cmp")
        result = this_cmp if result is None else emit.logic(OpKind.OR, result, this_cmp, hint="cmp")
        if not is_last:
            this_eq = emit.compare(OpKind.EQ, a, b, hint="eq")
            equal_so_far = (
                this_eq
                if equal_so_far is None
                else emit.logic(OpKind.AND, equal_so_far, this_eq, hint="eq")
            )
    emit.mov(statement.dests, result)
    return emit.statements


def split_lt(statement: Statement, context: SplitContext, options: RewriteOptions) -> list[Statement]:
    """Rule (26): multi-word less-than."""
    return _split_comparison(statement, context, options, OpKind.LT)


def split_le(statement: Statement, context: SplitContext, options: RewriteOptions) -> list[Statement]:
    """Rule (26) adapted to ``<=`` (used for canonical conditional subtraction)."""
    return _split_comparison(statement, context, options, OpKind.LE)


def split_eq(statement: Statement, context: SplitContext, options: RewriteOptions) -> list[Statement]:
    """Rule (27): multi-word equality is the conjunction of limb equalities."""
    limb = _limb_bits(statement, options)
    left, right = _binary_operand_columns(statement, context, limb)
    emit = Emitter(context)
    result = None
    for a, b in zip(reversed(left), reversed(right)):
        this_eq = emit.compare(OpKind.EQ, a, b, hint="eq")
        result = this_eq if result is None else emit.logic(OpKind.AND, result, this_eq, hint="eq")
    emit.mov(statement.dests, result)
    return emit.statements


def split_select(statement: Statement, context: SplitContext, options: RewriteOptions) -> list[Statement]:
    """Multi-word conditional assignment: one select per destination limb."""
    limb = _limb_bits(statement, options)
    condition_group = context.split_group(statement.operands[0], limb)
    if len(condition_group) != 1:
        raise RewriteError(f"select condition must be a single flag: {statement}")
    condition = condition_group.parts[0]
    dest_columns = group_columns(context.split_group(statement.dests, limb), limb)
    zero = Const(0, IntType(limb))
    true_columns = group_columns(context.split_group(statement.operands[1], limb), limb)
    false_columns = group_columns(context.split_group(statement.operands[2], limb), limb)
    emit = Emitter(context)
    for index, dest in enumerate(dest_columns):
        if_true = true_columns[index] if index < len(true_columns) else zero
        if_false = false_columns[index] if index < len(false_columns) else zero
        emit.select(dest, condition, if_true, if_false)
    return emit.statements


def split_mov(statement: Statement, context: SplitContext, options: RewriteOptions) -> list[Statement]:
    """Multi-word assignment: one move per destination limb."""
    limb = _limb_bits(statement, options)
    dest_columns = group_columns(context.split_group(statement.dests, limb), limb)
    source_columns = group_columns(context.split_group(statement.operands[0], limb), limb)
    zero = Const(0, IntType(limb))
    emit = Emitter(context)
    for index, dest in enumerate(dest_columns):
        source = source_columns[index] if index < len(source_columns) else zero
        emit.mov(dest, source)
    return emit.statements


def split_shift(statement: Statement, context: SplitContext, options: RewriteOptions) -> list[Statement]:
    """Constant right shift across limbs (``_qshr`` of Listing 4, generalised).

    For a right shift each destination limb combines at most two source limbs:
    ``dest[j] = (src[j+s] >> r) | (src[j+s+1] << (limb - r))`` where
    ``s = amount // limb`` and ``r = amount % limb``; a left shift is the
    mirror image.
    """
    limb = _limb_bits(statement, options)
    amount = statement.attrs["amount"]
    dest_columns = group_columns(context.split_group(statement.dests, limb), limb)
    source_columns = group_columns(context.split_group(statement.operands[0], limb), limb)
    skip, remainder = divmod(amount, limb)
    zero = Const(0, IntType(limb))
    emit = Emitter(context)

    def source(index: int):
        if 0 <= index < len(source_columns):
            return source_columns[index]
        return zero

    for index, dest in enumerate(dest_columns):
        if statement.op is OpKind.SHR:
            # Bits [ (index+skip)*limb + remainder , ... ) of the source.
            low_source, high_source = source(index + skip), source(index + skip + 1)
            low_op, high_op = OpKind.SHR, OpKind.SHL
        else:
            # Left shift: dest limb j takes src[j - skip] << r | src[j-skip-1] >> (limb - r).
            low_source, high_source = source(index - skip - 1), source(index - skip)
            low_op, high_op = OpKind.SHR, OpKind.SHL
            # For SHL the "high" fragment is the shifted-left piece of the
            # aligned source limb and the "low" fragment spills in from the
            # limb below.
        if remainder == 0:
            aligned = source(index + skip) if statement.op is OpKind.SHR else source(index - skip)
            emit.mov(dest, aligned)
            continue
        if statement.op is OpKind.SHR:
            fragments = [(low_source, low_op, remainder), (high_source, high_op, limb - remainder)]
        else:
            fragments = [(high_source, high_op, remainder), (low_source, low_op, limb - remainder)]
        fragments = [
            (part, op, shift_by)
            for part, op, shift_by in fragments
            if not _is_zero(part) and shift_by < limb
        ]
        if not fragments:
            emit.mov(dest, zero)
            continue
        if len(fragments) == 1:
            part, op, shift_by = fragments[0]
            if shift_by == 0:
                emit.mov(dest, part)
            else:
                emit.emit(op, dest, [part], amount=shift_by)
            continue
        pieces = []
        for part, op, shift_by in fragments:
            piece = emit.fresh(limb, "shf")
            if shift_by == 0:
                emit.mov(piece, part)
            else:
                emit.emit(op, piece, [part], amount=shift_by)
            pieces.append(piece)
        emit.emit(OpKind.OR, dest, pieces)
    return emit.statements


def split_mul(statement: Statement, context: SplitContext, options: RewriteOptions) -> list[Statement]:
    """Rule (28) (schoolbook) or Equation 9 (Karatsuba) for widening multiplies."""
    limb = _limb_bits(statement, options)
    dest_columns = group_columns(context.split_group(statement.dests, limb), limb)
    left = group_columns(context.split_group(statement.operands[0], limb), limb)
    right = group_columns(context.split_group(statement.operands[1], limb), limb)

    if len(left) == 1 and len(right) == 1:
        # The operands were already at the limb width; only the destination
        # needed splitting — re-emit the same multiplication with the split
        # destination (this is the shape `[hi, lo] = a * b`).
        emit = Emitter(context)
        emit.emit(
            OpKind.MUL,
            Group(tuple(reversed(dest_columns))),
            [left[0], right[0]],
            **statement.attrs,
        )
        return emit.statements

    if len(left) != 2 or len(right) != 2 or len(dest_columns) != 4:
        raise RewriteError(
            f"widening multiplication must be split one doubling at a time: {statement}"
        )

    algorithm = statement.attrs.get("algorithm", options.multiplication)
    if algorithm == KARATSUBA:
        return _split_mul_karatsuba(statement, context, dest_columns, left, right, limb)
    return _split_mul_schoolbook(statement, context, dest_columns, left, right, limb)


def _split_mul_schoolbook(
    statement: Statement,
    context: SplitContext,
    dest_columns: list,
    left: list,
    right: list,
    limb: int,
) -> list[Statement]:
    """Rule (28): four limb products combined with carry chains."""
    emit = Emitter(context)
    a_lo, a_hi = left
    b_lo, b_hi = right
    attrs = dict(statement.attrs)

    def limb_product(x, y, hint):
        if _is_zero(x) or _is_zero(y):
            return Const(0, IntType(limb)), Const(0, IntType(limb))
        hi = emit.fresh(limb, f"{hint}h")
        lo = emit.fresh(limb, f"{hint}l")
        emit.emit(OpKind.MUL, Group((hi, lo)), [x, y], **attrs)
        return hi, lo

    low_hi, low_lo = limb_product(a_lo, b_lo, "ll")          # a1 * b1
    high_hi, high_lo = limb_product(a_hi, b_hi, "hh")        # a0 * b0
    cross1_hi, cross1_lo = limb_product(a_hi, b_lo, "hl")    # a0 * b1
    cross2_hi, cross2_lo = limb_product(a_lo, b_hi, "lh")    # a1 * b0

    # cross = a0*b1 + a1*b0 : a (2*limb + 1)-bit value [carry, hi, lo].
    cross_carry = emit.fresh_flag("cc")
    cross_hi = emit.fresh(limb, "ch")
    cross_lo = emit.fresh(limb, "cl")
    emit.column_add(
        [cross_lo, cross_hi, cross_carry],
        [[cross1_lo, cross1_hi], [cross2_lo, cross2_hi]],
    )

    # result = (a0*b0) << 2w + cross << w + a1*b1  (rule 29's carry chain).
    emit.column_add(
        dest_columns,
        [
            [low_lo, low_hi, high_lo, high_hi],
            [Const(0, IntType(limb)), cross_lo, cross_hi, cross_carry],
        ],
    )
    return emit.statements


def _split_mul_karatsuba(
    statement: Statement,
    context: SplitContext,
    dest_columns: list,
    left: list,
    right: list,
    limb: int,
) -> list[Statement]:
    """Equation 9: three limb products plus carry-corrected combination."""
    emit = Emitter(context)
    a_lo, a_hi = left
    b_lo, b_hi = right
    attrs = dict(statement.attrs)
    zero = Const(0, IntType(limb))

    def limb_product(x, y, hint):
        if _is_zero(x) or _is_zero(y):
            return zero, zero
        hi = emit.fresh(limb, f"{hint}h")
        lo = emit.fresh(limb, f"{hint}l")
        emit.emit(OpKind.MUL, Group((hi, lo)), [x, y], **attrs)
        return hi, lo

    low_hi, low_lo = limb_product(a_lo, b_lo, "ll")      # a1 * b1
    high_hi, high_lo = limb_product(a_hi, b_hi, "hh")    # a0 * b0

    # Half sums with explicit carry bits.
    carry_a = emit.fresh_flag("ka")
    sum_a = emit.fresh(limb, "sa")
    emit.emit(OpKind.ADD, Group((carry_a, sum_a)), [a_hi, a_lo])
    carry_b = emit.fresh_flag("kb")
    sum_b = emit.fresh(limb, "sb")
    emit.emit(OpKind.ADD, Group((carry_b, sum_b)), [b_hi, b_lo])

    partial_hi, partial_lo = limb_product(sum_a, sum_b, "ks")

    # Carry corrections: (ca ? sb : 0) and (cb ? sa : 0) enter at offset w,
    # (ca & cb) enters at offset 2w.
    correction_b = emit.fresh(limb, "kc")
    emit.select(correction_b, carry_a, sum_b, zero)
    correction_a = emit.fresh(limb, "kd")
    emit.select(correction_a, carry_b, sum_a, zero)
    both_carries = emit.logic(OpKind.AND, carry_a, carry_b, hint="ke")

    # cross = partial + (correction_a + correction_b) << w + both << 2w,
    # a value of at most 2w + 2 bits kept as three limbs.
    corr_carry = emit.fresh_flag("kf")
    corr_sum = emit.fresh(limb, "kg")
    emit.emit(OpKind.ADD, Group((corr_carry, corr_sum)), [correction_a, correction_b])
    mid_carry = emit.fresh_flag("kh")
    cross_mid = emit.fresh(limb, "ki")
    emit.emit(OpKind.ADD, Group((mid_carry, cross_mid)), [partial_hi, corr_sum])
    top_partial = emit.fresh(limb, "kj")
    emit.emit(OpKind.ADD, top_partial, [both_carries, corr_carry])
    cross_top = emit.fresh(limb, "kk")
    emit.emit(OpKind.ADD, cross_top, [top_partial, mid_carry])

    # middle = cross - a0*b0 - a1*b1 (non-negative), three limbs.
    middle_a = [emit.fresh(limb, "km") for _ in range(3)]
    emit.column_sub(middle_a, [partial_lo, cross_mid, cross_top], [high_lo, high_hi])
    middle = [emit.fresh(limb, "kn") for _ in range(3)]
    emit.column_sub(middle, middle_a, [low_lo, low_hi])

    # result = (a0*b0) << 2w + middle << w + a1*b1.
    emit.column_add(
        dest_columns,
        [
            [low_lo, low_hi, high_lo, high_hi],
            [zero, middle[0], middle[1], middle[2]],
        ],
    )
    return emit.statements


def split_bitwise(statement: Statement, context: SplitContext, options: RewriteOptions) -> list[Statement]:
    """Bitwise AND/OR on wide values: one operation per destination limb.

    These arise from the multi-word shift rule, which combines adjacent limb
    fragments with ``or``; there is no carry interaction, so the split is a
    straight per-column map.
    """
    limb = _limb_bits(statement, options)
    dest_columns = group_columns(context.split_group(statement.dests, limb), limb)
    left, right = _binary_operand_columns(statement, context, limb)
    emit = Emitter(context)
    for index, dest in enumerate(dest_columns):
        emit.emit(statement.op, dest, [left[index], right[index]])
    return emit.statements


def split_mullo(statement: Statement, context: SplitContext, options: RewriteOptions) -> list[Statement]:
    """Low-half multiplication: ``dest = (a * b) mod 2**width``.

    Used for the final ``r*q`` product of Barrett reduction, where Listing 4
    discards the high half.  Splitting needs one full limb product for the
    low limbs and only low-half products for the cross terms.
    """
    limb = _limb_bits(statement, options)
    dest_columns = group_columns(context.split_group(statement.dests, limb), limb)
    left = group_columns(context.split_group(statement.operands[0], limb), limb)
    right = group_columns(context.split_group(statement.operands[1], limb), limb)

    if len(left) == 1 and len(right) == 1:
        emit = Emitter(context)
        emit.emit(
            OpKind.MULLO,
            Group(tuple(reversed(dest_columns))),
            [left[0], right[0]],
            **statement.attrs,
        )
        return emit.statements

    if len(left) != 2 or len(right) != 2 or len(dest_columns) != 2:
        raise RewriteError(
            f"low-half multiplication must be split one doubling at a time: {statement}"
        )

    emit = Emitter(context)
    a_lo, a_hi = left
    b_lo, b_hi = right
    attrs = dict(statement.attrs)
    zero = Const(0, IntType(limb))

    if _is_zero(a_lo) or _is_zero(b_lo):
        low_hi, low_lo = zero, zero
    else:
        low_hi = emit.fresh(limb, "mlh")
        low_lo = emit.fresh(limb, "mll")
        emit.emit(OpKind.MUL, Group((low_hi, low_lo)), [a_lo, b_lo], **attrs)

    def low_product(x, y, hint):
        if _is_zero(x) or _is_zero(y):
            return zero
        result = emit.fresh(limb, hint)
        emit.emit(OpKind.MULLO, result, [x, y], **attrs)
        return result

    cross1 = low_product(a_hi, b_lo, "mc1")
    cross2 = low_product(a_lo, b_hi, "mc2")

    # dest_lo = low_lo; dest_hi = low_hi + cross1 + cross2 (mod 2**limb).
    emit.mov(dest_columns[0], low_lo)
    addends = [part for part in (low_hi, cross1, cross2) if not _is_zero(part)]
    dest_hi = dest_columns[1]
    if not addends:
        emit.mov(dest_hi, zero)
    elif len(addends) == 1:
        emit.mov(dest_hi, addends[0])
    else:
        # Wrap-around additions: route the unused carries to scratch flags.
        accumulator = addends[0]
        for index, addend in enumerate(addends[1:]):
            is_last = index == len(addends) - 2
            target = dest_hi if is_last else emit.fresh(limb, "mac")
            scratch = emit.fresh_flag("mcr")
            emit.emit(OpKind.ADD, Group((scratch, target)), [accumulator, addend])
            accumulator = target
    return emit.statements


#: Dispatch table used by the legalizer.
SPLITS = {
    OpKind.ADD: split_add,
    OpKind.SUB: split_sub,
    OpKind.MUL: split_mul,
    OpKind.MULLO: split_mullo,
    OpKind.LT: split_lt,
    OpKind.LE: split_le,
    OpKind.EQ: split_eq,
    OpKind.SELECT: split_select,
    OpKind.MOV: split_mov,
    OpKind.SHR: split_shift,
    OpKind.SHL: split_shift,
    OpKind.AND: split_bitwise,
    OpKind.OR: split_bitwise,
}
