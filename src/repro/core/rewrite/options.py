"""Configuration of the MoMA legalization pass."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RewriteError

__all__ = ["RewriteOptions", "SCHOOLBOOK", "KARATSUBA"]

#: Multiplication algorithm names (Section 5.4: the user selects one).
SCHOOLBOOK = "schoolbook"
KARATSUBA = "karatsuba"


@dataclass(frozen=True)
class RewriteOptions:
    """Options controlling how kernels are legalized.

    Attributes:
        word_bits: the machine word width to legalize down to (64 on the
            paper's GPUs; 32 is also supported and exercised by tests).
        multiplication: which double-word multiplication rule to use at every
            recursion level — ``"schoolbook"`` (Equation 8 / rule 28) or
            ``"karatsuba"`` (Equation 9).  Individual ``mulmod`` statements
            can override this via their ``algorithm`` attribute.
        max_iterations: safety limit on legalization sweeps; a correct rule
            set never needs more than ``log2(input_bits) + 2`` sweeps, so
            hitting the limit indicates a non-terminating rule.
    """

    word_bits: int = 64
    multiplication: str = SCHOOLBOOK
    max_iterations: int = 64

    def __post_init__(self) -> None:
        if self.word_bits < 8:
            raise RewriteError(f"word_bits must be at least 8, got {self.word_bits}")
        if self.word_bits & (self.word_bits - 1):
            raise RewriteError(f"word_bits must be a power of two, got {self.word_bits}")
        if self.multiplication not in (SCHOOLBOOK, KARATSUBA):
            raise RewriteError(
                f"multiplication must be '{SCHOOLBOOK}' or '{KARATSUBA}', "
                f"got {self.multiplication!r}"
            )
        if self.max_iterations < 1:
            raise RewriteError("max_iterations must be positive")
