"""Statement emitter shared by the rewrite rules.

Rules produce sequences of statements; :class:`Emitter` collects them and
provides small helpers (fresh flags, carry-chain addition, borrow-chain
subtraction) so that the rule implementations read like the right-hand
sides of Table 1.
"""

from __future__ import annotations

from repro.errors import RewriteError
from repro.core.ir.ops import OpKind, Statement
from repro.core.ir.types import FLAG, IntType
from repro.core.ir.values import Const, Group, Var, as_group
from repro.core.rewrite.splitting import SplitContext

__all__ = ["Emitter"]


def _is_zero(part) -> bool:
    return isinstance(part, Const) and part.value == 0


class Emitter:
    """Accumulates statements produced while rewriting one statement."""

    def __init__(self, context: SplitContext) -> None:
        self._context = context
        self.statements: list[Statement] = []

    # ------------------------------------------------------------------
    # Raw emission helpers.
    # ------------------------------------------------------------------

    def fresh(self, bits: int, hint: str = "t", effective_bits: int | None = None) -> Var:
        """Fresh temporary variable."""
        return self._context.fresh_var(bits, hint, effective_bits)

    def fresh_flag(self, hint: str = "flag") -> Var:
        """Fresh 1-bit flag variable."""
        return Var(self._context.names.fresh(hint), FLAG)

    def emit(self, op: OpKind, dests, operands, **attrs) -> Statement:
        """Append a statement and return it."""
        statement = Statement(op, as_group(dests), tuple(as_group(o) for o in operands), dict(attrs))
        self.statements.append(statement)
        return statement

    def mov(self, dest, source) -> None:
        """dest = source."""
        self.emit(OpKind.MOV, dest, [source])

    def select(self, dest, cond, if_true, if_false) -> None:
        """dest = cond ? if_true : if_false."""
        self.emit(OpKind.SELECT, dest, [cond, if_true, if_false])

    def compare(self, op: OpKind, a, b, hint: str = "flag") -> Var:
        """flag = a <op> b."""
        flag = self.fresh_flag(hint)
        self.emit(op, flag, [a, b])
        return flag

    def logic(self, op: OpKind, a, b=None, hint: str = "flag") -> Var:
        """flag = a <op> b (or not a)."""
        flag = self.fresh_flag(hint)
        operands = [a] if b is None else [a, b]
        self.emit(op, flag, operands)
        return flag

    # ------------------------------------------------------------------
    # Carry/borrow chains over little-endian columns (rules 22, 23, 25, 29).
    # ------------------------------------------------------------------

    def column_add(self, dest_columns: list, addend_columns: list[list], carry_in=None) -> None:
        """Column-wise addition with carry propagation.

        Args:
            dest_columns: little-endian destination parts (all variables).
            addend_columns: one or two little-endian column lists of addends.
            carry_in: optional single carry part added into column 0.
        """
        if len(addend_columns) > 2:
            raise RewriteError("column_add supports at most two addend column lists")
        carry = carry_in
        last = len(dest_columns) - 1
        for index, dest in enumerate(dest_columns):
            addends = [
                columns[index]
                for columns in addend_columns
                if index < len(columns) and not _is_zero(columns[index])
            ]
            if carry is not None and not _is_zero(carry):
                addends.append(carry)
            carry = None
            if not addends:
                self.mov(dest, Const(0, IntType(dest.bits)))
                continue
            if len(addends) == 1:
                self.mov(dest, addends[0])
                continue
            if index == last:
                self.emit(OpKind.ADD, dest, addends)
            else:
                carry = self.fresh_flag("cr")
                self.emit(OpKind.ADD, Group((carry, dest)), addends)

    def column_sub(self, dest_columns: list, minuend: list, subtrahend: list, borrow_in=None) -> None:
        """Column-wise subtraction with borrow propagation (rule 25 generalised).

        Missing columns on either side are treated as zero.  The destination
        columns receive the wrap-around difference.
        """
        borrow = borrow_in
        last = len(dest_columns) - 1
        for index, dest in enumerate(dest_columns):
            a = minuend[index] if index < len(minuend) else Const(0, IntType(dest.bits))
            b = subtrahend[index] if index < len(subtrahend) else Const(0, IntType(dest.bits))
            borrow_is_zero = borrow is None or _is_zero(borrow)
            if _is_zero(b) and borrow_is_zero:
                self.mov(dest, a)
                borrow = None
                continue
            next_borrow = None
            operands = [a, b]
            if not borrow_is_zero:
                operands.append(borrow)
            if index != last and borrow_is_zero:
                # Rule (25): the borrow of the least-significant column is a
                # plain comparison.
                next_borrow = self.compare(OpKind.LT, a, b, hint="br")
                self.emit(OpKind.SUB, dest, operands)
            elif index != last:
                # Columns with an incoming borrow produce their outgoing
                # borrow directly (the hardware subtract-with-borrow form):
                # the destination pair [borrow, diff] is the wrap-around
                # difference, whose top bit is set exactly when the true
                # difference is negative.
                next_borrow = self.fresh_flag("br")
                self.emit(OpKind.SUB, Group((next_borrow, dest)), operands)
            else:
                self.emit(OpKind.SUB, dest, operands)
            borrow = next_borrow
