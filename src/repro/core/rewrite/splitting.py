"""Data-type splitting infrastructure for the MoMA rewrite system.

Rule (19) of the paper turns a double-word value into a pair of single
words: ``a^{2w} -> [a0^w, a1^w]``.  :class:`SplitContext` implements that
rule for the IR: it splits variables and constants into high/low halves,
remembers the split so every use of a variable sees the same halves, and
applies the paper's non-power-of-two optimization — when a variable's
``effective_bits`` proves that its high half is always zero, the half
becomes a ``Const 0`` so the optimization passes can prune the operations
that touch it (Section 4, Equation 35).

The module also provides the *column* view used by the carry-chain rules:
a group's parts laid out little-endian in limb-width columns.
"""

from __future__ import annotations

from repro.errors import RewriteError
from repro.core.ir.types import IntType
from repro.core.ir.values import Const, Group, NameGenerator, Var

__all__ = ["SplitContext", "group_columns", "pad_columns"]


class SplitContext:
    """Shared state for one legalization run.

    Attributes:
        word_bits: the machine word width legalization targets.
        names: fresh-name generator (seeded with every name already used by
            the kernel, so rewritten code never collides).
    """

    def __init__(self, word_bits: int, names: NameGenerator) -> None:
        self.word_bits = word_bits
        self.names = names
        self._splits: dict[str, tuple] = {}

    # ------------------------------------------------------------------
    # Variable and constant splitting (rule 19).
    # ------------------------------------------------------------------

    def split_var(self, var: Var) -> tuple:
        """Split ``var`` into (high, low) halves of half its width.

        The same variable always splits into the same halves.  A half that is
        provably zero (because of ``effective_bits``) is returned as a
        ``Const 0`` of the half type.
        """
        if var.bits % 2:
            raise RewriteError(f"cannot split odd-width variable {var}")
        cached = self._splits.get(var.name)
        if cached is not None:
            return cached
        half_bits = var.bits // 2
        half_type = IntType(half_bits)
        effective = var.effective_bits if var.effective_bits is not None else var.bits

        low_effective = min(effective, half_bits)
        low: Var | Const = Var(
            self.names.fresh(f"{var.name}_1"),
            half_type,
            effective_bits=low_effective if low_effective != half_bits else None,
        )
        high_effective = max(0, effective - half_bits)
        if high_effective == 0:
            high: Var | Const = Const(0, half_type)
        else:
            high = Var(
                self.names.fresh(f"{var.name}_0"),
                half_type,
                effective_bits=high_effective if high_effective != half_bits else None,
            )
        result = (high, low)
        self._splits[var.name] = result
        return result

    def split_const(self, const: Const) -> tuple:
        """Split a constant into (high, low) constant halves."""
        if const.bits % 2:
            raise RewriteError(f"cannot split odd-width constant {const}")
        half_bits = const.bits // 2
        half_type = IntType(half_bits)
        return (
            Const(const.value >> half_bits, half_type),
            Const(const.value & half_type.mask, half_type),
        )

    def split_part(self, part, limit_bits: int) -> tuple:
        """Split a part until every piece is at most ``limit_bits`` wide."""
        if part.bits <= limit_bits:
            return (part,)
        halves = self.split_var(part) if isinstance(part, Var) else self.split_const(part)
        pieces: list = []
        for half in halves:
            pieces.extend(self.split_part(half, limit_bits))
        return tuple(pieces)

    def split_group(self, group: Group, limit_bits: int) -> Group:
        """Return ``group`` with every part wider than ``limit_bits`` split."""
        parts: list = []
        for part in group:
            parts.extend(self.split_part(part, limit_bits))
        return Group(tuple(parts))

    def leaves(self, var: Var, limit_bits: int) -> tuple:
        """The machine-level pieces a variable eventually splits into.

        Used to rewrite kernel parameter and output lists after the body has
        been legalized.  Pieces that are ``Const 0`` (pruned high halves) are
        included so callers can decide whether to keep them.
        """
        return self.split_part(var, limit_bits)

    def fresh_var(self, bits: int, hint: str = "t", effective_bits: int | None = None) -> Var:
        """Create a fresh temporary of the given width."""
        if effective_bits is not None and effective_bits >= bits:
            effective_bits = None
        return Var(self.names.fresh(hint), IntType(bits), effective_bits=effective_bits)


def group_columns(group: Group, limb_bits: int) -> list:
    """Lay a group's parts out little-endian in ``limb_bits``-wide columns.

    Every part must start at a column boundary (true for all groups the
    rewrite system builds: words of the limb width plus carry flags at the
    most-significant end).  Returns a list where entry ``j`` is the part that
    occupies bits ``[j*limb_bits, (j+1)*limb_bits)``; columns not covered by
    any part are filled with ``Const 0``.
    """
    columns: list = []
    reversed_parts = tuple(reversed(group.parts))
    for index, part in enumerate(reversed_parts):
        if part.bits > limb_bits:
            raise RewriteError(
                f"part {part} is wider than the {limb_bits}-bit column width"
            )
        is_most_significant = index == len(reversed_parts) - 1
        if not is_most_significant and part.bits != limb_bits:
            raise RewriteError(
                f"part {part} of group {group} is narrower than the column width "
                f"but is not the most significant part; the group is not "
                f"column-aligned at {limb_bits} bits"
            )
        columns.append(part)
    return columns


def pad_columns(columns: list, count: int, limb_bits: int) -> list:
    """Extend a little-endian column list with zero constants up to ``count``."""
    if len(columns) > count:
        raise RewriteError(
            f"cannot pad {len(columns)} columns down to {count}"
        )
    zero = Const(0, IntType(limb_bits))
    return list(columns) + [zero] * (count - len(columns))
