"""Expansion rules for modular operations.

These rules lower ``addmod`` / ``submod`` / ``mulmod`` / ``reduce`` into
plain multi-digit arithmetic, comparisons and selects *at the same operand
width*; the width-splitting rules in :mod:`repro.core.rewrite.rules_split`
then recursively break the resulting wide operations down to machine words.
Applied at the machine word width itself, the expansions produce exactly the
structure of Listing 1 (``_saddmod`` / ``_ssubmod`` / ``_smulmod``); applied
at twice the machine width they reproduce Listings 2 and 4.

The correspondence with the paper:

* ``expand_addmod`` — Equation 2, rules (22)-(24) before splitting.
* ``expand_submod`` — Equation 3.
* ``expand_mulmod`` — Barrett reduction (Equation 18 / Listing 4), including
  the optimization of computing only the low half of the final ``r*q``
  product.
* ``expand_reduce`` — rule (24)'s conditional subtraction on its own.
"""

from __future__ import annotations

from repro.errors import RewriteError
from repro.core.ir.ops import OpKind, Statement
from repro.core.ir.values import Const, Group, Var
from repro.core.rewrite.emitter import Emitter
from repro.core.rewrite.options import RewriteOptions
from repro.core.rewrite.splitting import SplitContext

__all__ = [
    "expand_addmod",
    "expand_submod",
    "expand_mulmod",
    "expand_reduce",
    "EXPANSIONS",
]


def _group_effective_bits(group: Group) -> int:
    """Upper bound on the bit-length of a group's runtime value."""
    total = 0
    for part in group:
        if isinstance(part, Var):
            total += part.effective_bits if part.effective_bits is not None else part.bits
        else:
            total += part.bits
    return total


def expand_addmod(statement: Statement, context: SplitContext, options: RewriteOptions) -> list[Statement]:
    """(a + b) mod q  ->  wide add, compare, subtract, select."""
    a, b, q = statement.operands
    dest = statement.dests
    width = dest.bits
    emit = Emitter(context)

    carry = emit.fresh_flag("cr")
    total = emit.fresh(width, "sum")
    emit.emit(OpKind.ADD, Group((carry, total)), [a, b])
    reduced = emit.fresh(width, "red")
    emit.emit(OpKind.SUB, reduced, [total, q])
    exceeds = emit.compare(OpKind.LE, q, total, hint="ge")
    overflow_or_exceeds = emit.logic(OpKind.OR, carry, exceeds, hint="sel")
    emit.select(dest, overflow_or_exceeds, reduced, total)
    return emit.statements


def expand_submod(statement: Statement, context: SplitContext, options: RewriteOptions) -> list[Statement]:
    """(a - b) mod q  ->  compare, wrap-around subtract, add-back, select."""
    a, b, q = statement.operands
    dest = statement.dests
    width = dest.bits
    emit = Emitter(context)

    borrowed = emit.compare(OpKind.LT, a, b, hint="br")
    difference = emit.fresh(width, "dif")
    emit.emit(OpKind.SUB, difference, [a, b])
    carry = emit.fresh_flag("cr")
    wrapped = emit.fresh(width, "wrp")
    emit.emit(OpKind.ADD, Group((carry, wrapped)), [difference, q])
    emit.select(dest, borrowed, wrapped, difference)
    return emit.statements


def expand_reduce(statement: Statement, context: SplitContext, options: RewriteOptions) -> list[Statement]:
    """Conditional subtraction of a value known to be below ``2q`` (rule 24)."""
    value, q = statement.operands
    dest = statement.dests
    width = dest.bits
    emit = Emitter(context)

    reduced = emit.fresh(width, "red")
    emit.emit(OpKind.SUB, reduced, [value, q])
    exceeds = emit.compare(OpKind.LE, q, value, hint="ge")
    emit.select(dest, exceeds, reduced, value)
    return emit.statements


def expand_mulmod(statement: Statement, context: SplitContext, options: RewriteOptions) -> list[Statement]:
    """Barrett modular multiplication (Listing 4 at arbitrary width).

    The modulus bit-width (``MBITS``) is taken, in order of preference, from
    the statement's ``modulus_bits`` attribute, from the modulus variable's
    ``effective_bits``, or defaults to ``width - 4`` (the paper's headroom
    convention).  The Barrett constant ``mu`` must be supplied as the fourth
    operand unless the modulus is a compile-time constant, in which case
    ``mu`` is computed here and embedded as a constant.
    """
    a, b, q = statement.operands[:3]
    dest = statement.dests
    width = dest.bits
    algorithm = statement.attrs.get("algorithm", options.multiplication)

    modulus_bits = statement.attrs.get("modulus_bits")
    if modulus_bits is None:
        modulus_bits = _group_effective_bits(q)
        if modulus_bits >= width:
            modulus_bits = width - 4
    if not 8 <= modulus_bits <= width - 4:
        raise RewriteError(
            f"Barrett mulmod at width {width} requires a modulus of at most "
            f"{width - 4} bits, got {modulus_bits}"
        )

    if len(statement.operands) == 4:
        mu = statement.operands[3]
    else:
        constant_modulus = _constant_value(q)
        if constant_modulus is None:
            raise RewriteError(
                "mulmod needs an explicit Barrett constant (mu) unless the "
                f"modulus is a compile-time constant: {statement}"
            )
        mu_value = (1 << (2 * modulus_bits + 3)) // constant_modulus
        mu = Group((Const(mu_value, q.parts[0].type),)) if len(q.parts) == 1 else None
        if mu is None:
            raise RewriteError("constant modulus groups with multiple parts are not supported")

    emit = Emitter(context)

    # product = a * b (full 2*width result, rule 28 after splitting).
    # Note: destination variables never carry effective_bits — known-zero
    # high words are pruned on the *operand* side by constant folding, which
    # keeps destinations writable variables at every recursion level.
    product_hi = emit.fresh(width, "ph")
    product_lo = emit.fresh(width, "pl")
    emit.emit(OpKind.MUL, Group((product_hi, product_lo)), [a, b], algorithm=algorithm)

    # estimate = product >> (MBITS - 2)
    estimate = emit.fresh(width, "est")
    emit.emit(
        OpKind.SHR, estimate, [Group((product_hi, product_lo))], amount=modulus_bits - 2
    )

    # estimate * mu, then >> (MBITS + 5) to obtain the quotient guess.
    scaled_hi = emit.fresh(width, "sh")
    scaled_lo = emit.fresh(width, "sl")
    emit.emit(OpKind.MUL, Group((scaled_hi, scaled_lo)), [estimate, mu], algorithm=algorithm)
    quotient = emit.fresh(width, "quo")
    emit.emit(
        OpKind.SHR, quotient, [Group((scaled_hi, scaled_lo))], amount=modulus_bits + 5
    )

    # remainder = product_lo - low_half(quotient * q): only the low half of the
    # third multiplication is needed (Listing 4's optimization).
    quotient_q = emit.fresh(width, "qq")
    emit.emit(OpKind.MULLO, quotient_q, [quotient, q], algorithm=algorithm)
    remainder = emit.fresh(width, "rem")
    emit.emit(OpKind.SUB, remainder, [product_lo, quotient_q])

    # Single conditional correction to the canonical residue.
    corrected = emit.fresh(width, "cor")
    emit.emit(OpKind.SUB, corrected, [remainder, q])
    exceeds = emit.compare(OpKind.LE, q, remainder, hint="ge")
    emit.select(dest, exceeds, corrected, remainder)
    return emit.statements


def _constant_value(group: Group) -> int | None:
    """The numeric value of a group made entirely of constants, else None."""
    values = []
    for part in group:
        if not isinstance(part, Const):
            return None
        values.append(part.value)
    return group.compose(values)


#: Dispatch table used by the legalizer.
EXPANSIONS = {
    OpKind.ADDMOD: expand_addmod,
    OpKind.SUBMOD: expand_submod,
    OpKind.MULMOD: expand_mulmod,
    OpKind.REDUCE: expand_reduce,
}
