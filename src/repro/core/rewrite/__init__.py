"""The MoMA rewrite system: data-type splitting rules and the legalizer."""

from repro.core.rewrite.legalize import is_machine_legal, kernel_is_machine_legal, legalize
from repro.core.rewrite.options import KARATSUBA, SCHOOLBOOK, RewriteOptions

__all__ = [
    "is_machine_legal",
    "kernel_is_machine_legal",
    "legalize",
    "KARATSUBA",
    "SCHOOLBOOK",
    "RewriteOptions",
]
