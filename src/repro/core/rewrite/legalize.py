"""The MoMA legalization driver (Section 4's program-transformation pass).

``legalize`` rewrites a kernel until every statement is *machine legal*:
all parts are at most the machine word width and every statement has one of
the shapes that the CUDA/C backends can emit as a single C statement (using
the compiler-provided double-word type only to *store* results, exactly as
Listing 1 assumes).  The pass alternates two kinds of rewrites until a fixed
point:

* **expansion** of modular operations (``addmod``/``submod``/``mulmod``/
  ``reduce``) into plain arithmetic, comparisons and selects at the same
  width, and
* **splitting** of operations whose parts are wider than the machine word
  into equivalent sequences at half the width (Table 1).

Because every expansion removes a modular operation and every split halves
the widest type in a statement, the process terminates in
``O(log2(input_bits / word_bits))`` sweeps.
"""

from __future__ import annotations

from repro.errors import RewriteError
from repro.core.ir.kernel import Kernel
from repro.core.ir.ops import OpKind, Statement
from repro.core.ir.values import Const, NameGenerator, Var
from repro.core.rewrite.options import RewriteOptions
from repro.core.rewrite.rules_expand import EXPANSIONS
from repro.core.rewrite.rules_split import SPLITS
from repro.core.rewrite.splitting import SplitContext

__all__ = ["legalize", "is_machine_legal", "kernel_is_machine_legal"]

#: Operations that are never allowed in legalized code.
_ALWAYS_EXPAND = frozenset(EXPANSIONS)

#: Maximum number of parts allowed in a machine-level operand/destination
#: group: two words form the compiler-provided double-word storage type
#: (e.g. ``unsigned __int128`` for 64-bit words).
_MAX_STORAGE_PARTS = 2


def is_machine_legal(statement: Statement, word_bits: int) -> bool:
    """Whether one statement can be emitted directly by the backends."""
    if statement.op in _ALWAYS_EXPAND:
        return False
    if statement.max_part_bits > word_bits:
        return False

    dest_parts = len(statement.dests)
    operand_parts = [len(group) for group in statement.operands]

    if statement.op in (OpKind.ADD, OpKind.SUB):
        # Single-word operands (plus optional single-part carry/borrow); the
        # destination may include a carry/borrow word pair.
        return all(count == 1 for count in operand_parts) and dest_parts <= _MAX_STORAGE_PARTS
    if statement.op is OpKind.MUL:
        return all(count == 1 for count in operand_parts) and dest_parts <= _MAX_STORAGE_PARTS
    if statement.op is OpKind.MULLO:
        return all(count == 1 for count in operand_parts) and dest_parts == 1
    if statement.op in (OpKind.SHR, OpKind.SHL):
        # The shifted value may live in the double-word storage type.
        return (
            all(count <= _MAX_STORAGE_PARTS for count in operand_parts)
            and dest_parts <= _MAX_STORAGE_PARTS
        )
    if statement.op in (OpKind.LT, OpKind.LE, OpKind.EQ, OpKind.AND, OpKind.OR, OpKind.NOT):
        return all(count == 1 for count in operand_parts) and dest_parts == 1
    if statement.op is OpKind.SELECT:
        return all(count == 1 for count in operand_parts) and dest_parts == 1
    if statement.op is OpKind.MOV:
        # A move may target a (carry, word) pair — e.g. when simplification
        # turns an `x + 0` carry-producing addition into a plain copy.
        return all(count == 1 for count in operand_parts) and dest_parts <= _MAX_STORAGE_PARTS
    raise RewriteError(f"unknown operation {statement.op} in legality check")


def kernel_is_machine_legal(kernel: Kernel, word_bits: int) -> bool:
    """Whether every statement of a kernel is machine legal."""
    return all(is_machine_legal(statement, word_bits) for statement in kernel.body)


def legalize(kernel: Kernel, options: RewriteOptions | None = None) -> Kernel:
    """Apply the MoMA rewrite system until the kernel is machine legal.

    Returns a new kernel whose parameters and outputs are also rewritten to
    machine words: a 256-bit parameter ``x`` becomes four 64-bit parameters
    ``x_0_0, x_0_1, x_1_0, x_1_1`` (most significant first), matching the
    flattened signatures of the paper's generated CUDA (Listing 2's
    ``_daddmod(c0, c1, a0, a1, ...)``).  Parameters whose high words are
    provably zero (``effective_bits``) simply disappear from the signature —
    the non-power-of-two optimization of Section 4.
    """
    options = options or RewriteOptions()
    kernel.validate()

    names = NameGenerator()
    for name in kernel.defined_vars():
        names.reserve(name)
    context = SplitContext(options.word_bits, names)

    body = list(kernel.body)
    for _ in range(options.max_iterations):
        new_body: list[Statement] = []
        changed = False
        for statement in body:
            if is_machine_legal(statement, options.word_bits):
                new_body.append(statement)
                continue
            changed = True
            if statement.op in EXPANSIONS:
                rule = EXPANSIONS[statement.op]
            else:
                rule = SPLITS.get(statement.op)
                if rule is None:
                    raise RewriteError(
                        f"no rewrite rule for operation {statement.op.value}: {statement}"
                    )
            new_body.extend(rule(statement, context, options))
        body = new_body
        if not changed:
            break
    else:
        raise RewriteError(
            f"legalization did not converge within {options.max_iterations} sweeps"
        )

    params = _flatten_interface(kernel.params, context, options.word_bits, keep_constants=False)
    outputs = _flatten_interface(kernel.outputs, context, options.word_bits, keep_constants=False)

    legalized = Kernel(
        name=kernel.name,
        params=params,
        outputs=outputs,
        body=body,
        metadata=dict(kernel.metadata),
    )
    legalized.metadata.setdefault("word_bits", options.word_bits)
    legalized.metadata.setdefault("multiplication", options.multiplication)
    legalized.metadata["legalized"] = True
    legalized.metadata["original_params"] = [
        (param.name, param.bits, param.effective_bits) for param in kernel.params
    ]
    legalized.metadata["original_outputs"] = [
        (output.name, output.bits) for output in kernel.outputs
    ]
    legalized.metadata["param_layout"] = {
        param.name: [
            part.name if isinstance(part, Var) else None
            for part in context.leaves(param, options.word_bits)
        ]
        for param in kernel.params
    }
    legalized.metadata["output_layout"] = {
        output.name: [
            part.name if isinstance(part, Var) else None
            for part in context.leaves(output, options.word_bits)
        ]
        for output in kernel.outputs
    }
    legalized.validate()
    return legalized


def _flatten_interface(
    variables: list[Var], context: SplitContext, word_bits: int, keep_constants: bool
) -> list[Var]:
    """Replace wide interface variables with their machine-word pieces."""
    flattened: list[Var] = []
    for variable in variables:
        for part in context.leaves(variable, word_bits):
            if isinstance(part, Var):
                flattened.append(part)
            elif keep_constants:
                raise RewriteError("constant interface parts cannot be kept")
            # Pruned (always-zero) parts are dropped from the interface.
    return flattened
