"""Code generation backends: CUDA, C99, and the executable Python backend."""

from repro.core.codegen.c99 import generate_c99
from repro.core.codegen.cuda import generate_cuda
from repro.core.codegen.python_exec import CompiledKernel, compile_kernel, generate_python_source

__all__ = [
    "generate_c99",
    "generate_cuda",
    "CompiledKernel",
    "compile_kernel",
    "generate_python_source",
]
