"""Shared helpers for the C-family backends (CUDA and C99).

The backends translate machine-legal statements (see
:func:`repro.core.rewrite.legalize.is_machine_legal`) into the exact idioms
of the paper's listings: single words are ``uint64_t``, the compiler-provided
double-word storage type is ``unsigned __int128`` (Listing 1's ``i128``), and
every IR statement becomes one or a handful of C statements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CodegenError
from repro.core.ir.kernel import Kernel
from repro.core.ir.ops import OpKind, Statement
from repro.core.ir.values import Const, Group, Var
from repro.core.rewrite.legalize import is_machine_legal

__all__ = ["CTypes", "StatementTranslator", "check_legal", "collect_locals"]


@dataclass(frozen=True)
class CTypes:
    """C type names for a given machine word width."""

    word_bits: int
    word: str
    double: str
    flag: str

    @classmethod
    def for_word_bits(cls, word_bits: int) -> "CTypes":
        """Types used by the listings: 64-bit words with ``__int128`` storage."""
        if word_bits == 64:
            return cls(64, "uint64_t", "unsigned __int128", "unsigned int")
        if word_bits == 32:
            return cls(32, "uint32_t", "uint64_t", "unsigned int")
        raise CodegenError(
            f"C backends support 32- and 64-bit machine words, got {word_bits}"
        )

    def declared(self, bits: int) -> str:
        """The C type used to declare a variable of ``bits`` bits."""
        if bits <= 32 and self.word_bits == 64:
            return self.flag if bits == 1 else self.word
        if bits == 1:
            return self.flag
        if bits <= self.word_bits:
            return self.word
        raise CodegenError(f"no machine type for a {bits}-bit variable")


def check_legal(kernel: Kernel, word_bits: int) -> None:
    """Raise :class:`CodegenError` unless every statement is machine legal."""
    for statement in kernel.body:
        if not is_machine_legal(statement, word_bits):
            raise CodegenError(
                f"kernel {kernel.name!r} is not legalized for {word_bits}-bit words; "
                f"offending statement: {statement}"
            )


def collect_locals(kernel: Kernel) -> list[Var]:
    """All variables defined by the body that are neither params nor outputs."""
    param_names = {param.name for param in kernel.params}
    output_names = {output.name for output in kernel.outputs}
    seen: dict[str, Var] = {}
    for statement in kernel.body:
        for dest in statement.defined_vars():
            if dest.name not in param_names and dest.name not in output_names:
                seen.setdefault(dest.name, dest)
    return list(seen.values())


class StatementTranslator:
    """Translates one machine-legal statement into C statements."""

    def __init__(self, types: CTypes) -> None:
        self._types = types
        self._scratch_counter = 0

    # -- operand rendering -------------------------------------------------

    def part(self, part) -> str:
        """Render a single operand part (variable reference or literal)."""
        if isinstance(part, Const):
            suffix = "ULL" if self._types.word_bits == 64 else "UL"
            return f"{part.value:#x}{suffix}" if part.value > 9 else f"{part.value}{suffix}"
        return part.name

    def wide(self, group: Group) -> str:
        """Render a (possibly two-part) group as a double-word expression."""
        double = self._types.double
        if len(group) == 1:
            return f"({double}){self.part(group.parts[0])}"
        high, low = group.parts
        return (
            f"((({double}){self.part(high)} << {self._types.word_bits}) | "
            f"({double}){self.part(low)})"
        )

    def _scratch(self) -> str:
        self._scratch_counter += 1
        return f"_w{self._scratch_counter}"

    # -- statement translation ----------------------------------------------

    def translate(self, statement: Statement) -> list[str]:
        """Return the C statements implementing one IR statement."""
        op = statement.op
        handler = getattr(self, f"_emit_{op.value}", None)
        if handler is None:
            raise CodegenError(f"no C translation for operation {op.value}")
        return handler(statement)

    # Each handler returns a list of C statement strings (no trailing newline).

    def _emit_mov(self, statement: Statement) -> list[str]:
        source = self.part(statement.operands[0].parts[0])
        if len(statement.dests) == 2:
            # Copy into a (carry, word) pair: the source fits in the low word.
            high, low = statement.dests.parts
            return [
                f"{low.name} = ({self._types.declared(low.bits)}){source};",
                f"{high.name} = 0;",
            ]
        dest = statement.dests.parts[0].name
        cast = f"({self._types.declared(statement.dests.parts[0].bits)})"
        return [f"{dest} = {cast}{source};"]

    def _split_double(self, statement: Statement, expression: str) -> list[str]:
        """Assign a double-word expression to a 1- or 2-part destination."""
        word_bits = self._types.word_bits
        scratch = self._scratch()
        lines = [f"{self._types.double} {scratch} = {expression};"]
        dests = statement.dests.parts
        if len(dests) == 1:
            lines.append(f"{dests[0].name} = ({self._types.declared(dests[0].bits)}){scratch};")
        else:
            high, low = dests
            lines.append(f"{low.name} = ({self._types.word}){scratch};")
            lines.append(
                f"{high.name} = ({self._types.declared(high.bits)})({scratch} >> {word_bits});"
            )
        return lines

    def _emit_add(self, statement: Statement) -> list[str]:
        terms = " + ".join(self.wide(group) for group in statement.operands)
        return self._split_double(statement, terms)

    def _emit_sub(self, statement: Statement) -> list[str]:
        parts = [self.part(group.parts[0]) for group in statement.operands]
        dests = statement.dests.parts
        if len(dests) == 2:
            # Subtract-with-borrow: the wrap-around difference in the double
            # word has its top bit set exactly when the true result is
            # negative, which is the outgoing borrow.
            double = self._types.double
            expression = " - ".join(f"({double}){part}" for part in parts)
            scratch = self._scratch()
            borrow, diff = dests
            return [
                f"{double} {scratch} = {expression};",
                f"{diff.name} = ({self._types.word}){scratch};",
                f"{borrow.name} = ({self._types.flag})(({scratch} >> {self._types.word_bits}) & 1);",
            ]
        expression = " - ".join(parts)
        dest = dests[0]
        if dest.bits < self._types.word_bits:
            # Narrow (flag-width) destination: wrap at the destination width.
            return [
                f"{dest.name} = ({self._types.declared(dest.bits)})(({expression}) & "
                f"{hex((1 << dest.bits) - 1)});"
            ]
        return [f"{dest.name} = ({self._types.word})({expression});"]

    def _emit_mul(self, statement: Statement) -> list[str]:
        a, b = (self.part(group.parts[0]) for group in statement.operands)
        double = self._types.double
        return self._split_double(statement, f"({double}){a} * ({double}){b}")

    def _emit_mullo(self, statement: Statement) -> list[str]:
        a, b = (self.part(group.parts[0]) for group in statement.operands)
        dest = statement.dests.parts[0]
        return [f"{dest.name} = ({self._types.word})({a} * {b});"]

    def _emit_lt(self, statement: Statement) -> list[str]:
        return self._emit_comparison(statement, "<")

    def _emit_le(self, statement: Statement) -> list[str]:
        return self._emit_comparison(statement, "<=")

    def _emit_eq(self, statement: Statement) -> list[str]:
        return self._emit_comparison(statement, "==")

    def _emit_comparison(self, statement: Statement, operator: str) -> list[str]:
        a, b = (self.part(group.parts[0]) for group in statement.operands)
        dest = statement.dests.parts[0]
        return [f"{dest.name} = ({a} {operator} {b});"]

    def _emit_and(self, statement: Statement) -> list[str]:
        return self._emit_bitwise(statement, "&")

    def _emit_or(self, statement: Statement) -> list[str]:
        return self._emit_bitwise(statement, "|")

    def _emit_bitwise(self, statement: Statement, operator: str) -> list[str]:
        a, b = (self.part(group.parts[0]) for group in statement.operands)
        dest = statement.dests.parts[0]
        return [f"{dest.name} = {a} {operator} {b};"]

    def _emit_not(self, statement: Statement) -> list[str]:
        a = self.part(statement.operands[0].parts[0])
        dest = statement.dests.parts[0]
        if dest.bits == 1:
            return [f"{dest.name} = !{a};"]
        return [f"{dest.name} = ~{a};"]

    def _emit_select(self, statement: Statement) -> list[str]:
        condition, if_true, if_false = (
            self.part(group.parts[0]) for group in statement.operands
        )
        dest = statement.dests.parts[0]
        return [f"{dest.name} = {condition} ? {if_true} : {if_false};"]

    def _emit_shr(self, statement: Statement) -> list[str]:
        return self._emit_shift(statement, ">>")

    def _emit_shl(self, statement: Statement) -> list[str]:
        return self._emit_shift(statement, "<<")

    def _emit_shift(self, statement: Statement, operator: str) -> list[str]:
        amount = statement.attrs["amount"]
        operand = statement.operands[0]
        if len(operand) == 1 and len(statement.dests) == 1 and amount < self._types.word_bits:
            a = self.part(operand.parts[0])
            dest = statement.dests.parts[0]
            return [f"{dest.name} = ({self._types.word})({a} {operator} {amount});"]
        return self._split_double(statement, f"{self.wide(operand)} {operator} {amount}")
