"""Executable Python backend.

Since this reproduction has no GPU, generated kernels are *executed* through
this backend: the legalized statement list is compiled to a Python function
(one expression per machine-word operation, exactly mirroring what the CUDA
code does with ``uint64_t``/``__int128``), and :class:`CompiledKernel` wraps
it with packing/unpacking between Python integers and machine-word limbs.
The NTT and BLAS libraries run on top of this backend, and the test suite
uses it to check the generated code against the :mod:`repro.arith` oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CodegenError
from repro.core.ir.kernel import Kernel
from repro.core.ir.ops import OpKind, Statement
from repro.core.ir.values import Const, Group
from repro.core.rewrite.legalize import is_machine_legal

__all__ = ["CompiledKernel", "compile_kernel", "generate_python_source"]


def _render_part(part) -> str:
    if isinstance(part, Const):
        return hex(part.value)
    return part.name


def _render_group(group: Group) -> str:
    """Render a group as a Python expression for its numeric value."""
    if len(group) == 1:
        return _render_part(group.parts[0])
    terms = []
    shift = 0
    for part in reversed(group.parts):
        rendered = _render_part(part)
        terms.append(rendered if shift == 0 else f"({rendered} << {shift})")
        shift += part.bits
    return "(" + " | ".join(reversed(terms)) + ")"


def _translate(statement: Statement, word_bits: int) -> list[str]:
    """Translate one machine-legal statement into Python source lines."""
    op = statement.op
    dests = statement.dests.parts
    operands = statement.operands
    mask = (1 << word_bits) - 1

    def assign_split(expression: str) -> list[str]:
        if len(dests) == 1:
            return [f"{dests[0].name} = {expression}"]
        high, low = dests
        return [
            f"_t = {expression}",
            f"{low.name} = _t & {hex(mask)}",
            f"{high.name} = _t >> {word_bits}",
        ]

    if op is OpKind.MOV:
        if len(dests) == 2:
            # Copy into a (carry, word) pair; the source fits in the low part.
            high, low = dests
            return [f"{low.name} = {_render_group(operands[0])}", f"{high.name} = 0"]
        return [f"{dests[0].name} = {_render_group(operands[0])}"]
    if op is OpKind.ADD:
        return assign_split(" + ".join(_render_group(group) for group in operands))
    if op is OpKind.SUB:
        terms = " - ".join(_render_group(group) for group in operands)
        if len(dests) == 2:
            # Subtract-with-borrow: wrap at the (flag + word) width, so the
            # top bit is the outgoing borrow.
            high, low = dests
            dest_mask = (1 << statement.dests.bits) - 1
            return [
                f"_t = ({terms}) & {hex(dest_mask)}",
                f"{low.name} = _t & {hex((1 << low.bits) - 1)}",
                f"{high.name} = _t >> {low.bits}",
            ]
        return [f"{dests[0].name} = ({terms}) & {hex((1 << dests[0].bits) - 1)}"]
    if op is OpKind.MUL:
        a, b = (_render_group(group) for group in operands)
        return assign_split(f"{a} * {b}")
    if op is OpKind.MULLO:
        a, b = (_render_group(group) for group in operands)
        return [f"{dests[0].name} = ({a} * {b}) & {hex((1 << dests[0].bits) - 1)}"]
    if op in (OpKind.LT, OpKind.LE, OpKind.EQ):
        symbol = {"lt": "<", "le": "<=", "eq": "=="}[op.value]
        a, b = (_render_group(group) for group in operands)
        return [f"{dests[0].name} = 1 if {a} {symbol} {b} else 0"]
    if op in (OpKind.AND, OpKind.OR):
        symbol = "&" if op is OpKind.AND else "|"
        a, b = (_render_group(group) for group in operands)
        return [f"{dests[0].name} = {a} {symbol} {b}"]
    if op is OpKind.NOT:
        a = _render_group(operands[0])
        dest_mask = (1 << statement.dests.bits) - 1
        return [f"{dests[0].name} = (~{a}) & {hex(dest_mask)}"]
    if op is OpKind.SELECT:
        condition, if_true, if_false = (_render_group(group) for group in operands)
        return [f"{dests[0].name} = {if_true} if {condition} else {if_false}"]
    if op in (OpKind.SHR, OpKind.SHL):
        amount = statement.attrs["amount"]
        a = _render_group(operands[0])
        symbol = ">>" if op is OpKind.SHR else "<<"
        expression = f"({a} {symbol} {amount})"
        if op is OpKind.SHL:
            expression = f"{expression} & {hex((1 << statement.dests.bits) - 1)}"
        return assign_split(expression) if len(dests) == 2 else [f"{dests[0].name} = {expression}"]
    raise CodegenError(f"no Python translation for operation {op.value}")


def generate_python_source(kernel: Kernel, function_name: str | None = None) -> str:
    """Generate the Python source of the kernel as a flat limb-level function."""
    word_bits = kernel.metadata.get("word_bits", 64)
    for statement in kernel.body:
        if not is_machine_legal(statement, word_bits):
            raise CodegenError(
                f"kernel {kernel.name!r} must be legalized before Python compilation; "
                f"offending statement: {statement}"
            )
    function_name = function_name or kernel.name
    parameters = ", ".join(param.name for param in kernel.params)
    lines = [f"def {function_name}({parameters}):"]
    for statement in kernel.body:
        for line in _translate(statement, word_bits):
            lines.append(f"    {line}")
    returns = ", ".join(output.name for output in kernel.outputs)
    lines.append(f"    return ({returns}{',' if len(kernel.outputs) == 1 else ''})")
    return "\n".join(lines) + "\n"


@dataclass
class CompiledKernel:
    """A legalized kernel compiled to a callable Python function.

    The callable works at the machine-word level (one argument per limb); the
    convenience methods pack and unpack Python integers according to the
    kernel's original interface, including limbs pruned away by the
    non-power-of-two optimization.
    """

    kernel: Kernel
    source: str
    function: object
    word_bits: int

    def __post_init__(self) -> None:
        self._param_layout = self.kernel.metadata["param_layout"]
        self._output_layout = self.kernel.metadata["output_layout"]
        self._original_params = self.kernel.metadata["original_params"]

    # -- integer-level interface -------------------------------------------

    def pack_inputs(self, values: dict[str, int]) -> list[int]:
        """Flatten original-parameter integers into the limb argument list."""
        mask = (1 << self.word_bits) - 1
        arguments: list[int] = []
        for name, bits, effective in self._original_params:
            if name not in values:
                raise CodegenError(f"missing value for parameter {name!r}")
            value = values[name]
            limit = effective if effective is not None else bits
            if value < 0 or value.bit_length() > limit:
                raise CodegenError(
                    f"value for {name!r} must be a non-negative integer of at "
                    f"most {limit} bits"
                )
            limb_names = self._param_layout[name]
            count = len(limb_names)
            total = bits // self.word_bits
            # Most-significant-first layout; pruned limbs are None and must be zero.
            for index, limb_name in enumerate(limb_names):
                shift = self.word_bits * (total - 1 - index)
                limb_value = (value >> shift) & mask
                if limb_name is None:
                    if limb_value:
                        raise CodegenError(
                            f"value for {name!r} has non-zero bits in a pruned limb"
                        )
                else:
                    arguments.append(limb_value)
        return arguments

    def unpack_outputs(self, raw: tuple) -> dict[str, int]:
        """Recombine the function's limb results into integers per output."""
        limb_values = dict(zip((output.name for output in self.kernel.outputs), raw))
        results: dict[str, int] = {}
        for name, limb_names in self._output_layout.items():
            value = 0
            for limb_name in limb_names:
                limb = 0 if limb_name is None else limb_values[limb_name]
                value = (value << self.word_bits) | limb
            results[name] = value
        return results

    def __call__(self, **values: int) -> dict[str, int]:
        """Run the kernel on original-interface integers."""
        raw = self.function(*self.pack_inputs(values))
        return self.unpack_outputs(raw)

    def call_limbs(self, *limb_arguments: int) -> tuple:
        """Run the kernel directly on machine-word limbs (no packing)."""
        return self.function(*limb_arguments)

    # -- pickling ----------------------------------------------------------
    #
    # The exec'd function cannot be pickled by reference (it lives in no
    # importable module), but the kernel and its source can — so a pickled
    # CompiledKernel ships (kernel, source, word_bits) and the receiving
    # process re-execs the source.  This is what lets the serving tier's
    # wire protocol move executable artifacts between shard processes.

    def __getstate__(self) -> dict:
        return {"kernel": self.kernel, "source": self.source, "word_bits": self.word_bits}

    def __setstate__(self, state: dict) -> None:
        self.kernel = state["kernel"]
        self.source = state["source"]
        self.word_bits = state["word_bits"]
        self.function = _exec_source(self.source, self.kernel.name)
        self.__post_init__()


def _exec_source(source: str, kernel_name: str):
    """Exec generated kernel source and return the single function it defines."""
    namespace: dict = {}
    exec(compile(source, f"<moma:{kernel_name}>", "exec"), namespace)  # noqa: S102
    functions = [value for name, value in namespace.items() if not name.startswith("__")]
    if len(functions) != 1 or not callable(functions[0]):
        raise CodegenError(
            f"generated source for {kernel_name!r} must define exactly one function"
        )
    return functions[0]


def compile_kernel(kernel: Kernel) -> CompiledKernel:
    """Compile a legalized kernel into a :class:`CompiledKernel`."""
    word_bits = kernel.metadata.get("word_bits", 64)
    source = generate_python_source(kernel, function_name="_generated")
    return CompiledKernel(
        kernel=kernel,
        source=source,
        function=_exec_source(source, kernel.name),
        word_bits=word_bits,
    )
