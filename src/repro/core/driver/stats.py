"""Pipeline instrumentation: per-pass and per-compilation records.

Every cache-missing compilation through a
:class:`~repro.core.driver.session.CompilerSession` produces one
:class:`CompileRecord` carrying the legalization time and one
:class:`PassRecord` per optimization-pass application (timing plus the
statement-count delta).  :class:`CompileStats` aggregates the records into
the report surfaced by ``session.stats()``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["PassRecord", "CompileRecord", "CompileStats"]


@dataclass(frozen=True)
class PassRecord:
    """One application of one optimization pass."""

    name: str
    round_index: int
    seconds: float
    statements_before: int
    statements_after: int

    @property
    def delta(self) -> int:
        """Statement-count change (negative means the pass removed code)."""
        return self.statements_after - self.statements_before


@dataclass(frozen=True)
class CompileRecord:
    """One cache-missing compilation (lowering, optionally plus emission)."""

    kernel_name: str
    key: str
    target: str | None
    seconds: float
    legalize_seconds: float
    statements_wide: int
    statements_legalized: int
    statements_final: int
    passes: tuple[PassRecord, ...] = ()

    @property
    def total_delta(self) -> int:
        """Net statement change over the whole pass pipeline."""
        return self.statements_final - self.statements_legalized

    def deltas_consistent(self) -> bool:
        """Whether the per-pass deltas sum to the total pipeline delta."""
        return sum(record.delta for record in self.passes) == self.total_delta


@dataclass
class CompileStats:
    """Aggregate view over a session's compilations.

    Mutations are lock-guarded: sessions are shared across the serving
    subsystem's worker threads, and ``cache_hits += 1`` is not atomic.
    """

    records: list[CompileRecord] = field(default_factory=list)
    cache_hits: int = 0
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def record(self, entry: CompileRecord) -> None:
        """Append one cache-missing compilation."""
        with self._lock:
            self.records.append(entry)

    def record_hit(self) -> None:
        """Count one compilation served entirely from the cache."""
        with self._lock:
            self.cache_hits += 1

    @property
    def compilations(self) -> int:
        """Cache-missing compilations performed."""
        return len(self.records)

    @property
    def total_seconds(self) -> float:
        """Wall-clock spent compiling (legalization + passes + emission)."""
        return sum(record.seconds for record in self.records)

    def pass_seconds(self) -> dict[str, float]:
        """Total time per optimization pass, across all compilations."""
        totals: dict[str, float] = {}
        for record in self.records:
            for pass_record in record.passes:
                totals[pass_record.name] = (
                    totals.get(pass_record.name, 0.0) + pass_record.seconds
                )
        return totals

    def pass_deltas(self) -> dict[str, int]:
        """Total statement delta per optimization pass."""
        totals: dict[str, int] = {}
        for record in self.records:
            for pass_record in record.passes:
                totals[pass_record.name] = totals.get(pass_record.name, 0) + pass_record.delta
        return totals

    def report(self) -> str:
        """Human-readable summary (one line per compilation, pass totals)."""
        lines = [
            f"compilations: {self.compilations} "
            f"(+{self.cache_hits} served from cache), "
            f"{self.total_seconds * 1e3:.1f} ms total"
        ]
        for record in self.records:
            target = record.target or "ir"
            lines.append(
                f"  {record.kernel_name} -> {target}: "
                f"{record.seconds * 1e3:.1f} ms "
                f"(legalize {record.legalize_seconds * 1e3:.1f} ms), "
                f"{record.statements_wide} wide -> {record.statements_legalized} "
                f"legal -> {record.statements_final} optimized"
            )
        pass_seconds = self.pass_seconds()
        if pass_seconds:
            deltas = self.pass_deltas()
            lines.append("  pass totals:")
            for name in sorted(pass_seconds, key=pass_seconds.get, reverse=True):
                lines.append(
                    f"    {name}: {pass_seconds[name] * 1e3:.1f} ms, "
                    f"{deltas[name]:+d} statements"
                )
        return "\n".join(lines)
