"""Bounded content-addressed cache with hit/miss accounting.

The driver keys every lowered kernel and emitted artifact by a stable
content digest (see :func:`repro.core.ir.fingerprint.kernel_digest`), so two
sessions — or two processes — compiling the same IR with the same options on
the same target share one cache entry semantics-wise: same key, same value.
This module supplies the storage: an LRU-evicting mapping with the counters
the north-star service needs to observe (hits, misses, evictions, size).

It replaces the ``functools.lru_cache`` decorators that used to sit on every
frontend: those were keyed by Python argument identity, invisible to
instrumentation, unbounded, and impossible to share across layers.

The cache is thread-safe: the serving subsystem (:mod:`repro.serve`) issues
concurrent ``compile()`` calls against one shared session, and an unguarded
``OrderedDict.move_to_end`` racing a ``popitem`` corrupts the LRU order, so
every operation — including the counter updates — holds one reentrant lock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import DriverError

__all__ = ["CacheStats", "ContentAddressedCache"]

_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of cache counters."""

    hits: int
    misses: int
    evictions: int
    currsize: int
    maxsize: int
    #: Entries dropped explicitly via :meth:`ContentAddressedCache.discard`
    #: (cache invalidation), as opposed to LRU pressure (``evictions``).
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class ContentAddressedCache:
    """An LRU-evicting key/value store with hit/miss/eviction counters."""

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise DriverError(f"cache maxsize must be positive, got {maxsize}")
        self._maxsize = maxsize
        self._entries: OrderedDict = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._lock = threading.RLock()

    def get(self, key, default=None):
        """Look up ``key``, counting a hit or a miss."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._hits += 1
            self._entries.move_to_end(key)
            return value

    def put(self, key, value) -> None:
        """Store ``key``, evicting the least recently used entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def discard(self, key) -> bool:
        """Drop one entry (cache invalidation); True when it was present."""
        with self._lock:
            if key not in self._entries:
                return False
            del self._entries[key]
            self._invalidations += 1
            return True

    def items(self) -> list:
        """A snapshot of (key, value) pairs, least recently used first."""
        with self._lock:
            return list(self._entries.items())

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        """Current counter snapshot."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                currsize=len(self._entries),
                maxsize=self._maxsize,
                invalidations=self._invalidations,
            )
