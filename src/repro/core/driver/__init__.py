"""The unified compiler driver.

One subsystem that every layer — kernel frontends, NTT/BLAS libraries, GPU
model, evaluation harnesses, examples — uses to turn wide-typed IR into
artifacts:

* :mod:`repro.core.driver.targets` — the target registry (``cuda``, ``c99``,
  ``python_exec``) behind one ``emit(kernel, target)`` API;
* :mod:`repro.core.driver.cache` — the bounded content-addressed kernel
  cache with hit/miss counters;
* :mod:`repro.core.driver.stats` — per-pass timing and statement-count
  instrumentation;
* :mod:`repro.core.driver.session` — :class:`CompilerSession`, which ties
  the three together and is the single compile entry point.
"""

from repro.core.driver.cache import CacheStats, ContentAddressedCache
from repro.core.driver.session import (
    DEFAULT_CACHE_SIZE,
    CompilerSession,
    get_default_session,
    reset_default_session,
    set_default_session,
)
from repro.core.driver.stats import CompileRecord, CompileStats, PassRecord
from repro.core.driver.targets import (
    Target,
    emit,
    get_target,
    list_targets,
    register_target,
)

__all__ = [
    "CacheStats",
    "ContentAddressedCache",
    "DEFAULT_CACHE_SIZE",
    "CompilerSession",
    "get_default_session",
    "reset_default_session",
    "set_default_session",
    "CompileRecord",
    "CompileStats",
    "PassRecord",
    "Target",
    "emit",
    "get_target",
    "list_targets",
    "register_target",
]
