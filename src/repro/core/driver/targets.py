"""The compilation-target registry.

A :class:`Target` bundles what a backend needs to participate in the driver:
a name, the machine word widths it supports, an optional :class:`CTypes`
hook (for the C-family backends), and the emit hook that turns a legalized
kernel into the target's artifact — a CUDA/C translation unit (string) or an
executable :class:`~repro.core.codegen.python_exec.CompiledKernel`.

The three seed backends (``cuda``, ``c99``, ``python_exec``) are registered
at import time; new backends (a PTX emitter, an OpenCL port, ...) register
themselves with :func:`register_target` and immediately become reachable
through :func:`emit` and :class:`~repro.core.driver.session.CompilerSession`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import DriverError, UnknownTargetError
from repro.core.codegen.c99 import generate_c99
from repro.core.codegen.common import CTypes
from repro.core.codegen.cuda import generate_cuda
from repro.core.codegen.python_exec import compile_kernel
from repro.core.ir.kernel import Kernel

__all__ = ["Target", "register_target", "get_target", "list_targets", "emit"]


@dataclass(frozen=True)
class Target:
    """One compilation backend, as seen by the driver.

    Attributes:
        name: registry key (``"cuda"``, ``"c99"``, ``"python_exec"``, ...).
        description: one-line description shown in target listings.
        emit: hook mapping a legalized :class:`Kernel` to the target artifact.
        word_bits: machine word widths the backend accepts; empty means any.
        ctypes: optional hook mapping a word width to the backend's
            :class:`CTypes` (C-family backends only).
        artifact: what ``emit`` returns — ``"source"`` or ``"callable"``.
    """

    name: str
    description: str
    emit: Callable[[Kernel], object]
    word_bits: tuple[int, ...] = ()
    ctypes: Callable[[int], CTypes] | None = None
    artifact: str = "source"

    def supports_word_bits(self, word_bits: int) -> bool:
        """Whether the backend can emit kernels legalized to ``word_bits``."""
        return not self.word_bits or word_bits in self.word_bits


_REGISTRY: dict[str, Target] = {}


def register_target(target: Target, replace: bool = False) -> Target:
    """Add a target to the registry (raising on accidental re-registration)."""
    if not target.name:
        raise DriverError("target name must be non-empty")
    if target.name in _REGISTRY and not replace:
        raise DriverError(
            f"target {target.name!r} is already registered; pass replace=True "
            f"to override it"
        )
    _REGISTRY[target.name] = target
    return target


def get_target(target: str | Target) -> Target:
    """Look a target up by name (a :class:`Target` passes through unchanged)."""
    if isinstance(target, Target):
        return target
    try:
        return _REGISTRY[target]
    except KeyError:
        raise UnknownTargetError(
            f"unknown compilation target {target!r}; registered targets: "
            f"{', '.join(list_targets())}"
        ) from None


def list_targets() -> list[str]:
    """Registered target names, sorted."""
    return sorted(_REGISTRY)


def emit(kernel: Kernel, target: str | Target) -> object:
    """Emit a legalized kernel on a target, checking word-width support."""
    resolved = get_target(target)
    word_bits = kernel.metadata.get("word_bits", 64)
    if not resolved.supports_word_bits(word_bits):
        raise DriverError(
            f"target {resolved.name!r} supports {resolved.word_bits}-bit machine "
            f"words, but kernel {kernel.name!r} is legalized for {word_bits}-bit words"
        )
    return resolved.emit(kernel)


register_target(
    Target(
        name="cuda",
        description="CUDA translation unit (device routine + global kernel + launcher)",
        emit=generate_cuda,
        word_bits=(32, 64),
        ctypes=CTypes.for_word_bits,
        artifact="source",
    )
)
register_target(
    Target(
        name="c99",
        description="C99 (+ __int128) translation unit with a batch driver",
        emit=generate_c99,
        word_bits=(32, 64),
        ctypes=CTypes.for_word_bits,
        artifact="source",
    )
)
register_target(
    Target(
        name="python_exec",
        description="executable Python backend (CompiledKernel)",
        emit=compile_kernel,
        artifact="callable",
    )
)
