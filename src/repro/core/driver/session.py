"""The unified compiler driver: one entry point for every layer.

A :class:`CompilerSession` owns the three things the frontends used to
hand-chain on their own — the :class:`RewriteOptions`, the optimization pass
pipeline, and a backend target — plus a content-addressed kernel cache and
per-pass instrumentation:

    session = CompilerSession()
    kernel = build_butterfly_kernel(KernelConfig(bits=256))
    lowered = session.lower(kernel)                      # legalize + passes
    cuda = session.compile(kernel, target="cuda")        # ... + emission
    runnable = session.compile(kernel, target="python_exec")
    print(session.stats().report())

Cache keys are stable content digests of (builder IR, options, pipeline,
target), so identical requests — within a session or across sessions — are
recognized as the same compilation; ``session.cache_info()`` exposes the
hit/miss counters and the LRU bound keeps memory finite.
"""

from __future__ import annotations

import dataclasses
import threading
import time

from repro.core.ir.fingerprint import kernel_digest
from repro.core.ir.kernel import Kernel
from repro.core.passes.pipeline import DEFAULT_PIPELINE, optimize
from repro.core.rewrite.legalize import legalize
from repro.core.rewrite.options import RewriteOptions
from repro.obs import trace as tracing
from repro.core.driver.cache import CacheStats, ContentAddressedCache
from repro.core.driver.stats import CompileRecord, CompileStats, PassRecord
from repro.core.driver.targets import Target, emit, get_target

__all__ = [
    "CompilerSession",
    "DEFAULT_CACHE_SIZE",
    "get_default_session",
    "set_default_session",
    "reset_default_session",
]

#: Default bound on cached lowered kernels + emitted artifacts per session.
#: Sized so a full evaluation sweep (every figure at every bit-width, both
#: lowered IR and emitted artifacts) stays resident.
DEFAULT_CACHE_SIZE = 1024


class CompilerSession:
    """Drives build → legalize → optimize → emit with caching and stats.

    Args:
        options: default legalization options; per-call ``options`` (e.g.
            from a :class:`~repro.kernels.config.KernelConfig`) override them.
        pipeline: the optimization pass sequence run by :meth:`lower`.
        cache_size: LRU bound on cache entries (lowered kernels and emitted
            artifacts share the one cache).
    """

    def __init__(
        self,
        options: RewriteOptions | None = None,
        pipeline=DEFAULT_PIPELINE,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        self.options = options if options is not None else RewriteOptions()
        self.pipeline = tuple(pipeline)
        self._pipeline_token = tuple(p.__name__ for p in self.pipeline)
        self._cache = ContentAddressedCache(maxsize=cache_size)
        self._stats = CompileStats()
        self._tuning_db = None  # lazily created by compile_tuned
        # Guards lazy members (the tuning db); the cache and the stats carry
        # their own locks, so compile()/lower() never serialize on this.
        self._lock = threading.RLock()

    # -- cache keys ---------------------------------------------------------

    @staticmethod
    def _options_token(options: RewriteOptions) -> tuple:
        # astuple tracks the dataclass: a future RewriteOptions field can
        # never be silently excluded from the cache key.
        return dataclasses.astuple(options)

    def _key(
        self,
        kernel: Kernel,
        stage: str,
        options: RewriteOptions,
        run_passes: bool,
        target_name: str = "",
    ) -> str:
        return kernel_digest(
            kernel,
            extra=(
                stage,
                self._options_token(options),
                run_passes,
                self._pipeline_token,
                target_name,
            ),
        )

    # -- compilation --------------------------------------------------------

    def lower(
        self,
        kernel: Kernel,
        options: RewriteOptions | None = None,
        run_passes: bool = True,
    ) -> Kernel:
        """Legalize a wide-typed kernel and run the pass pipeline (cached)."""
        options = options if options is not None else self.options
        key = self._key(kernel, "lower", options, run_passes)
        cached = self._cache.get(key)
        if cached is not None:
            self._stats.record_hit()
            return cached

        traced = tracing.current() is not None
        wall_started = time.time() if traced else 0.0
        started = time.perf_counter()
        legalized = legalize(kernel, options)
        legalize_seconds = time.perf_counter() - started
        statements_legalized = len(legalized.body)

        pass_records: list[PassRecord] = []
        if run_passes:
            legalized = optimize(
                legalized,
                pipeline=self.pipeline,
                observer=lambda name, round_index, seconds, before, after: (
                    pass_records.append(
                        PassRecord(name, round_index, seconds, before, after)
                    )
                ),
            )
        if traced:
            # Turn the per-pass timings into child spans of whatever serve
            # span is active.  Passes run back-to-back after legalization, so
            # each span's wall start is the cumulative end of its
            # predecessors (exact durations, approximate placement).
            tracing.record(
                "compile.legalize",
                wall_started,
                legalize_seconds,
                cat="compile",
                kernel=kernel.name,
            )
            cursor = wall_started + legalize_seconds
            for pass_record in pass_records:
                tracing.record(
                    f"pass.{pass_record.name}",
                    cursor,
                    pass_record.seconds,
                    cat="compile",
                    round=pass_record.round_index,
                    statements_before=pass_record.statements_before,
                    statements_after=pass_record.statements_after,
                )
                cursor += pass_record.seconds
        self._stats.record(
            CompileRecord(
                kernel_name=kernel.name,
                key=key,
                target=None,
                seconds=time.perf_counter() - started,
                legalize_seconds=legalize_seconds,
                statements_wide=len(kernel.body),
                statements_legalized=statements_legalized,
                statements_final=len(legalized.body),
                passes=tuple(pass_records),
            )
        )
        self._cache.put(key, legalized)
        return legalized

    def compile(
        self,
        kernel: Kernel,
        target: str | Target = "python_exec",
        options: RewriteOptions | None = None,
        run_passes: bool = True,
    ) -> object:
        """Lower a wide-typed kernel and emit it on a target (cached).

        Returns the target's artifact: CUDA/C source for the ``cuda`` and
        ``c99`` targets, a :class:`CompiledKernel` for ``python_exec``.
        """
        resolved = get_target(target)
        options = options if options is not None else self.options
        key = self._key(kernel, "emit", options, run_passes, resolved.name)
        cached = self._cache.get(key)
        if cached is not None:
            self._stats.record_hit()
            return cached

        lowered = self.lower(kernel, options=options, run_passes=run_passes)
        traced = tracing.current() is not None
        wall_started = time.time() if traced else 0.0
        started = time.perf_counter()
        artifact = emit(lowered, resolved)
        if traced:
            tracing.record(
                "compile.emit",
                wall_started,
                time.perf_counter() - started,
                cat="compile",
                target=resolved.name,
            )
        self._stats.record(
            CompileRecord(
                kernel_name=kernel.name,
                key=key,
                target=resolved.name,
                seconds=time.perf_counter() - started,
                legalize_seconds=0.0,
                statements_wide=len(kernel.body),
                statements_legalized=len(lowered.body),
                statements_final=len(lowered.body),
            )
        )
        self._cache.put(key, artifact)
        return artifact

    def compile_tuned(
        self,
        kernel_or_workload,
        target: str | Target = "python_exec",
        device: str = "rtx4090",
        db=None,
        strategy: str = "auto",
        seed: int = 0,
    ):
        """Autotune a workload's configuration, then compile the winner.

        Accepts either a frontend-built wide :class:`Kernel` (the workload is
        derived from its metadata) or a :class:`repro.tune.Workload`.  The
        autotuner searches the configuration space against the GPU cost model
        for ``device`` — consulting (and updating) the tuning database ``db``
        so each (kernel family, device) pair is searched once — and the
        winning configuration's kernel is compiled on ``target``.  When no
        ``db`` is supplied the session keeps its own in-memory database, so
        repeated calls within one session still search only once.

        Returns a :class:`repro.tune.TunedCompilation` carrying the artifact
        and the tuned configuration; its modeled cost is ≤ the paper-default
        configuration's by construction.
        """
        # Imported lazily: repro.tune sits above the driver in the layer
        # graph (it compiles candidates *through* sessions).
        from repro.tune import Autotuner, TunedCompilation, TuningDatabase, Workload

        if db is None:
            with self._lock:
                if self._tuning_db is None:
                    self._tuning_db = TuningDatabase()
                db = self._tuning_db
        if isinstance(kernel_or_workload, Kernel):
            workload = Workload.from_kernel(kernel_or_workload)
        else:
            workload = kernel_or_workload
        tuner = Autotuner(session=self, db=db, strategy=strategy, seed=seed)
        tuning = tuner.tune(workload, device)
        resolved = get_target(target)
        artifact = self.compile(
            workload.build(tuning.config),
            target=resolved,
            options=tuning.config.rewrite_options(),
        )
        return TunedCompilation(
            artifact=artifact,
            config=tuning.config,
            target=resolved.name,
            tuning=tuning,
        )

    # -- cache management ---------------------------------------------------

    def cache_key(
        self,
        kernel: Kernel,
        target: str | Target | None = None,
        options: RewriteOptions | None = None,
        run_passes: bool = True,
    ) -> str:
        """The content-addressed key :meth:`compile` (or, with ``target=None``,
        :meth:`lower`) would use for this request.

        Exposed so cache invalidation (:mod:`repro.serve.invalidate`) can
        evict exactly the artifacts belonging to a stale kernel family.
        """
        options = options if options is not None else self.options
        if target is None:
            return self._key(kernel, "lower", options, run_passes)
        return self._key(kernel, "emit", options, run_passes, get_target(target).name)

    def evict(self, key: str) -> bool:
        """Drop one cache entry by key; True when it was present."""
        return self._cache.discard(key)

    # -- observability ------------------------------------------------------

    def stats(self) -> CompileStats:
        """The session's compilation records (live object, not a copy)."""
        return self._stats

    def cache_info(self) -> CacheStats:
        """Hit/miss/eviction counters and current size of the kernel cache."""
        return self._cache.stats()

    def clear_cache(self) -> None:
        """Drop every cached kernel and artifact (counters are preserved)."""
        self._cache.clear()


_DEFAULT_SESSION: CompilerSession | None = None
_DEFAULT_SESSION_LOCK = threading.Lock()


def get_default_session() -> CompilerSession:
    """The process-wide session used when callers do not supply their own.

    Initialization is race-free (double-checked locking): concurrent first
    callers all receive the *same* session, so its kernel cache is genuinely
    process-wide.  The fast path reads the module global once without taking
    the lock — safe because the binding is only ever replaced atomically,
    never mutated in place.
    """
    session = _DEFAULT_SESSION
    if session is None:
        with _DEFAULT_SESSION_LOCK:
            session = _DEFAULT_SESSION
            if session is None:
                session = set_default_session(CompilerSession())
    return session


def set_default_session(session: CompilerSession) -> CompilerSession:
    """Replace the process-wide default session (returns it for chaining).

    The swap is atomic, but callers racing :func:`get_default_session` may
    still observe the previous session until the assignment lands; callers
    that need a hard handoff should pass sessions explicitly.
    """
    global _DEFAULT_SESSION
    _DEFAULT_SESSION = session
    return session


def reset_default_session() -> CompilerSession:
    """Install (and return) a fresh default session — used by tests."""
    return set_default_session(CompilerSession())
