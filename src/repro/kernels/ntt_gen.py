"""NTT butterfly kernel frontends (Section 5.3).

An ``n``-point NTT is ``log2(n)`` stages of ``n/2`` butterflies; the paper
parallelizes by assigning butterflies to CUDA threads (Section 5.1).  MoMA's
job is the butterfly itself: one modular multiplication by the twiddle
factor, one modular addition and one modular subtraction on large operands.

Two butterfly flavours are provided:

* **Cooley-Tukey (decimation in time)** — used by the forward transform:
  ``x' = x + w*y``, ``y' = x - w*y`` (mod q).
* **Gentleman-Sande (decimation in frequency)** — used by the inverse
  transform in some formulations: ``x' = x + y``, ``y' = (x - y) * w``.
"""

from __future__ import annotations

from repro.errors import KernelError
from repro.core.driver import CompilerSession, get_default_session
from repro.core.ir.builder import KernelBuilder
from repro.core.ir.kernel import Kernel
from repro.core.codegen.python_exec import CompiledKernel
from repro.kernels.config import KernelConfig

__all__ = [
    "BUTTERFLY_VARIANTS",
    "build_butterfly_kernel",
    "generate_butterfly_kernel",
    "compile_butterfly_kernel",
]

#: Butterfly dataflow variants.
BUTTERFLY_VARIANTS = ("cooley_tukey", "gentleman_sande")


def _autotuned_config(
    config: KernelConfig,
    variant: str,
    size: int,
    session: CompilerSession | None,
    device: str,
    tuning_db,
) -> KernelConfig:
    """The tuned configuration for this butterfly family on ``device``."""
    # Imported lazily: repro.tune builds its candidates through this module.
    from repro.tune import Autotuner, Workload

    workload = Workload(
        kind="ntt",
        bits=config.bits,
        operation=variant,
        size=size,
        modulus_bits=config.modulus_bits,
    )
    return Autotuner(session=session, db=tuning_db).tuned_config(workload, device)


def build_butterfly_kernel(config: KernelConfig, variant: str = "cooley_tukey") -> Kernel:
    """Build the wide-typed IR for one NTT butterfly."""
    if variant not in BUTTERFLY_VARIANTS:
        raise KernelError(
            f"unknown butterfly variant {variant!r}; expected one of {BUTTERFLY_VARIANTS}"
        )
    width = config.container_bits
    modulus_bits = config.effective_modulus_bits

    builder = KernelBuilder(f"ntt_butterfly_{variant}_{config.label()}")
    builder.metadata(
        family="ntt",
        variant=variant,
        bits=config.bits,
        modulus_bits=modulus_bits,
        multiplication=config.multiplication,
        uniform_params=["q", "mu"],
    )

    x = builder.param("x", width, modulus_bits)
    y = builder.param("y", width, modulus_bits)
    twiddle = builder.param("w", width, modulus_bits)
    q = builder.param("q", width, modulus_bits)
    mu = builder.param("mu", width, modulus_bits + 4)

    if variant == "cooley_tukey":
        scaled = builder.mulmod(twiddle, y, q, mu, algorithm=config.multiplication)
        builder.output("x_out", builder.addmod(x, scaled, q))
        builder.output("y_out", builder.submod(x, scaled, q))
    else:
        builder.output("x_out", builder.addmod(x, y, q))
        difference = builder.submod(x, y, q)
        builder.output(
            "y_out", builder.mulmod(difference, twiddle, q, mu, algorithm=config.multiplication)
        )
    return builder.build()


def generate_butterfly_kernel(
    config: KernelConfig,
    variant: str = "cooley_tukey",
    run_passes: bool = True,
    session: CompilerSession | None = None,
    autotune: bool = False,
    device: str = "rtx4090",
    ntt_size: int = 4096,
    tuning_db=None,
) -> Kernel:
    """Legalized (and optionally optimized) machine-word butterfly kernel.

    Compilation goes through the driver's content-addressed cache, so
    repeated requests for the same (config, variant) return the cached
    kernel.  With ``autotune=True`` the multiplication algorithm and word
    width of ``config`` are replaced by the autotuner's winner for
    ``device`` (searched once per kernel family, then served from
    ``tuning_db``).
    """
    session = session if session is not None else get_default_session()
    if autotune:
        config = _autotuned_config(config, variant, ntt_size, session, device, tuning_db)
    return session.lower(
        build_butterfly_kernel(config, variant),
        options=config.rewrite_options(),
        run_passes=run_passes,
    )


def compile_butterfly_kernel(
    config: KernelConfig,
    variant: str = "cooley_tukey",
    session: CompilerSession | None = None,
    autotune: bool = False,
    device: str = "rtx4090",
    ntt_size: int = 4096,
    tuning_db=None,
) -> CompiledKernel:
    """Legalized butterfly compiled to an executable Python function."""
    session = session if session is not None else get_default_session()
    if autotune:
        config = _autotuned_config(config, variant, ntt_size, session, device, tuning_db)
    return session.compile(
        build_butterfly_kernel(config, variant),
        target="python_exec",
        options=config.rewrite_options(),
    )
