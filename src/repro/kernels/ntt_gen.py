"""NTT butterfly kernel frontends (Section 5.3).

An ``n``-point NTT is ``log2(n)`` stages of ``n/2`` butterflies; the paper
parallelizes by assigning butterflies to CUDA threads (Section 5.1).  MoMA's
job is the butterfly itself: one modular multiplication by the twiddle
factor, one modular addition and one modular subtraction on large operands.

Two butterfly flavours are provided:

* **Cooley-Tukey (decimation in time)** — used by the forward transform:
  ``x' = x + w*y``, ``y' = x - w*y`` (mod q).
* **Gentleman-Sande (decimation in frequency)** — used by the inverse
  transform in some formulations: ``x' = x + y``, ``y' = (x - y) * w``.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import KernelError
from repro.core.ir.builder import KernelBuilder
from repro.core.ir.kernel import Kernel
from repro.core.codegen.python_exec import CompiledKernel, compile_kernel
from repro.core.passes.pipeline import optimize
from repro.core.rewrite.legalize import legalize
from repro.kernels.config import KernelConfig

__all__ = [
    "BUTTERFLY_VARIANTS",
    "build_butterfly_kernel",
    "generate_butterfly_kernel",
    "compile_butterfly_kernel",
]

#: Butterfly dataflow variants.
BUTTERFLY_VARIANTS = ("cooley_tukey", "gentleman_sande")


def build_butterfly_kernel(config: KernelConfig, variant: str = "cooley_tukey") -> Kernel:
    """Build the wide-typed IR for one NTT butterfly."""
    if variant not in BUTTERFLY_VARIANTS:
        raise KernelError(
            f"unknown butterfly variant {variant!r}; expected one of {BUTTERFLY_VARIANTS}"
        )
    width = config.container_bits
    modulus_bits = config.effective_modulus_bits

    builder = KernelBuilder(f"ntt_butterfly_{variant}_{config.label()}")
    builder.metadata(
        family="ntt",
        variant=variant,
        bits=config.bits,
        modulus_bits=modulus_bits,
        multiplication=config.multiplication,
        uniform_params=["q", "mu"],
    )

    x = builder.param("x", width, modulus_bits)
    y = builder.param("y", width, modulus_bits)
    twiddle = builder.param("w", width, modulus_bits)
    q = builder.param("q", width, modulus_bits)
    mu = builder.param("mu", width, modulus_bits + 4)

    if variant == "cooley_tukey":
        scaled = builder.mulmod(twiddle, y, q, mu, algorithm=config.multiplication)
        builder.output("x_out", builder.addmod(x, scaled, q))
        builder.output("y_out", builder.submod(x, scaled, q))
    else:
        builder.output("x_out", builder.addmod(x, y, q))
        difference = builder.submod(x, y, q)
        builder.output(
            "y_out", builder.mulmod(difference, twiddle, q, mu, algorithm=config.multiplication)
        )
    return builder.build()


@lru_cache(maxsize=None)
def generate_butterfly_kernel(
    config: KernelConfig, variant: str = "cooley_tukey", run_passes: bool = True
) -> Kernel:
    """Legalized (and optionally optimized) machine-word butterfly kernel."""
    kernel = build_butterfly_kernel(config, variant)
    legalized = legalize(kernel, config.rewrite_options())
    if run_passes:
        legalized = optimize(legalized)
    return legalized


@lru_cache(maxsize=None)
def compile_butterfly_kernel(
    config: KernelConfig, variant: str = "cooley_tukey"
) -> CompiledKernel:
    """Legalized butterfly compiled to an executable Python function."""
    return compile_kernel(generate_butterfly_kernel(config, variant))
