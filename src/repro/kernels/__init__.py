"""Kernel frontends: BLAS operations and NTT butterflies built as wide-typed
IR for the MoMA rewrite system to legalize."""

from repro.kernels.blas_gen import (
    BLAS_OPERATIONS,
    build_blas_kernel,
    compile_blas_kernel,
    generate_blas_kernel,
)
from repro.kernels.config import KernelConfig, padded_width
from repro.kernels.ntt_gen import (
    BUTTERFLY_VARIANTS,
    build_butterfly_kernel,
    compile_butterfly_kernel,
    generate_butterfly_kernel,
)

__all__ = [
    "BLAS_OPERATIONS",
    "build_blas_kernel",
    "compile_blas_kernel",
    "generate_blas_kernel",
    "KernelConfig",
    "padded_width",
    "BUTTERFLY_VARIANTS",
    "build_butterfly_kernel",
    "compile_butterfly_kernel",
    "generate_butterfly_kernel",
]
