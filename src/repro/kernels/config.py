"""Kernel-generation configuration shared by the BLAS and NTT frontends.

A :class:`KernelConfig` captures the compile-time knowledge the paper's code
generator assumes (Section 4): the operand bit-width, the modulus bit-width
(for Barrett headroom and for the non-power-of-two optimization), the machine
word width, and the multiplication algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KernelError
from repro.core.rewrite.options import KARATSUBA, SCHOOLBOOK, RewriteOptions

__all__ = ["KernelConfig", "padded_width"]

#: Bit-widths evaluated in the paper (Figures 2-5).
PAPER_BIT_WIDTHS = (64, 128, 256, 320, 384, 448, 512, 576, 640, 768, 896, 1024)


def padded_width(bits: int, word_bits: int) -> int:
    """Smallest power-of-two multiple of ``word_bits`` that holds ``bits``.

    Non-power-of-two operand widths (381, 753, ...) are stored in the next
    power-of-two container and pruned during code generation (Section 4).
    """
    if bits <= 0:
        raise KernelError(f"bit-width must be positive, got {bits}")
    if word_bits <= 0 or word_bits & (word_bits - 1):
        # A non-power-of-two word width would produce a container the
        # legalizer cannot split evenly into machine words.
        raise KernelError(f"word width must be a positive power of two, got {word_bits}")
    width = word_bits
    while width < bits:
        width *= 2
    return width


@dataclass(frozen=True)
class KernelConfig:
    """Compile-time parameters for one generated kernel family.

    Attributes:
        bits: the logical operand bit-width (as reported in the paper's
            figures, e.g. 128, 256, 384, 768).
        modulus_bits: bit-width of the modulus; defaults to ``bits - 4``
            following the paper's Barrett headroom convention.
        word_bits: machine word width of the target GPU (64).
        multiplication: ``"schoolbook"`` or ``"karatsuba"``.
    """

    bits: int
    modulus_bits: int | None = None
    word_bits: int = 64
    multiplication: str = SCHOOLBOOK

    def __post_init__(self) -> None:
        if self.word_bits <= 0 or self.word_bits & (self.word_bits - 1):
            raise KernelError(
                f"word width must be a positive power of two, got {self.word_bits}"
            )
        if self.bits < self.word_bits:
            raise KernelError(
                f"operand width {self.bits} must be at least the machine word "
                f"width {self.word_bits}"
            )
        if self.multiplication not in (SCHOOLBOOK, KARATSUBA):
            raise KernelError(
                f"multiplication must be 'schoolbook' or 'karatsuba', got "
                f"{self.multiplication!r}"
            )
        if self.effective_modulus_bits > self.bits - 4:
            raise KernelError(
                f"modulus of {self.effective_modulus_bits} bits leaves less than the "
                f"4 bits of Barrett headroom required at {self.bits}-bit operands"
            )
        if self.effective_modulus_bits < 8:
            raise KernelError("modulus must have at least 8 bits")

    @property
    def effective_modulus_bits(self) -> int:
        """The modulus bit-width actually used (defaults to ``bits - 4``)."""
        return self.modulus_bits if self.modulus_bits is not None else self.bits - 4

    @property
    def container_bits(self) -> int:
        """The power-of-two container width the rewrite system operates on."""
        return padded_width(self.bits, self.word_bits)

    @property
    def operand_words(self) -> int:
        """Number of machine words per (unpruned) operand."""
        return -(-self.bits // self.word_bits)

    @property
    def is_single_word(self) -> bool:
        """Whether operands already fit in one machine word (no MoMA needed)."""
        return self.bits <= self.word_bits

    def rewrite_options(self) -> RewriteOptions:
        """The legalization options matching this configuration."""
        return RewriteOptions(word_bits=self.word_bits, multiplication=self.multiplication)

    def label(self) -> str:
        """Short human-readable label used in kernel names."""
        return f"{self.bits}b_{self.multiplication}"
