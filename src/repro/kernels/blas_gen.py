"""BLAS kernel frontends (Section 5.2).

The paper evaluates four finite-field BLAS operations, which correspond to
point-wise polynomial arithmetic (Section 2.3):

* vector addition        ``z[i] = (x[i] + y[i]) mod q``
* vector subtraction     ``z[i] = (x[i] - y[i]) mod q``
* vector multiplication  ``z[i] = (x[i] * y[i]) mod q``
* axpy                   ``y[i] = (a * x[i] + y[i]) mod q``

Each frontend builds the *scalar* computation as wide-typed IR; the MoMA
legalizer then decomposes it to machine words and the backends wrap it in an
element-per-thread GPU kernel.  ``q`` (and ``mu``, ``a``) are uniform
parameters: every thread uses the same modulus, as in the paper's batched
evaluation.
"""

from __future__ import annotations

from repro.errors import KernelError
from repro.core.driver import CompilerSession, get_default_session
from repro.core.ir.builder import KernelBuilder
from repro.core.ir.kernel import Kernel
from repro.core.codegen.python_exec import CompiledKernel
from repro.kernels.config import KernelConfig

__all__ = [
    "BLAS_OPERATIONS",
    "build_blas_kernel",
    "generate_blas_kernel",
    "compile_blas_kernel",
]

#: The BLAS operations evaluated in Figure 2.
BLAS_OPERATIONS = ("vadd", "vsub", "vmul", "axpy")


def _autotuned_config(
    operation: str,
    config: KernelConfig,
    session: CompilerSession | None,
    device: str,
    tuning_db,
) -> KernelConfig:
    """The tuned configuration for this BLAS operation on ``device``."""
    # Imported lazily: repro.tune builds its candidates through this module.
    from repro.tune import Autotuner, Workload

    workload = Workload(
        kind="blas",
        bits=config.bits,
        operation=operation,
        modulus_bits=config.modulus_bits,
    )
    return Autotuner(session=session, db=tuning_db).tuned_config(workload, device)


def build_blas_kernel(operation: str, config: KernelConfig) -> Kernel:
    """Build the wide-typed (pre-legalization) IR for one BLAS operation."""
    if operation not in BLAS_OPERATIONS:
        raise KernelError(
            f"unknown BLAS operation {operation!r}; expected one of {BLAS_OPERATIONS}"
        )
    width = config.container_bits
    modulus_bits = config.effective_modulus_bits
    operand_bits = min(config.bits, modulus_bits)

    builder = KernelBuilder(f"{operation}_{config.label()}")
    builder.metadata(
        family="blas",
        operation=operation,
        bits=config.bits,
        modulus_bits=modulus_bits,
        multiplication=config.multiplication,
    )

    x = builder.param("x", width, operand_bits)
    if operation == "axpy":
        y = builder.param("y", width, operand_bits)
        scale = builder.param("a", width, operand_bits)
        q = builder.param("q", width, modulus_bits)
        mu = builder.param("mu", width, modulus_bits + 4)
        product = builder.mulmod(scale, x, q, mu, algorithm=config.multiplication)
        builder.output("z", builder.addmod(product, y, q))
        builder.metadata(uniform_params=["a", "q", "mu"])
    elif operation == "vmul":
        y = builder.param("y", width, operand_bits)
        q = builder.param("q", width, modulus_bits)
        mu = builder.param("mu", width, modulus_bits + 4)
        builder.output("z", builder.mulmod(x, y, q, mu, algorithm=config.multiplication))
        builder.metadata(uniform_params=["q", "mu"])
    else:
        y = builder.param("y", width, operand_bits)
        q = builder.param("q", width, modulus_bits)
        if operation == "vadd":
            builder.output("z", builder.addmod(x, y, q))
        else:
            builder.output("z", builder.submod(x, y, q))
        builder.metadata(uniform_params=["q"])
    return builder.build()


def generate_blas_kernel(
    operation: str,
    config: KernelConfig,
    run_passes: bool = True,
    session: CompilerSession | None = None,
    autotune: bool = False,
    device: str = "rtx4090",
    tuning_db=None,
) -> Kernel:
    """Legalized (and optionally optimized) machine-word kernel.

    Compilation goes through the driver's content-addressed cache, so
    repeated requests for the same (operation, config) return the cached
    kernel.  With ``autotune=True`` the multiplication algorithm and word
    width of ``config`` are replaced by the autotuner's winner for
    ``device`` (searched once per kernel family, then served from
    ``tuning_db``).
    """
    session = session if session is not None else get_default_session()
    if autotune:
        config = _autotuned_config(operation, config, session, device, tuning_db)
    return session.lower(
        build_blas_kernel(operation, config),
        options=config.rewrite_options(),
        run_passes=run_passes,
    )


def compile_blas_kernel(
    operation: str,
    config: KernelConfig,
    session: CompilerSession | None = None,
    autotune: bool = False,
    device: str = "rtx4090",
    tuning_db=None,
) -> CompiledKernel:
    """Legalized kernel compiled to an executable Python function."""
    session = session if session is not None else get_default_session()
    if autotune:
        config = _autotuned_config(operation, config, session, device, tuning_db)
    return session.compile(
        build_blas_kernel(operation, config),
        target="python_exec",
        options=config.rewrite_options(),
    )
