"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ArithmeticDomainError(ReproError):
    """An arithmetic input is outside its documented domain.

    Examples: a limb that does not fit in the word width, a value that is
    not reduced modulo ``q`` when the operation requires reduced inputs, or
    a modulus that violates the Barrett bit-width headroom requirement.
    """


class IRError(ReproError):
    """The intermediate representation is malformed or inconsistently typed."""


class RewriteError(ReproError):
    """A rewrite rule was applied to a statement it does not match, or
    legalization could not reduce a kernel to machine-word operations."""


class CodegenError(ReproError):
    """A backend cannot emit code for the given (presumably non-legalized)
    intermediate representation."""


class KernelError(ReproError):
    """A kernel frontend was asked to build an unsupported kernel
    configuration (e.g. a non-power-of-two NTT size)."""


class SimulationError(ReproError):
    """The GPU performance model was asked to cost an unknown instruction
    or an inconsistent launch configuration."""


class EvaluationError(ReproError):
    """An evaluation harness was configured with parameters outside the
    range reported in the paper."""


class DriverError(ReproError):
    """The compiler driver was misused (bad target registration, a kernel
    emitted on a target that does not support its word width, ...)."""


class TuningError(ReproError):
    """The autotuner was asked to tune an unknown workload, search with an
    unknown strategy, or read a corrupt tuning database."""


class ServingError(ReproError):
    """The kernel-serving subsystem was misconfigured or asked to serve a
    request it cannot satisfy (closed server, unparsable workload key, ...)."""


class ProtocolError(ServingError):
    """A wire-protocol message is malformed, carries an unsupported protocol
    version, or uses an artifact encoding the receiver does not accept."""


class DeadlineExceededError(ServingError):
    """A served request's result became ready only after its per-request
    deadline had already passed, so the result was shed instead of returned.

    Raised on the submitting side when a request carried a ``deadline_ms``
    (see :meth:`repro.serve.supervisor.ShardSupervisor.submit`); the class
    name round-trips the wire via
    :class:`~repro.serve.protocol.ErrorReply`, so supervisor-side callers
    can distinguish a missed deadline from a real serving failure."""


class QuotaExceededError(ServingError):
    """A tenant submitted past its admission quota (rate or in-flight cap),
    so the request was refused at the front door instead of queued.

    Raised synchronously by
    :meth:`repro.serve.supervisor.ShardSupervisor.submit` when the request's
    tenant has a :class:`~repro.tenancy.TenantConfig` whose rate or
    in-flight budget is exhausted; the class name round-trips the wire via
    :class:`~repro.serve.protocol.ErrorReply`, so clients can distinguish
    an over-quota refusal from a real serving failure and back off."""


class LoadGenError(ReproError):
    """The traffic-replay harness (:mod:`repro.loadgen`) was asked for an
    unknown workload suite, handed a malformed trace document, or
    configured with impossible arrival parameters."""


class UnknownTargetError(DriverError):
    """A compilation target name is not present in the target registry."""
