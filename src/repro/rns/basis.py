"""Residue number system (RNS) bases.

The paper's introduction describes how FHE implementations sidestep large
integer arithmetic by representing values in an RNS of machine-word-sized
moduli, at the cost of modulus raising/reduction and more frequent
bootstrapping; GRNS (the GPU baseline of Figure 2) takes the same approach.
An :class:`RnsBasis` is a list of pairwise-coprime word-sized primes whose
product is large enough to represent the target dynamic range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.driver import ContentAddressedCache
from repro.errors import ArithmeticDomainError
from repro.ntheory.crt import check_pairwise_coprime
from repro.ntheory.primes import is_prime

__all__ = ["RnsBasis", "make_basis"]


@dataclass(frozen=True)
class RnsBasis:
    """A residue number system basis.

    Attributes:
        moduli: pairwise-coprime moduli, each fitting in ``word_bits`` bits.
        word_bits: the machine word width the channels are sized for.
    """

    moduli: tuple[int, ...]
    word_bits: int

    def __post_init__(self) -> None:
        if not self.moduli:
            raise ArithmeticDomainError("an RNS basis needs at least one modulus")
        for modulus in self.moduli:
            if modulus.bit_length() > self.word_bits:
                raise ArithmeticDomainError(
                    f"modulus {modulus} does not fit in a {self.word_bits}-bit word"
                )
        check_pairwise_coprime(self.moduli)

    @property
    def channel_count(self) -> int:
        """Number of RNS channels (residues per value)."""
        return len(self.moduli)

    @property
    def dynamic_range(self) -> int:
        """Product of the moduli: the largest representable range."""
        product = 1
        for modulus in self.moduli:
            product *= modulus
        return product

    @property
    def range_bits(self) -> int:
        """Bit-length of the dynamic range."""
        return self.dynamic_range.bit_length()

    def covers(self, bits: int) -> bool:
        """Whether values of ``bits`` bits (and their products' residues) fit."""
        return self.range_bits > bits


#: Bases are pure functions of their arguments; cached like the driver's
#: kernels (bounded, counted) instead of through an unbounded ``lru_cache``.
_BASIS_CACHE = ContentAddressedCache(maxsize=128)


def make_basis(target_bits: int, word_bits: int = 64, channel_bits: int | None = None) -> RnsBasis:
    """Build an RNS basis covering ``target_bits`` bits of dynamic range.

    Channels are primes just below ``2**channel_bits`` (default: 4 bits of
    headroom below the word width, mirroring how RNS libraries keep lazy
    reduction cheap), chosen descending from the largest such prime.
    """
    cache_key = (target_bits, word_bits, channel_bits)
    cached = _BASIS_CACHE.get(cache_key)
    if cached is not None:
        return cached
    if target_bits < 1:
        raise ArithmeticDomainError(f"target_bits must be positive, got {target_bits}")
    if channel_bits is None:
        channel_bits = word_bits - 4
    if channel_bits < 4 or channel_bits > word_bits:
        raise ArithmeticDomainError(
            f"channel_bits must be in [4, {word_bits}], got {channel_bits}"
        )
    moduli: list[int] = []
    accumulated_bits = 0
    candidate = (1 << channel_bits) - 1
    while accumulated_bits <= target_bits:
        while candidate > 2 and not is_prime(candidate):
            candidate -= 2
        if candidate <= 2:
            raise ArithmeticDomainError(
                f"ran out of {channel_bits}-bit primes while building the basis"
            )
        moduli.append(candidate)
        accumulated_bits += candidate.bit_length() - 1
        candidate -= 2
    basis = RnsBasis(tuple(moduli), word_bits)
    _BASIS_CACHE.put(cache_key, basis)
    return basis
