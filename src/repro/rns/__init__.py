"""Residue number system substrate (the GRNS baseline's representation)."""

from repro.rns.arith import (
    RnsValue,
    from_rns,
    rns_add,
    rns_modmul,
    rns_mul,
    rns_sub,
    to_rns,
)
from repro.rns.basis import RnsBasis, make_basis

__all__ = [
    "RnsValue",
    "from_rns",
    "rns_add",
    "rns_modmul",
    "rns_mul",
    "rns_sub",
    "to_rns",
    "RnsBasis",
    "make_basis",
]
