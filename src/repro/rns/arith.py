"""Residue number system arithmetic.

Values are represented by their residues against an :class:`RnsBasis`;
addition, subtraction and multiplication are independent per channel (which
is what makes RNS attractive on parallel hardware), while comparisons,
modular reduction by an arbitrary ``q`` and conversion back to positional
form require CRT reconstruction — the overhead the paper's introduction
points out and that MoMA avoids.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ArithmeticDomainError
from repro.ntheory.crt import garner_reconstruct
from repro.rns.basis import RnsBasis

__all__ = ["RnsValue", "to_rns", "from_rns", "rns_add", "rns_sub", "rns_mul", "rns_modmul"]


@dataclass(frozen=True)
class RnsValue:
    """A value in RNS form: one residue per basis channel."""

    residues: tuple[int, ...]
    basis: RnsBasis

    def __post_init__(self) -> None:
        if len(self.residues) != self.basis.channel_count:
            raise ArithmeticDomainError(
                f"expected {self.basis.channel_count} residues, got {len(self.residues)}"
            )
        for residue, modulus in zip(self.residues, self.basis.moduli):
            if not 0 <= residue < modulus:
                raise ArithmeticDomainError(
                    f"residue {residue} is not reduced modulo {modulus}"
                )


def to_rns(value: int, basis: RnsBasis) -> RnsValue:
    """Convert a non-negative integer to RNS form."""
    if value < 0:
        raise ArithmeticDomainError(f"value must be non-negative, got {value}")
    if value >= basis.dynamic_range:
        raise ArithmeticDomainError(
            f"value of {value.bit_length()} bits exceeds the basis range of "
            f"{basis.range_bits} bits"
        )
    return RnsValue(tuple(value % modulus for modulus in basis.moduli), basis)


def from_rns(value: RnsValue) -> int:
    """Convert back to positional form via Garner's mixed-radix CRT."""
    return garner_reconstruct(list(value.residues), list(value.basis.moduli))


def _check_same_basis(a: RnsValue, b: RnsValue) -> None:
    if a.basis != b.basis:
        raise ArithmeticDomainError("operands use different RNS bases")


def rns_add(a: RnsValue, b: RnsValue) -> RnsValue:
    """Channel-wise addition (mod the channel moduli)."""
    _check_same_basis(a, b)
    residues = tuple(
        (x + y) % modulus
        for x, y, modulus in zip(a.residues, b.residues, a.basis.moduli)
    )
    return RnsValue(residues, a.basis)


def rns_sub(a: RnsValue, b: RnsValue) -> RnsValue:
    """Channel-wise subtraction (mod the channel moduli)."""
    _check_same_basis(a, b)
    residues = tuple(
        (x - y) % modulus
        for x, y, modulus in zip(a.residues, b.residues, a.basis.moduli)
    )
    return RnsValue(residues, a.basis)


def rns_mul(a: RnsValue, b: RnsValue) -> RnsValue:
    """Channel-wise multiplication (mod the channel moduli)."""
    _check_same_basis(a, b)
    residues = tuple(
        (x * y) % modulus
        for x, y, modulus in zip(a.residues, b.residues, a.basis.moduli)
    )
    return RnsValue(residues, a.basis)


def rns_modmul(a: RnsValue, b: RnsValue, q: int) -> RnsValue:
    """Multiplication followed by reduction modulo an arbitrary ``q``.

    RNS cannot reduce modulo a value outside its basis without leaving the
    representation: the product is reconstructed, reduced, and converted
    back.  This round trip is exactly the "modulus raising and reduction"
    overhead the paper attributes to RNS-based approaches.
    """
    product = from_rns(rns_mul(a, b))
    return to_rns(product % q, a.basis)
