"""Live invalidation: drop stale winners, optionally re-tune their families.

A tuning record goes stale in two ways:

* **version** — :data:`~repro.tune.db.TUNER_VERSION` moved past the record's
  (the search space or schema changed incompatibly), or
* **fingerprint** — the frontend now builds different IR for the record's
  kernel family, so the stored fingerprint no longer matches.

Stale records are invisible to lookups (both the version and the fingerprint
are part of the database key), but they linger in the file, are re-reported
by every warmup, and their served kernels may still sit in the server's
resident table and kernel cache.  :func:`invalidate_stale` removes all three:
the database records (tombstoned, so merge-on-save cannot resurrect them),
the matching resident results, and the cached artifacts behind them.  With
``refresh=True`` the affected families are re-tuned and re-served through
the server's worker pool, so traffic keeps hitting warm answers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import ServingError
from repro.tenancy import split_tenant, validate_tenant
from repro.tune.db import TUNER_VERSION, TuningDatabase, TuningRecord
from repro.serve.server import KernelServer
from repro.serve.warmup import request_from_record

__all__ = ["StaleRecord", "InvalidationReport", "find_stale", "invalidate_stale"]


@dataclass(frozen=True)
class StaleRecord:
    """One database record that no longer serves its family."""

    db_key: str
    record: TuningRecord
    reason: str  # "version" | "fingerprint" | "unparsable"


@dataclass(frozen=True)
class InvalidationReport:
    """What one invalidation pass found and removed."""

    checked: int
    stale: tuple[StaleRecord, ...]
    dropped_records: int
    evicted_resident: int
    evicted_artifacts: int
    refreshed: tuple[str, ...]
    seconds: float

    def _count(self, reason: str) -> int:
        return sum(1 for entry in self.stale if entry.reason == reason)

    @property
    def stale_version(self) -> int:
        """Records invalidated by a :data:`TUNER_VERSION` change."""
        return self._count("version")

    @property
    def stale_fingerprint(self) -> int:
        """Records invalidated by a kernel-family fingerprint change."""
        return self._count("fingerprint")

    def to_payload(self) -> dict:
        """JSON-ready summary (what a ``ControlReply`` carries back)."""
        return {
            "kind": "invalidation",
            "checked": self.checked,
            "stale": len(self.stale),
            "stale_version": self.stale_version,
            "stale_fingerprint": self.stale_fingerprint,
            "dropped_records": self.dropped_records,
            "evicted_resident": self.evicted_resident,
            "evicted_artifacts": self.evicted_artifacts,
            "refreshed": list(self.refreshed),
            "seconds": self.seconds,
        }

    def report(self) -> str:
        """Human-readable summary of the pass."""
        lines = [
            f"invalidation: {len(self.stale)}/{self.checked} records stale "
            f"({self.stale_version} version, {self.stale_fingerprint} fingerprint, "
            f"{self._count('unparsable')} unparsable); "
            f"dropped {self.dropped_records} records, evicted "
            f"{self.evicted_resident} resident results and "
            f"{self.evicted_artifacts} cached artifacts in {self.seconds * 1e3:.1f} ms"
        ]
        for entry in self.stale:
            lines.append(
                f"  {entry.reason}: {entry.record.workload_key} on {entry.record.device}"
            )
        if self.refreshed:
            lines.append(f"  re-tuned: {', '.join(self.refreshed)}")
        return "\n".join(lines)


def find_stale(
    db: TuningDatabase, tenant: str | None = None
) -> tuple[StaleRecord, ...]:
    """Every record whose version or kernel-family fingerprint is stale.

    ``tenant`` scopes the scan to one namespace; ``None`` scans them all.
    """
    if tenant is not None:
        validate_tenant(tenant)
    stale: list[StaleRecord] = []
    for db_key, record in db.records().items():
        if tenant is not None and record.tenant != tenant:
            continue
        if record.tuner_version != TUNER_VERSION:
            stale.append(StaleRecord(db_key, record, "version"))
            continue
        try:
            request = request_from_record(record)
        except ServingError:
            stale.append(StaleRecord(db_key, record, "unparsable"))
            continue
        if request.workload().fingerprint() != record.fingerprint:
            stale.append(StaleRecord(db_key, record, "fingerprint"))
    return tuple(stale)


def invalidate_stale(
    server: KernelServer,
    refresh: bool = False,
    target: str = "python_exec",
    tenant: str | None = None,
) -> InvalidationReport:
    """Drop every stale record and the served state derived from it.

    With ``refresh=True``, each dropped family that this server's devices
    cover is re-tuned (a fresh search under the current tuner version) and
    re-served through the worker pool before returning — the "re-tune stale
    families in the background" half of live invalidation; the requests run
    concurrently on the pool even though this call waits for them.

    ``tenant`` scopes the pass to one namespace: only that tenant's records
    are dropped and only *its* resident results evicted — tenant A's
    invalidation leaves tenant B's warm state untouched even when both
    serve the same kernel family.
    """
    started = time.perf_counter()
    checked = len(server.db.records())
    stale = find_stale(server.db, tenant=tenant)

    dropped = 0
    for entry in stale:
        if server.db.remove(entry.db_key, save=False):
            dropped += 1
    if dropped:
        server.db.save()

    # Evict served state belonging to the dropped families: resident results
    # whose (tenant, workload, device) match a dropped record, and their
    # artifacts in the session's kernel cache.  The tenant is part of the
    # family, so dropping tenant A's record never evicts tenant B's warm
    # result for the same kernel.
    stale_families = {
        (entry.record.tenant, entry.record.workload_key, entry.record.device)
        for entry in stale
    }
    evicted_resident = 0
    evicted_artifacts = 0
    for serve_key, result in server.resident_results().items():
        resident_tenant, _ = split_tenant(serve_key)
        family = (resident_tenant, result.request.workload().key, result.request.device)
        if family in stale_families:
            if server.evict_resident(serve_key):
                evicted_resident += 1
            if server.session.evict(result.cache_key):
                evicted_artifacts += 1

    refreshed: list[str] = []
    if refresh:
        pending = []
        for entry in stale:
            if entry.record.device not in server.devices:
                continue
            try:
                # A version-stale record can *also* carry an unparsable
                # legacy workload key — it is classified by the first test
                # that fails, so parse defensively here.
                request = request_from_record(entry.record, target=target)
            except ServingError:
                continue
            pending.append(
                (
                    entry.record.workload_key,
                    server.submit(request, tenant=entry.record.tenant),
                )
            )
        for workload_key, future in pending:
            future.result()
            refreshed.append(workload_key)

    return InvalidationReport(
        checked=checked,
        stale=stale,
        dropped_records=dropped,
        evicted_resident=evicted_resident,
        evicted_artifacts=evicted_artifacts,
        refreshed=tuple(refreshed),
        seconds=time.perf_counter() - started,
    )
