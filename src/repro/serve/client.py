"""Client API: frontends that delegate kernel compilation to a server.

Two layers:

* :func:`serve_ntt_kernel` / :func:`serve_blas_kernel` — the hook functions
  the existing frontends (:class:`~repro.ntt.generated.GeneratedNTT`,
  :class:`~repro.poly.blas.MomaBlasEngine`) call when constructed with
  ``serve=server``: one blocking request through the server's front door,
  returning the served result (tuned configuration + compiled kernel).
* :class:`ServedNTT` / :class:`ServedBlasEngine` — ready-made wrappers: the
  familiar frontends, constructed against a server, so every instance in a
  long-running process shares the server's pre-warmed caches instead of
  paying its own cold compilation.

Every entry point accepts either a single-process :class:`KernelServer` or a
:class:`~repro.serve.supervisor.ShardSupervisor` — both expose the same
front door (``submit``/``serve``/``devices``), so a frontend is routed
across shard processes simply by being handed a supervisor.
"""

from __future__ import annotations

from repro.kernels.config import KernelConfig
from repro.ntt.generated import GeneratedNTT
from repro.ntt.planner import NTTPlan
from repro.poly.blas import MomaBlasEngine
from repro.serve.server import KernelServer, ServeRequest, ServeResult
from repro.serve.supervisor import ShardSupervisor
from repro.tenancy import DEFAULT_TENANT, validate_tenant
from repro.tune.space import BLAS, NTT

#: What the client functions accept: anything with the server front door
#: (``submit``/``serve``/``devices``) — today the single-process server and
#: the shard supervisor.
ServerLike = KernelServer | ShardSupervisor

__all__ = [
    "serve_many",
    "serve_ntt_kernel",
    "serve_blas_kernel",
    "serve_blas_kernels",
    "ServedNTT",
    "ServedBlasEngine",
]


def serve_many(
    server: ServerLike, requests, tenant: str = DEFAULT_TENANT
) -> list[ServeResult]:
    """Serve a batch of requests, submitting all before awaiting any.

    The batch-friendly front door: against a :class:`ShardSupervisor`, all
    N submissions land in the per-connection outboxes before the first
    result is awaited, so the sender threads coalesce them into a handful
    of socket flushes instead of N request/reply round-trips in lockstep.
    Results come back in request order; a failed request raises when its
    position is reached (earlier results are still returned to callers
    that catch per-future instead — use ``server.submit`` directly for
    per-request error handling).

    ``tenant`` namespaces the whole batch; an invalid id raises
    :class:`ValueError` before anything is submitted.
    """
    validate_tenant(tenant)
    futures = [server.submit(request, tenant=tenant) for request in requests]
    return [future.result() for future in futures]


def serve_ntt_kernel(
    server: ServerLike,
    config: KernelConfig,
    size: int,
    variant: str = "cooley_tukey",
    device: str | None = None,
    tune: bool = True,
    tenant: str = DEFAULT_TENANT,
) -> ServeResult:
    """Request one NTT butterfly kernel (executable target) from a server.

    With ``tune=True`` the served configuration is the autotuner's winner for
    the family; otherwise ``config``'s word width and multiplication
    algorithm are pinned.  Either way the operand/modulus semantics of
    ``config`` are preserved.  ``tenant`` namespaces the request (an
    invalid id raises :class:`ValueError`).
    """
    validate_tenant(tenant)
    request = ServeRequest(
        kind=NTT,
        bits=config.bits,
        operation=variant,
        size=size,
        modulus_bits=config.modulus_bits,
        device=device if device is not None else server.devices[0],
        target="python_exec",
        tune=tune,
        word_bits=config.word_bits,
        multiplication=config.multiplication,
    )
    return server.serve(request, tenant=tenant)


def serve_blas_kernel(
    server: ServerLike,
    operation: str,
    config: KernelConfig,
    device: str | None = None,
    tune: bool = True,
    tenant: str = DEFAULT_TENANT,
) -> ServeResult:
    """Request one BLAS kernel (executable target) from a server."""
    return serve_blas_kernels(
        server, (operation,), config, device=device, tune=tune, tenant=tenant
    )[operation]


def serve_blas_kernels(
    server: ServerLike,
    operations: tuple[str, ...],
    config: KernelConfig,
    device: str | None = None,
    tune: bool = True,
    tenant: str = DEFAULT_TENANT,
) -> dict[str, ServeResult]:
    """Request several BLAS kernels concurrently from a server.

    All requests are submitted before any is awaited, so cold requests run
    on the worker pool together and their tuning searches join one
    micro-batch (one database save) instead of serializing.  ``tenant``
    namespaces every request in the batch (an invalid id raises
    :class:`ValueError` before anything is submitted).
    """
    validate_tenant(tenant)
    futures = {
        operation: server.submit(
            ServeRequest(
                kind=BLAS,
                bits=config.bits,
                operation=operation,
                modulus_bits=config.modulus_bits,
                device=device if device is not None else server.devices[0],
                target="python_exec",
                tune=tune,
                word_bits=config.word_bits,
                multiplication=config.multiplication,
            ),
            tenant=tenant,
        )
        for operation in operations
    }
    return {operation: future.result() for operation, future in futures.items()}


class ServedNTT(GeneratedNTT):
    """A :class:`GeneratedNTT` whose butterfly kernel comes from a server.

    Args:
        server: the kernel server (or shard supervisor) to request the
            butterfly from.
        size: power-of-two transform length.
        bits: logical operand bit-width.
        modulus_bits: modulus width (``None``: the paper's ``bits - 4``).
        device: device the tuned configuration targets (the server's first
            device by default).
        tune: serve the autotuned winner (default) or the paper default.
        plan: optionally a pre-built :class:`NTTPlan`.
    """

    def __init__(
        self,
        server: ServerLike,
        size: int,
        bits: int,
        modulus_bits: int | None = None,
        device: str | None = None,
        tune: bool = True,
        plan: NTTPlan | None = None,
    ) -> None:
        super().__init__(
            size,
            KernelConfig(bits=bits, modulus_bits=modulus_bits),
            plan=plan,
            autotune=tune,
            device=device if device is not None else server.devices[0],
            serve=server,
        )


class ServedBlasEngine(MomaBlasEngine):
    """A :class:`MomaBlasEngine` whose four kernels come from a server.

    Args:
        server: the kernel server (or shard supervisor) to request the
            kernels from.
        bits: logical operand bit-width.
        modulus_bits: modulus width (``None``: the paper's ``bits - 4``).
        device: device the tuned configurations target (the server's first
            device by default).
        tune: serve the autotuned winners (default) or the paper defaults.
    """

    def __init__(
        self,
        server: ServerLike,
        bits: int,
        modulus_bits: int | None = None,
        device: str | None = None,
        tune: bool = True,
    ) -> None:
        super().__init__(
            KernelConfig(bits=bits, modulus_bits=modulus_bits),
            autotune=tune,
            device=device if device is not None else server.devices[0],
            serve=server,
        )
