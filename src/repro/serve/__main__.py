"""``python -m repro.serve`` entry point.

Serves tuned kernels from one in-process server by default, or from N
shard processes with ``--shards N``; see :mod:`repro.serve.cli`.
"""

import sys

from repro.serve.cli import main

if __name__ == "__main__":
    sys.exit(main())
