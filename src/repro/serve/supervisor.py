"""The shard supervisor: spawn, route, monitor, restart, aggregate.

A :class:`ShardSupervisor` turns N :class:`~repro.serve.KernelServer`
processes into one serving surface with the same front door as a single
server (``submit()`` returning a future, blocking ``serve()``, and a
``devices`` attribute — so :class:`~repro.serve.client.ServedNTT` and
:class:`~repro.serve.client.ServedBlasEngine` work against a supervisor
unchanged):

* **Spawning** — each local shard is a real OS process running
  :func:`~repro.serve.shard.run_shard` over a ``multiprocessing`` pipe,
  owning its device subset and its own tuning-database *replica* file
  (:func:`~repro.tune.reconcile.replica_path`), so shards share nothing at
  runtime.
* **Remote shards** — ``connect=("host:port", ...)`` adds shards served by
  :func:`~repro.serve.shard.serve_shard_tcp` listeners (other machines, or
  just other processes) to the same ring.  Each connection starts with a
  handshake that pins the protocol version and negotiates transport trust
  (source-only by default: no executable pickles cross machines).  Remote
  shards are *connected to*, never spawned: liveness is a ping deadline
  instead of process aliveness, a disconnect removes the shard from the
  ring (its keys rebalance to ring successors) and re-routes its pending
  work, and the monitor re-dials with the same backoff schedule a local
  respawn uses, re-adding the shard to the ring on success.
* **Routing** — a :class:`~repro.serve.shard.ShardRouter` consistent-hashes
  each request's (kernel-family fingerprint, device) onto a shard; all
  traffic for one family lands on one shard and enjoys its resident table
  and in-flight dedup.
* **The fast wire** — each shard connection is a :class:`_Link` whose
  sender thread coalesces every call queued since its last flush into one
  write (out-of-order replies already correlate by ``request_id``, so
  batching the write path changes no semantics).  Remote sessions that
  negotiate protocol v2 in the handshake get a small keep-alive connection
  *pool* per shard and binary artifact frames on replies; wire-path costs
  (encode/decode/route/flush time, bytes, messages-per-flush) are profiled
  into :attr:`ClusterStats.wire`.
* **Monitoring & restart** — a monitor thread watches shard liveness; a
  dead shard's pending requests are re-routed to its ring successors
  (rebalance-on-shard-loss) and the shard is respawned over the same
  replica file, re-joining the ring once alive.  Respawns follow
  :func:`_restart_backoff`: the first attempt is immediate, later ones
  back off exponentially.
* **Aggregation** — :meth:`ShardSupervisor.stats` asks every live shard for
  its counters and fixed-bucket latency histograms over the wire and merges
  them into one :class:`ClusterStats`: global warm/cold/dedup counts and
  p50/p95 computed from the *summed* histograms, plus the per-shard rows.
* **Reconciliation** — :meth:`ShardSupervisor.reconcile` (also run at
  :meth:`close`) folds every replica back into the primary database with
  :func:`~repro.tune.reconcile.reconcile_replicas`, so winners tuned by any
  shard survive into the next deployment's warmup.
"""

from __future__ import annotations

import functools
import itertools
import logging
import multiprocessing
import socket
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ProtocolError, ServingError
from repro.obs import trace as tracing
from repro.tenancy import DEFAULT_TENANT, TenantRegistry, validate_tenant
from repro.tune.reconcile import (
    ReconcileReport,
    prune_quarantine,
    reconcile_replicas,
    replica_path,
)

# Imported as a module (not a package attribute) so this file is loadable at
# any point of repro.serve's own package initialization.
import repro.serve.protocol as protocol
from repro.serve.metrics import WireProfile, WireSnapshot, percentile_from_histogram
from repro.serve.server import ServeRequest, ServeResult
from repro.serve.shard import DEFAULT_VIRTUAL_NODES, ShardRouter, run_shard

__all__ = ["ClusterStats", "ShardSupervisor"]

_LOG = logging.getLogger("repro.serve.supervisor")

#: How often the monitor thread checks shard liveness.
_MONITOR_INTERVAL_S = 0.2

#: How long close() waits for a shard to drain before terminating it.
_SHUTDOWN_GRACE_S = 30.0

#: Restart backoff bounds: the first respawn is immediate; a shard that
#: keeps dying (a crash at startup, say) is respawned at an exponentially
#: decaying rate capped here, never in a tight loop.
_RESTART_BACKOFF_MAX_S = 30.0

#: How often the monitor pings a connected remote shard...
_PING_INTERVAL_S = 2.0

#: ...and how stale its last pong may get before the connection is declared
#: dead (the socket may still look open — a remote power loss leaves no
#: FIN — so liveness must come from the ping deadline, not the file
#: descriptor).
_PING_TIMEOUT_S = 10.0

#: How long one TCP connect + handshake attempt to a remote shard may take.
_CONNECT_ATTEMPT_TIMEOUT_S = 5.0


def _restart_backoff(attempt: int) -> float:
    """Seconds to wait before restart ``attempt`` (1-based).

    Attempt 1 is **immediate** — one crash must not stall traffic — and
    later attempts back off exponentially from 0.5 s to
    :data:`_RESTART_BACKOFF_MAX_S`: 0.0, 0.5, 1.0, 2.0, 4.0, ... 30.0.
    """
    if attempt <= 1:
        return 0.0
    return min(_RESTART_BACKOFF_MAX_S, 0.5 * (2 ** min(attempt - 2, 8)))


def _resolve(future: Future, result=None, error: BaseException | None = None) -> None:
    """Resolve a future, tolerating a caller who already cancelled it."""
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
    except InvalidStateError:
        pass  # the caller cancelled; the outcome has nowhere to go


def _spawn_context():
    # Shards are spawned fresh (no inherited locks/threads): "spawn" is the
    # only start method that is safe once the supervisor's reader threads
    # exist (restarts happen with threads running) and the only one macOS
    # and Windows offer at all.
    return multiprocessing.get_context("spawn")


@dataclass(frozen=True)
class ClusterStats:
    """Cross-shard aggregate counters plus the per-shard breakdown.

    Counter fields are sums over shards; the percentiles are computed from
    the element-wise sum of the shards' fixed-bucket latency histograms
    (bounded-error approximations — see
    :func:`~repro.serve.metrics.percentile_from_histogram`).  ``wire`` is
    the supervisor-side wire-path profile (encode/decode/route/flush time
    and bytes — see :class:`~repro.serve.metrics.WireSnapshot`); ``None``
    when the caller aggregated shard stats without a supervisor.
    ``tenants`` is the cross-shard per-tenant rollup (counters and
    percentiles summed/merged across shards, plus admission-control state
    when a supervisor contributed its registry snapshot); empty for
    untenanted clusters.
    """

    shards: tuple[protocol.ShardStats, ...]
    requests: int
    warm_serves: int
    cold_serves: int
    dedup_hits: int
    errors: int
    tune_batches: int
    batched_tunes: int
    queue_depth: int
    resident_kernels: int
    p50_latency_ms: float
    p95_latency_ms: float
    wire: WireSnapshot | None = None
    tenants: dict = field(default_factory=dict)

    @property
    def warm_rate(self) -> float:
        """Fraction of served requests answered warm (0.0 when unused)."""
        served = self.warm_serves + self.cold_serves
        return self.warm_serves / served if served else 0.0

    def report(self) -> str:
        """Human-readable multi-line summary (the shard-mode ``--stats``)."""
        lines = [
            f"cluster       {len(self.shards)} shards, {self.requests} requests "
            f"(warm {self.warm_serves}, cold {self.cold_serves}, "
            f"dedup {self.dedup_hits}, errors {self.errors})",
            f"warm rate     {self.warm_rate * 100:.1f}%",
            f"tuning        {self.batched_tunes} tunes in {self.tune_batches} batches",
            f"queue depth   {self.queue_depth} in flight, "
            f"{self.resident_kernels} resident kernels",
            f"latency       p50 ≤{self.p50_latency_ms:.3f} ms, "
            f"p95 ≤{self.p95_latency_ms:.3f} ms (merged histograms)",
        ]
        if self.wire is not None:
            lines.append(self.wire.report())
        for tenant, block in sorted(self.tenants.items()):
            lines.append(
                f"  tenant {tenant}: {block.get('requests', 0)} requests, "
                f"warm {block.get('warm_serves', 0)}, "
                f"cold {block.get('cold_serves', 0)}, "
                f"errors {block.get('errors', 0)}, "
                f"rejected {block.get('rejected', 0)}, "
                f"p50 ≤{block.get('p50_latency_ms', 0.0):.3f} ms, "
                f"p95 ≤{block.get('p95_latency_ms', 0.0):.3f} ms"
            )
        for stats in self.shards:
            lines.append(
                f"  shard {stats.shard_id} (pid {stats.pid}): "
                f"{stats.requests} requests, warm {stats.warm_serves}, "
                f"cold {stats.cold_serves}, dedup {stats.dedup_hits}, "
                f"{stats.resident_kernels} resident"
            )
        return "\n".join(lines)


def _merge_histograms(into: list[int], counts) -> None:
    """Element-wise add ``counts`` into ``into``, growing it as needed."""
    if len(into) < len(counts):
        into.extend([0] * (len(counts) - len(into)))
    for index, count in enumerate(counts):
        into[index] += count


def _aggregate_tenants(
    per_shard: tuple[protocol.ShardStats, ...],
    admission: dict | None = None,
) -> dict[str, dict]:
    """Cross-shard per-tenant rollup: summed counters plus percentiles.

    ``admission`` (a :meth:`~repro.tenancy.TenantRegistry.snapshot`) merges
    the supervisor-side quota state — ``in_flight``/``rejected`` and any
    configured limits — into the matching tenant's block.
    """
    rollup: dict[str, dict] = {}
    histograms: dict[str, list[int]] = {}
    for stats in per_shard:
        for tenant, block in getattr(stats, "tenants", {}).items():
            if not isinstance(block, dict):
                continue
            merged = rollup.setdefault(
                tenant,
                {
                    "requests": 0,
                    "warm_serves": 0,
                    "cold_serves": 0,
                    "dedup_hits": 0,
                    "errors": 0,
                },
            )
            for name in ("requests", "warm_serves", "cold_serves", "dedup_hits", "errors"):
                value = block.get(name, 0)
                if isinstance(value, int):
                    merged[name] += value
            buckets = histograms.setdefault(tenant, [])
            for name in ("warm_histogram", "cold_histogram"):
                counts = block.get(name, ())
                if isinstance(counts, (list, tuple)) and all(
                    isinstance(count, int) for count in counts
                ):
                    _merge_histograms(buckets, counts)
    for tenant, merged in rollup.items():
        buckets = tuple(histograms.get(tenant, ()))
        served = merged["warm_serves"] + merged["cold_serves"]
        merged["warm_ratio"] = merged["warm_serves"] / served if served else 0.0
        merged["p50_latency_ms"] = percentile_from_histogram(buckets, 0.50)
        merged["p95_latency_ms"] = percentile_from_histogram(buckets, 0.95)
        merged["p99_latency_ms"] = percentile_from_histogram(buckets, 0.99)
    if admission:
        for tenant, state in admission.items():
            block = rollup.setdefault(tenant, {})
            block.update(state)
    return rollup


def aggregate_stats(
    per_shard: tuple[protocol.ShardStats, ...],
    wire: WireSnapshot | None = None,
    admission: dict | None = None,
) -> ClusterStats:
    """Merge per-shard stats: sum counters, sum histograms, re-percentile."""
    def total(name: str) -> int:
        return sum(getattr(stats, name) for stats in per_shard)

    combined: list[int] = []
    for stats in per_shard:
        for histogram in (stats.warm_histogram, stats.cold_histogram):
            _merge_histograms(combined, histogram)
    buckets = tuple(combined)
    return ClusterStats(
        shards=tuple(sorted(per_shard, key=lambda stats: stats.shard_id)),
        requests=total("requests"),
        warm_serves=total("warm_serves"),
        cold_serves=total("cold_serves"),
        dedup_hits=total("dedup_hits"),
        errors=total("errors"),
        tune_batches=total("tune_batches"),
        batched_tunes=total("batched_tunes"),
        queue_depth=total("queue_depth"),
        resident_kernels=total("resident_kernels"),
        p50_latency_ms=percentile_from_histogram(buckets, 0.50),
        p95_latency_ms=percentile_from_histogram(buckets, 0.95),
        wire=wire,
        tenants=_aggregate_tenants(per_shard, admission),
    )


class _Link:
    """One transport connection to a shard, with its coalescing outbox.

    Every link owns a sender thread (draining :attr:`outbox` in whole
    batches — the writev-style single flush) and a reader thread; direct
    control-plane sends (pings, probes, shutdown) take :attr:`send_lock`,
    the same lock the sender holds per flush, so a connection only ever
    sees whole frames.
    """

    def __init__(self, connection) -> None:
        self.connection = connection
        self.send_lock = threading.Lock()
        self.outbox: deque[bytes] = deque()
        self.wakeup = threading.Condition()
        self.closed = False
        self.sender: threading.Thread | None = None
        self.reader: threading.Thread | None = None

    def enqueue(self, data: bytes) -> None:
        """Queue one encoded frame for the sender thread's next flush."""
        with self.wakeup:
            if self.closed:
                raise OSError("shard link is closed")
            self.outbox.append(data)
            self.wakeup.notify()

    def close(self) -> None:
        """Close the connection and release the sender thread."""
        with self.wakeup:
            self.closed = True
            self.wakeup.notify_all()
        try:
            self.connection.close()
        except OSError:
            pass


class _ShardHandle:
    """One local shard process: its pipe link, pending futures, reader."""

    def __init__(self, shard_id: int, devices: tuple[str, ...]) -> None:
        self.shard_id = shard_id
        self.devices = devices
        self.process = None
        self.links: list[_Link] = []
        # request_id -> (tenant, request, future, trace handle, deadline_ms);
        # tenant and request are None for control-plane probes, the trace
        # handle None when untraced, the deadline None when the caller set
        # no budget.
        self.pending: dict[
            int,
            tuple[
                str | None,
                ServeRequest | None,
                Future,
                tracing.TraceHandle | None,
                float | None,
            ],
        ] = {}
        self.pending_lock = threading.Lock()
        self.restarts = 0
        self.next_restart_at = 0.0  # monotonic; 0.0 = respawn immediately
        self.trusted = True  # pipes connect processes we spawned ourselves
        self.wire_version = protocol.MAX_PROTOCOL_VERSION  # pipes: same build
        self._round_robin = 0
        self._no_link_lock = threading.Lock()

    @property
    def connection(self):
        """The primary link's transport (kept for probes and tests)."""
        links = self.links
        return links[0].connection if links else None

    @property
    def send_lock(self) -> threading.Lock:
        """The primary link's write lock (control-plane direct sends)."""
        links = self.links
        return links[0].send_lock if links else self._no_link_lock

    def enqueue(self, data: bytes) -> None:
        """Queue a frame on the next pool link, round-robin."""
        links = self.links
        if not links:
            raise OSError("shard connection is down")
        self._round_robin = (self._round_robin + 1) % len(links)
        links[self._round_robin].enqueue(data)

    def drop_links(self) -> None:
        """Close every link (idempotent); senders and readers unblock."""
        links, self.links = self.links, []
        for link in links:
            link.close()

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def take_pending(self) -> dict:
        with self.pending_lock:
            taken, self.pending = self.pending, {}
            return taken


class _RemoteShardHandle(_ShardHandle):
    """One remote TCP shard: its socket, trust level, and ping deadline.

    Remote shards are never spawned or restarted — the supervisor only
    holds a connection to a :func:`~repro.serve.shard.serve_shard_tcp`
    listener it was pointed at.  ``alive()`` is therefore *connection*
    liveness (the reader thread still draining frames); staleness beyond
    the ping deadline is enforced by the monitor, which poisons the
    connection so the reader exits and recovery runs.
    """

    def __init__(
        self, shard_id: int, devices: tuple[str, ...], address: tuple[str, int]
    ) -> None:
        super().__init__(shard_id, devices)
        self.address = address
        self.trusted = False  # until the handshake says otherwise
        self.wire_version = protocol.PROTOCOL_VERSION  # until negotiated up
        self.reader_done = True  # not yet connected
        self.last_pong = 0.0
        self.last_ping_sent = 0.0

    def alive(self) -> bool:
        return self.connection is not None and not self.reader_done


def _parse_address(address) -> tuple[str, int]:
    """``"host:port"`` (or an ``(host, port)`` pair) as a connectable tuple."""
    if isinstance(address, tuple) and len(address) == 2:
        host, port = address
    else:
        host, _, port = str(address).rpartition(":")
        if not host:
            raise ServingError(
                f"remote shard address {address!r} is not host:port"
            )
    try:
        port = int(port)
    except (TypeError, ValueError):
        raise ServingError(
            f"remote shard address {address!r} has a non-numeric port"
        ) from None
    if not 0 < port < 65536:
        raise ServingError(f"remote shard address {address!r} port out of range")
    return str(host), port


class ShardSupervisor:
    """N kernel-server shard processes behind one routed front door.

    Args:
        shards: local shard process count (≥ 1, or 0 when ``connect`` names
            at least one remote shard).
        db: primary tuning-database file; each local shard gets its own
            replica next to it (``None``: per-shard in-memory databases,
            nothing to reconcile).  Remote shards keep their databases on
            their own machines — reconciliation never assumes shared disk.
        devices: the devices the cluster serves.  By default every shard
            serves all of them (a kernel configuration is per-device state,
            not a hardware handle); with ``partition_devices=True`` the
            devices are split round-robin so each *local* shard owns a
            disjoint subset, and routing only considers shards owning the
            request's device.  Remote shards always serve all devices.
        workers: worker threads per local shard.
        restart: respawn dead local shards and re-dial dead remote shards
            (on by default).
        virtual_nodes: consistent-hash ring points per shard.
        connect: remote shard addresses (``"host:port"`` strings or
            ``(host, port)`` pairs), each a
            :func:`~repro.serve.shard.serve_shard_tcp` listener.  Remote
            ring ids continue after the local ones.
        remote_trust: the trust level requested from remote shards in the
            handshake — :data:`~repro.serve.protocol.TRUST_SOURCE` (the
            default: artifacts arrive as source text, never executable
            pickles) or :data:`~repro.serve.protocol.TRUST_PICKLED` for
            listeners the operator explicitly trusts.  The granted level is
            whatever the shard's own policy allows, never more.
        connect_timeout: how long to keep re-trying the initial connection
            to each remote shard before failing construction (listeners are
            often still starting when the supervisor comes up).
        pool: keep-alive connections per remote shard.  Pools beyond the
            first connection are only dialed when the handshake negotiated
            protocol v2 (a v1-era listener serves one connection at a
            time, so pooling against it would wedge); extra dials are
            best-effort — a shard that grants fewer connections still
            serves over the ones it granted.
        max_protocol: the highest wire version this supervisor will
            negotiate (default: the build's
            :data:`~repro.serve.protocol.MAX_PROTOCOL_VERSION`; pass 1 to
            force v1 JSON framing everywhere, e.g. while a mixed-version
            rollout completes).
        tracer: the :class:`~repro.obs.trace.Tracer` sampling and retaining
            this supervisor's request traces.  Sampled requests carry their
            trace context to shards in the envelope's additive ``trace``
            field; :meth:`drain_spans` merges the shard-side spans back.
            Defaults to a never-sampling tracer (tracing off).
        tenants: :class:`~repro.tenancy.TenantConfig` entries seeding the
            supervisor's :class:`~repro.tenancy.TenantRegistry` — per-tenant
            display names and admission quotas enforced at :meth:`submit`.
            An empty registry (the default) admits everything, which is the
            exact pre-tenancy behaviour; configs can also be registered
            later via ``supervisor.tenants.register(...)``.

    Shards are started with the ``spawn`` start method, so the standard
    :mod:`multiprocessing` caveat applies: construct supervisors from an
    importable ``__main__`` (a script with an ``if __name__ == "__main__"``
    guard, a module run with ``-m``, pytest, ...), not from a piped-stdin
    script — spawn re-imports the main module in every shard process.
    """

    def __init__(
        self,
        shards: int = 2,
        db: str | Path | None = None,
        devices: tuple[str, ...] = ("rtx4090",),
        workers: int = 4,
        partition_devices: bool = False,
        restart: bool = True,
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
        connect: tuple = (),
        remote_trust: str = protocol.TRUST_SOURCE,
        connect_timeout: float = 10.0,
        pool: int = 2,
        max_protocol: int = protocol.MAX_PROTOCOL_VERSION,
        tracer: tracing.Tracer | None = None,
        tenants: tuple = (),
    ) -> None:
        addresses = tuple(_parse_address(address) for address in connect)
        if shards < 1 and not addresses:
            raise ServingError(f"shard count must be positive, got {shards}")
        if shards < 0:
            raise ServingError(f"shard count must be non-negative, got {shards}")
        if not devices:
            raise ServingError("a shard supervisor needs at least one device")
        if partition_devices and len(devices) < shards:
            raise ServingError(
                f"cannot partition {len(devices)} device(s) across {shards} shards"
            )
        if remote_trust not in (protocol.TRUST_SOURCE, protocol.TRUST_PICKLED):
            raise ServingError(f"unknown remote trust level {remote_trust!r}")
        if pool < 1:
            raise ServingError(f"connection pool size must be positive, got {pool}")
        if not 1 <= max_protocol <= protocol.MAX_PROTOCOL_VERSION:
            raise ServingError(
                f"max_protocol must be between 1 and "
                f"{protocol.MAX_PROTOCOL_VERSION}, got {max_protocol}"
            )
        self.devices = tuple(devices)
        self.db_path = Path(db) if db is not None else None
        self.workers = workers
        self.restart = restart
        self._remote_trust = remote_trust
        self._pool = pool
        self._max_protocol = max_protocol
        self.tracer = tracer if tracer is not None else tracing.Tracer(sample_rate=0.0)
        self.tenants = TenantRegistry(tenants)
        self._wire = WireProfile()
        self._context = _spawn_context()
        self._closed = False
        self._lock = threading.RLock()
        self._request_ids = itertools.count(1)
        self._routed: dict[int, int] = {}  # shard_id -> requests routed there
        shard_devices = {
            shard_id: (
                tuple(self.devices[shard_id::shards])
                if partition_devices
                else self.devices
            )
            for shard_id in range(shards)
        }
        self._handles: dict[int, _ShardHandle] = {
            shard_id: _ShardHandle(shard_id, owned)
            for shard_id, owned in shard_devices.items()
        }
        # Remote ring ids continue after the local ones; remote shards
        # always serve the full device set (their hardware is their own).
        for offset, address in enumerate(addresses):
            shard_id = shards + offset
            self._handles[shard_id] = _RemoteShardHandle(
                shard_id, self.devices, address
            )
        self.router = ShardRouter(self._handles, virtual_nodes=virtual_nodes)
        try:
            for handle in self._handles.values():
                if isinstance(handle, _RemoteShardHandle):
                    self._connect_remote_until(handle, timeout=connect_timeout)
                else:
                    self._start_shard(handle)
        except BaseException:
            self._closed = True
            for handle in self._handles.values():
                if handle.process is not None:
                    handle.process.terminate()
                handle.drop_links()
            raise
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-shard-monitor", daemon=True
        )
        self._monitor.start()

    # -- spawning -----------------------------------------------------------

    def shard_replica_path(self, shard_id: int) -> Path | None:
        """The tuning-db replica file a shard owns (``None`` when in-memory)."""
        if self.db_path is None:
            return None
        return replica_path(self.db_path, shard_id)

    def _start_shard(self, handle: _ShardHandle) -> None:
        parent, child = self._context.Pipe()
        process = self._context.Process(
            target=run_shard,
            args=(child, handle.shard_id, handle.devices),
            kwargs={
                "db_path": self.shard_replica_path(handle.shard_id),
                "workers": self.workers,
            },
            name=f"repro-shard-{handle.shard_id}",
            daemon=True,
        )
        process.start()
        child.close()
        handle.process = process
        self._attach_link(handle, parent)

    def _attach_link(self, handle: _ShardHandle, connection) -> _Link:
        """Wrap a connected transport in a link with sender/reader threads."""
        link = _Link(connection)
        handle.links.append(link)
        link.sender = threading.Thread(
            target=self._send_loop,
            args=(link,),
            name=f"repro-shard-{handle.shard_id}-sender",
            daemon=True,
        )
        link.reader = threading.Thread(
            target=self._read_loop,
            args=(handle, link),
            name=f"repro-shard-{handle.shard_id}-reader",
            daemon=True,
        )
        link.sender.start()
        link.reader.start()
        return link

    def _send_loop(self, link: _Link) -> None:
        """Drain a link's outbox in whole batches — the coalescing flush.

        Every wakeup takes *everything* queued since the last flush and
        writes it in one buffered flush (``send_many`` on sockets — one
        syscall burst per batch — or a ``send_bytes`` run on pipes), so N
        pending calls cost one flush instead of N.  A write failure poisons
        the connection; the reader sees EOF and the monitor re-routes the
        pending work, exactly as for a send failure on the old direct path.
        """
        connection = link.connection
        send_many = getattr(connection, "send_many", None)
        while True:
            with link.wakeup:
                while not link.outbox and not link.closed:
                    link.wakeup.wait()
                if not link.outbox and link.closed:
                    return
                batch = list(link.outbox)
                link.outbox.clear()
            started = time.perf_counter()
            try:
                with link.send_lock:
                    if send_many is not None:
                        send_many(batch)
                    else:
                        for data in batch:
                            connection.send_bytes(data)
            except (OSError, ValueError):
                self._poison(connection)
                return
            self._wire.record_flush(time.perf_counter() - started)

    # -- remote connections -------------------------------------------------

    def _connect_remote_until(
        self, handle: _RemoteShardHandle, timeout: float
    ) -> None:
        """Dial a remote shard, retrying until ``timeout`` (startup races).

        Only connection-level failures (``OSError``: refused, timed out, a
        listener busy with another supervisor) are worth retrying; a
        *completed but refused* handshake — a protocol version skew, a
        malformed reply — is deterministic and fails construction
        immediately instead of burning the whole timeout on it.
        """
        deadline = time.monotonic() + timeout
        host, port = handle.address
        while True:
            try:
                self._connect_remote(handle)
                return
            except ServingError as error:
                raise ServingError(
                    f"remote shard {handle.shard_id} at {host}:{port} "
                    f"refused: {error}"
                ) from error
            except OSError as error:
                if time.monotonic() >= deadline:
                    raise ServingError(
                        f"cannot reach remote shard {handle.shard_id} at "
                        f"{host}:{port}: {error}"
                    ) from error
                time.sleep(0.2)

    def _handshake_remote(self, handle: _RemoteShardHandle):
        """One connect + hello exchange; raises on any failure.

        Returns ``(connection, granted trust, negotiated wire version)``.
        The hello pins :data:`~repro.serve.protocol.PROTOCOL_VERSION` (the
        base framing the handshake itself uses), advertises this
        supervisor's ``max_protocol``, assigns the shard its ring id for
        this session, and requests ``remote_trust``; the reply's *granted*
        trust governs whether results on this connection may carry
        executable pickles, and the reply's ``max_protocol`` (absent on a
        v1-era peer, hence defaulted to 1) caps the wire version replies
        are framed at.
        """
        sock = socket.create_connection(
            handle.address, timeout=_CONNECT_ATTEMPT_TIMEOUT_S
        )
        connection = protocol.StreamConnection(sock)
        try:
            request_id = next(self._request_ids)
            connection.send_bytes(
                protocol.encode_message(
                    protocol.HelloCall(
                        request_id=request_id,
                        protocol_version=protocol.PROTOCOL_VERSION,
                        shard_id=handle.shard_id,
                        trust=self._remote_trust,
                        max_protocol=self._max_protocol,
                    )
                )
            )
            reply = protocol.decode_message(connection.recv_bytes())
        except (EOFError, ProtocolError) as error:
            connection.close()
            raise ServingError(f"remote shard handshake failed: {error}") from error
        except OSError:
            connection.close()
            raise
        if isinstance(reply, protocol.ErrorReply):
            connection.close()
            raise ServingError(f"remote shard refused the handshake: {reply.message}")
        if not isinstance(reply, protocol.HelloReply):
            connection.close()
            raise ServingError(
                f"remote shard answered the hello with {type(reply).__name__}"
            )
        if reply.protocol_version != protocol.PROTOCOL_VERSION:
            connection.close()
            raise ServingError(
                f"remote shard speaks protocol {reply.protocol_version}, "
                f"this supervisor speaks {protocol.PROTOCOL_VERSION}"
            )
        connection.settimeout(None)
        # The reply's granted trust is a *claim* by the peer: cap it at what
        # we requested ourselves, so a malicious listener "granting" pickled
        # on a source-only connection cannot make us unpickle its payloads.
        granted = protocol.negotiate_trust(self._remote_trust, reply.trust)
        # Same stance for the wire version: never negotiate above our own
        # maximum, whatever the peer advertises.
        try:
            negotiated = protocol.negotiate_version(
                self._max_protocol, getattr(reply, "max_protocol", 1)
            )
        except ProtocolError as error:
            connection.close()
            raise ServingError(str(error)) from error
        return connection, granted, negotiated

    def _connect_remote(self, handle: _RemoteShardHandle) -> None:
        """Establish a remote shard's link pool; raises on primary failure.

        The primary connection's handshake decides the session's trust and
        wire version.  When v2 was negotiated, up to ``pool - 1`` extra
        keep-alive connections are dialed **best-effort** (each with its
        own handshake): a failure, or an extra connection whose handshake
        disagrees with the primary's trust or version, just stops pool
        growth — pooling against a one-connection-at-a-time v1 listener
        would wedge, which is why v1 sessions never pool.
        """
        connection, granted, negotiated = self._handshake_remote(handle)
        handle.trusted = granted == protocol.TRUST_PICKLED
        handle.wire_version = negotiated
        handle.reader_done = False
        now = time.monotonic()
        handle.last_pong = now
        handle.last_ping_sent = now
        self._attach_link(handle, connection)
        if negotiated >= protocol.PROTOCOL_VERSION_2:
            for _ in range(self._pool - 1):
                try:
                    extra, extra_granted, extra_negotiated = self._handshake_remote(
                        handle
                    )
                except (OSError, ServingError):
                    break  # serve over the links we already have
                if extra_granted != granted or extra_negotiated != negotiated:
                    extra.close()
                    break
                self._attach_link(handle, extra)

    # -- per-shard reader ---------------------------------------------------

    def _read_loop(self, handle: _ShardHandle, link: _Link) -> None:
        try:
            self._drain_replies(handle, link.connection)
        finally:
            # Only a reader of a *current* link may declare a remote handle
            # dead — a late exit of a replaced link's reader must not shoot
            # down its successor.  Any one pool link dying declares the
            # whole handle dead: its queued frames are unrecoverable, so
            # recovery re-routes everything pending and re-dials the pool.
            if isinstance(handle, _RemoteShardHandle) and link in handle.links:
                handle.reader_done = True

    def _drain_replies(self, handle: _ShardHandle, connection) -> None:
        while True:
            try:
                data = connection.recv_bytes()
            except (EOFError, OSError):
                return  # the monitor notices the dead shard and reroutes
            except ProtocolError:
                # A torn frame: the stream cannot be re-synchronized.
                self._poison(connection)
                return
            try:
                decode_started = time.perf_counter()
                message = protocol.decode_message(
                    data, allow_pickled=handle.trusted
                )
                self._wire.record_receive(
                    len(data), time.perf_counter() - decode_started
                )
            except ProtocolError:
                # An undecodable reply means reply correlation on this pipe
                # is lost (we cannot know whose answer this was).  Poison
                # the connection: the shard sees EOF and exits, the monitor
                # respawns it and re-routes every pending request — a
                # recovery instead of a silent hang.
                self._poison(connection)
                return
            request_id = getattr(message, "request_id", -1)
            if isinstance(message, protocol.ErrorReply) and request_id == -1:
                # The shard could not decode one of our calls — the same
                # lost-correlation situation, seen from the other side.
                self._poison(connection)
                return
            with handle.pending_lock:
                entry = handle.pending.pop(request_id, None)
            if entry is None:
                continue  # late reply for a request already re-routed
            _tenant, _, future, trace, _deadline = entry
            if trace is not None:
                # Wall start approximated from the measured duration: no
                # extra clock read on the (dominant) untraced path.
                decode_s = time.perf_counter() - decode_started
                trace.record(
                    "wire.decode",
                    time.time() - decode_s,
                    decode_s,
                    cat="wire",
                    bytes=len(data),
                )
            if isinstance(message, protocol.ServeReply):
                _resolve(future, result=message.result)
            elif isinstance(
                message,
                (protocol.StatsReply, protocol.PongReply, protocol.ControlReply),
            ):
                _resolve(future, result=message)
            elif isinstance(message, protocol.ErrorReply):
                _resolve(future, error=message.exception())

    @staticmethod
    def _poison(connection) -> None:
        try:
            connection.close()
        except OSError:
            pass

    # -- monitoring / restart ----------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._closed:
            time.sleep(_MONITOR_INTERVAL_S)
            with self._lock:
                if self._closed:
                    return
                now = time.monotonic()
                handles = list(self._handles.values())
                for handle in handles:
                    if isinstance(handle, _RemoteShardHandle):
                        continue  # handled below, outside the lock
                    if not handle.alive():
                        self._recover(handle)
                    elif handle.restarts and now >= handle.next_restart_at + 60.0:
                        # A minute of health forgives the crash history, so
                        # the next incident starts from an immediate respawn.
                        handle.restarts = 0
            # Remote recovery dials a TCP connection (seconds, worst case):
            # it must not hold the supervisor lock, or every submit() would
            # stall behind one unreachable machine.  Only the monitor
            # thread mutates remote liveness state, so no lock is needed.
            for handle in handles:
                if self._closed:
                    return
                if isinstance(handle, _RemoteShardHandle):
                    self._monitor_remote(handle, time.monotonic())

    def _monitor_remote(self, handle: _RemoteShardHandle, now: float) -> None:
        """Ping-deadline liveness for one remote shard.

        A connected shard is pinged every :data:`_PING_INTERVAL_S`; a pong
        older than :data:`_PING_TIMEOUT_S` — or a reader that saw EOF —
        declares the connection dead: the shard leaves the ring (its keys
        rebalance to ring successors), pending work re-routes, and the
        monitor re-dials on the restart backoff schedule.
        """
        if handle.alive():
            if now - handle.last_pong > _PING_TIMEOUT_S:
                _LOG.warning(
                    "remote shard %d missed its ping deadline; disconnecting",
                    handle.shard_id,
                )
                self._poison(handle.connection)
                self._recover_remote(handle)
            elif now - handle.last_ping_sent >= _PING_INTERVAL_S:
                self._send_ping(handle, now)
            elif handle.restarts and now >= handle.next_restart_at + 60.0:
                handle.restarts = 0  # a minute of health forgives history
        else:
            self._recover_remote(handle)

    def _send_ping(self, handle: _RemoteShardHandle, now: float) -> None:
        request_id = next(self._request_ids)
        future: Future = Future()

        def pong_received(completed: Future) -> None:
            if completed.exception() is None and not completed.cancelled():
                handle.last_pong = time.monotonic()

        future.add_done_callback(pong_received)
        with handle.pending_lock:
            handle.pending[request_id] = (None, None, future, None, None)
        try:
            # Pings ride the pre-encoded v1 template (every peer accepts
            # v1): no json.dumps on the 2 s liveness path.
            with handle.send_lock:
                handle.connection.send_bytes(protocol.encode_ping(request_id))
        except (OSError, ValueError, AttributeError):
            with handle.pending_lock:
                handle.pending.pop(request_id, None)
            return  # connection is dying; the next tick recovers it
        handle.last_ping_sent = now

    def _recover(self, handle: _ShardHandle) -> None:
        """Re-route a dead shard's pending work; respawn it over its replica.

        Respawns follow :func:`_restart_backoff` (attempt 1 immediate,
        exponential to :data:`_RESTART_BACKOFF_MAX_S` after), so a shard
        that dies at startup — a corrupt environment, an import error — is
        retried at a bounded rate instead of in a tight spawn loop.
        """
        pending = handle.take_pending()
        handle.drop_links()
        now = time.monotonic()
        if self.restart and not self._closed and now >= handle.next_restart_at:
            handle.restarts += 1
            handle.next_restart_at = now + _restart_backoff(handle.restarts + 1)
            self._start_shard(handle)
        self._reroute(handle, pending)

    def _recover_remote(self, handle: _RemoteShardHandle) -> None:
        """Rebalance a disconnected remote shard; re-dial on the backoff.

        Unlike a local shard there is nothing to respawn: the shard leaves
        the ring immediately (so new traffic routes to ring successors
        without a per-request send failure), its pending work re-routes,
        and reconnection attempts follow the same backoff schedule as local
        respawns.  On a successful re-dial the shard re-joins the ring —
        only its own keys move back.
        """
        pending = handle.take_pending()
        handle.drop_links()
        if handle.shard_id in self.router.shard_ids:
            _LOG.warning(
                "remote shard %d disconnected; rebalancing its keys to ring "
                "successors",
                handle.shard_id,
            )
            self.router.remove_shard(handle.shard_id)
        now = time.monotonic()
        if self.restart and not self._closed and now >= handle.next_restart_at:
            handle.restarts += 1
            handle.next_restart_at = now + _restart_backoff(handle.restarts + 1)
            try:
                self._connect_remote(handle)
            except (OSError, ServingError):
                pass  # still down; the monitor re-dials after the backoff
            else:
                with self._lock:
                    if self._closed:  # close() ran while we were dialing
                        handle.drop_links()
                        return
                _LOG.info(
                    "remote shard %d reconnected; re-joining the ring",
                    handle.shard_id,
                )
                self.router.add_shard(handle.shard_id)
        self._reroute(handle, pending)

    def _reroute(self, handle: _ShardHandle, pending) -> None:
        """Re-dispatch a dead shard's pending serves to ring successors."""
        for request_id, (tenant, request, future, trace, deadline_ms) in pending.items():
            if future.done():
                continue
            if request is None:  # stats/ping probes are not worth re-sending
                _resolve(
                    future,
                    error=ServingError(f"shard {handle.shard_id} died during a probe"),
                )
                continue
            try:
                # Rebalance-on-shard-loss: the ring successor takes the key.
                # The recovered shard (empty caches) rejoins for new traffic.
                # The deadline budget restarts on the successor shard — the
                # request already lost its first attempt through no fault
                # of the caller's.
                self._dispatch(
                    request,
                    future,
                    excluding=frozenset({handle.shard_id}),
                    trace=trace,
                    deadline_ms=deadline_ms,
                    tenant=tenant if tenant is not None else DEFAULT_TENANT,
                )
            except ServingError as error:
                _resolve(future, error=error)

    # -- front door ---------------------------------------------------------

    def _dispatch(
        self,
        request: ServeRequest,
        future: Future,
        excluding=frozenset(),
        trace: tracing.TraceHandle | None = None,
        deadline_ms: float | None = None,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        allowed_excluding = set(excluding)
        for handle in self._handles.values():
            if request.device not in handle.devices:
                allowed_excluding.add(handle.shard_id)
        route_started = time.perf_counter()
        shard_id = self.router.route(request, excluding=frozenset(allowed_excluding))
        route_s = time.perf_counter() - route_started
        handle = self._handles[shard_id]
        request_id = next(self._request_ids)
        encode_started = time.perf_counter()
        data = protocol.encode_message(
            protocol.ServeCall(
                request_id=request_id,
                request=request,
                # wire_field() is None for provisional (exemplar-candidate)
                # traces, which stay local — so this also covers them.
                trace=trace.wire_field() if trace is not None else None,
                deadline_ms=deadline_ms,
                tenant=tenant,
            )
        )
        encode_s = time.perf_counter() - encode_started
        if trace is not None:
            now = time.time()
            trace.record(
                "route", now - encode_s - route_s, route_s, cat="wire", shard=shard_id
            )
            trace.record(
                "wire.encode", now - encode_s, encode_s, cat="wire", bytes=len(data)
            )
        with handle.pending_lock:
            handle.pending[request_id] = (tenant, request, future, trace, deadline_ms)
        try:
            # The enqueue is the whole send from this thread's point of
            # view: the link's sender thread coalesces everything queued
            # since its last flush into one write.  A frame later lost to a
            # dying connection is still in ``pending``, so the monitor's
            # recovery re-routes it — same contract as the old direct send.
            handle.enqueue(data)
        except (OSError, ValueError):
            # The shard died between routing and writing.  If our pending
            # entry is still ours, re-route it past this shard ourselves; if
            # the monitor's recovery already swept it, it re-routes for us.
            with handle.pending_lock:
                entry = handle.pending.pop(request_id, None)
            if entry is not None:
                try:
                    self._dispatch(
                        request,
                        future,
                        excluding=frozenset(allowed_excluding | {shard_id}),
                        trace=trace,
                        deadline_ms=deadline_ms,
                        tenant=tenant,
                    )
                except ServingError as error:
                    _resolve(future, error=error)
            return
        self._wire.record_send(len(data), encode_s, route_s)
        with self._lock:
            self._routed[shard_id] = self._routed.get(shard_id, 0) + 1

    def submit(
        self,
        request: ServeRequest,
        deadline_ms: float | None = None,
        tenant: str = DEFAULT_TENANT,
    ) -> Future:
        """Route a request to its shard; the future resolves to the result.

        ``tenant`` names the namespace the request is served under and the
        budget it is admitted against: a tenant with a registered
        :class:`~repro.tenancy.TenantConfig` whose rate or in-flight quota
        is exhausted gets a synchronous
        :class:`~repro.errors.QuotaExceededError` here — the request never
        reaches a shard.  Unregistered tenants (and the default tenant,
        unless explicitly configured) are admitted without limits.

        ``deadline_ms`` is the request's optional end-to-end latency
        budget: it rides the :class:`~repro.serve.protocol.ServeCall`'s
        additive envelope field, and a shard whose result becomes ready
        past the budget sheds it — the future then raises
        :class:`~repro.errors.DeadlineExceededError` instead of returning
        a result nobody is waiting for.
        """
        if deadline_ms is not None and not deadline_ms > 0:
            raise ServingError(
                f"deadline_ms must be a positive number, got {deadline_ms!r}"
            )
        validate_tenant(tenant)
        with self._lock:
            if self._closed:
                raise ServingError("shard supervisor is closed")
        # Admission control at the front door: raises QuotaExceededError
        # before any routing or wire work.  The matching release rides the
        # future's done-callback, so every completion path balances it.
        self.tenants.admit(tenant)
        future: Future = Future()
        future.add_done_callback(
            lambda _completed, _t=tenant: self.tenants.release(_t)
        )
        trace = self.tracer.begin(
            "cluster.request",
            kind=request.kind,
            bits=request.bits,
            **({"tenant": tenant} if tenant != DEFAULT_TENANT else {}),
        )
        if trace is not None:
            # The root span closes when the reply lands (or the request
            # fails), wherever that happens; finish() is idempotent.
            future.add_done_callback(lambda _completed, _t=trace: _t.finish())
        try:
            self._dispatch(
                request, future, trace=trace, deadline_ms=deadline_ms, tenant=tenant
            )
        except BaseException:
            # Routing failed before the request was in flight anywhere;
            # cancelling fires the done-callbacks, balancing the admit.
            if not future.done():
                future.cancel()
            raise
        return future

    def serve(
        self, request: ServeRequest, tenant: str = DEFAULT_TENANT
    ) -> ServeResult:
        """Serve one request through its shard, blocking for the result."""
        return self.submit(request, tenant=tenant).result()

    def routed_counts(self) -> dict[int, int]:
        """Requests routed per shard id since startup (supervisor-side)."""
        with self._lock:
            return dict(sorted(self._routed.items()))

    def kill_shard(self, shard_id: int) -> None:
        """Chaos-engineering hook: take one shard down mid-traffic.

        A local shard's process is terminated outright; a remote shard's
        connections are dropped (its listener stays up, so the monitor's
        re-dial brings it back).  Either way the normal failure machinery
        takes over: pending work re-routes to ring successors, and — with
        ``restart`` enabled — the shard respawns or reconnects on the
        backoff schedule.  This is exactly the path the traffic-replay
        harness's fault injection exercises; it is never called in normal
        operation.
        """
        with self._lock:
            if self._closed:
                raise ServingError("shard supervisor is closed")
            handle = self._handles.get(shard_id)
        if handle is None:
            raise ServingError(f"no shard with id {shard_id}")
        _LOG.warning("fault injection: killing shard %d", shard_id)
        if isinstance(handle, _RemoteShardHandle):
            for link in list(handle.links):
                self._poison(link.connection)
        elif handle.process is not None:
            handle.process.terminate()

    # -- probes / stats -----------------------------------------------------

    def _probe(self, handle: _ShardHandle, message_type, timeout: float):
        """Send one control-plane call built by ``message_type(request_id=...)``
        and block for its reply; ``message_type`` may be a message class or
        any factory (e.g. a ``functools.partial`` carrying extra fields).
        """
        request_id = next(self._request_ids)
        future: Future = Future()
        with handle.pending_lock:
            handle.pending[request_id] = (None, None, future, None, None)
        try:
            with handle.send_lock:
                if handle.connection is None:  # a disconnected remote shard
                    raise OSError("shard connection is down")
                handle.connection.send_bytes(
                    protocol.encode_message(message_type(request_id=request_id))
                )
        except (OSError, ValueError) as error:
            with handle.pending_lock:
                handle.pending.pop(request_id, None)
            raise ServingError(f"shard {handle.shard_id} is unreachable") from error
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            with handle.pending_lock:
                handle.pending.pop(request_id, None)
            raise ServingError(
                f"shard {handle.shard_id} did not answer a "
                f"{getattr(message_type, '__name__', 'probe')} "
                f"within {timeout:g}s"
            ) from None

    def ping(self, timeout: float = 5.0) -> dict[int, protocol.PongReply]:
        """Liveness probe of every shard (shard id → pong)."""
        with self._lock:
            handles = [h for h in self._handles.values() if h.alive()]
        return {
            handle.shard_id: self._probe(handle, protocol.PingCall, timeout)
            for handle in handles
        }

    def stats(self, timeout: float = 10.0) -> ClusterStats:
        """Cross-shard aggregated metrics (see :class:`ClusterStats`)."""
        with self._lock:
            handles = [h for h in self._handles.values() if h.alive()]
        replies = [
            self._probe(handle, protocol.StatsCall, timeout) for handle in handles
        ]
        return aggregate_stats(
            tuple(reply.stats for reply in replies),
            wire=self._wire.snapshot(),
            admission=self.tenants.snapshot(),
        )

    def warmup(
        self,
        tenant: str | None = None,
        target: str = "python_exec",
        timeout: float = 300.0,
    ) -> dict[int, dict]:
        """Broadcast an in-place warmup to every live shard.

        Each shard pre-compiles its recorded tuning winners into its
        resident table (:func:`~repro.serve.warmup.warm_server`) without a
        restart; ``tenant`` scopes the pass to one namespace, ``None``
        warms them all.  Returns shard id → warmup summary; a shard that
        cannot run the pass (unreachable, or a v1-era build without the
        control message) reports an ``"error"`` entry instead of failing
        the broadcast.
        """
        return self._control(
            functools.partial(
                protocol.ControlCall,
                action=protocol.CONTROL_WARMUP,
                tenant=tenant,
                target=target,
            ),
            tenant,
            timeout,
        )

    def invalidate(
        self,
        tenant: str | None = None,
        refresh: bool = False,
        timeout: float = 300.0,
    ) -> dict[int, dict]:
        """Broadcast a stale-record invalidation to every live shard.

        Each shard drops its stale tuning records and the served state
        behind them (:func:`~repro.serve.invalidate.invalidate_stale`);
        ``tenant`` scopes the pass so one tenant's invalidation never
        evicts another's warm results, and ``refresh`` re-tunes the
        dropped families in place.  Returns shard id → invalidation
        summary, with per-shard ``"error"`` entries instead of broadcast
        failure.
        """
        return self._control(
            functools.partial(
                protocol.ControlCall,
                action=protocol.CONTROL_INVALIDATE,
                tenant=tenant,
                refresh=refresh,
            ),
            tenant,
            timeout,
        )

    def _control(self, call, tenant: str | None, timeout: float) -> dict[int, dict]:
        if tenant is not None:
            validate_tenant(tenant)
        with self._lock:
            handles = [h for h in self._handles.values() if h.alive()]
        reports: dict[int, dict] = {}
        for handle in handles:
            try:
                reply = self._probe(handle, call, timeout)
            except Exception as error:  # noqa: BLE001 - per-shard, not fatal
                reports[handle.shard_id] = {"error": str(error)}
                continue
            report = getattr(reply, "report", None)
            reports[handle.shard_id] = (
                dict(report) if isinstance(report, dict) else {}
            )
        return reports

    def wire_snapshot(self) -> WireSnapshot:
        """The supervisor-side wire-path profile without probing any shard."""
        return self._wire.snapshot()

    def drain_spans(self, timeout: float = 10.0) -> tuple[tracing.Span, ...]:
        """Merge cluster-wide trace spans: this process plus every shard.

        Drains the supervisor's own tracer and asks every live shard for its
        retained spans (a :class:`~repro.serve.protocol.StatsCall` with
        ``drain_spans`` set — a v1 shard ignores the flag and contributes
        nothing), returning one merged, time-ordered tuple ready for
        :func:`repro.obs.export.write_chrome_trace`.  A shard that died or
        ships a span this build cannot parse is skipped, never fatal.
        """
        spans = list(self.tracer.drain())
        with self._lock:
            handles = [h for h in self._handles.values() if h.alive()]
        drain_call = functools.partial(protocol.StatsCall, drain_spans=True)
        for handle in handles:
            try:
                reply = self._probe(handle, drain_call, timeout)
            except ServingError:
                continue
            for payload in getattr(reply, "spans", ()):
                try:
                    spans.append(tracing.Span.from_wire(payload))
                except ValueError:
                    continue
        spans.sort(key=lambda one: one.ts_us)
        return tuple(spans)

    # -- reconciliation / lifecycle ----------------------------------------

    def reconcile(self) -> ReconcileReport | None:
        """Fold every shard replica into the primary database (if file-backed).

        Safe while shards are serving: each replica file is a consistent
        atomic snapshot (the shards' own merge-on-save), and the primary is
        written with the same semantics.
        """
        if self.db_path is None:
            return None
        return reconcile_replicas(self.db_path)

    def close(self) -> ReconcileReport | None:
        """Drain and stop every local shard, disconnect from remote shards,
        then reconcile replicas (and return the report when file-backed).

        Remote shards are **not** shut down — their lifecycle belongs to
        the operator who started their listeners; they keep their warm
        state and go back to accepting the next supervisor.  Quarantined
        replica files (``*.corrupt``, renamed aside by crashed shards) past
        their retention age are dropped here, so a long-lived deployment
        directory does not accumulate them forever.
        """
        with self._lock:
            if self._closed:
                return None
            self._closed = True
        for handle in self._handles.values():
            if isinstance(handle, _RemoteShardHandle):
                continue  # disconnect only; the listener outlives us
            try:
                with handle.send_lock:
                    handle.connection.send_bytes(
                        protocol.encode_message(
                            protocol.ShutdownCall(request_id=next(self._request_ids))
                        )
                    )
            except (OSError, ValueError, AttributeError):
                pass
        deadline = time.monotonic() + _SHUTDOWN_GRACE_S
        for handle in self._handles.values():
            if handle.process is None:
                continue
            handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
        for handle in self._handles.values():
            for _tenant, _, future, _trace, _deadline in handle.take_pending().values():
                if not future.done():
                    _resolve(future, error=ServingError("shard supervisor closed"))
            handle.drop_links()
        report = self.reconcile()
        if self.db_path is not None:
            for dropped in prune_quarantine(self.db_path):
                _LOG.info("dropped aged-out quarantined replica %s", dropped)
        return report

    def __enter__(self) -> ShardSupervisor:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
