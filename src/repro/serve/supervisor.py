"""The shard supervisor: spawn, route, monitor, restart, aggregate.

A :class:`ShardSupervisor` turns N :class:`~repro.serve.KernelServer`
processes into one serving surface with the same front door as a single
server (``submit()`` returning a future, blocking ``serve()``, and a
``devices`` attribute — so :class:`~repro.serve.client.ServedNTT` and
:class:`~repro.serve.client.ServedBlasEngine` work against a supervisor
unchanged):

* **Spawning** — each shard is a real OS process running
  :func:`~repro.serve.shard.run_shard` over a ``multiprocessing`` pipe,
  owning its device subset and its own tuning-database *replica* file
  (:func:`~repro.tune.reconcile.replica_path`), so shards share nothing at
  runtime.
* **Routing** — a :class:`~repro.serve.shard.ShardRouter` consistent-hashes
  each request's (kernel-family fingerprint, device) onto a shard; all
  traffic for one family lands on one shard and enjoys its resident table
  and in-flight dedup.
* **Monitoring & restart** — a monitor thread watches shard liveness; a
  dead shard's pending requests are re-routed to its ring successors
  (rebalance-on-shard-loss) and the shard is respawned over the same
  replica file, re-joining the ring once alive.
* **Aggregation** — :meth:`ShardSupervisor.stats` asks every live shard for
  its counters and fixed-bucket latency histograms over the wire and merges
  them into one :class:`ClusterStats`: global warm/cold/dedup counts and
  p50/p95 computed from the *summed* histograms, plus the per-shard rows.
* **Reconciliation** — :meth:`ShardSupervisor.reconcile` (also run at
  :meth:`close`) folds every replica back into the primary database with
  :func:`~repro.tune.reconcile.reconcile_replicas`, so winners tuned by any
  shard survive into the next deployment's warmup.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ProtocolError, ServingError
from repro.tune.reconcile import ReconcileReport, reconcile_replicas, replica_path

# Imported as a module (not a package attribute) so this file is loadable at
# any point of repro.serve's own package initialization.
import repro.serve.protocol as protocol
from repro.serve.metrics import percentile_from_histogram
from repro.serve.server import ServeRequest, ServeResult
from repro.serve.shard import DEFAULT_VIRTUAL_NODES, ShardRouter, run_shard

__all__ = ["ClusterStats", "ShardSupervisor"]

#: How often the monitor thread checks shard liveness.
_MONITOR_INTERVAL_S = 0.2

#: How long close() waits for a shard to drain before terminating it.
_SHUTDOWN_GRACE_S = 30.0

#: Restart backoff bounds: the first respawn is immediate; a shard that
#: keeps dying (a crash at startup, say) is respawned at an exponentially
#: decaying rate capped here, never in a tight loop.
_RESTART_BACKOFF_MAX_S = 30.0


def _resolve(future: Future, result=None, error: BaseException | None = None) -> None:
    """Resolve a future, tolerating a caller who already cancelled it."""
    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
    except InvalidStateError:
        pass  # the caller cancelled; the outcome has nowhere to go


def _spawn_context():
    # Shards are spawned fresh (no inherited locks/threads): "spawn" is the
    # only start method that is safe once the supervisor's reader threads
    # exist (restarts happen with threads running) and the only one macOS
    # and Windows offer at all.
    return multiprocessing.get_context("spawn")


@dataclass(frozen=True)
class ClusterStats:
    """Cross-shard aggregate counters plus the per-shard breakdown.

    Counter fields are sums over shards; the percentiles are computed from
    the element-wise sum of the shards' fixed-bucket latency histograms
    (bounded-error approximations — see
    :func:`~repro.serve.metrics.percentile_from_histogram`).
    """

    shards: tuple[protocol.ShardStats, ...]
    requests: int
    warm_serves: int
    cold_serves: int
    dedup_hits: int
    errors: int
    tune_batches: int
    batched_tunes: int
    queue_depth: int
    resident_kernels: int
    p50_latency_ms: float
    p95_latency_ms: float

    @property
    def warm_rate(self) -> float:
        """Fraction of served requests answered warm (0.0 when unused)."""
        served = self.warm_serves + self.cold_serves
        return self.warm_serves / served if served else 0.0

    def report(self) -> str:
        """Human-readable multi-line summary (the shard-mode ``--stats``)."""
        lines = [
            f"cluster       {len(self.shards)} shards, {self.requests} requests "
            f"(warm {self.warm_serves}, cold {self.cold_serves}, "
            f"dedup {self.dedup_hits}, errors {self.errors})",
            f"warm rate     {self.warm_rate * 100:.1f}%",
            f"tuning        {self.batched_tunes} tunes in {self.tune_batches} batches",
            f"queue depth   {self.queue_depth} in flight, "
            f"{self.resident_kernels} resident kernels",
            f"latency       p50 ≤{self.p50_latency_ms:.3f} ms, "
            f"p95 ≤{self.p95_latency_ms:.3f} ms (merged histograms)",
        ]
        for stats in self.shards:
            lines.append(
                f"  shard {stats.shard_id} (pid {stats.pid}): "
                f"{stats.requests} requests, warm {stats.warm_serves}, "
                f"cold {stats.cold_serves}, dedup {stats.dedup_hits}, "
                f"{stats.resident_kernels} resident"
            )
        return "\n".join(lines)


def aggregate_stats(per_shard: tuple[protocol.ShardStats, ...]) -> ClusterStats:
    """Merge per-shard stats: sum counters, sum histograms, re-percentile."""
    def total(name: str) -> int:
        return sum(getattr(stats, name) for stats in per_shard)

    combined: list[int] = []
    for stats in per_shard:
        for histogram in (stats.warm_histogram, stats.cold_histogram):
            if len(combined) < len(histogram):
                combined.extend([0] * (len(histogram) - len(combined)))
            for index, count in enumerate(histogram):
                combined[index] += count
    buckets = tuple(combined)
    return ClusterStats(
        shards=tuple(sorted(per_shard, key=lambda stats: stats.shard_id)),
        requests=total("requests"),
        warm_serves=total("warm_serves"),
        cold_serves=total("cold_serves"),
        dedup_hits=total("dedup_hits"),
        errors=total("errors"),
        tune_batches=total("tune_batches"),
        batched_tunes=total("batched_tunes"),
        queue_depth=total("queue_depth"),
        resident_kernels=total("resident_kernels"),
        p50_latency_ms=percentile_from_histogram(buckets, 0.50),
        p95_latency_ms=percentile_from_histogram(buckets, 0.95),
    )


class _ShardHandle:
    """One shard process: its pipe, pending futures, and reader thread."""

    def __init__(self, shard_id: int, devices: tuple[str, ...]) -> None:
        self.shard_id = shard_id
        self.devices = devices
        self.process = None
        self.connection = None
        self.reader: threading.Thread | None = None
        self.send_lock = threading.Lock()
        self.pending: dict[int, tuple[ServeRequest | None, Future]] = {}
        self.pending_lock = threading.Lock()
        self.restarts = 0
        self.next_restart_at = 0.0  # monotonic; 0.0 = respawn immediately

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def take_pending(self) -> dict[int, tuple[ServeRequest | None, Future]]:
        with self.pending_lock:
            taken, self.pending = self.pending, {}
            return taken


class ShardSupervisor:
    """N kernel-server shard processes behind one routed front door.

    Args:
        shards: shard process count (≥ 1).
        db: primary tuning-database file; each shard gets its own replica
            next to it (``None``: per-shard in-memory databases, nothing to
            reconcile).
        devices: the devices the cluster serves.  By default every shard
            serves all of them (a kernel configuration is per-device state,
            not a hardware handle); with ``partition_devices=True`` the
            devices are split round-robin so each shard owns a disjoint
            subset, and routing only considers shards owning the request's
            device.
        workers: worker threads per shard.
        restart: respawn dead shards (on by default).
        virtual_nodes: consistent-hash ring points per shard.

    Shards are started with the ``spawn`` start method, so the standard
    :mod:`multiprocessing` caveat applies: construct supervisors from an
    importable ``__main__`` (a script with an ``if __name__ == "__main__"``
    guard, a module run with ``-m``, pytest, ...), not from a piped-stdin
    script — spawn re-imports the main module in every shard process.
    """

    def __init__(
        self,
        shards: int = 2,
        db: str | Path | None = None,
        devices: tuple[str, ...] = ("rtx4090",),
        workers: int = 4,
        partition_devices: bool = False,
        restart: bool = True,
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ) -> None:
        if shards < 1:
            raise ServingError(f"shard count must be positive, got {shards}")
        if not devices:
            raise ServingError("a shard supervisor needs at least one device")
        if partition_devices and len(devices) < shards:
            raise ServingError(
                f"cannot partition {len(devices)} device(s) across {shards} shards"
            )
        self.devices = tuple(devices)
        self.db_path = Path(db) if db is not None else None
        self.workers = workers
        self.restart = restart
        self._context = _spawn_context()
        self._closed = False
        self._lock = threading.RLock()
        self._request_ids = itertools.count(1)
        self._routed: dict[int, int] = {}  # shard_id -> requests routed there
        shard_devices = {
            shard_id: (
                tuple(self.devices[shard_id::shards])
                if partition_devices
                else self.devices
            )
            for shard_id in range(shards)
        }
        self.router = ShardRouter(range(shards), virtual_nodes=virtual_nodes)
        self._handles = {
            shard_id: _ShardHandle(shard_id, owned)
            for shard_id, owned in shard_devices.items()
        }
        for handle in self._handles.values():
            self._start_shard(handle)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-shard-monitor", daemon=True
        )
        self._monitor.start()

    # -- spawning -----------------------------------------------------------

    def shard_replica_path(self, shard_id: int) -> Path | None:
        """The tuning-db replica file a shard owns (``None`` when in-memory)."""
        if self.db_path is None:
            return None
        return replica_path(self.db_path, shard_id)

    def _start_shard(self, handle: _ShardHandle) -> None:
        parent, child = self._context.Pipe()
        process = self._context.Process(
            target=run_shard,
            args=(child, handle.shard_id, handle.devices),
            kwargs={
                "db_path": self.shard_replica_path(handle.shard_id),
                "workers": self.workers,
            },
            name=f"repro-shard-{handle.shard_id}",
            daemon=True,
        )
        process.start()
        child.close()
        handle.process = process
        handle.connection = parent
        handle.reader = threading.Thread(
            target=self._read_loop,
            args=(handle, parent),
            name=f"repro-shard-{handle.shard_id}-reader",
            daemon=True,
        )
        handle.reader.start()

    # -- per-shard reader ---------------------------------------------------

    def _read_loop(self, handle: _ShardHandle, connection) -> None:
        while True:
            try:
                data = connection.recv_bytes()
            except (EOFError, OSError):
                return  # the monitor notices the dead process and reroutes
            try:
                message = protocol.decode_message(data, allow_pickled=True)
            except ProtocolError:
                # An undecodable reply means reply correlation on this pipe
                # is lost (we cannot know whose answer this was).  Poison
                # the connection: the shard sees EOF and exits, the monitor
                # respawns it and re-routes every pending request — a
                # recovery instead of a silent hang.
                self._poison(connection)
                return
            request_id = getattr(message, "request_id", -1)
            if isinstance(message, protocol.ErrorReply) and request_id == -1:
                # The shard could not decode one of our calls — the same
                # lost-correlation situation, seen from the other side.
                self._poison(connection)
                return
            with handle.pending_lock:
                entry = handle.pending.pop(request_id, None)
            if entry is None:
                continue  # late reply for a request already re-routed
            _, future = entry
            if isinstance(message, protocol.ServeReply):
                _resolve(future, result=message.result)
            elif isinstance(message, (protocol.StatsReply, protocol.PongReply)):
                _resolve(future, result=message)
            elif isinstance(message, protocol.ErrorReply):
                _resolve(future, error=message.exception())

    @staticmethod
    def _poison(connection) -> None:
        try:
            connection.close()
        except OSError:
            pass

    # -- monitoring / restart ----------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._closed:
            time.sleep(_MONITOR_INTERVAL_S)
            with self._lock:
                if self._closed:
                    return
                now = time.monotonic()
                for handle in self._handles.values():
                    if not handle.alive():
                        self._recover(handle)
                    elif handle.restarts and now >= handle.next_restart_at + 60.0:
                        # A minute of health forgives the crash history, so
                        # the next incident starts from an immediate respawn.
                        handle.restarts = 0

    def _recover(self, handle: _ShardHandle) -> None:
        """Re-route a dead shard's pending work; respawn it over its replica.

        Respawns back off exponentially (immediate at first,
        :data:`_RESTART_BACKOFF_MAX_S` at worst), so a shard that dies at
        startup — a corrupt environment, an import error — is retried at a
        bounded rate instead of in a tight spawn loop.
        """
        pending = handle.take_pending()
        try:
            handle.connection.close()
        except (OSError, AttributeError):
            pass
        now = time.monotonic()
        if self.restart and not self._closed and now >= handle.next_restart_at:
            handle.restarts += 1
            backoff = min(_RESTART_BACKOFF_MAX_S, 0.5 * (2 ** min(handle.restarts, 8)))
            handle.next_restart_at = now + backoff
            self._start_shard(handle)
        for request_id, (request, future) in pending.items():
            if future.done():
                continue
            if request is None:  # stats/ping probes are not worth re-sending
                _resolve(
                    future,
                    error=ServingError(f"shard {handle.shard_id} died during a probe"),
                )
                continue
            try:
                # Rebalance-on-shard-loss: the ring successor takes the key.
                # The respawned shard (empty caches) rejoins for new traffic.
                self._dispatch(request, future, excluding=frozenset({handle.shard_id}))
            except ServingError as error:
                _resolve(future, error=error)

    # -- front door ---------------------------------------------------------

    def _dispatch(
        self, request: ServeRequest, future: Future, excluding=frozenset()
    ) -> None:
        allowed_excluding = set(excluding)
        for handle in self._handles.values():
            if request.device not in handle.devices:
                allowed_excluding.add(handle.shard_id)
        shard_id = self.router.route(request, excluding=frozenset(allowed_excluding))
        handle = self._handles[shard_id]
        request_id = next(self._request_ids)
        with handle.pending_lock:
            handle.pending[request_id] = (request, future)
        try:
            with handle.send_lock:
                handle.connection.send_bytes(
                    protocol.encode_message(
                        protocol.ServeCall(request_id=request_id, request=request)
                    )
                )
        except (OSError, ValueError):
            # The shard died between routing and writing.  If our pending
            # entry is still ours, re-route it past this shard ourselves; if
            # the monitor's recovery already swept it, it re-routes for us.
            with handle.pending_lock:
                entry = handle.pending.pop(request_id, None)
            if entry is not None:
                try:
                    self._dispatch(
                        request, future, excluding=frozenset(allowed_excluding | {shard_id})
                    )
                except ServingError as error:
                    _resolve(future, error=error)
            return
        with self._lock:
            self._routed[shard_id] = self._routed.get(shard_id, 0) + 1

    def submit(self, request: ServeRequest) -> Future:
        """Route a request to its shard; the future resolves to the result."""
        with self._lock:
            if self._closed:
                raise ServingError("shard supervisor is closed")
        future: Future = Future()
        self._dispatch(request, future)
        return future

    def serve(self, request: ServeRequest) -> ServeResult:
        """Serve one request through its shard, blocking for the result."""
        return self.submit(request).result()

    def routed_counts(self) -> dict[int, int]:
        """Requests routed per shard id since startup (supervisor-side)."""
        with self._lock:
            return dict(sorted(self._routed.items()))

    # -- probes / stats -----------------------------------------------------

    def _probe(self, handle: _ShardHandle, message_type, timeout: float):
        request_id = next(self._request_ids)
        future: Future = Future()
        with handle.pending_lock:
            handle.pending[request_id] = (None, future)
        try:
            with handle.send_lock:
                handle.connection.send_bytes(
                    protocol.encode_message(message_type(request_id=request_id))
                )
        except (OSError, ValueError) as error:
            with handle.pending_lock:
                handle.pending.pop(request_id, None)
            raise ServingError(f"shard {handle.shard_id} is unreachable") from error
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            with handle.pending_lock:
                handle.pending.pop(request_id, None)
            raise ServingError(
                f"shard {handle.shard_id} did not answer a "
                f"{message_type.__name__} within {timeout:g}s"
            ) from None

    def ping(self, timeout: float = 5.0) -> dict[int, protocol.PongReply]:
        """Liveness probe of every shard (shard id → pong)."""
        with self._lock:
            handles = [h for h in self._handles.values() if h.alive()]
        return {
            handle.shard_id: self._probe(handle, protocol.PingCall, timeout)
            for handle in handles
        }

    def stats(self, timeout: float = 10.0) -> ClusterStats:
        """Cross-shard aggregated metrics (see :class:`ClusterStats`)."""
        with self._lock:
            handles = [h for h in self._handles.values() if h.alive()]
        replies = [
            self._probe(handle, protocol.StatsCall, timeout) for handle in handles
        ]
        return aggregate_stats(tuple(reply.stats for reply in replies))

    # -- reconciliation / lifecycle ----------------------------------------

    def reconcile(self) -> ReconcileReport | None:
        """Fold every shard replica into the primary database (if file-backed).

        Safe while shards are serving: each replica file is a consistent
        atomic snapshot (the shards' own merge-on-save), and the primary is
        written with the same semantics.
        """
        if self.db_path is None:
            return None
        return reconcile_replicas(self.db_path)

    def close(self) -> ReconcileReport | None:
        """Drain and stop every shard, then reconcile replicas (and return
        the report when file-backed)."""
        with self._lock:
            if self._closed:
                return None
            self._closed = True
        for handle in self._handles.values():
            try:
                with handle.send_lock:
                    handle.connection.send_bytes(
                        protocol.encode_message(
                            protocol.ShutdownCall(request_id=next(self._request_ids))
                        )
                    )
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + _SHUTDOWN_GRACE_S
        for handle in self._handles.values():
            if handle.process is None:
                continue
            handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
        for handle in self._handles.values():
            for _, future in handle.take_pending().values():
                if not future.done():
                    _resolve(future, error=ServingError("shard supervisor closed"))
            try:
                handle.connection.close()
            except (OSError, AttributeError):
                pass
        return self.reconcile()

    def __enter__(self) -> ShardSupervisor:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
