"""The versioned wire protocol between shard processes and their supervisor.

Every message is one JSON object wrapped in a versioned envelope::

    {"moma-serve": 1, "type": "serve", "payload": {...}}

and moves across a byte transport either as a raw ``bytes`` payload
(:func:`encode_message` / :func:`decode_message` — what
``multiprocessing.Connection.send_bytes`` carries between a supervisor and
its shard pipes) or as a length-prefixed frame on a binary stream
(:func:`write_message` / :func:`read_message` — what a socket's ``makefile``
carries between machines).  The two layers compose: a frame is exactly the
encoded message behind a 4-byte big-endian length.

Message types (each a frozen dataclass):

* :class:`ServeCall` / :class:`ServeReply` — one kernel request and its
  served result.  Requests and results are correlated by ``request_id``, so
  a shard may answer out of order (its worker pool finishes warm requests
  long before cold ones).
* :class:`ErrorReply` — a failed request: the error's repro exception class
  name plus its message; :meth:`ErrorReply.exception` rebuilds a raisable
  error on the caller's side.
* :class:`StatsCall` / :class:`StatsReply` — one shard's counters and
  fixed-bucket latency histograms (:class:`ShardStats`); histograms are
  element-wise summable, which is how the supervisor merges p50/p95 across
  shards.
* :class:`PingCall` / :class:`PongReply` — liveness probe used by the
  supervisor's monitor.
* :class:`HelloCall` / :class:`HelloReply` — the TCP transport handshake:
  the supervisor's first frame on a fresh connection pins the protocol
  version, assigns the shard its ring id for the session, and requests a
  trust level; the shard grants the weaker of the requested level and its
  own policy (:func:`negotiate_trust`).
* :class:`ShutdownCall` — asks the shard to drain and exit cleanly.

**Artifact encodings.**  A served artifact crosses the wire in one of two
forms (:func:`encode_artifact` / :func:`decode_artifact`):

* ``"source"`` — backend source text (the ``cuda`` / ``c99`` targets) passes
  through verbatim;
* ``"pickled_kernel"`` — an executable ``python_exec``
  :class:`~repro.core.codegen.python_exec.CompiledKernel` ships as a
  base64-encoded pickle (the kernel IR + generated source; the callable is
  re-exec'd from the source on arrival).

Unpickling executes code, so ``decode_artifact`` only accepts
``"pickled_kernel"`` payloads when the caller passes ``allow_pickled=True``
— which the supervisor does for its *own spawned shard processes* and for
TCP connections whose handshake negotiated :data:`TRUST_PICKLED` (an
explicit operator opt-in on both ends).  Everything else runs **source-only**
(:data:`TRUST_SOURCE`, the cross-machine default): executable artifacts are
downgraded to their generated source text before the wire
(:func:`source_only_result`) and pickled payloads are rejected on arrival.

**Protocol v2: out-of-band binary payload frames.**  v1 ships everything —
including multi-kilobyte kernel artifacts — inside the JSON envelope, which
costs base64 (+33% size, two copies) for pickles and JSON string-escaping
for kernel source.  v2 keeps the JSON envelope for control fields but moves
artifact bodies out of band: a v2 message is one byte blob

.. code-block:: text

    b"\\x93MS2"            4-byte magic (not valid UTF-8, so a v1 decoder
                           rejects it cleanly instead of mis-parsing)
    u32 BE                 envelope length
    envelope JSON          {"moma-serve": 2, "type": ..., "payload": ...,
                           "frames": [len0, len1, ...]}
    per frame: u32 BE length (must match the envelope's declared length)
               + the raw bytes

and payload fields reference frames by index (``{"encoding": "source",
"frame": 0}``) instead of embedding the bytes.  Kernel source crosses as
raw UTF-8, pickled kernels as raw pickle bytes — no base64, no escaping,
and decode slices the blob with memoryviews instead of copying.

**Version negotiation.**  Every build decodes *both* encodings (the magic
disambiguates), so the envelope version only gates what a sender may
*emit*: the hello handshake carries an additive ``max_protocol`` field
(ignored by v1 decoders, absent → 1) and both ends speak
:func:`negotiate_version` of the two maxima for the rest of the
connection.  A v1 peer therefore keeps working against a v2 build: the
handshake frames themselves are always v1-encoded, and the session
negotiates down to v1.  :data:`PROTOCOL_VERSION` (the v1 envelope version)
is still bumped on any *incompatible* change; additive, optional payload
fields may ride within a version — decoders ignore unknown payload keys.
"""

from __future__ import annotations

import base64
import dataclasses
import io
import json
import pickle
import socket
from dataclasses import dataclass

from repro import errors
from repro.errors import ProtocolError
from repro.core.codegen.python_exec import CompiledKernel
from repro.kernels.config import KernelConfig
from repro.tenancy import DEFAULT_TENANT, validate_tenant
from repro.tune.space import Candidate, Workload
from repro.tune.tuner import TuningResult
from repro.serve.server import ServeRequest, ServeResult

__all__ = [
    "PROTOCOL_VERSION",
    "PROTOCOL_VERSION_2",
    "MAX_PROTOCOL_VERSION",
    "FRAME_MAGIC",
    "MAX_FRAME_BYTES",
    "TRUST_SOURCE",
    "TRUST_PICKLED",
    "ServeCall",
    "ServeReply",
    "ErrorReply",
    "StatsCall",
    "StatsReply",
    "ShardStats",
    "PingCall",
    "PongReply",
    "HelloCall",
    "HelloReply",
    "ControlCall",
    "ControlReply",
    "ShutdownCall",
    "negotiate_trust",
    "negotiate_version",
    "encode_artifact",
    "decode_artifact",
    "source_only_result",
    "encode_message",
    "decode_message",
    "encode_ping",
    "encode_pong",
    "write_message",
    "read_frame",
    "read_message",
    "StreamConnection",
]

#: The v1 (JSON-only) envelope version — the baseline every build speaks.
#: Bumped on every *incompatible* wire change; a JSON decoder rejects other
#: versions.  The binary-frame container (v2) is negotiated, not pinned.
PROTOCOL_VERSION = 1

#: The binary-frame container version: JSON envelope for control fields,
#: artifact bodies as out-of-band length-prefixed byte frames.
PROTOCOL_VERSION_2 = 2

#: The highest protocol version this build can speak.  What a connection
#: actually uses is :func:`negotiate_version` of both ends' maxima.
MAX_PROTOCOL_VERSION = PROTOCOL_VERSION_2

#: First bytes of every v2 message blob.  0x93 is an invalid UTF-8 lead
#: byte, so a v1 (JSON-only) decoder fails cleanly with "undecodable wire
#: message" instead of half-parsing a binary container.
FRAME_MAGIC = b"\x93MS2"

_ENVELOPE_KEY = "moma-serve"

#: Upper bound on one frame (a generous multiple of the largest kernels the
#: backends emit); guards a stream decoder against a corrupt length prefix.
MAX_FRAME_BYTES = 64 * 1024 * 1024


# -- transport trust levels --------------------------------------------------

#: Source-only transport: executable artifacts cross as generated source
#: text; pickled payloads are rejected.  The cross-machine default.
TRUST_SOURCE = "source"

#: Fully trusted transport: ``python_exec`` artifacts cross as executable
#: pickles.  Implicit for the supervisor's own spawned shard pipes; over TCP
#: it must be requested by the supervisor *and* allowed by the shard.
TRUST_PICKLED = "pickled"

_TRUST_LEVELS = (TRUST_SOURCE, TRUST_PICKLED)


def negotiate_trust(requested: str, policy: str) -> str:
    """The trust level a connection runs at: the weaker of the two sides.

    ``requested`` is what the supervisor's hello asks for; ``policy`` is the
    most the shard's operator allows for this listener.  Unknown levels are
    a protocol violation, not a silent downgrade.
    """
    for level in (requested, policy):
        if level not in _TRUST_LEVELS:
            raise ProtocolError(f"unknown transport trust level {level!r}")
    if requested == TRUST_PICKLED and policy == TRUST_PICKLED:
        return TRUST_PICKLED
    return TRUST_SOURCE


def negotiate_version(local_max: int, peer_max: object) -> int:
    """The protocol version a connection speaks: the lower of the two maxima.

    ``peer_max`` comes off the wire (the hello's additive ``max_protocol``
    field; a v1 peer never sends it and defaults to 1), so it is validated
    here: a non-integer or sub-1 claim is a protocol violation.
    """
    if not isinstance(peer_max, int) or isinstance(peer_max, bool) or peer_max < 1:
        raise ProtocolError(f"peer advertised impossible protocol version {peer_max!r}")
    return min(local_max, peer_max)


# -- artifact encodings ------------------------------------------------------

SOURCE_ENCODING = "source"
PICKLED_KERNEL_ENCODING = "pickled_kernel"


def encode_artifact(artifact: object, frames: list | None = None) -> dict:
    """One served artifact in its wire form.

    With ``frames is None`` (the v1 path) the result is a JSON-safe
    ``{"encoding", "data"}`` pair: source text passes through verbatim
    (never pickled, never base64'd) and executable kernels ship as a
    base64-encoded pickle.  With a ``frames`` list (the v2 path) the body
    goes **out of band**: the raw bytes — UTF-8 source, or the pickle with
    no base64 round-trip — are appended to ``frames`` and the returned pair
    is ``{"encoding", "frame"}``, referencing the payload frame by index.
    """
    if isinstance(artifact, str):
        if frames is None:
            return {"encoding": SOURCE_ENCODING, "data": artifact}
        frames.append(artifact.encode("utf-8"))
        return {"encoding": SOURCE_ENCODING, "frame": len(frames) - 1}
    if isinstance(artifact, CompiledKernel):
        payload = pickle.dumps(artifact)
        if frames is None:
            return {
                "encoding": PICKLED_KERNEL_ENCODING,
                "data": base64.b64encode(payload).decode("ascii"),
            }
        frames.append(payload)
        return {"encoding": PICKLED_KERNEL_ENCODING, "frame": len(frames) - 1}
    raise ProtocolError(
        f"cannot encode artifact of type {type(artifact).__name__} for the wire"
    )


def _artifact_body(payload: dict, frames) -> bytes | None:
    """The out-of-band bytes a v2 artifact payload references, or ``None``."""
    if "frame" not in payload:
        return None
    index = payload["frame"]
    if frames is None:
        raise ProtocolError("artifact references a payload frame, but the message carries none")
    if not isinstance(index, int) or isinstance(index, bool) or not 0 <= index < len(frames):
        raise ProtocolError(
            f"artifact frame index {index!r} out of range (message has {len(frames)} frames)"
        )
    return frames[index]


def decode_artifact(payload: dict, allow_pickled: bool = False, frames=None) -> object:
    """Rebuild an artifact from its wire form (inline data or a v2 frame).

    ``allow_pickled`` gates the ``pickled_kernel`` encoding: unpickling
    executes code, so it must only be enabled for transports connected to
    processes this one spawned (the supervisor's own shards).  ``frames``
    is the message's out-of-band payload frames when decoding v2.
    """
    if not isinstance(payload, dict) or "encoding" not in payload:
        raise ProtocolError(f"malformed artifact payload: {payload!r}")
    body = _artifact_body(payload, frames)
    if body is None and "data" not in payload:
        raise ProtocolError(f"malformed artifact payload: {payload!r}")
    encoding = payload["encoding"]
    if encoding == SOURCE_ENCODING:
        if body is not None:
            try:
                return str(body, "utf-8")
            except UnicodeDecodeError as error:
                raise ProtocolError(f"source artifact frame is not UTF-8: {error}") from None
        data = payload["data"]
        if not isinstance(data, str):
            raise ProtocolError("source artifact data must be text")
        return data
    if encoding == PICKLED_KERNEL_ENCODING:
        if not allow_pickled:
            raise ProtocolError(
                "refusing to unpickle a kernel artifact from an untrusted "
                "transport (pass allow_pickled=True only for spawned shards)"
            )
        try:
            if body is None:
                body = base64.b64decode(payload["data"])
            artifact = pickle.loads(body)
        except Exception as error:  # noqa: BLE001 - any unpickle failure is protocol-level
            raise ProtocolError(f"corrupt pickled kernel artifact: {error}") from None
        if not isinstance(artifact, CompiledKernel):
            raise ProtocolError(
                f"pickled artifact is a {type(artifact).__name__}, "
                f"expected CompiledKernel"
            )
        return artifact
    raise ProtocolError(f"unknown artifact encoding {encoding!r}")


def source_only_result(result: ServeResult) -> ServeResult:
    """``result`` with any executable artifact downgraded to source text.

    What a shard applies to every reply on a :data:`TRUST_SOURCE` transport:
    the receiver gets the kernel's generated source (inspectable, compilable
    on its own side) instead of an executable pickle it would have to trust.
    Source-text artifacts pass through unchanged.
    """
    if isinstance(result.artifact, CompiledKernel):
        return dataclasses.replace(result, artifact=result.artifact.source)
    return result


# -- dataclass payload helpers ----------------------------------------------


def _rebuild(cls, payload: dict, context: str):
    """Build dataclass ``cls`` from a wire payload, ignoring unknown keys."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"malformed {context} payload: {payload!r}")
    names = {field.name for field in dataclasses.fields(cls)}
    try:
        return cls(**{name: payload[name] for name in names if name in payload})
    except (TypeError, errors.ReproError) as error:
        raise ProtocolError(f"malformed {context} payload: {error}") from None


def _encode_tuning(tuning: TuningResult | None) -> dict | None:
    if tuning is None:
        return None
    payload = dataclasses.asdict(tuning)
    # Trials are search provenance (every scored candidate); they are local
    # diagnostics, not serving state, and can dominate the message size.
    payload.pop("trials", None)
    return payload


def _decode_tuning(payload: dict | None) -> TuningResult | None:
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise ProtocolError(f"malformed tuning payload: {payload!r}")
    fields = dict(payload)
    fields["workload"] = _rebuild(Workload, fields.get("workload"), "workload")
    fields["candidate"] = _rebuild(Candidate, fields.get("candidate"), "candidate")
    fields["config"] = _rebuild(KernelConfig, fields.get("config"), "kernel config")
    fields["trials"] = ()
    return _rebuild(TuningResult, fields, "tuning result")


def _encode_request(request: ServeRequest) -> dict:
    return dataclasses.asdict(request)


def _decode_request(payload: dict) -> ServeRequest:
    return _rebuild(ServeRequest, payload, "serve request")


def _encode_result(result: ServeResult, frames: list | None = None) -> dict:
    return {
        "request": _encode_request(result.request),
        "artifact": encode_artifact(result.artifact, frames),
        "config": dataclasses.asdict(result.config),
        "fingerprint": result.fingerprint,
        "cache_key": result.cache_key,
        "tuning": _encode_tuning(result.tuning),
        "warm": result.warm,
        "latency_s": result.latency_s,
    }


def _decode_result(payload: dict, allow_pickled: bool, frames=None) -> ServeResult:
    if not isinstance(payload, dict):
        raise ProtocolError(f"malformed serve result payload: {payload!r}")
    fields = dict(payload)
    fields["request"] = _decode_request(fields.get("request"))
    fields["artifact"] = decode_artifact(
        fields.get("artifact"), allow_pickled=allow_pickled, frames=frames
    )
    fields["config"] = _rebuild(KernelConfig, fields.get("config"), "kernel config")
    fields["tuning"] = _decode_tuning(fields.get("tuning"))
    return _rebuild(ServeResult, fields, "serve result")


# -- messages ----------------------------------------------------------------


@dataclass(frozen=True)
class ServeCall:
    """One kernel request bound for a shard.

    ``trace`` is the **additive** distributed-tracing field: when the
    supervisor samples a request it attaches the trace context
    (:meth:`repro.obs.trace.TraceHandle.wire_field` — trace id, parent span
    id, sampled flag) so the shard's spans join the same trace.  Absent ⇒
    untraced; a v1 peer's decoder ignores the unknown key, so traced v2
    supervisors interoperate with untraced v1 shards and vice versa.

    ``deadline_ms`` is a second additive field: the request's end-to-end
    latency budget in milliseconds.  A shard that finishes the request
    after the budget has elapsed (measured from its own decode of the
    call) sheds the result and answers with a
    :class:`~repro.errors.DeadlineExceededError` instead — the reply the
    traffic-replay harness counts as a deadline miss.  Absent ⇒ no
    deadline; an older peer ignores the key and serves normally.

    ``tenant`` is a third additive field: the tenant namespace the request
    is served under (resident-table keys, tuning-db lookups, per-tenant
    metrics).  Absent ⇒ :data:`~repro.tenancy.DEFAULT_TENANT` — and the
    field is only *emitted* when non-default, so an untenanted envelope is
    byte-identical to the pre-tenant wire format and v1-era peers/rings
    interoperate unchanged.  Unlike the tolerant trace/deadline fields, a
    *present but invalid* tenant id (empty, ``::``/``/``/whitespace) is a
    hard :class:`~repro.errors.ProtocolError` at decode time: a corrupt
    tenant id would silently poison every key it scopes.
    """

    request_id: int
    request: ServeRequest
    trace: dict | None = None
    deadline_ms: float | None = None
    tenant: str = DEFAULT_TENANT


@dataclass(frozen=True)
class ServeReply:
    """One successfully served result, correlated by ``request_id``."""

    request_id: int
    result: ServeResult


@dataclass(frozen=True)
class ErrorReply:
    """A failed request: the repro error class name and its message."""

    request_id: int
    error_type: str
    message: str

    @classmethod
    def from_exception(cls, request_id: int, error: BaseException) -> ErrorReply:
        """Wrap an exception for the wire (non-repro errors degrade to base)."""
        return cls(
            request_id=request_id,
            error_type=type(error).__name__,
            message=str(error),
        )

    def exception(self) -> Exception:
        """A raisable exception mirroring the shard-side failure.

        Known :mod:`repro.errors` classes are rebuilt as themselves; anything
        else (a shard-side ``TypeError``, say) surfaces as a
        :class:`~repro.errors.ServingError` carrying the original class name.
        """
        error_class = getattr(errors, self.error_type, None)
        if isinstance(error_class, type) and issubclass(error_class, errors.ReproError):
            return error_class(self.message)
        return errors.ServingError(f"shard error ({self.error_type}): {self.message}")


@dataclass(frozen=True)
class StatsCall:
    """Ask a shard for its :class:`ShardStats`.

    ``drain_spans`` additionally asks the shard to drain its tracer's span
    buffer into the reply (``StatsReply.spans``) so the supervisor can merge
    cluster-wide traces.  Additive: a v1 shard ignores the key and replies
    without spans.
    """

    request_id: int
    drain_spans: bool = False


@dataclass(frozen=True)
class ShardStats:
    """One shard's counters, in the supervisor-mergeable wire form.

    Counter fields mirror :class:`~repro.serve.metrics.MetricsSnapshot`;
    latencies travel as fixed-bucket histograms
    (:func:`~repro.serve.metrics.latency_histogram`) so global percentiles
    can be computed by summing buckets across shards.

    ``tenants`` is the **additive** per-tenant breakdown: tenant id →
    ``{"requests", "warm_serves", "cold_serves", "errors",
    "warm_histogram", "cold_histogram"}``.  Emitted only when non-empty
    and decoded tolerantly (a malformed or absent breakdown degrades to
    ``{}``), so pre-tenant peers interoperate and a newer peer's schema
    cannot break the stats path.
    """

    shard_id: int
    pid: int
    requests: int
    warm_serves: int
    cold_serves: int
    dedup_hits: int
    errors: int
    tune_batches: int
    batched_tunes: int
    queue_depth: int
    resident_kernels: int
    warm_histogram: tuple[int, ...]
    cold_histogram: tuple[int, ...]
    tenants: dict = dataclasses.field(default_factory=dict)


@dataclass(frozen=True)
class StatsReply:
    """A shard's stats, correlated by ``request_id``.

    ``spans`` carries drained trace spans in their wire-dict form
    (:meth:`repro.obs.trace.Span.to_wire`) when the call asked for them —
    the protocol layer stays decoupled from :mod:`repro.obs` by never
    interpreting them.  Empty for v1 peers and plain stats calls.
    """

    request_id: int
    stats: ShardStats
    spans: tuple = ()


@dataclass(frozen=True)
class PingCall:
    """Liveness probe."""

    request_id: int


@dataclass(frozen=True)
class PongReply:
    """Liveness acknowledgement (the shard id doubles as a sanity check)."""

    request_id: int
    shard_id: int
    pid: int


@dataclass(frozen=True)
class HelloCall:
    """The supervisor's first frame on a fresh TCP connection.

    Pins the *baseline* protocol version explicitly (belt and braces over
    the envelope gate: a version mismatch must fail *before* any payload is
    trusted), assigns the shard the ring id it answers as for this session,
    and requests a transport trust level (:data:`TRUST_SOURCE` /
    :data:`TRUST_PICKLED`).  ``max_protocol`` is the **additive** version
    negotiation field: the highest version the supervisor can speak.  A v1
    peer ignores the unknown key (and never sends one, so it defaults to 1
    on decode); both ends then speak :func:`negotiate_version` of the two
    maxima for the rest of the connection.
    """

    request_id: int
    protocol_version: int
    shard_id: int
    trust: str
    max_protocol: int = 1


@dataclass(frozen=True)
class HelloReply:
    """The shard's acceptance: its identity and the *granted* trust level.

    ``trust`` is :func:`negotiate_trust` of the supervisor's request and the
    listener's policy — both sides must honour it for every later frame on
    the connection.  ``max_protocol`` mirrors the hello's version
    negotiation: the highest version this shard can speak (absent from a v1
    peer's reply, defaulting to 1).
    """

    request_id: int
    shard_id: int
    pid: int
    protocol_version: int
    trust: str
    max_protocol: int = 1


#: Control actions a :class:`ControlCall` may carry.
CONTROL_WARMUP = "warmup"
CONTROL_INVALIDATE = "invalidate"
_CONTROL_ACTIONS = (CONTROL_WARMUP, CONTROL_INVALIDATE)


@dataclass(frozen=True)
class ControlCall:
    """A cluster-control action for one shard: warmup or invalidation.

    The supervisor broadcasts these so operators can pre-warm or
    invalidate a *running* cluster in place (the ROADMAP's control-plane
    item) instead of restarting every shard.  ``tenant`` scopes the action
    to one tenant's namespace; ``None`` means every namespace.
    ``refresh`` (invalidation only) re-tunes and re-serves the dropped
    families before replying.  A pre-control peer answers the unknown
    message type with an :class:`ErrorReply` — the supervisor reports
    that shard as unsupported rather than failing the whole broadcast.
    """

    request_id: int
    action: str
    tenant: str | None = None
    target: str = "python_exec"
    refresh: bool = False


@dataclass(frozen=True)
class ControlReply:
    """One shard's outcome of a :class:`ControlCall`.

    ``report`` is the action's JSON-ready summary dict (the wire form of a
    :class:`~repro.serve.warmup.WarmupReport` /
    :class:`~repro.serve.invalidate.InvalidationReport` — the protocol
    layer never interprets it, mirroring how trace spans travel).
    """

    request_id: int
    report: dict = dataclasses.field(default_factory=dict)


@dataclass(frozen=True)
class ShutdownCall:
    """Ask the shard to drain in-flight work and exit; no reply follows."""

    request_id: int


# -- envelope encode/decode --------------------------------------------------


def _stats_to_payload(message: StatsReply) -> dict:
    payload = {
        "request_id": message.request_id,
        "stats": dataclasses.asdict(message.stats),
    }
    payload["stats"]["warm_histogram"] = list(message.stats.warm_histogram)
    payload["stats"]["cold_histogram"] = list(message.stats.cold_histogram)
    # Additive per-tenant breakdown: emitted only when non-empty, so the
    # untenanted stats reply stays byte-identical to the pre-tenant wire.
    payload["stats"].pop("tenants", None)
    if message.stats.tenants:
        payload["stats"]["tenants"] = {
            tenant: dict(block) for tenant, block in message.stats.tenants.items()
        }
    if message.spans:
        payload["spans"] = [dict(span) for span in message.spans]
    return payload


def _decode_tenant_breakdown(value) -> dict:
    """Tolerantly decode a stats reply's per-tenant breakdown.

    Like spans, the breakdown is reporting freight: anything structurally
    off — a non-dict, a tenant id that would not validate, a non-dict
    block — is dropped rather than rejected, so a newer peer's schema can
    never break the stats path.
    """
    if not isinstance(value, dict):
        return {}
    breakdown = {}
    for tenant, block in value.items():
        if not isinstance(tenant, str) or not isinstance(block, dict):
            continue
        try:
            validate_tenant(tenant)
        except ValueError:
            continue
        breakdown[tenant] = dict(block)
    return breakdown


def _stats_from_payload(payload: dict, allow_pickled: bool) -> StatsReply:
    if not isinstance(payload, dict) or not isinstance(payload.get("stats"), dict):
        raise ProtocolError(f"malformed stats payload: {payload!r}")
    fields = dict(payload["stats"])
    for name in ("warm_histogram", "cold_histogram"):
        value = fields.get(name)
        if not isinstance(value, (list, tuple)) or not all(
            isinstance(count, int) for count in value
        ):
            raise ProtocolError(f"malformed stats histogram {name!r}: {value!r}")
        fields[name] = tuple(value)
    fields["tenants"] = _decode_tenant_breakdown(fields.get("tenants"))
    return StatsReply(
        request_id=_request_id(payload),
        stats=_rebuild(ShardStats, fields, "shard stats"),
        spans=_decode_spans(payload.get("spans")),
    )


def _decode_spans(value) -> tuple:
    """Tolerantly decode drained span dicts (absent / malformed ⇒ dropped).

    Spans are diagnostic freight: a peer speaking a newer span schema must
    not be able to break the stats path, so anything non-dict is discarded
    rather than rejected.
    """
    if not isinstance(value, (list, tuple)):
        return ()
    return tuple(span for span in value if isinstance(span, dict))


def _decode_trace_field(value) -> dict | None:
    """The envelope's additive ``trace`` field: a small dict or nothing."""
    return value if isinstance(value, dict) else None


def _decode_deadline_field(value) -> float | None:
    """The envelope's additive ``deadline_ms`` field: a positive number.

    Tolerant like the trace field — diagnostic-adjacent freight from a
    newer peer must degrade to "no deadline", never break the serve path.
    """
    if isinstance(value, (int, float)) and not isinstance(value, bool) and value > 0:
        return float(value)
    return None


def _decode_tenant_field(value) -> str:
    """The envelope's additive ``tenant`` field: a validated id or default.

    Absent (``None``) means :data:`~repro.tenancy.DEFAULT_TENANT` — the
    v1-era interoperability contract.  A *present* value is validated
    **strictly**: unlike the tolerant trace/deadline fields, a corrupt
    tenant id cannot degrade to default, because it would silently reroute
    one tenant's traffic (and tuning writes) into another's namespace.
    """
    if value is None:
        return DEFAULT_TENANT
    if not isinstance(value, str):
        raise ProtocolError(f"tenant field must be a string, got {value!r}")
    try:
        return validate_tenant(value)
    except ValueError as error:
        raise ProtocolError(f"invalid tenant id on the wire: {error}") from None


def _decode_control(payload: dict) -> ControlCall:
    """Strictly decode a control call (its fields name state to mutate)."""
    action = payload.get("action")
    if action not in _CONTROL_ACTIONS:
        raise ProtocolError(
            f"unknown control action {action!r} (known: {_CONTROL_ACTIONS})"
        )
    tenant = payload.get("tenant")
    if tenant is not None:
        tenant = _decode_tenant_field(tenant)
    target = payload.get("target", "python_exec")
    if not isinstance(target, str) or not target:
        raise ProtocolError(f"control target must be a non-empty string, got {target!r}")
    return ControlCall(
        request_id=_request_id(payload),
        action=action,
        tenant=tenant,
        target=target,
        refresh=bool(payload.get("refresh", False)),
    )


def _validate_hello(message):
    """Shared field validation for both handshake directions."""
    if message.trust not in _TRUST_LEVELS:
        raise ProtocolError(f"unknown transport trust level {message.trust!r}")
    for name in ("request_id", "protocol_version", "shard_id", "max_protocol"):
        if not isinstance(getattr(message, name), int):
            raise ProtocolError(f"handshake field {name!r} must be an integer")
    if message.max_protocol < 1:
        raise ProtocolError(
            f"handshake advertises impossible protocol version {message.max_protocol}"
        )
    return message


def _request_id(payload: dict) -> int:
    value = payload.get("request_id")
    if not isinstance(value, int):
        raise ProtocolError(f"message carries no integer request_id: {payload!r}")
    return value


#: type tag -> (message class, payload encoder, payload decoder).
#: Encoders take ``(message, frames)`` — ``frames`` is ``None`` on the v1
#: path or a list to append out-of-band byte frames to on the v2 path.
#: Decoders take ``(payload, allow_pickled, frames)`` symmetrically.
_MESSAGE_TYPES = {
    "serve": (
        ServeCall,
        lambda m, frames: {
            "request_id": m.request_id,
            "request": _encode_request(m.request),
            **({"trace": m.trace} if m.trace is not None else {}),
            **(
                {"deadline_ms": m.deadline_ms}
                if m.deadline_ms is not None
                else {}
            ),
            **(
                {"tenant": m.tenant}
                if m.tenant != DEFAULT_TENANT
                else {}
            ),
        },
        lambda p, allow, frames: ServeCall(
            request_id=_request_id(p),
            request=_decode_request(p.get("request")),
            trace=_decode_trace_field(p.get("trace")),
            deadline_ms=_decode_deadline_field(p.get("deadline_ms")),
            tenant=_decode_tenant_field(p.get("tenant")),
        ),
    ),
    "result": (
        ServeReply,
        lambda m, frames: {
            "request_id": m.request_id,
            "result": _encode_result(m.result, frames),
        },
        lambda p, allow, frames: ServeReply(
            request_id=_request_id(p),
            result=_decode_result(p.get("result"), allow_pickled=allow, frames=frames),
        ),
    ),
    "error": (
        ErrorReply,
        lambda m, frames: dataclasses.asdict(m),
        lambda p, allow, frames: _rebuild(ErrorReply, p, "error reply"),
    ),
    "stats": (
        StatsCall,
        lambda m, frames: dataclasses.asdict(m),
        lambda p, allow, frames: StatsCall(
            request_id=_request_id(p),
            drain_spans=bool(p.get("drain_spans", False)),
        ),
    ),
    "stats-result": (
        StatsReply,
        lambda m, frames: _stats_to_payload(m),
        lambda p, allow, frames: _stats_from_payload(p, allow),
    ),
    "ping": (
        PingCall,
        lambda m, frames: dataclasses.asdict(m),
        lambda p, allow, frames: PingCall(request_id=_request_id(p)),
    ),
    "pong": (
        PongReply,
        lambda m, frames: dataclasses.asdict(m),
        lambda p, allow, frames: _rebuild(PongReply, p, "pong reply"),
    ),
    "hello": (
        HelloCall,
        lambda m, frames: dataclasses.asdict(m),
        lambda p, allow, frames: _validate_hello(_rebuild(HelloCall, p, "hello")),
    ),
    "hello-reply": (
        HelloReply,
        lambda m, frames: dataclasses.asdict(m),
        lambda p, allow, frames: _validate_hello(_rebuild(HelloReply, p, "hello reply")),
    ),
    "control": (
        ControlCall,
        lambda m, frames: {
            "request_id": m.request_id,
            "action": m.action,
            "target": m.target,
            "refresh": m.refresh,
            **({"tenant": m.tenant} if m.tenant is not None else {}),
        },
        lambda p, allow, frames: _decode_control(p),
    ),
    "control-reply": (
        ControlReply,
        lambda m, frames: {
            "request_id": m.request_id,
            "report": dict(m.report),
        },
        lambda p, allow, frames: ControlReply(
            request_id=_request_id(p),
            report=(
                dict(p["report"]) if isinstance(p.get("report"), dict) else {}
            ),
        ),
    ),
    "shutdown": (
        ShutdownCall,
        lambda m, frames: dataclasses.asdict(m),
        lambda p, allow, frames: ShutdownCall(request_id=_request_id(p)),
    ),
}

_TYPE_OF_CLASS = {cls: tag for tag, (cls, _, _) in _MESSAGE_TYPES.items()}

#: Every message dataclass the protocol understands.
Message = (
    ServeCall
    | ServeReply
    | ErrorReply
    | StatsCall
    | StatsReply
    | PingCall
    | PongReply
    | HelloCall
    | HelloReply
    | ControlCall
    | ControlReply
    | ShutdownCall
)


def encode_message(message: Message, version: int = PROTOCOL_VERSION) -> bytes:
    """One message in its wire form at ``version``.

    ``version=1`` (the default, and what every pre-negotiation frame uses)
    is UTF-8 JSON inside the versioned envelope.  ``version=2`` is the
    binary container: magic, length-prefixed JSON envelope, then the
    message's out-of-band payload frames, each length-prefixed and declared
    in the envelope's ``"frames"`` list.  Only send v2 on connections that
    negotiated it — a v1 peer rejects the container.
    """
    tag = _TYPE_OF_CLASS.get(type(message))
    if tag is None:
        raise ProtocolError(f"cannot encode message of type {type(message).__name__}")
    _, encode, _ = _MESSAGE_TYPES[tag]
    if version == PROTOCOL_VERSION:
        envelope = {
            _ENVELOPE_KEY: PROTOCOL_VERSION,
            "type": tag,
            "payload": encode(message, None),
        }
        return json.dumps(envelope, sort_keys=True).encode("utf-8")
    if version == PROTOCOL_VERSION_2:
        frames: list[bytes] = []
        payload = encode(message, frames)
        envelope = {
            _ENVELOPE_KEY: PROTOCOL_VERSION_2,
            "type": tag,
            "payload": payload,
            "frames": [len(frame) for frame in frames],
        }
        head = json.dumps(envelope, sort_keys=True).encode("utf-8")
        parts = [FRAME_MAGIC, len(head).to_bytes(4, "big"), head]
        for frame in frames:
            parts.append(len(frame).to_bytes(4, "big"))
            parts.append(frame)
        return b"".join(parts)
    raise ProtocolError(f"cannot encode protocol version {version!r}")


def _decode_v2(data: bytes, allow_pickled: bool) -> Message:
    """Decode one binary-container message (the bytes after magic-detection).

    Every structural violation — a truncated envelope, a payload frame
    whose length prefix disagrees with the envelope's declaration, a
    truncated or over-long final frame, trailing garbage — raises
    :class:`~repro.errors.ProtocolError`; frames are handed to payload
    decoders as memoryview slices, so no byte of an artifact body is copied
    until its consumer asks for it.
    """
    view = memoryview(data)
    offset = len(FRAME_MAGIC)
    if len(view) < offset + 4:
        raise ProtocolError("truncated v2 message: missing envelope length")
    head_length = int.from_bytes(view[offset : offset + 4], "big")
    offset += 4
    if head_length == 0 or head_length > MAX_FRAME_BYTES:
        raise ProtocolError(f"implausible v2 envelope length {head_length}")
    if len(view) < offset + head_length:
        raise ProtocolError("truncated v2 message: envelope shorter than declared")
    try:
        envelope = json.loads(str(view[offset : offset + head_length], "utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable v2 envelope: {error}") from None
    offset += head_length
    if not isinstance(envelope, dict) or _ENVELOPE_KEY not in envelope:
        raise ProtocolError("v2 message is not a moma-serve envelope")
    version = envelope[_ENVELOPE_KEY]
    if version != PROTOCOL_VERSION_2:
        raise ProtocolError(
            f"v2 container carries envelope version {version!r}, expected "
            f"{PROTOCOL_VERSION_2}"
        )
    declared = envelope.get("frames", [])
    if not isinstance(declared, list) or not all(
        isinstance(length, int) and not isinstance(length, bool) and 0 <= length <= MAX_FRAME_BYTES
        for length in declared
    ):
        raise ProtocolError(f"malformed v2 frame table: {declared!r}")
    frames = []
    for index, length in enumerate(declared):
        if len(view) < offset + 4:
            raise ProtocolError(f"truncated v2 message: missing frame {index} length")
        prefixed = int.from_bytes(view[offset : offset + 4], "big")
        offset += 4
        if prefixed != length:
            raise ProtocolError(
                f"v2 frame {index} length mismatch: envelope declares {length}, "
                f"frame prefix says {prefixed}"
            )
        if len(view) < offset + length:
            raise ProtocolError(
                f"truncated v2 message: frame {index} shorter than declared"
            )
        frames.append(view[offset : offset + length])
        offset += length
    if offset != len(view):
        raise ProtocolError(
            f"v2 message carries {len(view) - offset} trailing bytes after its frames"
        )
    tag = envelope.get("type")
    if tag not in _MESSAGE_TYPES:
        raise ProtocolError(f"unknown message type {tag!r}")
    _, _, decode = _MESSAGE_TYPES[tag]
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        raise ProtocolError(f"message {tag!r} carries no payload object")
    return decode(payload, allow_pickled, tuple(frames))


def decode_message(data: bytes, allow_pickled: bool = False) -> Message:
    """Rebuild a message from its encoded bytes (either wire version).

    The leading bytes disambiguate: :data:`FRAME_MAGIC` selects the v2
    binary container, anything else is treated as a v1 JSON envelope.
    Rejects non-JSON v1 data, an envelope with an unknown version, and
    unknown message types — all with :class:`~repro.errors.ProtocolError`.
    ``allow_pickled`` is forwarded to :func:`decode_artifact` for result
    messages.
    """
    if bytes(data[: len(FRAME_MAGIC)]) == FRAME_MAGIC:
        return _decode_v2(data, allow_pickled)
    try:
        envelope = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable wire message: {error}") from None
    if not isinstance(envelope, dict) or _ENVELOPE_KEY not in envelope:
        raise ProtocolError("wire message is not a moma-serve envelope")
    version = envelope[_ENVELOPE_KEY]
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} (this build speaks "
            f"{PROTOCOL_VERSION} JSON envelopes and negotiates up to "
            f"{MAX_PROTOCOL_VERSION} in the handshake)"
        )
    tag = envelope.get("type")
    if tag not in _MESSAGE_TYPES:
        raise ProtocolError(f"unknown message type {tag!r}")
    _, _, decode = _MESSAGE_TYPES[tag]
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        raise ProtocolError(f"message {tag!r} carries no payload object")
    return decode(payload, allow_pickled, None)


# -- pre-encoded liveness probes ---------------------------------------------

#: A request-id value that cannot collide with real traffic, used once to
#: build the ping/pong byte templates below.
_TEMPLATE_SENTINEL = 987654321987654321


def _split_template(message: Message) -> tuple[bytes, bytes]:
    """(prefix, suffix) of the message's v1 bytes around the sentinel id."""
    encoded = encode_message(message)
    prefix, _, suffix = encoded.partition(str(_TEMPLATE_SENTINEL).encode("ascii"))
    return prefix, suffix


_PING_TEMPLATE = _split_template(PingCall(request_id=_TEMPLATE_SENTINEL))

_pong_templates: dict[tuple[int, int], tuple[bytes, bytes]] = {}


def encode_ping(request_id: int) -> bytes:
    """``encode_message(PingCall(request_id))`` from a pre-built template.

    Liveness probes fire every couple of seconds on every remote
    connection; splicing the request id into pre-encoded bytes skips the
    per-probe ``json.dumps(sort_keys=True)`` pass entirely.
    """
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ProtocolError(f"ping request_id must be an integer, got {request_id!r}")
    prefix, suffix = _PING_TEMPLATE
    return b"%b%d%b" % (prefix, request_id, suffix)


def encode_pong(request_id: int, shard_id: int, pid: int) -> bytes:
    """``encode_message(PongReply(...))`` from a per-(shard, pid) template.

    A shard answers every ping with the same ``shard_id``/``pid``, so the
    whole reply except the request id is encoded exactly once per process.
    """
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ProtocolError(f"pong request_id must be an integer, got {request_id!r}")
    template = _pong_templates.get((shard_id, pid))
    if template is None:
        template = _split_template(
            PongReply(request_id=_TEMPLATE_SENTINEL, shard_id=shard_id, pid=pid)
        )
        _pong_templates[(shard_id, pid)] = template
    prefix, suffix = template
    return b"%b%d%b" % (prefix, request_id, suffix)


# -- stream framing ----------------------------------------------------------


def write_message(stream: io.BufferedIOBase, message: Message) -> None:
    """Write one length-prefixed frame (4-byte big-endian length + message)."""
    data = encode_message(message)
    stream.write(len(data).to_bytes(4, "big") + data)
    stream.flush()


def _read_exact(stream, count: int) -> bytes:
    """Up to ``count`` bytes, looping over short reads; shorter only at EOF.

    ``BufferedReader.read`` over a pipe already blocks for the full count,
    but a raw or socket-backed stream may legally return fewer bytes per
    call — a single ``stream.read(n)`` is **not** a protocol-safe read.
    """
    data = bytearray()
    while len(data) < count:
        chunk = stream.read(count - len(data))
        if not chunk:  # b"" (EOF) or None (a non-blocking stream ran dry)
            break
        data.extend(chunk)
    return bytes(data)


def read_frame(stream: io.BufferedIOBase) -> bytes | None:
    """Read one length-prefixed frame's body; ``None`` on clean EOF.

    A short read inside a frame (the peer died mid-write) and an impossible
    length prefix both raise :class:`~repro.errors.ProtocolError`.  The
    length gate runs *before* any body allocation, so a corrupt prefix can
    never trigger a giant allocation.
    """
    prefix = _read_exact(stream, 4)
    if not prefix:
        return None
    if len(prefix) < 4:
        raise ProtocolError("truncated frame: short length prefix")
    length = int.from_bytes(prefix, "big")
    if length == 0 or length > MAX_FRAME_BYTES:
        raise ProtocolError(f"implausible frame length {length}")
    data = _read_exact(stream, length)
    if len(data) < length:
        raise ProtocolError(
            f"truncated frame: expected {length} bytes, got {len(data)}"
        )
    return data


def read_message(
    stream: io.BufferedIOBase, allow_pickled: bool = False
) -> Message | None:
    """Read one frame and decode it; ``None`` on clean EOF at a boundary."""
    frame = read_frame(stream)
    if frame is None:
        return None
    return decode_message(frame, allow_pickled=allow_pickled)


class StreamConnection:
    """A framed socket behind the ``multiprocessing.Connection`` byte API.

    Adapts one connected socket to the ``send_bytes`` / ``recv_bytes`` /
    ``close`` surface the shard loop and the supervisor's readers already
    speak, so pipe and TCP transports share every line of serving code.
    Frames are the stream framing above; ``recv_bytes`` raises ``EOFError``
    on a clean close (mirroring ``Connection``) and
    :class:`~repro.errors.ProtocolError` on a torn or corrupt frame.

    ``send_bytes`` and ``recv_bytes`` are each single-caller (one sender
    thread holding the caller's send lock, one reader thread), matching how
    both the shard loop and the supervisor use their pipes today.
    """

    def __init__(self, sock) -> None:
        self._socket = sock
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # AF_UNIX / socketpair transports have no Nagle to disable
        self._reader = sock.makefile("rb")
        self._writer = sock.makefile("wb")

    def settimeout(self, timeout: float | None) -> None:
        """Bound blocking reads/writes (used to fence the handshake)."""
        self._socket.settimeout(timeout)

    def send_bytes(self, data: bytes) -> None:
        """Write ``data`` as one frame; ``OSError``/``ValueError`` if closed."""
        self._writer.write(len(data).to_bytes(4, "big") + data)
        self._writer.flush()

    def send_many(self, payloads) -> None:
        """Write every payload as its own frame in one buffered flush.

        The coalescing fast path: many pending messages become one
        ``write``/``flush`` pair (one syscall burst, one TCP segment train)
        instead of one flush per message.  The receiver still sees ordinary
        individual frames — this changes only the write-side batching.
        """
        chunks = []
        for data in payloads:
            chunks.append(len(data).to_bytes(4, "big"))
            chunks.append(data)
        if not chunks:
            return
        self._writer.write(b"".join(chunks))
        self._writer.flush()

    def recv_bytes(self) -> bytes:
        """One frame's body; ``EOFError`` on clean close."""
        frame = read_frame(self._reader)
        if frame is None:
            raise EOFError("stream connection closed by peer")
        return frame

    def close(self) -> None:
        """Close both directions, unblocking any thread mid-``recv_bytes``."""
        try:
            self._socket.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        for closeable in (self._reader, self._writer, self._socket):
            try:
                closeable.close()
            except OSError:
                pass
