"""Startup pre-warming: compile every recorded winner before traffic.

``warm_server`` walks the server's tuning database and serves every record
that (a) was tuned for one of the server's devices, (b) carries the current
:data:`~repro.tune.db.TUNER_VERSION`, and (c) still matches its kernel
family's fingerprint.  Each serve runs through the normal front door, so the
winning configuration is looked up warm in the database (zero search), its
kernel is compiled into the session's content-addressed cache, and the
result lands in the server's resident table — after which identical traffic
is answered with no compilation and no database access at all.

Records that fail (b) or (c) are *stale*; warmup skips them (they would
trigger a fresh search, defeating the point of pre-warming) and reports
them, so operators can run :func:`repro.serve.invalidate.invalidate_stale`.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass

from repro.errors import ServingError
from repro.tenancy import DEFAULT_TENANT, validate_tenant
from repro.tune.db import TUNER_VERSION, TuningRecord
from repro.tune.space import BLAS, NTT
from repro.serve.server import KernelServer, ServeRequest

__all__ = ["WarmupEntry", "WarmupReport", "request_from_record", "warm_server"]

_NTT_KEY = re.compile(r"^ntt/(?P<op>[a-z_]+)/n(?P<size>\d+)/(?P<bits>\d+)b$")
_BLAS_KEY = re.compile(r"^blas/(?P<op>[a-z_]+)/e(?P<elements>\d+)/(?P<bits>\d+)b$")


def request_from_record(record: TuningRecord, target: str = "python_exec") -> ServeRequest:
    """Rebuild the serve request a tuning record answers.

    Parses the record's human-readable ``workload_key`` (the only workload
    identity a record stores besides the fingerprint); raises
    :class:`ServingError` for keys this version cannot parse.  Records tuned
    with a non-default ``modulus_bits`` rebuild under the paper convention
    and are then caught by the fingerprint check as stale.
    """
    match = _NTT_KEY.match(record.workload_key)
    if match:
        return ServeRequest(
            kind=NTT,
            bits=int(match.group("bits")),
            operation=match.group("op"),
            size=int(match.group("size")),
            device=record.device,
            target=target,
        )
    match = _BLAS_KEY.match(record.workload_key)
    if match:
        return ServeRequest(
            kind=BLAS,
            bits=int(match.group("bits")),
            operation=match.group("op"),
            elements=int(match.group("elements")),
            device=record.device,
            target=target,
        )
    raise ServingError(
        f"cannot parse workload key {record.workload_key!r} from the tuning database"
    )


@dataclass(frozen=True)
class WarmupEntry:
    """Outcome of one database record during warmup."""

    db_key: str
    workload_key: str
    device: str
    # "warmed" | "stale-version" | "stale-fingerprint" | "other-device"
    # | "other-tenant" | "error"
    status: str
    detail: str = ""
    tenant: str = DEFAULT_TENANT


@dataclass(frozen=True)
class WarmupReport:
    """What warmup did, record by record."""

    entries: tuple[WarmupEntry, ...]
    seconds: float

    def _count(self, status: str) -> int:
        return sum(1 for entry in self.entries if entry.status == status)

    @property
    def warmed(self) -> int:
        """Records compiled into the cache and the resident table."""
        return self._count("warmed")

    @property
    def stale(self) -> int:
        """Records skipped because their version or fingerprint is stale."""
        return self._count("stale-version") + self._count("stale-fingerprint")

    @property
    def skipped_other_device(self) -> int:
        """Records for devices this server does not serve."""
        return self._count("other-device")

    @property
    def skipped_other_tenant(self) -> int:
        """Records outside the tenant namespace a scoped pass asked for."""
        return self._count("other-tenant")

    @property
    def errors(self) -> int:
        """Records that failed to parse or compile."""
        return self._count("error")

    def to_payload(self) -> dict:
        """JSON-ready summary (what a ``ControlReply`` carries back)."""
        return {
            "kind": "warmup",
            "records": len(self.entries),
            "warmed": self.warmed,
            "stale": self.stale,
            "other_device": self.skipped_other_device,
            "other_tenant": self.skipped_other_tenant,
            "errors": self.errors,
            "seconds": self.seconds,
        }

    def report(self) -> str:
        """Human-readable summary (one line per non-warmed record)."""
        lines = [
            f"warmup: {self.warmed}/{len(self.entries)} records warmed in "
            f"{self.seconds * 1e3:.1f} ms "
            f"({self.stale} stale, {self.skipped_other_device} other-device, "
            f"{self.errors} errors)"
        ]
        for entry in self.entries:
            if entry.status != "warmed":
                detail = f" ({entry.detail})" if entry.detail else ""
                lines.append(
                    f"  {entry.status}: {entry.workload_key} on {entry.device}{detail}"
                )
        return "\n".join(lines)


def warm_server(
    server: KernelServer,
    target: str = "python_exec",
    tenant: str | None = None,
) -> WarmupReport:
    """Serve every live database record so later traffic is answered warm.

    Requests are submitted together (the worker pool compiles them
    concurrently) and then awaited, so warmup wall time is bounded by the
    slowest family, not the sum.

    Each record warms under **its own** tenant namespace, so the served
    result lands exactly where that tenant's traffic will look for it.
    ``tenant`` scopes the pass: when set, records of other namespaces are
    skipped (``"other-tenant"``) instead of warmed.
    """
    if tenant is not None:
        validate_tenant(tenant)
    started = time.perf_counter()
    entries: list[WarmupEntry] = []
    pending: list[tuple[TuningRecord, str, object]] = []
    for db_key, record in server.db.records().items():
        if tenant is not None and record.tenant != tenant:
            entries.append(
                WarmupEntry(
                    db_key,
                    record.workload_key,
                    record.device,
                    "other-tenant",
                    f"record belongs to tenant {record.tenant!r}",
                    tenant=record.tenant,
                )
            )
            continue
        if record.device not in server.devices:
            entries.append(
                WarmupEntry(
                    db_key,
                    record.workload_key,
                    record.device,
                    "other-device",
                    tenant=record.tenant,
                )
            )
            continue
        if record.tuner_version != TUNER_VERSION:
            entries.append(
                WarmupEntry(
                    db_key,
                    record.workload_key,
                    record.device,
                    "stale-version",
                    f"record v{record.tuner_version}, tuner v{TUNER_VERSION}",
                    tenant=record.tenant,
                )
            )
            continue
        try:
            request = request_from_record(record, target=target)
            if request.workload().fingerprint() != record.fingerprint:
                entries.append(
                    WarmupEntry(
                        db_key,
                        record.workload_key,
                        record.device,
                        "stale-fingerprint",
                        "kernel family changed since tuning",
                        tenant=record.tenant,
                    )
                )
                continue
            pending.append(
                (record, db_key, server.submit(request, tenant=record.tenant))
            )
        except ServingError as error:
            entries.append(
                WarmupEntry(
                    db_key,
                    record.workload_key,
                    record.device,
                    "error",
                    str(error),
                    tenant=record.tenant,
                )
            )
    for record, db_key, future in pending:
        try:
            result = future.result()
            detail = "tuned from database" if result.from_database else "re-tuned"
            entries.append(
                WarmupEntry(
                    db_key,
                    record.workload_key,
                    record.device,
                    "warmed",
                    detail,
                    tenant=record.tenant,
                )
            )
        except Exception as error:  # noqa: BLE001 - reported, not fatal
            entries.append(
                WarmupEntry(
                    db_key,
                    record.workload_key,
                    record.device,
                    "error",
                    str(error),
                    tenant=record.tenant,
                )
            )
    return WarmupReport(entries=tuple(entries), seconds=time.perf_counter() - started)
