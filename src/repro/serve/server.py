"""The long-running kernel server: one shared compiler, many requesters.

A :class:`KernelServer` owns one thread-safe :class:`CompilerSession` and one
:class:`TuningDatabase` and serves compile/tune requests concurrently:

* **Request front door** — :meth:`KernelServer.submit` returns a future;
  :meth:`KernelServer.serve` blocks for the result.  Work runs on a bounded
  worker pool.
* **Resident table (pre-warmed cache)** — every fully-served result is kept
  by request key; an identical later request is answered *warm*: no kernel
  build, no compilation, no tuning-database access.  :mod:`repro.serve.warmup`
  fills this table from the tuning database before traffic arrives.
* **In-flight deduplication** — concurrent requests for the same key share
  one compilation: the first creates the future, the rest attach to it.
* **Tuning micro-batches** — cold requests that need tuning are queued and
  drained by a dedicated batcher thread that groups them by device, runs one
  :class:`~repro.tune.Autotuner` per device group, and persists the database
  once per batch (merge-on-save makes that safe across processes).

The server is the subsystem the ROADMAP's "tuned-kernel serving" item asks
for: `repro.tune` finds and remembers winners; this module serves them to
heavy traffic without re-paying cold compilation per process or per request.
"""

from __future__ import annotations

import contextvars
import dataclasses
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from repro.errors import ServingError
from repro.core.driver import CompilerSession
from repro.core.driver.cache import ContentAddressedCache
from repro.kernels.config import KernelConfig
from repro.obs import trace as tracing
from repro.tenancy import DEFAULT_TENANT, qualify_key, split_tenant, validate_tenant
from repro.tune.db import TuningDatabase
from repro.tune.space import BLAS, NTT, Workload
from repro.tune.tuner import Autotuner, TuningResult
from repro.serve.metrics import MetricsSnapshot, ServerMetrics

__all__ = ["ServeRequest", "ServeResult", "KernelServer", "serve_key"]


def serve_key(tenant: str, request: ServeRequest) -> str:
    """THE tenant-qualified serve key — the only place its format lives.

    Every resident-table entry, in-flight-dedup slot, and eviction call
    keys through this helper: the :data:`~repro.tenancy.DEFAULT_TENANT`
    namespace is the bare :meth:`ServeRequest.key` (identical to the
    pre-tenant format), and any other tenant's key carries a ``tenant::``
    prefix.  Hand-building ``f"{tenant}::{key}"`` anywhere else is a bug —
    the format changed once already (this refactor) and call sites that
    bypassed the helper were exactly the ones that broke.
    """
    return qualify_key(tenant, request.key())


@dataclass(frozen=True)
class ServeRequest:
    """One kernel request: what to serve, for which device, on which target.

    Attributes:
        kind: ``"ntt"`` or ``"blas"``.
        bits: logical operand bit-width.
        operation: butterfly variant (NTT) or BLAS operation; ``None`` picks
            the kind's default (``cooley_tukey`` / ``vmul``).
        size: transform length for NTT requests.
        elements: vector elements for BLAS requests.
        modulus_bits: modulus width; ``None`` follows the paper's ``bits - 4``
            convention.
        device: device the tuned configuration is optimized for.
        target: backend artifact to serve (``python_exec``/``cuda``/``c99``).
        tune: serve the autotuned winner (True) or the pinned configuration
            below (False).
        word_bits: machine word width used when ``tune=False``.
        multiplication: multiplication algorithm used when ``tune=False``.
    """

    kind: str
    bits: int
    operation: str | None = None
    size: int = 4096
    elements: int = 1 << 20
    modulus_bits: int | None = None
    device: str = "rtx4090"
    target: str = "python_exec"
    tune: bool = True
    word_bits: int = 64
    multiplication: str = "schoolbook"

    @classmethod
    def ntt(cls, bits: int, size: int = 4096, **kwargs) -> ServeRequest:
        """An NTT butterfly request."""
        return cls(kind=NTT, bits=bits, size=size, **kwargs)

    @classmethod
    def blas(cls, operation: str, bits: int, **kwargs) -> ServeRequest:
        """A BLAS operation request."""
        return cls(kind=BLAS, bits=bits, operation=operation, **kwargs)

    def resolved_operation(self) -> str:
        """The operation, with the per-kind default applied."""
        if self.operation is not None:
            return self.operation
        return "cooley_tukey" if self.kind == NTT else "vmul"

    def workload(self) -> Workload:
        """The tuner workload this request names (validates the request)."""
        return Workload(
            kind=self.kind,
            bits=self.bits,
            operation=self.resolved_operation(),
            size=self.size,
            elements=self.elements,
            modulus_bits=self.modulus_bits,
        )

    def pinned_config(self) -> KernelConfig:
        """The explicit configuration served when ``tune=False``."""
        return KernelConfig(
            bits=self.bits,
            modulus_bits=self.modulus_bits,
            word_bits=self.word_bits,
            multiplication=self.multiplication,
        )

    def key(self) -> str:
        """The serve key: requests with equal keys share one served kernel."""
        mode = "tuned" if self.tune else f"pin-{self.multiplication}-w{self.word_bits}"
        return (
            f"{self.workload().key}::m{self.modulus_bits}"
            f"::{self.device}::{self.target}::{mode}"
        )


@dataclass(frozen=True)
class ServeResult:
    """One served kernel.

    Attributes:
        request: the request this result answers.
        artifact: the target's artifact (``CompiledKernel`` for
            ``python_exec``, source text for ``cuda``/``c99``).
        config: the kernel configuration the artifact was generated with.
        fingerprint: the workload's kernel-family fingerprint.
        cache_key: the session cache key of the artifact (invalidation evicts
            by this key).
        tuning: the tuning result behind ``config`` (``None`` for pinned
            requests).
        warm: served from the resident table (no work performed).
        latency_s: wall time from submit to result for *this* serve.
    """

    request: ServeRequest
    artifact: object
    config: KernelConfig
    fingerprint: str
    cache_key: str
    tuning: TuningResult | None
    warm: bool
    latency_s: float

    @property
    def from_database(self) -> bool:
        """Whether the tuned configuration came from a warm database record."""
        return self.tuning is not None and self.tuning.from_database


class _TuneTicket:
    """One queued tuning request awaiting a micro-batch."""

    __slots__ = ("workload", "device", "tenant", "future")

    def __init__(
        self, workload: Workload, device: str, tenant: str = DEFAULT_TENANT
    ) -> None:
        self.workload = workload
        self.device = device
        self.tenant = tenant
        self.future: Future = Future()


class KernelServer:
    """Serves tuned, compiled kernels from shared caches to many threads.

    Args:
        session: the shared compiler session (a fresh one by default); its
            content-addressed cache is the artifact store.
        db: the shared tuning database (in-memory by default; pass a
            file-backed one to persist winners across restarts).
        devices: device names this server serves; warmup compiles recorded
            winners for these devices only, and requests default to the
            first entry.
        workers: worker-pool threads fulfilling cold requests.
        tune_batch_window_s: how long the tuning batcher waits for more
            requests to join a micro-batch once one is pending.
        tune_batch_max: largest tuning micro-batch drained at once.
        resident_capacity: LRU bound on the resident table — the number of
            distinct served results kept warm.  Least-recently-requested
            results fall out first; the next identical request is cold again
            (usually still a session-cache hit), so memory stays finite under
            arbitrarily diverse traffic.
        tracer: the :class:`~repro.obs.trace.Tracer` this server records
            into.  Defaults to a never-sampling tracer — which still records
            traces *adopted* from the wire (a traced supervisor upstream),
            since that sampling decision was made by the sender.
    """

    def __init__(
        self,
        session: CompilerSession | None = None,
        db: TuningDatabase | None = None,
        devices: tuple[str, ...] = ("rtx4090",),
        workers: int = 4,
        tune_batch_window_s: float = 0.02,
        tune_batch_max: int = 16,
        resident_capacity: int = 4096,
        tracer: tracing.Tracer | None = None,
    ) -> None:
        if not devices:
            raise ServingError("a kernel server needs at least one device")
        if workers < 1:
            raise ServingError(f"worker count must be positive, got {workers}")
        self.session = session if session is not None else CompilerSession()
        self.db = db if db is not None else TuningDatabase()
        self.devices = tuple(devices)
        self.metrics = ServerMetrics()
        self.tracer = tracer if tracer is not None else tracing.Tracer(sample_rate=0.0)
        self.tune_batch_window_s = tune_batch_window_s
        self.tune_batch_max = tune_batch_max
        self._lock = threading.RLock()
        self._resident = ContentAddressedCache(maxsize=resident_capacity)
        self._inflight: dict[str, Future] = {}
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._tune_queue: list[_TuneTicket] = []
        self._tune_cv = threading.Condition()
        self._tune_thread = threading.Thread(
            target=self._tune_loop, name="repro-serve-tuner", daemon=True
        )
        self._tune_thread.start()

    # -- front door ---------------------------------------------------------

    def submit(
        self,
        request: ServeRequest,
        deadline_ms: float | None = None,
        tenant: str = DEFAULT_TENANT,
    ) -> Future:
        """Enqueue a request; the future resolves to a :class:`ServeResult`.

        Warm requests resolve immediately from the resident table; a request
        whose key is already in flight shares that request's future (and its
        single compilation).

        ``tenant`` namespaces everything the request touches: the resident
        and in-flight keys (:func:`serve_key`), the tuning-database lookup
        (tenant namespace with default fallback), and per-tenant metrics.
        An invalid id raises :class:`ValueError` before any state changes.

        ``deadline_ms`` keeps the front door signature-compatible with
        :meth:`~repro.serve.supervisor.ShardSupervisor.submit`.  A single
        in-process server has no wire to shed late results on — its caller
        holds the future directly — so the budget is accepted for interface
        parity and deadline accounting stays on the caller's side (the
        traffic-replay harness measures misses from observed latency).
        """
        del deadline_ms  # enforced only on the sharded path
        validate_tenant(tenant)
        started = time.perf_counter()
        # One context-variable read decides whether this request is traced;
        # the untraced path pays nothing further for instrumentation.
        traced = tracing.current() is not None
        wall_started = time.time() if traced else 0.0
        # serve_key validates the request before any state changes.
        key = serve_key(tenant, request)
        self.metrics.record_request(tenant)
        with self._lock:
            if self._closed:
                raise ServingError("kernel server is closed")
            resident = self._resident.get(key)
            if resident is not None:
                latency = time.perf_counter() - started
                if traced:
                    tracing.record("cache.lookup", wall_started, latency, hit=True)
                self.metrics.record_warm(latency, tenant)
                future: Future = Future()
                future.set_result(
                    dataclasses.replace(resident, warm=True, latency_s=latency)
                )
                return future
            inflight = self._inflight.get(key)
            if inflight is not None:
                if traced:
                    tracing.record(
                        "serve.dedup", wall_started, time.perf_counter() - started
                    )
                self.metrics.record_dedup(tenant)
                return inflight
            future = Future()
            self._inflight[key] = future
            # Dispatch while still holding the lock: close() flips _closed
            # under the same lock before shutting the pool down, so a request
            # that passed the closed check above cannot race the shutdown
            # (and leak an in-flight future its dedup'd waiters hang on).
            try:
                if traced:
                    # Copy the caller's context so the worker thread inherits
                    # the active trace — the pool thread's own context never
                    # carries one.
                    context = contextvars.copy_context()
                    self._pool.submit(
                        context.run,
                        self._fulfil,
                        request,
                        key,
                        future,
                        started,
                        wall_started,
                        tenant,
                    )
                else:
                    self._pool.submit(
                        self._fulfil, request, key, future, started, 0.0, tenant
                    )
            except RuntimeError:
                self._inflight.pop(key, None)
                raise ServingError("kernel server is closed") from None
        return future

    def serve(
        self, request: ServeRequest, tenant: str = DEFAULT_TENANT
    ) -> ServeResult:
        """Serve one request, blocking until the kernel is ready."""
        return self.submit(request, tenant=tenant).result()

    # -- fulfilment ---------------------------------------------------------

    def _fulfil(
        self,
        request: ServeRequest,
        key: str,
        future: Future,
        started: float,
        submitted_wall: float = 0.0,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        try:
            # Queue wait: submit time to worker pickup.  record() no-ops when
            # this worker inherited no trace context.
            tracing.record(
                "serve.queue", submitted_wall, time.perf_counter() - started
            )
            workload = request.workload()
            tuning: TuningResult | None = None
            if request.tune:
                with tracing.span("serve.tune", device=request.device, tenant=tenant):
                    tuning = self._tune_batched(workload, request.device, tenant)
                config = tuning.config
            else:
                config = request.pinned_config()
            kernel = workload.build(config)
            options = config.rewrite_options()
            cache_key = self.session.cache_key(
                kernel, target=request.target, options=options
            )
            with tracing.span("serve.compile", target=request.target):
                artifact = self.session.compile(
                    kernel, target=request.target, options=options
                )
            latency = time.perf_counter() - started
            result = ServeResult(
                request=request,
                artifact=artifact,
                config=config,
                fingerprint=workload.fingerprint(),
                cache_key=cache_key,
                tuning=tuning,
                warm=False,
                latency_s=latency,
            )
            with self._lock:
                self._resident.put(key, result)
                self._inflight.pop(key, None)
            self.metrics.record_cold(latency, tenant)
            future.set_result(result)
        except BaseException as error:  # noqa: BLE001 - relayed via the future
            with self._lock:
                self._inflight.pop(key, None)
            self.metrics.record_error(tenant)
            future.set_exception(error)

    # -- tuning micro-batches -----------------------------------------------

    def _tune_batched(
        self, workload: Workload, device: str, tenant: str = DEFAULT_TENANT
    ) -> TuningResult:
        ticket = _TuneTicket(workload, device, tenant)
        with self._tune_cv:
            if self._closed:
                raise ServingError("kernel server is closed")
            self._tune_queue.append(ticket)
            self._tune_cv.notify_all()
        return ticket.future.result()

    def _drain_batch(self) -> list[_TuneTicket]:
        with self._tune_cv:
            while not self._tune_queue and not self._closed:
                self._tune_cv.wait()
            if not self._tune_queue:
                return []
            # Batch window: once one request is pending, wait briefly so
            # concurrent cold requests join the same micro-batch.
            deadline = time.monotonic() + self.tune_batch_window_s
            while len(self._tune_queue) < self.tune_batch_max and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._tune_cv.wait(remaining)
            batch = self._tune_queue[: self.tune_batch_max]
            del self._tune_queue[: self.tune_batch_max]
            return batch

    def _tune_loop(self) -> None:
        while True:
            batch = self._drain_batch()
            if not batch:
                if self._closed:
                    return
                continue
            # Group by device: each group shares one Autotuner sweep, and the
            # database is persisted once per batch, not once per record.
            # Tickets of different tenants share a batch — each tune call
            # carries its own ticket's namespace.
            by_device: dict[str, list[_TuneTicket]] = {}
            for ticket in batch:
                by_device.setdefault(ticket.device, []).append(ticket)
            for device, tickets in sorted(by_device.items()):
                tuner = Autotuner(session=self.session, db=self.db, save=False)
                for ticket in tickets:
                    try:
                        ticket.future.set_result(
                            tuner.tune(ticket.workload, device, tenant=ticket.tenant)
                        )
                    except BaseException as error:  # noqa: BLE001
                        ticket.future.set_exception(error)
            try:
                self.db.save()
            except Exception:  # noqa: BLE001
                # The winners are already resolved and live in memory; the
                # next batch's save retries.  A dead batcher thread would
                # hang every later tuned request, so never propagate.
                pass
            self.metrics.record_tune_batch(len(batch))

    # -- warmup / invalidation ----------------------------------------------

    def warm(self, target: str | None = None, tenant: str | None = None):
        """Pre-compile every recorded winner for this server's devices.

        ``tenant`` scopes the pass to one namespace (``None`` warms every
        namespace).  Returns the :class:`~repro.serve.warmup.WarmupReport`;
        see :func:`repro.serve.warmup.warm_server`.
        """
        from repro.serve.warmup import warm_server

        if target is None:
            return warm_server(self, tenant=tenant)
        return warm_server(self, target=target, tenant=tenant)

    def invalidate(self, refresh: bool = False, tenant: str | None = None):
        """Drop stale tuning records and their served kernels.

        ``tenant`` scopes the pass to one namespace (``None`` considers
        every namespace).  Returns the
        :class:`~repro.serve.invalidate.InvalidationReport`; see
        :func:`repro.serve.invalidate.invalidate_stale`.
        """
        from repro.serve.invalidate import invalidate_stale

        return invalidate_stale(self, refresh=refresh, tenant=tenant)

    def evict_resident(self, key: str) -> bool:
        """Drop one resident result by serve key; True when present."""
        with self._lock:
            return self._resident.discard(key)

    def evict_tenant(self, tenant: str) -> int:
        """Drop every resident result in one tenant's namespace.

        Returns how many entries were evicted.  The default namespace
        holds every key without a tenant prefix (:func:`serve_key`), so
        evicting ``"default"`` clears exactly the untenanted residents.
        """
        validate_tenant(tenant)
        with self._lock:
            keys = [
                key
                for key, _ in self._resident.items()
                if split_tenant(key)[0] == tenant
            ]
            for key in keys:
                self._resident.discard(key)
            return len(keys)

    # -- observability ------------------------------------------------------

    @property
    def resident_count(self) -> int:
        """Served results currently held in the resident table."""
        with self._lock:
            return len(self._resident)

    @property
    def queue_depth(self) -> int:
        """Requests submitted but not yet fulfilled."""
        with self._lock:
            return len(self._inflight)

    def resident_results(self) -> dict[str, ServeResult]:
        """A snapshot of the resident table (serve key → result)."""
        with self._lock:
            return dict(self._resident.items())

    def metrics_snapshot(self) -> MetricsSnapshot:
        """Counters plus the current queue/resident gauges."""
        return self.metrics.snapshot(
            queue_depth=self.queue_depth, resident_kernels=self.resident_count
        )

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Stop accepting requests and drain the workers and the batcher."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        with self._tune_cv:
            self._tune_cv.notify_all()
        self._tune_thread.join(timeout=60.0)
        self._pool.shutdown(wait=True)

    def __enter__(self) -> KernelServer:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
