"""``repro.serve`` — the long-running tuned-kernel serving subsystem.

``repro.tune`` (the autotuner) finds and remembers the winning kernel
configuration per (kernel family, device); this package *serves* those
winners to heavy concurrent traffic from one long-running process:

* :mod:`repro.serve.server` — :class:`KernelServer`: a thread-safe front
  door over one shared :class:`~repro.core.driver.CompilerSession` and
  :class:`~repro.tune.TuningDatabase`, with a worker pool, per-key in-flight
  deduplication, a resident table of served results, and micro-batching of
  tuning requests grouped by device;
* :mod:`repro.serve.warmup` — startup pre-warming: every recorded winner is
  compiled into the kernel cache before traffic arrives, so first requests
  are already warm;
* :mod:`repro.serve.invalidate` — live invalidation: records stale by
  :data:`~repro.tune.db.TUNER_VERSION` or kernel-family fingerprint are
  dropped (with their cached artifacts) and optionally re-tuned;
* :mod:`repro.serve.client` — :class:`ServedNTT` / :class:`ServedBlasEngine`
  and the ``serve=`` hook behind the existing frontends;
* :mod:`repro.serve.metrics` — request/dedup/warm/cold counters and latency
  percentiles behind :meth:`KernelServer.metrics_snapshot`.

``python -m repro.serve --warmup --once ntt --bits 256 --stats`` drives a
server from the command line; ``--demo N`` generates benchmark traffic.
"""

from repro.serve.client import (
    ServedBlasEngine,
    ServedNTT,
    serve_blas_kernel,
    serve_blas_kernels,
    serve_ntt_kernel,
)
from repro.serve.invalidate import (
    InvalidationReport,
    StaleRecord,
    find_stale,
    invalidate_stale,
)
from repro.serve.metrics import MetricsSnapshot, ServerMetrics
from repro.serve.server import KernelServer, ServeRequest, ServeResult
from repro.serve.warmup import (
    WarmupEntry,
    WarmupReport,
    request_from_record,
    warm_server,
)

__all__ = [
    "KernelServer",
    "ServeRequest",
    "ServeResult",
    "MetricsSnapshot",
    "ServerMetrics",
    "WarmupEntry",
    "WarmupReport",
    "request_from_record",
    "warm_server",
    "InvalidationReport",
    "StaleRecord",
    "find_stale",
    "invalidate_stale",
    "ServedNTT",
    "ServedBlasEngine",
    "serve_ntt_kernel",
    "serve_blas_kernel",
    "serve_blas_kernels",
]
