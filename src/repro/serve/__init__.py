"""``repro.serve`` — the long-running tuned-kernel serving subsystem.

``repro.tune`` (the autotuner) finds and remembers the winning kernel
configuration per (kernel family, device); this package *serves* those
winners to heavy concurrent traffic from one long-running process:

* :mod:`repro.serve.server` — :class:`KernelServer`: a thread-safe front
  door over one shared :class:`~repro.core.driver.CompilerSession` and
  :class:`~repro.tune.TuningDatabase`, with a worker pool, per-key in-flight
  deduplication, a resident table of served results, and micro-batching of
  tuning requests grouped by device;
* :mod:`repro.serve.warmup` — startup pre-warming: every recorded winner is
  compiled into the kernel cache before traffic arrives, so first requests
  are already warm;
* :mod:`repro.serve.invalidate` — live invalidation: records stale by
  :data:`~repro.tune.db.TUNER_VERSION` or kernel-family fingerprint are
  dropped (with their cached artifacts) and optionally re-tuned;
* :mod:`repro.serve.client` — :class:`ServedNTT` / :class:`ServedBlasEngine`
  and the ``serve=`` hook behind the existing frontends (both accept a
  :class:`KernelServer` or a :class:`ShardSupervisor`);
* :mod:`repro.serve.metrics` — request/dedup/warm/cold counters, latency
  percentiles, and the fixed-bucket histograms the shard tier merges.

One process stops scaling eventually; the **sharded tier** spreads kernel
families across server processes:

* :mod:`repro.serve.protocol` — the versioned wire protocol
  (``ServeCall``/``ServeReply``/``StatsCall``/...; artifacts as source text
  or pickled ``python_exec`` kernels; the TCP handshake, trust levels, and
  the v1 JSON / v2 binary-frame encodings negotiated per connection);
* :mod:`repro.serve.shard` — :class:`ShardRouter` (consistent hashing of
  (kernel-family fingerprint, device) onto shards), the shard process
  main loop, and :func:`serve_shard_tcp` (the same loop behind a TCP
  listener, source-only trust by default);
* :mod:`repro.serve.supervisor` — :class:`ShardSupervisor`: spawns,
  monitors and restarts shard processes (and connects to remote TCP
  shards), each local shard with its own tuning-db replica, and
  aggregates metrics across them into a :class:`ClusterStats`.

``python -m repro.serve --warmup --once ntt --bits 256 --stats`` drives a
single-process server from the command line; ``--shards N`` serves the same
actions through N shard processes; ``--listen``/``--connect`` move the ring
onto TCP sockets; ``--demo [N]`` generates mixed traffic.
See ``docs/serving.md`` and ``docs/wire-protocol.md`` for the full story.
"""

from repro.serve.client import (
    ServedBlasEngine,
    ServedNTT,
    serve_blas_kernel,
    serve_blas_kernels,
    serve_many,
    serve_ntt_kernel,
)
from repro.serve.invalidate import (
    InvalidationReport,
    StaleRecord,
    find_stale,
    invalidate_stale,
)
from repro.serve.metrics import MetricsSnapshot, ServerMetrics, WireSnapshot
from repro.serve.protocol import (
    MAX_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    PROTOCOL_VERSION_2,
    TRUST_PICKLED,
    TRUST_SOURCE,
    ShardStats,
)
from repro.serve.server import KernelServer, ServeRequest, ServeResult
from repro.serve.shard import ShardRouter, serve_shard_tcp
from repro.serve.supervisor import ClusterStats, ShardSupervisor
from repro.serve.warmup import (
    WarmupEntry,
    WarmupReport,
    request_from_record,
    warm_server,
)

__all__ = [
    "KernelServer",
    "ServeRequest",
    "ServeResult",
    "PROTOCOL_VERSION",
    "PROTOCOL_VERSION_2",
    "MAX_PROTOCOL_VERSION",
    "TRUST_SOURCE",
    "TRUST_PICKLED",
    "ShardStats",
    "WireSnapshot",
    "ShardRouter",
    "serve_shard_tcp",
    "ClusterStats",
    "ShardSupervisor",
    "MetricsSnapshot",
    "ServerMetrics",
    "WarmupEntry",
    "WarmupReport",
    "request_from_record",
    "warm_server",
    "InvalidationReport",
    "StaleRecord",
    "find_stale",
    "invalidate_stale",
    "ServedNTT",
    "ServedBlasEngine",
    "serve_many",
    "serve_ntt_kernel",
    "serve_blas_kernel",
    "serve_blas_kernels",
]
