"""Serving observability: request counters and latency percentiles.

A :class:`ServerMetrics` lives inside every :class:`~repro.serve.KernelServer`
and classifies each request into exactly one of four outcomes:

* **warm** — answered from the server's resident table: no compilation, no
  tuning-database access, no worker dispatch (the steady state after warmup);
* **dedup** — attached to an identical request already in flight, sharing its
  single compilation;
* **cold** — went through the full path (tuning lookup/search + compilation);
* **error** — the request raised.

Latencies are recorded for warm and cold serves (dedup'd requests resolve
with their leader); :meth:`snapshot` folds everything into an immutable
:class:`MetricsSnapshot` with p50/p95 latency, suitable for logging or the
``--stats`` CLI flag.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field

from repro.tenancy import DEFAULT_TENANT

__all__ = [
    "MetricsSnapshot",
    "ServerMetrics",
    "WireProfile",
    "WireSnapshot",
    "HISTOGRAM_BUCKET_BOUNDS_MS",
    "latency_histogram",
    "percentile_from_histogram",
]

#: Latency samples retained per class (oldest dropped first); bounds memory
#: on a long-running server while keeping the percentiles current.
LATENCY_WINDOW = 4096

#: Upper bucket bounds (milliseconds) of the fixed latency histogram the
#: wire protocol ships between shards: log-2 spaced from 1 µs to ~17 s, with
#: one implicit overflow bucket at the end.  The bounds being *fixed* is what
#: makes per-shard histograms directly summable at the supervisor.
HISTOGRAM_BUCKET_BOUNDS_MS = tuple(0.001 * (1 << i) for i in range(25))


def _percentile(samples: tuple[float, ...], q: float) -> float:
    """The ``q``-quantile (0 < q <= 1) by the nearest-rank method, or 0.0."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def latency_histogram(samples_s: tuple[float, ...]) -> tuple[int, ...]:
    """Bucket latency samples (seconds) into the fixed histogram.

    Returns one count per bound in :data:`HISTOGRAM_BUCKET_BOUNDS_MS` plus a
    final overflow bucket.  Histograms from different servers can be merged
    by element-wise addition, which is how the shard supervisor computes
    global percentiles without shipping raw samples.
    """
    counts = [0] * (len(HISTOGRAM_BUCKET_BOUNDS_MS) + 1)
    for sample in samples_s:
        ms = sample * 1e3
        for index, bound in enumerate(HISTOGRAM_BUCKET_BOUNDS_MS):
            if ms <= bound:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
    return tuple(counts)


def percentile_from_histogram(counts: tuple[int, ...], q: float) -> float:
    """Approximate the ``q``-quantile (ms) of a bucketed latency histogram.

    ``q`` is a fraction in ``[0.0, 1.0]`` — passing a percent (``q=95``)
    raises ``ValueError`` instead of silently reporting the maximum bucket.
    ``q=0.0`` reports the first occupied bucket's bound (the minimum, up to
    bucket resolution) and ``q=1.0`` the last occupied one; an empty (or
    all-zero) histogram reports 0.0.  Counts beyond the known bounds —
    including the overflow bucket — report the largest *finite* bound, so
    the result never indexes past :data:`HISTOGRAM_BUCKET_BOUNDS_MS`.

    Returns the upper bound of the bucket holding the nearest-rank sample.
    The approximation error is bounded by the log-2 bucket spacing, which
    is plenty for the p50/p95 the stats report shows.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be a fraction in [0, 1], got {q!r}")
    total = sum(counts)
    if not total:
        return 0.0
    rank = max(1, math.ceil(q * total))
    seen = 0
    for index, count in enumerate(counts):
        seen += count
        if seen >= rank:
            bounded = min(index, len(HISTOGRAM_BUCKET_BOUNDS_MS) - 1)
            return HISTOGRAM_BUCKET_BOUNDS_MS[bounded]
    # Unreachable while rank <= total, but a malformed counts iterable
    # (negative entries) must still not index past the last bucket.
    return HISTOGRAM_BUCKET_BOUNDS_MS[-1]


@dataclass(frozen=True)
class MetricsSnapshot:
    """One immutable view of a server's counters.

    Attributes:
        requests: every request received (sum of the four outcome classes).
        warm_serves: requests answered from the resident table.
        cold_serves: requests that went through tuning + compilation.
        dedup_hits: requests that shared an in-flight identical request.
        errors: requests that raised.
        tune_batches: micro-batches the tuning batcher executed.
        batched_tunes: tuning requests processed inside those batches.
        queue_depth: in-flight (submitted, unfinished) requests right now.
        resident_kernels: fully-served results held in the resident table.
        p50_latency_ms: median serve latency (warm + cold samples).
        p95_latency_ms: 95th-percentile serve latency.
        warm_p50_latency_ms: median latency of warm serves alone.
        cold_p50_latency_ms: median latency of cold serves alone.
        tenants: per-tenant outcome breakdown (see
            :meth:`ServerMetrics.tenant_breakdown`); empty when only the
            default tenant has been seen, so untenanted deployments are
            byte-identical to pre-tenancy snapshots on the wire.
    """

    requests: int
    warm_serves: int
    cold_serves: int
    dedup_hits: int
    errors: int
    tune_batches: int
    batched_tunes: int
    queue_depth: int
    resident_kernels: int
    p50_latency_ms: float
    p95_latency_ms: float
    warm_p50_latency_ms: float
    cold_p50_latency_ms: float
    tenants: dict = field(default_factory=dict)

    @property
    def warm_rate(self) -> float:
        """Fraction of served requests answered warm (0.0 when unused)."""
        served = self.warm_serves + self.cold_serves
        return self.warm_serves / served if served else 0.0

    def report(self) -> str:
        """Human-readable multi-line summary (the ``--stats`` output)."""
        return "\n".join(
            [
                f"requests      {self.requests} "
                f"(warm {self.warm_serves}, cold {self.cold_serves}, "
                f"dedup {self.dedup_hits}, errors {self.errors})",
                f"warm rate     {self.warm_rate * 100:.1f}%",
                f"tuning        {self.batched_tunes} tunes in {self.tune_batches} batches",
                f"queue depth   {self.queue_depth} in flight, "
                f"{self.resident_kernels} resident kernels",
                f"latency       p50 {self.p50_latency_ms:.3f} ms, "
                f"p95 {self.p95_latency_ms:.3f} ms "
                f"(warm p50 {self.warm_p50_latency_ms:.3f} ms, "
                f"cold p50 {self.cold_p50_latency_ms:.3f} ms)",
            ]
        )


@dataclass(frozen=True)
class WireSnapshot:
    """One immutable view of the supervisor's wire-path costs.

    Attributes:
        messages_sent: request messages encoded and enqueued for shards.
        messages_received: reply messages decoded from shards.
        flushes: socket/pipe flush operations that carried those messages
            (coalescing shows up as ``messages_sent / flushes`` > 1).
        bytes_sent: encoded request bytes handed to transports.
        bytes_received: reply bytes pulled off transports.
        encode_s: wall time spent in ``encode_message`` on the warm path.
        decode_s: wall time spent in ``decode_message`` on reply frames.
        route_s: wall time spent picking a shard in the router.
        flush_s: wall time spent writing/flushing batches to transports.
    """

    messages_sent: int
    messages_received: int
    flushes: int
    bytes_sent: int
    bytes_received: int
    encode_s: float
    decode_s: float
    route_s: float
    flush_s: float

    @property
    def coalescing_ratio(self) -> float:
        """Mean messages per flush (1.0 = no batching; 0.0 when unused)."""
        return self.messages_sent / self.flushes if self.flushes else 0.0

    def delta(self, since: "WireSnapshot") -> "WireSnapshot":
        """The activity *between* two snapshots of the same profile.

        Snapshots are monotonic totals since the supervisor started, so a
        caller polling ``--stats`` repeatedly must difference consecutive
        snapshots rather than re-reading the totals as fresh activity:

            before = supervisor.wire_snapshot()
            ...
            window = supervisor.wire_snapshot().delta(before)
        """
        return WireSnapshot(
            messages_sent=self.messages_sent - since.messages_sent,
            messages_received=self.messages_received - since.messages_received,
            flushes=self.flushes - since.flushes,
            bytes_sent=self.bytes_sent - since.bytes_sent,
            bytes_received=self.bytes_received - since.bytes_received,
            encode_s=self.encode_s - since.encode_s,
            decode_s=self.decode_s - since.decode_s,
            route_s=self.route_s - since.route_s,
            flush_s=self.flush_s - since.flush_s,
        )

    def report(self) -> str:
        """Human-readable one-liner for the cluster stats report."""
        return (
            f"wire          {self.messages_sent} sent / "
            f"{self.messages_received} recv in {self.flushes} flushes "
            f"({self.coalescing_ratio:.2f} msg/flush, "
            f"{self.bytes_sent} B out, {self.bytes_received} B in; "
            f"encode {self.encode_s * 1e3:.1f} ms, "
            f"decode {self.decode_s * 1e3:.1f} ms, "
            f"route {self.route_s * 1e3:.1f} ms, "
            f"flush {self.flush_s * 1e3:.1f} ms)"
        )


class WireProfile:
    """Thread-safe accumulator for the supervisor's wire-path profile.

    Dispatchers, sender threads, and reader threads all record into one
    instance; :meth:`snapshot` folds it into an immutable
    :class:`WireSnapshot` for :class:`~repro.serve.ClusterStats`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._messages_sent = 0
        self._messages_received = 0
        self._flushes = 0
        self._bytes_sent = 0
        self._bytes_received = 0
        self._encode_s = 0.0
        self._decode_s = 0.0
        self._route_s = 0.0
        self._flush_s = 0.0

    def record_send(self, size: int, encode_s: float, route_s: float = 0.0) -> None:
        """Count one encoded request message of ``size`` bytes."""
        with self._lock:
            self._messages_sent += 1
            self._bytes_sent += size
            self._encode_s += encode_s
            self._route_s += route_s

    def record_receive(self, size: int, decode_s: float) -> None:
        """Count one decoded reply message of ``size`` bytes."""
        with self._lock:
            self._messages_received += 1
            self._bytes_received += size
            self._decode_s += decode_s

    def record_flush(self, elapsed_s: float) -> None:
        """Count one transport flush (however many messages it carried)."""
        with self._lock:
            self._flushes += 1
            self._flush_s += elapsed_s

    def snapshot(self) -> WireSnapshot:
        """Fold the counters into an immutable snapshot."""
        with self._lock:
            return WireSnapshot(
                messages_sent=self._messages_sent,
                messages_received=self._messages_received,
                flushes=self._flushes,
                bytes_sent=self._bytes_sent,
                bytes_received=self._bytes_received,
                encode_s=self._encode_s,
                decode_s=self._decode_s,
                route_s=self._route_s,
                flush_s=self._flush_s,
            )


class _TenantCounters:
    """One tenant's slice of the outcome counters (guarded by the owner)."""

    __slots__ = (
        "requests",
        "warm",
        "cold",
        "dedup",
        "errors",
        "warm_latencies",
        "cold_latencies",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.warm = 0
        self.cold = 0
        self.dedup = 0
        self.errors = 0
        self.warm_latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self.cold_latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)

    def block(self) -> dict:
        """The JSON-ready per-tenant stats block the wire protocol ships."""
        return {
            "requests": self.requests,
            "warm_serves": self.warm,
            "cold_serves": self.cold,
            "dedup_hits": self.dedup,
            "errors": self.errors,
            "warm_histogram": list(latency_histogram(tuple(self.warm_latencies))),
            "cold_histogram": list(latency_histogram(tuple(self.cold_latencies))),
        }


class ServerMetrics:
    """Thread-safe counters behind :meth:`KernelServer.metrics_snapshot`.

    Every recording method takes the request's tenant; the totals count all
    traffic as before, while per-tenant slices feed
    :meth:`tenant_breakdown`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests = 0
        self._warm = 0
        self._cold = 0
        self._dedup = 0
        self._errors = 0
        self._tune_batches = 0
        self._batched_tunes = 0
        self._warm_latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._cold_latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._tenants: dict[str, _TenantCounters] = {}

    def _tenant(self, tenant: str) -> _TenantCounters:
        counters = self._tenants.get(tenant)
        if counters is None:
            counters = self._tenants[tenant] = _TenantCounters()
        return counters

    def record_request(self, tenant: str = DEFAULT_TENANT) -> None:
        """Count one incoming request (before its outcome is known)."""
        with self._lock:
            self._requests += 1
            self._tenant(tenant).requests += 1

    def record_warm(self, latency_s: float, tenant: str = DEFAULT_TENANT) -> None:
        """Count one resident-table serve."""
        with self._lock:
            self._warm += 1
            self._warm_latencies.append(latency_s)
            counters = self._tenant(tenant)
            counters.warm += 1
            counters.warm_latencies.append(latency_s)

    def record_cold(self, latency_s: float, tenant: str = DEFAULT_TENANT) -> None:
        """Count one full-path (tune + compile) serve."""
        with self._lock:
            self._cold += 1
            self._cold_latencies.append(latency_s)
            counters = self._tenant(tenant)
            counters.cold += 1
            counters.cold_latencies.append(latency_s)

    def record_dedup(self, tenant: str = DEFAULT_TENANT) -> None:
        """Count one request attached to an in-flight identical request."""
        with self._lock:
            self._dedup += 1
            self._tenant(tenant).dedup += 1

    def record_error(self, tenant: str = DEFAULT_TENANT) -> None:
        """Count one failed request."""
        with self._lock:
            self._errors += 1
            self._tenant(tenant).errors += 1

    def record_tune_batch(self, size: int) -> None:
        """Count one executed tuning micro-batch of ``size`` requests."""
        with self._lock:
            self._tune_batches += 1
            self._batched_tunes += size

    def latency_samples(self) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """The retained (warm, cold) latency samples in seconds.

        The shard protocol buckets these into :func:`latency_histogram` so a
        supervisor can merge percentiles across processes.
        """
        with self._lock:
            return tuple(self._warm_latencies), tuple(self._cold_latencies)

    def tenant_breakdown(self) -> dict[str, dict]:
        """Per-tenant outcome counters, JSON-ready for the stats wire.

        Keys are tenant ids; each block carries ``requests``,
        ``warm_serves``, ``cold_serves``, ``dedup_hits``, ``errors`` and the
        fixed-bucket ``warm_histogram``/``cold_histogram``.  Returns ``{}``
        while only the default tenant has been seen: an untenanted server's
        stats replies stay byte-identical to the pre-tenant wire, and the
        breakdown (including the default slice) appears the moment a second
        namespace shows up.
        """
        with self._lock:
            if set(self._tenants) <= {DEFAULT_TENANT}:
                return {}
            return {
                tenant: counters.block()
                for tenant, counters in sorted(self._tenants.items())
            }

    def snapshot(self, queue_depth: int = 0, resident_kernels: int = 0) -> MetricsSnapshot:
        """Fold the counters into an immutable snapshot.

        ``queue_depth`` and ``resident_kernels`` are gauges owned by the
        server (they are sizes of its tables), passed in at snapshot time.
        """
        with self._lock:
            warm = tuple(self._warm_latencies)
            cold = tuple(self._cold_latencies)
            combined = warm + cold
            return MetricsSnapshot(
                requests=self._requests,
                warm_serves=self._warm,
                cold_serves=self._cold,
                dedup_hits=self._dedup,
                errors=self._errors,
                tune_batches=self._tune_batches,
                batched_tunes=self._batched_tunes,
                queue_depth=queue_depth,
                resident_kernels=resident_kernels,
                p50_latency_ms=_percentile(combined, 0.50) * 1e3,
                p95_latency_ms=_percentile(combined, 0.95) * 1e3,
                warm_p50_latency_ms=_percentile(warm, 0.50) * 1e3,
                cold_p50_latency_ms=_percentile(cold, 0.50) * 1e3,
                tenants=(
                    {
                        tenant: counters.block()
                        for tenant, counters in sorted(self._tenants.items())
                    }
                    if not set(self._tenants) <= {DEFAULT_TENANT}
                    else {}
                ),
            )
