"""Shard-side machinery: consistent-hash routing and the shard process loop.

Two halves live here:

* :class:`ShardRouter` — maps a request's **(kernel-family fingerprint,
  device)** pair onto one of N shard ids with a consistent-hash ring.  Each
  shard owns many virtual nodes on the ring, so keys spread evenly; removing
  a shard (crash, drain) remaps *only the keys that lived on it* — every
  other family keeps its shard, keeping their resident tables warm.  Routing
  is deterministic across processes and runs: any router built over the same
  shard ids makes identical decisions.
* :func:`run_shard` — the shard process entry point: one
  :class:`~repro.serve.KernelServer` wrapped in the wire protocol.  It reads
  :class:`~repro.serve.protocol.ServeCall` / ``StatsCall`` / ``PingCall`` /
  ``ShutdownCall`` messages from its supervisor pipe, dispatches serve calls
  onto the server's worker pool, and writes replies back **as they
  complete** (out of order; the ``request_id`` correlates them), so one slow
  cold request never blocks a shard's warm traffic.
* :func:`serve_shard_tcp` — the same serve loop behind a TCP listener, for
  shards on other machines.  The listener accepts **concurrent supervisor
  connections** (one session thread each over the shared server — this is
  what backs the supervisor's per-shard connection pool); every connection
  starts with a :class:`~repro.serve.protocol.HelloCall` handshake that
  negotiates the wire version (v1 JSON or v2 binary frames) and the
  transport trust level (source-only by default: executable artifacts are
  downgraded to source text and pickled payloads are rejected — see
  ``docs/wire-protocol.md``).  When a supervisor disconnects, the shard
  keeps its warm state and goes back to accepting, so a restarted
  supervisor reconnects to a hot shard.

A shard owns its own :class:`~repro.tune.TuningDatabase` *replica* (its own
file), so shards never contend on one database file during traffic; the
supervisor reconciles the replicas into the primary database with
:func:`repro.tune.reconcile.reconcile_replicas` (merge-on-save) at shutdown
or on demand.
"""

from __future__ import annotations

import bisect
import hashlib
import logging
import os
import socket
import threading
import time

from pathlib import Path

from repro.errors import (
    DeadlineExceededError,
    ProtocolError,
    ServingError,
    TuningError,
)
from repro.tune.db import TuningDatabase

# Imported as a module (not a package attribute) so this file is loadable at
# any point of repro.serve's own package initialization.
import repro.serve.protocol as protocol
from repro.serve.metrics import latency_histogram
from repro.serve.server import KernelServer, ServeRequest

__all__ = ["ShardRouter", "run_shard", "serve_shard_tcp"]

_LOG = logging.getLogger("repro.serve.shard")

#: How long a fresh TCP connection may take to complete its handshake
#: before the listener drops it and accepts the next supervisor.
HANDSHAKE_TIMEOUT_S = 10.0

#: Virtual nodes per shard on the hash ring.  More nodes smooth the key
#: distribution (the classic consistent-hashing trade-off against ring size).
DEFAULT_VIRTUAL_NODES = 64


def _ring_position(key: str) -> int:
    """A stable 64-bit ring position for a string key."""
    return int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "big")


class ShardRouter:
    """Consistent-hash routing of kernel families onto shard ids.

    Args:
        shard_ids: the shard ids participating in routing.
        virtual_nodes: ring points per shard (:data:`DEFAULT_VIRTUAL_NODES`).

    The routing key is ``fingerprint::device`` — the tuning database's own
    family key — so all traffic for one (kernel family, device) pair lands
    on one shard and enjoys that shard's resident table, in-flight dedup,
    and tuning micro-batches.  Fingerprints are memoized per workload (the
    fingerprint hashes the family's wide IR, which is not free to build), so
    steady-state routing is a dictionary lookup plus a ring bisect.
    """

    def __init__(
        self,
        shard_ids,
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ) -> None:
        if virtual_nodes < 1:
            raise ServingError(f"virtual node count must be positive, got {virtual_nodes}")
        self.virtual_nodes = virtual_nodes
        self._shard_ids: set[int] = set()
        self._ring: list[tuple[int, int]] = []  # (position, shard_id), sorted
        self._fingerprints: dict[object, str] = {}
        self._lock = threading.Lock()
        for shard_id in shard_ids:
            self.add_shard(shard_id)
        if not self._shard_ids:
            raise ServingError("a shard router needs at least one shard")

    # -- membership ---------------------------------------------------------

    @property
    def shard_ids(self) -> tuple[int, ...]:
        """The shard ids currently on the ring, sorted."""
        with self._lock:
            return tuple(sorted(self._shard_ids))

    def add_shard(self, shard_id: int) -> None:
        """Join a shard: only keys hashing onto its virtual nodes move."""
        with self._lock:
            if shard_id in self._shard_ids:
                return
            self._shard_ids.add(shard_id)
            for node in range(self.virtual_nodes):
                position = _ring_position(f"shard-{shard_id}#vnode-{node}")
                bisect.insort(self._ring, (position, shard_id))

    def remove_shard(self, shard_id: int) -> None:
        """Leave a shard: only the keys it owned remap (to their successors)."""
        with self._lock:
            if shard_id not in self._shard_ids:
                return
            self._shard_ids.discard(shard_id)
            self._ring = [entry for entry in self._ring if entry[1] != shard_id]

    # -- routing ------------------------------------------------------------

    def fingerprint_of(self, request: ServeRequest) -> str:
        """The request's kernel-family fingerprint, memoized per workload."""
        workload = request.workload()
        with self._lock:
            cached = self._fingerprints.get(workload)
        if cached is not None:
            return cached
        fingerprint = workload.fingerprint()  # builds IR; outside the lock
        with self._lock:
            self._fingerprints[workload] = fingerprint
        return fingerprint

    def route_key(self, key: str, excluding=frozenset()) -> int:
        """The shard owning ``key``: first live virtual node clockwise.

        ``excluding`` names shards to skip (dead or draining); the walk
        continues clockwise past them, which is the rebalance-on-shard-loss
        behaviour — keys of a lost shard redistribute to their ring
        successors while everything else stays put.
        """
        with self._lock:
            live = self._shard_ids - set(excluding)
            if not live:
                raise ServingError("no live shard to route to")
            index = bisect.bisect_right(self._ring, (_ring_position(key), -1))
            for offset in range(len(self._ring)):
                position, shard_id = self._ring[(index + offset) % len(self._ring)]
                if shard_id in live:
                    return shard_id
        raise ServingError("no live shard to route to")  # pragma: no cover

    def route(self, request: ServeRequest, excluding=frozenset()) -> int:
        """The shard serving ``request``: hash of (family fingerprint, device)."""
        return self.route_key(
            f"{self.fingerprint_of(request)}::{request.device}", excluding=excluding
        )


# -- the shard process -------------------------------------------------------


def _open_replica(db_path) -> TuningDatabase:
    """This shard's tuning-db replica, quarantining an unreadable file."""
    if db_path is None:
        return TuningDatabase()
    try:
        return TuningDatabase(db_path)
    except TuningError:
        path = Path(db_path)
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            pass
        return TuningDatabase(db_path)


def _shard_stats(shard_id: int, server: KernelServer) -> protocol.ShardStats:
    """This shard's counters in the wire form (histograms, not samples)."""
    snapshot = server.metrics_snapshot()
    warm, cold = server.metrics.latency_samples()
    return protocol.ShardStats(
        shard_id=shard_id,
        pid=os.getpid(),
        requests=snapshot.requests,
        warm_serves=snapshot.warm_serves,
        cold_serves=snapshot.cold_serves,
        dedup_hits=snapshot.dedup_hits,
        errors=snapshot.errors,
        tune_batches=snapshot.tune_batches,
        batched_tunes=snapshot.batched_tunes,
        queue_depth=snapshot.queue_depth,
        resident_kernels=snapshot.resident_kernels,
        warm_histogram=latency_histogram(warm),
        cold_histogram=latency_histogram(cold),
        # Additive: {} until a non-default tenant shows up, which keeps the
        # untenanted stats reply byte-identical to the pre-tenant wire.
        tenants=server.metrics.tenant_breakdown(),
    )


def _serve_connection(
    connection,
    shard_id: int,
    server: KernelServer,
    trusted: bool,
    wire_version: int = protocol.PROTOCOL_VERSION,
) -> bool:
    """Serve one supervisor connection until shutdown or disconnect.

    The transport-agnostic message loop shared by the pipe and TCP shards:
    ``connection`` is anything with the ``multiprocessing.Connection`` byte
    API (a real pipe, or a :class:`~repro.serve.protocol.StreamConnection`
    over a socket).  ``trusted`` is the transport's trust level: on an
    untrusted (source-only) transport, incoming pickled payloads are
    rejected at decode and every outgoing executable artifact is downgraded
    to its source text (:func:`~repro.serve.protocol.source_only_result`).
    ``wire_version`` is the *negotiated* protocol version replies are
    encoded at (requests are decoded at whatever version they arrive in —
    the magic disambiguates); pongs always go out as pre-encoded v1 bytes,
    which every peer accepts.

    Returns ``True`` if a :class:`~repro.serve.protocol.ShutdownCall` asked
    the shard to exit, ``False`` if the supervisor merely went away (EOF or
    an unrecoverable frame), letting a TCP listener re-accept.
    """
    send_lock = threading.Lock()

    def reply_bytes(data: bytes) -> None:
        with send_lock:
            try:
                connection.send_bytes(data)
            except (OSError, ValueError):
                pass  # supervisor is gone; the loop will see EOF and exit

    def reply(message: protocol.Message) -> None:
        reply_bytes(protocol.encode_message(message, version=wire_version))

    def finish(request_id: int, future, trace=None, deadline_at=None) -> None:
        try:
            result = future.result()
            if deadline_at is not None:
                # Honour the call's additive deadline_ms: a result that
                # became ready past its budget is shed here, not shipped —
                # the supervisor side sees a DeadlineExceededError reply.
                late_s = time.monotonic() - deadline_at
                if late_s > 0:
                    raise DeadlineExceededError(
                        f"result ready {late_s * 1e3:.1f} ms past its "
                        f"deadline; shedding"
                    )
            if not trusted:
                result = protocol.source_only_result(result)
            message = protocol.ServeReply(request_id=request_id, result=result)
        except BaseException as error:  # noqa: BLE001 - relayed over the wire
            message = protocol.ErrorReply.from_exception(request_id, error)
        if trace is None:
            reply(message)
            return
        encode_started = time.perf_counter()
        data = protocol.encode_message(message, version=wire_version)
        encode_s = time.perf_counter() - encode_started
        trace.record(
            "wire.encode",
            time.time() - encode_s,
            encode_s,
            cat="wire",
            shard_id=shard_id,
            bytes=len(data),
        )
        # Commit the trace *before* the reply leaves: once the supervisor
        # has the result it may immediately drain this shard's spans.
        trace.finish()
        reply_bytes(data)

    while True:
        try:
            data = connection.recv_bytes()
        except (EOFError, OSError):
            return False
        except ValueError:
            # "read of closed file": a concurrent shutdown closed this
            # socket while the session blocked in recv — same as an EOF.
            return False
        except ProtocolError:
            # A torn or corrupt frame: the stream cannot be re-synchronized,
            # so this connection is over (the peer re-connects if it wants).
            return False
        decode_started = time.perf_counter()
        try:
            message = protocol.decode_message(data, allow_pickled=trusted)
        except ProtocolError as error:
            reply(protocol.ErrorReply.from_exception(-1, error))
            continue
        decode_s = time.perf_counter() - decode_started
        if isinstance(message, protocol.ServeCall):
            request_id = message.request_id
            # The budget starts at *this shard's* decode of the call, so it
            # never depends on clock agreement with the supervisor.
            deadline_at = (
                time.monotonic() + message.deadline_ms / 1e3
                if message.deadline_ms is not None
                else None
            )
            trace = (
                server.tracer.begin(
                    "shard.serve", wire=message.trace, shard_id=shard_id
                )
                if message.trace is not None
                else None
            )
            try:
                if trace is not None:
                    trace.record(
                        "wire.decode",
                        time.time() - decode_s,
                        decode_s,
                        cat="wire",
                        shard_id=shard_id,
                        bytes=len(data),
                    )
                    with trace.activate():
                        future = server.submit(message.request, tenant=message.tenant)
                else:
                    future = server.submit(message.request, tenant=message.tenant)
            except Exception as error:  # noqa: BLE001 - bad request
                if trace is not None:
                    trace.finish(error=type(error).__name__)
                reply(protocol.ErrorReply.from_exception(request_id, error))
                continue
            future.add_done_callback(
                lambda completed, request_id=request_id, trace=trace, deadline_at=deadline_at: finish(
                    request_id, completed, trace, deadline_at
                )
            )
        elif isinstance(message, protocol.StatsCall):
            spans = (
                tuple(one.to_wire() for one in server.tracer.drain())
                if message.drain_spans
                else ()
            )
            reply(
                protocol.StatsReply(
                    request_id=message.request_id,
                    stats=_shard_stats(shard_id, server),
                    spans=spans,
                )
            )
        elif isinstance(message, protocol.PingCall):
            reply_bytes(
                protocol.encode_pong(message.request_id, shard_id, os.getpid())
            )
        elif isinstance(message, protocol.ControlCall):
            # Warmup/invalidation can take seconds (they compile kernels), so
            # they run off-loop: warm traffic on this connection keeps
            # flowing and the reply correlates by request_id like any other.
            def control(message=message) -> None:
                try:
                    if message.action == protocol.CONTROL_WARMUP:
                        report = server.warm(
                            target=message.target, tenant=message.tenant
                        )
                    else:
                        report = server.invalidate(
                            refresh=message.refresh, tenant=message.tenant
                        )
                    reply(
                        protocol.ControlReply(
                            request_id=message.request_id,
                            report=report.to_payload(),
                        )
                    )
                except BaseException as error:  # noqa: BLE001 - relayed
                    reply(protocol.ErrorReply.from_exception(message.request_id, error))

            threading.Thread(
                target=control, name=f"shard-{shard_id}-control", daemon=True
            ).start()
        elif isinstance(message, protocol.ShutdownCall):
            return True
        else:  # a reply type sent the wrong way; report and keep serving
            reply(
                protocol.ErrorReply(
                    request_id=-1,
                    error_type="ProtocolError",
                    message=f"unexpected message {type(message).__name__}",
                )
            )


def run_shard(
    connection,
    shard_id: int,
    devices: tuple[str, ...],
    db_path=None,
    workers: int = 4,
) -> None:
    """The shard process main loop (the supervisor's spawn target).

    Owns one :class:`KernelServer` over this shard's device subset and its
    own tuning-database replica at ``db_path`` (``None`` keeps it in
    memory).  A replica torn by a crashed writer must not crash-loop the
    shard: an unreadable file is quarantined (renamed ``*.corrupt``) and the
    shard starts over with an empty replica — the same "corrupt replicas are
    skippable" stance reconciliation takes.  Serve calls run on the server's
    worker pool and reply through ``connection`` as they complete; stats and
    ping calls answer inline.  A
    :class:`~repro.serve.protocol.ShutdownCall` — or the supervisor closing
    its end of the pipe — drains the server and exits.

    The pipe transport is fully trusted (the supervisor spawned this very
    process), so executable artifacts cross as pickles — and since both
    ends are by construction the same build, replies use the newest wire
    version outright (v2 binary frames skip the pickle→base64 inflation).
    """
    db = _open_replica(db_path)
    server = KernelServer(db=db, devices=devices, workers=workers)
    try:
        _serve_connection(
            connection,
            shard_id,
            server,
            trusted=True,
            wire_version=protocol.MAX_PROTOCOL_VERSION,
        )
    finally:
        server.close()
        try:
            connection.close()
        except OSError:
            pass


def _accept_handshake(
    connection,
    default_shard_id: int,
    trust_policy: str,
    max_protocol: int = protocol.MAX_PROTOCOL_VERSION,
):
    """Validate a fresh connection's hello.

    Returns ``(session shard id, granted trust, negotiated wire version)``.

    The first frame must be a :class:`~repro.serve.protocol.HelloCall`
    pinning the v1 base protocol; anything else — a stale supervisor, a
    port scanner, a version-skewed build — is refused with a best-effort
    :class:`~repro.serve.protocol.ErrorReply` and a
    :class:`~repro.errors.ProtocolError` here (the caller drops the
    connection and keeps listening).  The granted trust is the weaker of
    the supervisor's request and this listener's policy; the wire version
    is the *lower* of the peers' maxima (a hello from a build that predates
    ``max_protocol`` simply negotiates v1), so mixed clusters keep working.
    The hello exchange itself is always v1-encoded.
    """
    message = protocol.decode_message(connection.recv_bytes())
    if not isinstance(message, protocol.HelloCall):
        raise ProtocolError(
            f"expected a hello handshake, got {type(message).__name__}"
        )
    if message.protocol_version != protocol.PROTOCOL_VERSION:
        raise ProtocolError(
            f"handshake pins protocol version {message.protocol_version}, "
            f"this shard speaks {protocol.PROTOCOL_VERSION}"
        )
    granted = protocol.negotiate_trust(message.trust, trust_policy)
    wire_version = protocol.negotiate_version(
        max_protocol, getattr(message, "max_protocol", 1)
    )
    shard_id = message.shard_id if message.shard_id >= 0 else default_shard_id
    connection.send_bytes(
        protocol.encode_message(
            protocol.HelloReply(
                request_id=message.request_id,
                shard_id=shard_id,
                pid=os.getpid(),
                protocol_version=protocol.PROTOCOL_VERSION,
                trust=granted,
                max_protocol=max_protocol,
            )
        )
    )
    return shard_id, granted, wire_version


def serve_shard_tcp(
    host: str = "127.0.0.1",
    port: int = 0,
    shard_id: int = 0,
    devices: tuple[str, ...] = ("rtx4090",),
    db_path=None,
    workers: int = 4,
    trust: str = protocol.TRUST_SOURCE,
    on_bound=None,
    max_protocol: int = protocol.MAX_PROTOCOL_VERSION,
    metrics_port: int | None = None,
) -> None:
    """Serve one shard over a TCP listener (the ``--listen`` entry point).

    One :class:`KernelServer` (with its own tuning-db replica at
    ``db_path``) lives for the whole listener lifetime, so its resident
    table and kernel cache stay warm across supervisor reconnects.  The
    listener accepts **concurrent supervisor connections** — each runs its
    own session thread over the shared server, which is what lets a v2
    supervisor keep a small connection pool per shard.  Each accepted
    socket must complete a :func:`handshake <_accept_handshake>` within
    :data:`HANDSHAKE_TIMEOUT_S` (pinning the v1 base protocol, negotiating
    the wire version up to ``max_protocol``, adopting the
    supervisor-assigned ring id, and negotiating trust — ``trust`` is the
    most this listener's operator allows, :data:`~repro.serve.protocol.TRUST_SOURCE`
    by default so cross-machine serving never ships executable pickles).
    A failed handshake or a supervisor disconnect ends only that session;
    a :class:`~repro.serve.protocol.ShutdownCall` on *any* session closes
    the listener, drains every session, and exits.

    ``port=0`` binds an ephemeral port; ``on_bound`` (if given) is called
    with the listener's ``(host, port)`` once accepting — how tests and the
    CLI learn the address.

    ``metrics_port`` (if given) additionally serves this shard's own
    Prometheus-style exposition and retained trace spans over HTTP for the
    listener's lifetime — the ``--metrics-port`` flag in ``--listen`` mode.
    """
    db = _open_replica(db_path)
    server = KernelServer(db=db, devices=devices, workers=workers)
    metrics_endpoint = None
    if metrics_port is not None:
        # Imported lazily so the shard hot path never touches the HTTP
        # machinery unless the operator asked for a scrape surface.
        from repro.obs.http import MetricsEndpoint
        from repro.obs.promtext import render_server_metrics

        metrics_endpoint = MetricsEndpoint(
            metrics_port,
            lambda: render_server_metrics(server.metrics_snapshot()),
            trace_fn=server.tracer.snapshot,
        ).start()
        _LOG.info(
            "shard %d metrics endpoint on http://%s:%d/metrics",
            shard_id,
            metrics_endpoint.address[0],
            metrics_endpoint.port,
        )
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    shutdown = threading.Event()
    sessions_lock = threading.Lock()
    active: list = []  # StreamConnections with a live session thread
    threads: list = []
    bound_address: list = []  # [(host, port)] once bound

    def close_listener() -> None:
        shutdown.set()
        try:
            listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        if bound_address:
            # A thread blocked in accept() does not reliably notice a
            # cross-thread close on every platform; a self-connection
            # always wakes it (the loop re-checks ``shutdown`` and exits).
            try:
                wake = socket.create_connection(bound_address[0], timeout=1.0)
                wake.close()
            except OSError:
                pass
        try:
            listener.close()
        except OSError:
            pass

    def session(connection) -> None:
        try:
            connection.settimeout(HANDSHAKE_TIMEOUT_S)
            session_id, granted, wire_version = _accept_handshake(
                connection, shard_id, trust, max_protocol
            )
            connection.settimeout(None)
            _LOG.info(
                "shard %d accepted a supervisor session (trust %s, wire v%d)",
                session_id,
                granted,
                wire_version,
            )
        except ProtocolError as error:
            _LOG.warning("shard %d refused a handshake: %s", shard_id, error)
            try:
                connection.send_bytes(
                    protocol.encode_message(
                        protocol.ErrorReply.from_exception(-1, error)
                    )
                )
            except (OSError, ValueError):
                pass
            connection.close()
            return
        except (EOFError, OSError):
            connection.close()
            return
        asked_to_stop = _serve_connection(
            connection,
            session_id,
            server,
            trusted=granted == protocol.TRUST_PICKLED,
            wire_version=wire_version,
        )
        connection.close()
        if asked_to_stop:
            # Unblock the accept loop; it tears everything else down.
            close_listener()

    try:
        listener.bind((host, port))
        listener.listen(16)
        bound_address.append(listener.getsockname()[:2])
        _LOG.info(
            "shard %d listening on %s:%d (trust policy %s)",
            shard_id,
            bound_address[0][0],
            bound_address[0][1],
            trust,
        )
        if on_bound is not None:
            on_bound(bound_address[0])
        while not shutdown.is_set():
            try:
                sock, _peer = listener.accept()
            except OSError:
                break  # a shutdown session closed the listener
            if shutdown.is_set():
                sock.close()  # the close_listener wake-up connection
                break
            connection = protocol.StreamConnection(sock)
            thread = threading.Thread(
                target=session,
                args=(connection,),
                name=f"shard-{shard_id}-session",
                daemon=True,
            )
            with sessions_lock:
                active.append(connection)
                threads.append(thread)
            thread.start()
    finally:
        shutdown.set()
        close_listener()
        with sessions_lock:
            for connection in active:
                connection.close()  # unblocks sessions mid-recv
            pending = list(threads)
        for thread in pending:
            thread.join(timeout=5.0)
        if metrics_endpoint is not None:
            metrics_endpoint.close()
        server.close()
