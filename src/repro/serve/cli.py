"""``python -m repro.serve`` — drive a kernel server (or shard cluster).

The default is one in-process :class:`KernelServer` (``--shards 1``); with
``--shards N`` (N ≥ 2) the same actions run against a
:class:`~repro.serve.ShardSupervisor` — N server processes behind a
consistent-hash router, each with its own tuning-db replica that is
reconciled into ``--db`` on exit.  ``--connect host:port,...`` adds remote
TCP shards (started elsewhere with ``--listen``) to the same ring, and
``--listen [host:]port`` runs this process *as* such a shard.

Examples::

    # serve one request (cold: tune + compile) and print the metrics
    python -m repro.serve --once ntt --bits 256 --size 4096 --stats

    # persist winners, then pre-warm a fresh server from them
    python -m repro.serve --once ntt --bits 256 --db tuning_db.json
    python -m repro.serve --warmup --db tuning_db.json --stats

    # drop stale records (and re-tune their families)
    python -m repro.serve --invalidate --refresh --db tuning_db.json

    # demo traffic: repeated mixed requests showing warm/dedup serving
    python -m repro.serve --demo 64 --stats

    # the same demo served across two shard processes, stats aggregated
    python -m repro.serve --shards 2 --demo --stats

    # a TCP shard listener (source-only trust unless --trust pickled)
    python -m repro.serve --listen 127.0.0.1:7401 --db shard0.json

    # a supervisor over two remote shards (no local shard processes)
    python -m repro.serve --connect 127.0.0.1:7401,127.0.0.1:7402 --demo --stats

Actions compose left to right: ``--invalidate`` and ``--warmup`` run before
``--once``/``--demo``, ``--stats`` prints last.  Against a shard cluster,
``--warmup``/``--invalidate`` broadcast as control messages to every live
shard (each walks its own database replica in place); ``--tenant`` scopes
requests and maintenance passes to one tenant namespace.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import ReproError
from repro.gpu.device import DEVICES
from repro.kernels.blas_gen import BLAS_OPERATIONS
from repro.kernels.ntt_gen import BUTTERFLY_VARIANTS
from repro.obs import MetricsEndpoint, Tracer, configure_logging, write_chrome_trace
from repro.obs.promtext import render_cluster_metrics, render_server_metrics
from repro.tenancy import DEFAULT_TENANT
from repro.tune.db import TuningDatabase
from repro.tune.space import BLAS, NTT
from repro.serve import protocol
from repro.serve.metrics import HISTOGRAM_BUCKET_BOUNDS_MS
from repro.serve.server import KernelServer, ServeRequest
from repro.serve.shard import serve_shard_tcp
from repro.serve.supervisor import ShardSupervisor

__all__ = ["build_parser", "main"]

#: Requests fired by a bare ``--demo`` (no count given).
DEFAULT_DEMO_REQUESTS = 16


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Long-running tuned-kernel serving: request batching, "
        "pre-warmed caches, live invalidation, and optional multi-process "
        "sharding (--shards N routes kernel families across N server "
        "processes by consistent hashing).",
    )
    parser.add_argument(
        "--db", metavar="PATH", default=None, help="persistent tuning database file"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="local server processes; 1 serves in-process, N>=2 shards "
        "kernel families across N processes with per-shard db replicas "
        "reconciled into --db on exit (default: 1, or 0 with --connect)",
    )
    parser.add_argument(
        "--connect",
        action="append",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="remote TCP shards (started with --listen) to add to the ring "
        "alongside the local --shards; repeatable or comma-separated",
    )
    parser.add_argument(
        "--listen",
        default=None,
        metavar="[HOST:]PORT",
        help="run this process as a TCP shard listener instead of a "
        "supervisor (combines with --db/--devices/--workers/--shard-id/"
        "--trust; excludes every other action)",
    )
    parser.add_argument(
        "--shard-id",
        type=int,
        default=0,
        metavar="ID",
        help="with --listen: the shard id announced before a supervisor "
        "assigns one (also names the --db replica)",
    )
    parser.add_argument(
        "--trust",
        choices=(protocol.TRUST_SOURCE, protocol.TRUST_PICKLED),
        default=protocol.TRUST_SOURCE,
        help="transport trust for TCP shards: with --listen, the most this "
        "shard grants; with --connect, the level requested from remotes. "
        "'source' (default) ships artifacts as source text only; 'pickled' "
        "allows executable python_exec pickles between machines that "
        "explicitly trust each other",
    )
    parser.add_argument(
        "--pool",
        type=int,
        default=2,
        metavar="N",
        help="with --connect: keep-alive connections per remote shard "
        "(applies when the handshake negotiates protocol v2; default 2)",
    )
    parser.add_argument(
        "--protocol",
        type=int,
        choices=(protocol.PROTOCOL_VERSION, protocol.PROTOCOL_VERSION_2),
        default=protocol.MAX_PROTOCOL_VERSION,
        metavar="V",
        help="highest wire version to negotiate with shards (default "
        f"{protocol.MAX_PROTOCOL_VERSION}; pass 1 to force JSON framing "
        "during a mixed-version rollout)",
    )
    parser.add_argument(
        "--devices",
        nargs="+",
        choices=sorted(DEVICES),
        default=["rtx4090"],
        help="devices this server serves (first is the request default)",
    )
    parser.add_argument("--workers", type=int, default=4, help="worker-pool threads")
    parser.add_argument(
        "--warmup",
        action="store_true",
        help="pre-compile every recorded winner before other actions",
    )
    parser.add_argument(
        "--invalidate",
        action="store_true",
        help="drop tuning records with stale versions or fingerprints",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="with --invalidate: re-tune the dropped families",
    )
    parser.add_argument(
        "--once",
        choices=(NTT, BLAS),
        default=None,
        help="serve a single request of this kind and print the result",
    )
    parser.add_argument("--bits", type=int, default=256, help="operand bit-width (--once)")
    parser.add_argument("--size", type=int, default=4096, help="NTT transform length (--once)")
    parser.add_argument(
        "--variant",
        choices=BUTTERFLY_VARIANTS,
        default="cooley_tukey",
        help="NTT butterfly dataflow (--once)",
    )
    parser.add_argument(
        "--op", choices=BLAS_OPERATIONS, default="vmul", help="BLAS operation (--once)"
    )
    parser.add_argument(
        "--elements", type=int, default=1 << 20, help="BLAS vector elements (--once)"
    )
    parser.add_argument(
        "--target",
        default="python_exec",
        help="backend artifact to serve (--once; default python_exec)",
    )
    parser.add_argument(
        "--no-tune",
        action="store_true",
        help="serve the paper-default configuration instead of the tuned winner",
    )
    parser.add_argument(
        "--tenant",
        metavar="NAME",
        default=None,
        help="tenant namespace for --once/--demo requests and the scope of "
        "--warmup/--invalidate (default: requests use the shared 'default' "
        "namespace; warmup/invalidate cover every namespace)",
    )
    parser.add_argument(
        "--demo",
        type=int,
        metavar="N",
        nargs="?",
        const=DEFAULT_DEMO_REQUESTS,
        default=None,
        help="fire N mixed demo requests (repeated keys show warm/dedup "
        f"serving; bare --demo fires {DEFAULT_DEMO_REQUESTS})",
    )
    parser.add_argument(
        "--stats", action="store_true", help="print the metrics snapshot at the end"
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="trace every request end-to-end (supervisor, wire, shards, "
        "compiler passes) and write the merged Chrome trace-event JSON — "
        "loadable in Perfetto — to PATH at exit",
    )
    parser.add_argument(
        "--trace-slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="capture exemplar traces for requests slower than MS without "
        "tracing the fast majority (combine with --trace or --metrics-port "
        "to export them)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve a Prometheus-style text exposition on "
        "http://127.0.0.1:PORT/metrics (and retained trace spans on "
        "/trace.json) for the lifetime of the run; 0 picks a free port",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="warning",
        help="verbosity of the repro.* loggers on stderr (default warning)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit log records as JSON lines (one object per line, with a "
        "trace-id correlation field) instead of text",
    )
    return parser


def _once_request(args: argparse.Namespace) -> ServeRequest:
    if args.once == NTT:
        return ServeRequest(
            kind=NTT,
            bits=args.bits,
            operation=args.variant,
            size=args.size,
            device=args.devices[0],
            target=args.target,
            tune=not args.no_tune,
        )
    return ServeRequest(
        kind=BLAS,
        bits=args.bits,
        operation=args.op,
        elements=args.elements,
        device=args.devices[0],
        target=args.target,
        tune=not args.no_tune,
    )


def _print_once(result) -> None:
    print(f"served      {result.request.workload().key} on {result.request.device}")
    print(f"target      {result.request.target}")
    print(f"config      {result.config.label()} (w{result.config.word_bits})")
    if result.tuning is not None:
        source = "database" if result.tuning.from_database else result.tuning.strategy
        print(
            f"tuning      {result.tuning.candidate.label()} via {source}, "
            f"{result.tuning.speedup:.2f}x over the paper default"
        )
    print(f"serve       {'warm' if result.warm else 'cold'}, "
          f"{result.latency_s * 1e3:.2f} ms")


def _demo_requests(args: argparse.Namespace) -> list[ServeRequest]:
    device = args.devices[0]
    return [
        ServeRequest(kind=NTT, bits=128, size=args.size, device=device),
        ServeRequest(kind=NTT, bits=256, size=args.size, device=device),
        ServeRequest(kind=BLAS, bits=128, operation="vmul", device=device),
        ServeRequest(kind=BLAS, bits=256, operation="vadd", device=device),
    ]


def _build_tracer(args: argparse.Namespace) -> Tracer | None:
    """A :class:`Tracer` when ``--trace``/``--trace-slow-ms`` ask for one.

    ``--trace`` forces every request to be sampled (the point is one
    complete merged trace); ``--trace-slow-ms`` alone samples nothing and
    relies on exemplar promotion of slow requests.  Returns ``None`` when
    neither flag is given, letting the server/supervisor keep their cheap
    default tracer (which still records wire-adopted traces).
    """
    if args.trace is None and args.trace_slow_ms is None:
        return None
    threshold = (
        args.trace_slow_ms / 1e3 if args.trace_slow_ms is not None else None
    )
    return Tracer(
        sample_rate=1.0 if args.trace is not None else 0.0,
        exemplar_threshold_s=threshold,
    )


def _start_metrics(args: argparse.Namespace, metrics_fn, trace_fn):
    """Start the ``--metrics-port`` endpoint (or return ``None``)."""
    if args.metrics_port is None:
        return None
    endpoint = MetricsEndpoint(
        args.metrics_port, metrics_fn, trace_fn=trace_fn
    ).start()
    print(
        f"metrics     http://{endpoint.address[0]}:{endpoint.port}/metrics",
        flush=True,
    )
    return endpoint


def _write_trace(path: str, spans) -> None:
    write_chrome_trace(path, spans)
    print(f"trace       {len(spans)} spans -> {path}", flush=True)


def _traced_submit(
    server: KernelServer, request: ServeRequest, tenant: str = DEFAULT_TENANT
):
    """Submit under a fresh root trace (single-server mode).

    In sharded mode the supervisor begins the root span itself; a lone
    :class:`KernelServer` has no front door above ``submit``, so the CLI
    plays that role here.
    """
    attributes = {"kind": request.kind, "bits": request.bits}
    if tenant != DEFAULT_TENANT:
        attributes["tenant"] = tenant
    handle = server.tracer.begin("client.request", **attributes)
    if handle is None:
        return server.submit(request, tenant=tenant)
    with handle.activate():
        future = server.submit(request, tenant=tenant)
    future.add_done_callback(lambda _done, _handle=handle: _handle.finish())
    return future


def _run_demo(server, args: argparse.Namespace, submit=None) -> None:
    """Fire the demo mix at a server or supervisor (both expose submit)."""
    submit = submit if submit is not None else server.submit
    mix = _demo_requests(args)
    started = time.perf_counter()
    futures = [submit(mix[i % len(mix)]) for i in range(args.demo)]
    for future in futures:
        future.result()
    seconds = time.perf_counter() - started
    rate = args.demo / seconds if seconds else float("inf")
    print(
        f"demo        {args.demo} requests over {len(mix)} kernel families in "
        f"{seconds * 1e3:.1f} ms ({rate:.0f} req/s)"
    )
    if isinstance(server, ShardSupervisor):
        routed = ", ".join(
            f"shard {shard_id}: {count}"
            for shard_id, count in server.routed_counts().items()
        )
        print(f"routing     {routed}")


def _main_single(args: argparse.Namespace) -> int:
    tracer = _build_tracer(args)
    db = TuningDatabase(args.db)
    with KernelServer(
        db=db, devices=tuple(args.devices), workers=args.workers, tracer=tracer
    ) as server:
        endpoint = _start_metrics(
            args,
            lambda: render_server_metrics(server.metrics_snapshot()),
            server.tracer.snapshot,
        )
        try:
            tenant = args.tenant if args.tenant is not None else DEFAULT_TENANT
            if args.invalidate:
                print(
                    server.invalidate(
                        refresh=args.refresh, tenant=args.tenant
                    ).report()
                )
            if args.warmup:
                print(server.warm(tenant=args.tenant).report())
            if args.once:
                _print_once(
                    _traced_submit(server, _once_request(args), tenant).result()
                )
            if args.demo:
                _run_demo(
                    server,
                    args,
                    submit=lambda request: _traced_submit(server, request, tenant),
                )
            if args.stats:
                print(server.metrics_snapshot().report())
            if args.trace:
                _write_trace(args.trace, server.tracer.drain())
        finally:
            if endpoint is not None:
                endpoint.close()
    return 0


def _connect_addresses(args: argparse.Namespace) -> tuple[str, ...]:
    """Flatten repeated/comma-separated ``--connect`` values."""
    if not args.connect:
        return ()
    return tuple(
        part.strip()
        for value in args.connect
        for part in value.split(",")
        if part.strip()
    )


def _print_control_reports(action: str, reports: dict[int, dict]) -> None:
    """One line per shard for a broadcast warmup/invalidation summary."""
    for shard_id in sorted(reports):
        report = dict(reports[shard_id])
        report.pop("kind", None)
        summary = ", ".join(f"{key} {value}" for key, value in report.items())
        print(f"{action}     shard {shard_id}: {summary}")


def _main_sharded(args: argparse.Namespace, shards: int) -> int:
    supervisor = ShardSupervisor(
        shards=shards,
        db=args.db,
        devices=tuple(args.devices),
        workers=args.workers,
        connect=_connect_addresses(args),
        remote_trust=args.trust,
        pool=args.pool,
        max_protocol=args.protocol,
        tracer=_build_tracer(args),
    )
    endpoint = None
    try:
        endpoint = _start_metrics(
            args,
            lambda: render_cluster_metrics(
                supervisor.stats(), HISTOGRAM_BUCKET_BOUNDS_MS
            ),
            supervisor.tracer.snapshot,
        )
        tenant = args.tenant if args.tenant is not None else DEFAULT_TENANT
        if args.invalidate:
            _print_control_reports(
                "invalidate",
                supervisor.invalidate(tenant=args.tenant, refresh=args.refresh),
            )
        if args.warmup:
            _print_control_reports("warmup", supervisor.warmup(tenant=args.tenant))
        if args.once:
            _print_once(supervisor.serve(_once_request(args), tenant=tenant))
        if args.demo:
            _run_demo(
                supervisor,
                args,
                submit=lambda request: supervisor.submit(request, tenant=tenant),
            )
        if args.stats:
            print(supervisor.stats().report())
        if args.trace:
            # Drain before close(): shard processes (and their span
            # buffers) die with the supervisor.
            _write_trace(args.trace, supervisor.drain_spans())
    finally:
        if endpoint is not None:
            endpoint.close()
        report = supervisor.close()
        if report is not None:
            print(report.report())
    return 0


def _main_listen(args: argparse.Namespace) -> int:
    """Run this process as one TCP shard until a ShutdownCall (or Ctrl-C)."""
    host, _, port = args.listen.rpartition(":")
    host = host or "127.0.0.1"
    try:
        port = int(port)
    except ValueError:
        print(f"error: --listen address {args.listen!r} is not [host:]port",
              file=sys.stderr)
        return 2

    def announce(bound: tuple[str, int]) -> None:
        print(
            f"shard {args.shard_id} listening on {bound[0]}:{bound[1]} "
            f"(trust: {args.trust})",
            flush=True,
        )

    try:
        serve_shard_tcp(
            host=host,
            port=port,
            shard_id=args.shard_id,
            devices=tuple(args.devices),
            db_path=args.db,
            workers=args.workers,
            trust=args.trust,
            on_bound=announce,
            max_protocol=args.protocol,
            metrics_port=args.metrics_port,
        )
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(args.log_level, json_lines=args.log_json)
    connect = _connect_addresses(args)
    if args.listen is not None:
        if (
            args.warmup
            or args.invalidate
            or args.once
            or args.demo
            or connect
            or args.trace
        ):
            print(
                "error: --listen runs a shard process and excludes supervisor "
                "actions (--warmup/--invalidate/--once/--demo/--connect/"
                "--trace); traces are drained by the supervisor",
                file=sys.stderr,
            )
            return 2
        try:
            return _main_listen(args)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    if not (args.warmup or args.invalidate or args.once or args.demo or args.stats):
        build_parser().print_help()
        return 2
    # --shards defaults to one in-process server, or to no local shards
    # when --connect supplies the ring.
    shards = args.shards if args.shards is not None else (0 if connect else 1)
    if shards < 0 or (shards == 0 and not connect):
        print(f"error: shard count must be positive, got {shards}", file=sys.stderr)
        return 2
    try:
        if shards == 1 and not connect:
            return _main_single(args)
        return _main_sharded(args, shards)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
