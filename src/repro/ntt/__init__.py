"""Number theoretic transform library: planning, reference, iterative and
MoMA-generated-kernel-backed transforms, plus negacyclic convolution."""

from repro.ntt.generated import GeneratedNTT
from repro.ntt.iterative import ntt_forward, ntt_inverse, reference_butterfly
from repro.ntt.negacyclic import negacyclic_convolution_reference, negacyclic_multiply
from repro.ntt.planner import (
    NTTPlan,
    StagePlan,
    bit_reverse_permutation,
    make_plan,
    make_stage_plan,
    plan_cache_stats,
)
from repro.ntt.reference import intt_definition, ntt_definition

__all__ = [
    "GeneratedNTT",
    "ntt_forward",
    "ntt_inverse",
    "reference_butterfly",
    "negacyclic_convolution_reference",
    "negacyclic_multiply",
    "NTTPlan",
    "StagePlan",
    "bit_reverse_permutation",
    "make_plan",
    "make_stage_plan",
    "plan_cache_stats",
    "intt_definition",
    "ntt_definition",
]
