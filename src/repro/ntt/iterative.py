"""Iterative radix-2 NTT (the transform structure used on the GPU).

The transform is the standard iterative Cooley-Tukey decimation-in-time
network: a bit-reversal permutation followed by ``log2(n)`` stages of ``n/2``
independent butterflies (Section 5.1: "each CUDA thread processes one or
more butterfly operations in each stage ... as there are no data dependencies
between butterfly operations within the same stage").

The butterfly itself is pluggable:

* the default uses Python integer arithmetic (the mathematical definition,
  used as the fast path and by the baselines), and
* a MoMA-generated butterfly (``repro.ntt.generated``) runs the exact
  machine-word code the CUDA backend emits, via the Python execution backend.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.errors import KernelError
from repro.ntt.planner import NTTPlan, bit_reverse_permutation

__all__ = ["Butterfly", "ntt_forward", "ntt_inverse", "reference_butterfly"]

#: A butterfly callable: (x, y, twiddle, plan) -> (x', y').
Butterfly = Callable[[int, int, int, NTTPlan], tuple[int, int]]


def reference_butterfly(x: int, y: int, twiddle: int, plan: NTTPlan) -> tuple[int, int]:
    """Cooley-Tukey butterfly using Python integer arithmetic."""
    q = plan.modulus
    scaled = (twiddle * y) % q
    return (x + scaled) % q, (x - scaled) % q


def _transform(
    values: Sequence[int],
    plan: NTTPlan,
    root: int,
    butterfly: Butterfly,
) -> list[int]:
    size = plan.size
    q = plan.modulus
    if len(values) != size:
        raise KernelError(f"expected {size} coefficients, got {len(values)}")
    for index, value in enumerate(values):
        if not 0 <= value < q:
            raise KernelError(f"coefficient {index} is not reduced modulo q")

    permutation = bit_reverse_permutation(size)
    data = [values[permutation[index]] for index in range(size)]

    length = 2
    while length <= size:
        half = length // 2
        step = pow(root, size // length, q)
        for start in range(0, size, length):
            twiddle = 1
            for offset in range(half):
                upper = data[start + offset]
                lower = data[start + offset + half]
                new_upper, new_lower = butterfly(upper, lower, twiddle, plan)
                data[start + offset] = new_upper
                data[start + offset + half] = new_lower
                twiddle = (twiddle * step) % q
        length *= 2
    return data


def ntt_forward(
    values: Sequence[int], plan: NTTPlan, butterfly: Butterfly = reference_butterfly
) -> list[int]:
    """Forward ``n``-point NTT (Equation 12), computed in O(n log n)."""
    return _transform(values, plan, plan.root, butterfly)


def ntt_inverse(
    values: Sequence[int], plan: NTTPlan, butterfly: Butterfly = reference_butterfly
) -> list[int]:
    """Inverse NTT: the same network with the inverse root plus ``n^{-1}`` scaling."""
    transformed = _transform(values, plan, plan.inverse_root, butterfly)
    q = plan.modulus
    scale = plan.size_inverse
    return [(value * scale) % q for value in transformed]
