"""NTT planning: parameter selection and twiddle-factor precomputation.

An :class:`NTTPlan` bundles everything an ``n``-point NTT over ``Z_q`` needs:
the (NTT-friendly) prime, the primitive ``n``-th root of unity and its
inverse, the Barrett constant used by the generated kernels, precomputed
twiddle factor tables for the forward and inverse transforms, and the
bit-reversal permutation.  Plans are deterministic for a given
``(size, modulus_bits, seed)`` so experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import KernelError
from repro.core.driver import ContentAddressedCache
from repro.arith.barrett import BarrettParams
from repro.ntheory.modinv import modinv
from repro.ntheory.primes import find_ntt_prime, is_prime
from repro.ntheory.roots import is_primitive_root_of_unity, primitive_root_of_unity

__all__ = [
    "NTTPlan",
    "StagePlan",
    "make_plan",
    "make_stage_plan",
    "bit_reverse_permutation",
    "plan_cache_stats",
]


def bit_reverse_permutation(size: int) -> list[int]:
    """The bit-reversal permutation for a power-of-two ``size``."""
    if size < 1 or size & (size - 1):
        raise KernelError(f"size must be a power of two, got {size}")
    bits = size.bit_length() - 1
    permutation = []
    for index in range(size):
        reversed_index = 0
        value = index
        for _ in range(bits):
            reversed_index = (reversed_index << 1) | (value & 1)
            value >>= 1
        permutation.append(reversed_index)
    return permutation


@dataclass(frozen=True)
class NTTPlan:
    """Precomputed parameters for an ``n``-point NTT over ``Z_q``.

    Attributes:
        size: transform length ``n`` (a power of two).
        modulus: the NTT-friendly prime ``q`` with ``q ≡ 1 (mod 2n)``.
        modulus_bits: bit-length of ``q`` (the paper's ``MBITS``).
        root: a primitive ``n``-th root of unity.
        inverse_root: its modular inverse (for the inverse transform).
        size_inverse: ``n^{-1} mod q`` (final scaling of the inverse NTT).
        mu: the Barrett constant for ``q``.
        psi / inverse_psi: primitive ``2n``-th roots (negacyclic transforms).
    """

    size: int
    modulus: int
    modulus_bits: int
    root: int
    inverse_root: int
    size_inverse: int
    mu: int
    psi: int
    inverse_psi: int

    @property
    def stages(self) -> int:
        """Number of butterfly stages: ``log2(n)``."""
        return self.size.bit_length() - 1

    @property
    def butterflies_per_stage(self) -> int:
        """Butterflies per stage: ``n/2``."""
        return self.size // 2

    @property
    def total_butterflies(self) -> int:
        """Total butterflies: ``(n/2) * log2(n)`` (the paper's denominator)."""
        return self.butterflies_per_stage * self.stages

    def forward_twiddles(self) -> list[int]:
        """Powers ``root^0 .. root^(n/2 - 1)`` used by the forward transform."""
        return self._powers(self.root)

    def inverse_twiddles(self) -> list[int]:
        """Powers of the inverse root used by the inverse transform."""
        return self._powers(self.inverse_root)

    def _powers(self, base: int) -> list[int]:
        powers = [1]
        for _ in range(self.size // 2 - 1):
            powers.append((powers[-1] * base) % self.modulus)
        return powers

    def negacyclic_weights(self) -> tuple[list[int], list[int]]:
        """Pre/post-weights ``psi^i`` and ``psi^{-i}`` for negacyclic use."""
        forward = [pow(self.psi, i, self.modulus) for i in range(self.size)]
        inverse = [pow(self.inverse_psi, i, self.modulus) for i in range(self.size)]
        return forward, inverse


@dataclass(frozen=True)
class StagePlan:
    """How the ``log2(n)`` butterfly stages of an NTT split into launches.

    The paper's execution model launches one kernel per stage once the
    transform no longer fits in shared memory (Figure 3a); fusing several
    stages per launch trades shared-memory tiles for fewer global-memory
    round trips.  A :class:`StagePlan` records that split: ``spans[i]`` is
    the number of butterfly stages fused into launch ``i``.

    Attributes:
        size: transform length the plan covers.
        spans: stages fused per launch, in launch order (sums to ``log2(n)``).
    """

    size: int
    spans: tuple[int, ...]

    @property
    def stages(self) -> int:
        """Total butterfly stages: ``log2(n)``."""
        return self.size.bit_length() - 1

    @property
    def launches(self) -> int:
        """Number of kernel launches (global-memory round trips)."""
        return len(self.spans)

    @property
    def max_span(self) -> int:
        """The widest launch (bounds the shared-memory tile: 2^span points)."""
        return max(self.spans)


def make_stage_plan(size: int, stage_span: int = 1) -> StagePlan:
    """Split an ``n``-point NTT's stages into launches of ``stage_span`` stages.

    ``stage_span=1`` is the paper's stage-per-launch plan; larger spans fuse
    consecutive stages (the final launch takes the remainder).
    """
    if size < 2 or size & (size - 1):
        raise KernelError(f"NTT size must be a power of two >= 2, got {size}")
    stages = size.bit_length() - 1
    if stage_span < 1 or stage_span > stages:
        raise KernelError(
            f"stage span must be between 1 and {stages} for a {size}-point "
            f"transform, got {stage_span}"
        )
    full, remainder = divmod(stages, stage_span)
    spans = (stage_span,) * full + ((remainder,) if remainder else ())
    return StagePlan(size=size, spans=spans)


#: Plans are pure functions of their arguments; a bounded driver cache
#: (instead of an unbounded ``lru_cache``) keeps the working set finite and
#: its hit/miss counters observable via :func:`plan_cache_stats`.
_PLAN_CACHE = ContentAddressedCache(maxsize=128)


def plan_cache_stats():
    """Hit/miss/eviction counters of the plan cache."""
    return _PLAN_CACHE.stats()


def make_plan(size: int, modulus_bits: int, modulus: int | None = None, seed: int = 0) -> NTTPlan:
    """Create (and cache) an NTT plan.

    Args:
        size: power-of-two transform length.
        modulus_bits: desired prime bit-length (e.g. 124 for 128-bit MoMA
            operands, following the paper's ``k - 4`` convention).
        modulus: optionally a specific prime to use; it must satisfy
            ``modulus ≡ 1 (mod 2*size)``.
        seed: selects among the candidate primes, for experiments that need
            several distinct moduli.
    """
    if size < 2 or size & (size - 1):
        raise KernelError(f"NTT size must be a power of two >= 2, got {size}")
    cache_key = (size, modulus_bits, modulus, seed)
    cached = _PLAN_CACHE.get(cache_key)
    if cached is not None:
        return cached
    if modulus is None:
        modulus = find_ntt_prime(modulus_bits, size, seed)
    else:
        if not is_prime(modulus):
            raise KernelError(f"supplied modulus {modulus} is not prime")
        if (modulus - 1) % (2 * size) != 0:
            raise KernelError(
                f"modulus {modulus} does not support a {size}-point negacyclic NTT "
                f"(needs q ≡ 1 mod {2 * size})"
            )
        if modulus.bit_length() != modulus_bits:
            raise KernelError(
                f"modulus has {modulus.bit_length()} bits, expected {modulus_bits}"
            )
    psi = primitive_root_of_unity(2 * size, modulus)
    root = (psi * psi) % modulus
    if not is_primitive_root_of_unity(root, size, modulus):  # pragma: no cover
        raise KernelError("internal error: psi^2 is not a primitive n-th root")
    barrett = BarrettParams.create(modulus, modulus_bits + 4, modulus_bits)
    plan = NTTPlan(
        size=size,
        modulus=modulus,
        modulus_bits=modulus_bits,
        root=root,
        inverse_root=modinv(root, modulus),
        size_inverse=modinv(size, modulus),
        mu=barrett.mu,
        psi=psi,
        inverse_psi=modinv(psi, modulus),
    )
    _PLAN_CACHE.put(cache_key, plan)
    return plan
