"""Reference NTT implementations.

Two deliberately simple transforms used as oracles by the test suite:

* :func:`ntt_definition` — the O(n^2) matrix-vector product straight from
  Equation 12 of the paper.
* :func:`intt_definition` — its inverse, using the inverse root and the
  final scaling by ``n^{-1}``.

They are never used on the performance path.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import KernelError
from repro.ntt.planner import NTTPlan

__all__ = ["ntt_definition", "intt_definition"]


def _check_input(values: Sequence[int], plan: NTTPlan) -> list[int]:
    if len(values) != plan.size:
        raise KernelError(
            f"expected {plan.size} coefficients, got {len(values)}"
        )
    q = plan.modulus
    checked = []
    for index, value in enumerate(values):
        if not 0 <= value < q:
            raise KernelError(f"coefficient {index} is not reduced modulo q")
        checked.append(value)
    return checked


def ntt_definition(values: Sequence[int], plan: NTTPlan) -> list[int]:
    """Equation 12: ``y[k] = sum_j x[j] * omega^(j*k) mod q``."""
    x = _check_input(values, plan)
    q = plan.modulus
    omega = plan.root
    result = []
    for k in range(plan.size):
        accumulator = 0
        for j in range(plan.size):
            accumulator = (accumulator + x[j] * pow(omega, j * k, q)) % q
        result.append(accumulator)
    return result


def intt_definition(values: Sequence[int], plan: NTTPlan) -> list[int]:
    """Inverse of :func:`ntt_definition` (inverse root plus ``n^{-1}`` scaling)."""
    y = _check_input(values, plan)
    q = plan.modulus
    omega_inverse = plan.inverse_root
    result = []
    for k in range(plan.size):
        accumulator = 0
        for j in range(plan.size):
            accumulator = (accumulator + y[j] * pow(omega_inverse, j * k, q)) % q
        result.append((accumulator * plan.size_inverse) % q)
    return result
