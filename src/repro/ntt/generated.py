"""NTTs backed by MoMA-generated butterfly kernels.

:class:`GeneratedNTT` is the "runs the generated code" path of the
reproduction: every butterfly executes the legalized machine-word kernel
produced by the MoMA rewrite system (through the Python execution backend),
so a forward/inverse round trip here validates the entire code-generation
pipeline on a real transform, not just on isolated scalar operations.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import KernelError
from repro.core.codegen.python_exec import CompiledKernel
from repro.core.driver import CompilerSession
from repro.kernels.config import KernelConfig
from repro.kernels.ntt_gen import compile_butterfly_kernel
from repro.ntt.iterative import ntt_forward, ntt_inverse
from repro.ntt.planner import NTTPlan, make_plan

__all__ = ["GeneratedNTT"]


class GeneratedNTT:
    """An ``n``-point NTT whose butterflies are MoMA-generated kernels.

    Args:
        size: power-of-two transform length.
        config: operand-width configuration (bit-width, multiplication
            algorithm, machine word width).
        plan: optionally a pre-built :class:`NTTPlan`; by default a plan with
            a ``config.effective_modulus_bits``-bit prime is created.
        session: compiler session used to compile the butterfly (defaults to
            the process-wide session, so identical configurations share one
            cached kernel).
        autotune: replace the configuration's multiplication algorithm and
            word width with the autotuner's winner for ``device`` before
            compiling (searched once per kernel family, then served from
            ``tuning_db``).
        device: device model the autotuner optimizes for.
        tuning_db: persistent :class:`repro.tune.TuningDatabase` consulted
            and updated by the autotuner.
        serve: a :class:`repro.serve.KernelServer` to delegate tuning and
            compilation to; the butterfly is requested through the server's
            shared caches (``autotune`` selects tuned vs pinned) and
            ``session``/``tuning_db`` are unused.
    """

    def __init__(
        self,
        size: int,
        config: KernelConfig,
        plan: NTTPlan | None = None,
        session: CompilerSession | None = None,
        autotune: bool = False,
        device: str = "rtx4090",
        tuning_db=None,
        serve=None,
    ) -> None:
        served = None
        if serve is not None:
            # Imported lazily: repro.serve sits above this frontend.
            from repro.serve.client import serve_ntt_kernel

            served = serve_ntt_kernel(
                serve, config, size, device=device, tune=autotune
            )
            config = served.config
        elif autotune:
            # Imported lazily: repro.tune drives this class's frontends.
            from repro.kernels.ntt_gen import _autotuned_config

            config = _autotuned_config(
                config, "cooley_tukey", size, session, device, tuning_db
            )
        self.config = config
        self.plan = plan if plan is not None else make_plan(size, config.effective_modulus_bits)
        if self.plan.size != size:
            raise KernelError(
                f"plan is for {self.plan.size} points but the transform needs {size}"
            )
        if self.plan.modulus_bits != config.effective_modulus_bits:
            raise KernelError(
                f"plan modulus has {self.plan.modulus_bits} bits but the kernel "
                f"configuration expects {config.effective_modulus_bits}"
            )
        self._kernel: CompiledKernel = (
            served.artifact
            if served is not None
            else compile_butterfly_kernel(config, session=session)
        )

    @property
    def size(self) -> int:
        """Transform length."""
        return self.plan.size

    @property
    def modulus(self) -> int:
        """The NTT prime."""
        return self.plan.modulus

    @property
    def compiled_kernel(self) -> CompiledKernel:
        """The compiled butterfly (exposed for inspection and costing)."""
        return self._kernel

    def _butterfly(self, x: int, y: int, twiddle: int, plan: NTTPlan) -> tuple[int, int]:
        out = self._kernel(x=x, y=y, w=twiddle, q=plan.modulus, mu=plan.mu)
        return out["x_out"], out["y_out"]

    def forward(self, values: Sequence[int]) -> list[int]:
        """Forward NTT using generated butterflies."""
        return ntt_forward(values, self.plan, self._butterfly)

    def inverse(self, values: Sequence[int]) -> list[int]:
        """Inverse NTT using generated butterflies."""
        return ntt_inverse(values, self.plan, self._butterfly)

    def polynomial_multiply(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Cyclic convolution of two length-``n`` coefficient vectors.

        Computes ``INTT(NTT(a) . NTT(b))`` — the transform-domain product —
        which is the cyclic (mod ``x^n - 1``) polynomial product.
        """
        q = self.plan.modulus
        spectrum_a = self.forward(a)
        spectrum_b = self.forward(b)
        pointwise = [(x * y) % q for x, y in zip(spectrum_a, spectrum_b)]
        return self.inverse(pointwise)
