"""Negacyclic (mod ``x^n + 1``) convolution via the weighted NTT.

FHE schemes multiply polynomials in ``Z_q[x] / (x^n + 1)``; the standard
technique weights the inputs by powers of a ``2n``-th root of unity ``psi``,
performs ordinary ``n``-point NTTs, multiplies point-wise, inverts, and
un-weights by powers of ``psi^{-1}``.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.errors import KernelError
from repro.ntt.iterative import Butterfly, ntt_forward, ntt_inverse, reference_butterfly
from repro.ntt.planner import NTTPlan

__all__ = ["negacyclic_multiply", "negacyclic_convolution_reference"]


def negacyclic_convolution_reference(
    a: Sequence[int], b: Sequence[int], modulus: int
) -> list[int]:
    """O(n^2) negacyclic convolution used as the oracle in tests."""
    size = len(a)
    if len(b) != size:
        raise KernelError("operands must have the same length")
    result = [0] * size
    for i, coefficient_a in enumerate(a):
        for j, coefficient_b in enumerate(b):
            product = coefficient_a * coefficient_b
            index = i + j
            if index < size:
                result[index] = (result[index] + product) % modulus
            else:
                result[index - size] = (result[index - size] - product) % modulus
    return result


def negacyclic_multiply(
    a: Sequence[int],
    b: Sequence[int],
    plan: NTTPlan,
    butterfly: Butterfly = reference_butterfly,
) -> list[int]:
    """Negacyclic product of two length-``n`` coefficient vectors."""
    size = plan.size
    if len(a) != size or len(b) != size:
        raise KernelError(f"operands must have exactly {size} coefficients")
    q = plan.modulus
    forward_weights, inverse_weights = plan.negacyclic_weights()

    weighted_a = [(value * weight) % q for value, weight in zip(a, forward_weights)]
    weighted_b = [(value * weight) % q for value, weight in zip(b, forward_weights)]
    spectrum_a = ntt_forward(weighted_a, plan, butterfly)
    spectrum_b = ntt_forward(weighted_b, plan, butterfly)
    pointwise = [(x * y) % q for x, y in zip(spectrum_a, spectrum_b)]
    product = ntt_inverse(pointwise, plan, butterfly)
    return [(value * weight) % q for value, weight in zip(product, inverse_weights)]
