"""Batched-execution simulator for BLAS and NTT kernels.

Implements the paper's measurement methodology (Section 5.1) on top of the
cost model: kernels are executed in batches, the runtime of a single
operation is ``t_single = t_all / batch``, and the *steady-state* runtime is
the minimum ``t_single`` over batch sizes.  NTTs additionally model the
shared-memory behaviour of Figure 3a (transforms up to 2^10 points run out
of shared memory in a single fused launch; larger transforms stream every
stage through global memory) and the occupancy penalty that bends the
bit-width scaling curves of Figure 5a at very wide operands.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.core.driver import CompilerSession
from repro.gpu.cost_model import (
    EFFICIENCY,
    KERNEL_LAUNCH_OVERHEAD_S,
    KernelCost,
    cost_kernel,
)
from repro.gpu.device import DeviceSpec, get_device
from repro.kernels.blas_gen import generate_blas_kernel
from repro.kernels.config import KernelConfig
from repro.kernels.ntt_gen import generate_butterfly_kernel
from repro.ntt.planner import StagePlan

__all__ = [
    "BlasEstimate",
    "NttEstimate",
    "estimate_blas",
    "estimate_ntt",
    "moma_ntt_per_butterfly_ns",
    "SHARED_MEMORY_SIZE_LIMIT",
]

#: Largest transform the paper reports fitting entirely in shared memory.
SHARED_MEMORY_SIZE_LIMIT = 1 << 10

#: Batch sizes explored when searching for the steady-state runtime.
_BATCH_SIZES = tuple(1 << k for k in range(0, 11))

#: Per-device occupancy penalty: (words threshold, extra cost per word).
#: Models the register-pressure-driven non-linearity of Figure 5a (H100
#: bends upward at 576 bits = 9 words; the RTX 4090 stays linear to 640).
_OCCUPANCY_PENALTY = {
    "h100": (8, 0.08),
    "rtx4090": (10, 0.06),
    "v100": (8, 0.15),
}

#: Additional compute derating applied to stages that stream through global
#: memory (no shared-memory reuse).  The V100 suffers disproportionately, as
#: Figure 3a reports ("significant slowdown ... for size 2^11 and larger").
_SPILL_COMPUTE_PENALTY = {
    "h100": 1.0,
    "rtx4090": 1.05,
    "v100": 1.8,
}


def _occupancy_factor(device: DeviceSpec, operand_words: int) -> float:
    threshold, rate = _OCCUPANCY_PENALTY.get(device.name, (8, 0.2))
    if operand_words <= threshold:
        return 1.0
    return 1.0 + rate * (operand_words - threshold)


@dataclass(frozen=True)
class BlasEstimate:
    """Steady-state estimate for one BLAS operation on one device."""

    operation: str
    bits: int
    device: str
    batch: int
    per_element_ns: float
    compute_bound: bool
    cost: KernelCost


@dataclass(frozen=True)
class NttEstimate:
    """Steady-state estimate for one NTT configuration on one device."""

    bits: int
    size: int
    device: str
    batch: int
    per_ntt_us: float
    per_butterfly_ns: float
    shared_memory_fit: bool
    cost: KernelCost
    launches: int = 1

    @property
    def total_butterflies(self) -> int:
        """Butterflies in one transform: ``(n/2) log2 n``."""
        stages = self.size.bit_length() - 1
        return (self.size // 2) * stages


def _blas_cost(
    operation: str, config: KernelConfig, session: CompilerSession | None
) -> KernelCost:
    # The kernel itself is cached by the driver session; costing the cached
    # statement list is a cheap linear walk.
    return cost_kernel(generate_blas_kernel(operation, config, session=session))


def _butterfly_cost(config: KernelConfig, session: CompilerSession | None) -> KernelCost:
    return cost_kernel(generate_butterfly_kernel(config, session=session))


def estimate_blas(
    operation: str,
    config: KernelConfig,
    device_name: str,
    elements: int = 1 << 20,
    batch: int | None = None,
    session: CompilerSession | None = None,
) -> BlasEstimate:
    """Steady-state per-element runtime of a batched BLAS kernel.

    ``elements`` is the total number of vector elements processed (the paper
    uses 2^20); the batch dimension of the paper's methodology is the vector
    length per launch, explored here to find the steady state.  Passing
    ``batch`` fixes the batch size instead (the autotuner's batch axis).
    """
    if elements < 1:
        raise SimulationError("elements must be positive")
    device = get_device(device_name)
    cost = _blas_cost(operation, config, session)
    sustained = device.peak_int64_ops_per_second * EFFICIENCY
    occupancy = _occupancy_factor(device, config.operand_words)

    best_per_element = None
    best_batch = 1
    compute_bound = False
    for batch in (batch,) if batch is not None else _BATCH_SIZES:
        if batch < 1:
            raise SimulationError("batch size must be positive")
        vector_length = max(1, elements // batch)
        compute = vector_length * cost.weighted_ops * occupancy / sustained
        memory = vector_length * cost.bytes_per_element / device.memory_bandwidth_bytes_per_second
        launch_time = max(compute, memory) + KERNEL_LAUNCH_OVERHEAD_S
        per_element = launch_time / vector_length
        if best_per_element is None or per_element < best_per_element:
            best_per_element = per_element
            best_batch = batch
            compute_bound = compute >= memory
    return BlasEstimate(
        operation=operation,
        bits=config.bits,
        device=device.name,
        batch=best_batch,
        per_element_ns=best_per_element * 1e9,
        compute_bound=compute_bound,
        cost=cost,
    )


def estimate_ntt(
    config: KernelConfig,
    size: int,
    device_name: str,
    batch: int | None = None,
    stage_plan: StagePlan | None = None,
    session: CompilerSession | None = None,
) -> NttEstimate:
    """Steady-state runtime of an ``size``-point NTT with MoMA butterflies.

    Args:
        config: operand-width configuration.
        size: transform length (power of two).
        device_name: ``h100``, ``rtx4090`` or ``v100``.
        batch: fix the batch size instead of searching for the steady state.
        stage_plan: how butterfly stages split into launches when the
            transform streams through global memory; defaults to the paper's
            stage-per-launch plan.  Irrelevant for shared-memory-resident
            transforms, which always run as one fused launch.
        session: compiler session used to generate the butterfly kernel
            (defaults to the process-wide session).
    """
    if size < 2 or size & (size - 1):
        raise SimulationError(f"NTT size must be a power of two, got {size}")
    if stage_plan is not None and stage_plan.size != size:
        raise SimulationError(
            f"stage plan covers a {stage_plan.size}-point transform, "
            f"but the estimate is for {size} points"
        )
    device = get_device(device_name)
    cost = _butterfly_cost(config, session)
    stages = size.bit_length() - 1
    butterflies = (size // 2) * stages
    words = config.operand_words
    poly_bytes = size * words * 8
    shared_fit = (
        size <= SHARED_MEMORY_SIZE_LIMIT
        and poly_bytes <= device.shared_memory_per_block_kb * 1024
    )
    sustained = device.peak_int64_ops_per_second * EFFICIENCY
    occupancy = _occupancy_factor(device, words)

    launches = 1 if shared_fit else (stage_plan.launches if stage_plan is not None else stages)
    batches = (batch,) if batch is not None else _BATCH_SIZES
    best = None
    for candidate in batches:
        if candidate < 1:
            raise SimulationError("batch size must be positive")
        compute = candidate * butterflies * cost.weighted_ops * occupancy / sustained
        if shared_fit:
            # Entire transform runs out of shared memory: one fused launch,
            # global traffic only for the initial load and final store, and
            # computation overlaps the streaming.
            traffic = 2 * candidate * poly_bytes
            memory = traffic / device.memory_bandwidth_bytes_per_second
            total = max(compute, memory) + KERNEL_LAUNCH_OVERHEAD_S
        else:
            # Each launch round-trips the data through global memory; compute
            # and traffic serialise at kernel boundaries (the out-of-shared-
            # memory slowdown of Figure 3a).  The paper launches one stage at
            # a time; a stage plan that fuses several stages per launch cuts
            # both the round trips and the launch overhead.
            traffic = 2 * candidate * poly_bytes * launches
            memory = traffic / device.memory_bandwidth_bytes_per_second
            compute *= _SPILL_COMPUTE_PENALTY.get(device.name, 1.0)
            total = compute + memory + launches * KERNEL_LAUNCH_OVERHEAD_S
        per_ntt = total / candidate
        if best is None or per_ntt < best[0]:
            best = (per_ntt, candidate)
    per_ntt_seconds, best_batch = best
    return NttEstimate(
        bits=config.bits,
        size=size,
        device=device.name,
        batch=best_batch,
        per_ntt_us=per_ntt_seconds * 1e6,
        per_butterfly_ns=per_ntt_seconds / butterflies * 1e9,
        shared_memory_fit=shared_fit,
        cost=cost,
        launches=launches,
    )


def moma_ntt_per_butterfly_ns(
    bits: int,
    size: int,
    multiplication: str = "schoolbook",
    session: CompilerSession | None = None,
) -> dict[str, float]:
    """MoMA per-butterfly estimates on all three paper GPUs.

    Convenience helper used by the evaluation harnesses and the published
    baseline anchors.
    """
    config = KernelConfig(bits=bits, multiplication=multiplication)
    return {
        device: estimate_ntt(config, size, device, session=session).per_butterfly_ns
        for device in ("h100", "rtx4090", "v100")
    }
