"""Instruction-level GPU performance model.

The paper measures generated kernels with ``nsys`` on real GPUs; this
reproduction replaces the hardware with an analytic model:

1. every legalized kernel is costed by counting its machine-word operations,
   weighted by how many integer-pipe micro-operations each one costs on a
   64-bit-word GPU (a widening 64x64 multiply is several 32-bit IMADs, an
   add-with-carry is a pair of 32-bit adds, ...);
2. a device model (:mod:`repro.gpu.device`) converts the weighted count into
   time, assuming the batched, one-thread-per-element/butterfly execution of
   Section 5.1 keeps the GPU throughput-limited;
3. a memory model charges global-memory traffic for operands and results and
   for NTT stages that no longer fit in shared memory (the source of the
   slowdown beyond 2^10 points discussed for Figure 3a); and
4. a single sustained-efficiency constant (calibrated once, see DESIGN.md)
   scales peak to achievable throughput.

Absolute nanoseconds from this model are estimates; the quantities the
reproduction relies on — ratios between devices, between bit-widths, between
algorithms, and the location of memory/compute crossovers — follow from the
operation counts and device parameters, which is what the evaluation
harnesses and benchmark assertions check.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.core.ir.kernel import Kernel
from repro.core.ir.ops import OpKind
from repro.gpu.device import DeviceSpec

__all__ = [
    "INSTRUCTION_WEIGHTS",
    "KernelCost",
    "cost_kernel",
    "kernel_compute_seconds",
    "elementwise_kernel_time",
    "EFFICIENCY",
    "KERNEL_LAUNCH_OVERHEAD_S",
]

#: Integer-pipe micro-operations charged per machine-level IR operation.
#: Derived from how nvcc lowers the corresponding C constructs on 64-bit
#: operands (e.g. a widening multiply becomes a short sequence of IMAD.WIDE /
#: IMAD.HI instructions, an add-with-carry an ADD/ADDC pair).
INSTRUCTION_WEIGHTS: dict[OpKind, float] = {
    OpKind.MOV: 0.5,
    OpKind.ADD: 2.0,
    OpKind.SUB: 2.0,
    OpKind.MUL: 6.0,
    OpKind.MULLO: 3.0,
    OpKind.LT: 1.0,
    OpKind.LE: 1.0,
    OpKind.EQ: 1.0,
    OpKind.AND: 0.5,
    OpKind.OR: 0.5,
    OpKind.NOT: 0.5,
    OpKind.SELECT: 1.0,
    OpKind.SHR: 1.5,
    OpKind.SHL: 1.5,
}

#: Fraction of the device's modelled integer throughput that large generated
#: kernels sustain in steady state (register pressure, dependent carry
#: chains, dual-issue limits).  Calibrated once for all experiments.
EFFICIENCY = 0.12

#: Fixed cost of launching one kernel / synchronising one NTT stage.
KERNEL_LAUNCH_OVERHEAD_S = 4.0e-6


@dataclass(frozen=True)
class KernelCost:
    """Static cost summary of one legalized kernel (per element/butterfly)."""

    kernel_name: str
    statement_count: int
    weighted_ops: float
    multiplications: int
    input_words: int
    output_words: int

    @property
    def bytes_per_element(self) -> int:
        """Global-memory traffic per element (operands in, results out)."""
        return 8 * (self.input_words + self.output_words)


def cost_kernel(kernel: Kernel) -> KernelCost:
    """Count and weight the machine operations of a legalized kernel."""
    if not kernel.metadata.get("legalized"):
        raise SimulationError(
            f"kernel {kernel.name!r} must be legalized before it can be costed"
        )
    weighted = 0.0
    multiplications = 0
    for statement in kernel.body:
        weight = INSTRUCTION_WEIGHTS.get(statement.op)
        if weight is None:
            raise SimulationError(f"no instruction weight for {statement.op}")
        weighted += weight
        if statement.op in (OpKind.MUL, OpKind.MULLO):
            multiplications += 1
    uniform = set(kernel.metadata.get("uniform_params", ()))
    layouts = kernel.metadata.get("param_layout", {})
    input_words = sum(
        sum(1 for limb in limbs if limb is not None)
        for name, limbs in layouts.items()
        if name not in uniform
    )
    output_words = sum(
        sum(1 for limb in limbs if limb is not None)
        for limbs in kernel.metadata.get("output_layout", {}).values()
    )
    return KernelCost(
        kernel_name=kernel.name,
        statement_count=len(kernel.body),
        weighted_ops=weighted,
        multiplications=multiplications,
        input_words=input_words,
        output_words=output_words,
    )


def kernel_compute_seconds(cost: KernelCost, device: DeviceSpec, elements: int) -> float:
    """Pure compute time for ``elements`` independent kernel instances."""
    sustained = device.peak_int64_ops_per_second * EFFICIENCY
    return elements * cost.weighted_ops / sustained


def elementwise_kernel_time(
    cost: KernelCost, device: DeviceSpec, elements: int
) -> float:
    """Wall time of one batched element-wise kernel launch (BLAS style).

    The launch processes ``elements`` independent elements, one thread each
    (Section 5.1); time is the maximum of the compute and memory phases plus
    the fixed launch overhead.
    """
    if elements < 1:
        raise SimulationError("elements must be positive")
    compute = kernel_compute_seconds(cost, device, elements)
    memory = elements * cost.bytes_per_element / device.memory_bandwidth_bytes_per_second
    return max(compute, memory) + KERNEL_LAUNCH_OVERHEAD_S
