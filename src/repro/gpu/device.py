"""GPU device catalog (Table 2 of the paper).

The paper benchmarks three NVIDIA GPUs; this reproduction has none, so the
devices exist as specification records consumed by the performance model in
:mod:`repro.gpu.cost_model`.  The headline figures (core count, clock, memory
technology) come directly from Table 2; the derived throughput figures use
public architecture characteristics (integer-pipe issue rates, memory
bandwidth) and a single efficiency factor calibrated once for all
experiments (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = ["DeviceSpec", "DEVICES", "get_device"]


@dataclass(frozen=True)
class DeviceSpec:
    """Specification of one GPU used in the paper's evaluation.

    Attributes:
        name: short identifier used throughout the evaluation harnesses.
        marketing_name: full product name (as in Table 2).
        cuda_cores: number of CUDA cores (Table 2 "#Cores").
        max_clock_mhz: boost clock in MHz (Table 2 "Max Freq.").
        memory_gb: device memory size in GB.
        memory_type: HBM3 / GDDR6X / HBM2 (Table 2 "Bus Type").
        memory_bandwidth_gbs: peak memory bandwidth in GB/s.
        shared_memory_per_block_kb: shared memory available to one block.
        max_threads_per_block: CUDA limit (1,024 — Section 5.1).
        toolkit: CUDA toolkit version used in the paper.
        int_ops_per_core_per_cycle: sustained 64-bit integer-pipe throughput
            per CUDA core per cycle used by the cost model.  64-bit integer
            arithmetic runs on the 32-bit ALUs as instruction pairs, so this
            is well below one.
        class_name: "server" or "consumer" (used in reports only).
    """

    name: str
    marketing_name: str
    cuda_cores: int
    max_clock_mhz: int
    memory_gb: int
    memory_type: str
    memory_bandwidth_gbs: float
    shared_memory_per_block_kb: int
    max_threads_per_block: int
    toolkit: str
    int_ops_per_core_per_cycle: float
    class_name: str

    @property
    def clock_hz(self) -> float:
        """Boost clock in Hz."""
        return self.max_clock_mhz * 1.0e6

    @property
    def peak_int64_ops_per_second(self) -> float:
        """Modelled sustained 64-bit integer operations per second."""
        return self.cuda_cores * self.clock_hz * self.int_ops_per_core_per_cycle

    @property
    def memory_bandwidth_bytes_per_second(self) -> float:
        """Peak memory bandwidth in bytes/s."""
        return self.memory_bandwidth_gbs * 1.0e9


#: Table 2, plus the architecture-derived figures used by the cost model.
DEVICES: dict[str, DeviceSpec] = {
    "h100": DeviceSpec(
        name="h100",
        marketing_name="NVIDIA H100 Tensor Core",
        cuda_cores=16896,
        max_clock_mhz=1980,
        memory_gb=80,
        memory_type="HBM3",
        memory_bandwidth_gbs=3350.0,
        shared_memory_per_block_kb=227,
        max_threads_per_block=1024,
        toolkit="12.2",
        int_ops_per_core_per_cycle=0.25,
        class_name="server",
    ),
    "rtx4090": DeviceSpec(
        name="rtx4090",
        marketing_name="NVIDIA GeForce RTX 4090",
        cuda_cores=16384,
        max_clock_mhz=2595,
        memory_gb=24,
        memory_type="GDDR6X",
        memory_bandwidth_gbs=1008.0,
        shared_memory_per_block_kb=100,
        max_threads_per_block=1024,
        toolkit="12.0",
        int_ops_per_core_per_cycle=0.25,
        class_name="consumer",
    ),
    "v100": DeviceSpec(
        name="v100",
        marketing_name="NVIDIA Tesla V100 Tensor Core",
        cuda_cores=5120,
        max_clock_mhz=1530,
        memory_gb=32,
        memory_type="HBM2",
        memory_bandwidth_gbs=900.0,
        shared_memory_per_block_kb=96,
        max_threads_per_block=1024,
        toolkit="11.7",
        int_ops_per_core_per_cycle=0.45,
        class_name="server",
    ),
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by its short name (``h100``, ``rtx4090``, ``v100``)."""
    key = name.lower()
    if key not in DEVICES:
        raise SimulationError(
            f"unknown device {name!r}; available: {', '.join(sorted(DEVICES))}"
        )
    return DEVICES[key]
