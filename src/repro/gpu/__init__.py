"""GPU substrate: device catalog (Table 2) and the analytic performance model
standing in for the paper's H100 / RTX 4090 / V100 testbed."""

from repro.gpu.cost_model import INSTRUCTION_WEIGHTS, KernelCost, cost_kernel
from repro.gpu.device import DEVICES, DeviceSpec, get_device
from repro.gpu.simulator import (
    BlasEstimate,
    NttEstimate,
    estimate_blas,
    estimate_ntt,
    moma_ntt_per_butterfly_ns,
)

__all__ = [
    "INSTRUCTION_WEIGHTS",
    "KernelCost",
    "cost_kernel",
    "DEVICES",
    "DeviceSpec",
    "get_device",
    "BlasEstimate",
    "NttEstimate",
    "estimate_blas",
    "estimate_ntt",
    "moma_ntt_per_butterfly_ns",
]
