"""Search strategies over a :class:`~repro.tune.space.TuningSpace`.

Three strategies cover the space sizes that occur in practice:

* :func:`exhaustive_search` — every candidate; exact, and affordable because
  the evaluator compiles through the driver's content-addressed cache and
  the analytic cost model (no hardware in the loop).
* :func:`random_search` — a seeded sample for large spaces; the paper
  default is always included so the result can never regress below it.
* :func:`hillclimb_search` — greedy steepest-descent from the paper default
  over single-axis moves, with early stopping once no neighbor improves (or
  ``patience`` consecutive steps improve by less than ``min_improvement``).

Every strategy is deterministic under its ``seed`` and returns a
:class:`SearchResult` recording each scored trial, so tuning runs are
reproducible and auditable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import TuningError
from repro.tune.space import Candidate, TuningSpace, default_candidate

__all__ = [
    "Trial",
    "SearchResult",
    "exhaustive_search",
    "random_search",
    "hillclimb_search",
    "STRATEGIES",
    "get_strategy",
    "resolve_strategy",
]

#: Space size at or below which ``"auto"`` resolves to exhaustive search.
_EXHAUSTIVE_LIMIT = 64


@dataclass(frozen=True)
class Trial:
    """One scored candidate (lower score is better; seconds)."""

    candidate: Candidate
    score: float


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one search: the winner plus every trial that was scored."""

    strategy: str
    best: Trial
    trials: tuple[Trial, ...]

    @property
    def evaluations(self) -> int:
        """Number of distinct candidates that were scored."""
        return len(self.trials)


class _Memo:
    """Score memoizer: each candidate is evaluated at most once per search."""

    def __init__(self, evaluate) -> None:
        self._evaluate = evaluate
        self._scores: dict[Candidate, float] = {}

    def __call__(self, candidate: Candidate) -> float:
        if candidate not in self._scores:
            self._scores[candidate] = self._evaluate(candidate)
        return self._scores[candidate]

    def trials(self) -> tuple[Trial, ...]:
        return tuple(Trial(c, s) for c, s in self._scores.items())

    def best(self) -> Trial:
        if not self._scores:
            raise TuningError("search scored no candidates")
        return min(self.trials(), key=lambda trial: (trial.score, repr(trial.candidate)))


def exhaustive_search(space: TuningSpace, evaluate, seed: int = 0) -> SearchResult:
    """Score every candidate in the space (the seed is unused but accepted)."""
    memo = _Memo(evaluate)
    for candidate in space:
        memo(candidate)
    return SearchResult(strategy="exhaustive", best=memo.best(), trials=memo.trials())


def random_search(
    space: TuningSpace, evaluate, seed: int = 0, samples: int = 16
) -> SearchResult:
    """Score a seeded sample of the space, always including the paper default.

    Including the default makes the result a guaranteed non-regression: the
    winner is at worst the configuration the paper would have used.
    """
    if samples < 1:
        raise TuningError(f"samples must be positive, got {samples}")
    memo = _Memo(evaluate)
    default = default_candidate(space.workload)
    memo(default)
    pool = [c for c in space.candidates() if c != default]
    rng = random.Random(seed)
    for candidate in rng.sample(pool, min(samples, len(pool))):
        memo(candidate)
    return SearchResult(strategy="random", best=memo.best(), trials=memo.trials())


def hillclimb_search(
    space: TuningSpace,
    evaluate,
    seed: int = 0,
    max_steps: int = 32,
    patience: int = 2,
    min_improvement: float = 0.01,
) -> SearchResult:
    """Greedy steepest-descent from the paper default over single-axis moves.

    Each step scores every neighbor of the current candidate and moves to the
    best one if it improves the score.  Early stopping: the climb ends when
    no neighbor improves, when ``max_steps`` moves were taken, or when
    ``patience`` consecutive moves each improved by less than
    ``min_improvement`` (relative).
    """
    if max_steps < 1:
        raise TuningError(f"max_steps must be positive, got {max_steps}")
    memo = _Memo(evaluate)
    current = default_candidate(space.workload)
    current_score = memo(current)
    stale = 0
    for _ in range(max_steps):
        neighbors = space.neighbors(current)
        if not neighbors:
            break
        scored = [(memo(n), n) for n in neighbors]
        best_score, best_neighbor = min(scored, key=lambda pair: (pair[0], repr(pair[1])))
        if best_score >= current_score:
            break
        improvement = (current_score - best_score) / current_score
        stale = stale + 1 if improvement < min_improvement else 0
        current, current_score = best_neighbor, best_score
        if stale >= patience:
            break
    return SearchResult(strategy="hillclimb", best=memo.best(), trials=memo.trials())


#: Strategy registry: name -> callable(space, evaluate, seed) -> SearchResult.
STRATEGIES = {
    "exhaustive": exhaustive_search,
    "random": random_search,
    "hillclimb": hillclimb_search,
}


def resolve_strategy(name: str, space: TuningSpace) -> str:
    """Resolve ``"auto"`` to a concrete strategy for the given space size."""
    if name == "auto":
        return "exhaustive" if len(space) <= _EXHAUSTIVE_LIMIT else "hillclimb"
    if name not in STRATEGIES:
        raise TuningError(
            f"unknown search strategy {name!r}; available: "
            f"{', '.join(sorted(STRATEGIES))} (or 'auto')"
        )
    return name


def get_strategy(name: str):
    """Look a concrete strategy up by name (``"auto"`` is not concrete)."""
    if name not in STRATEGIES:
        raise TuningError(
            f"unknown search strategy {name!r}; available: "
            f"{', '.join(sorted(STRATEGIES))}"
        )
    return STRATEGIES[name]
