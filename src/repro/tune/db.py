"""The persistent per-device tuning database.

Winning configurations are remembered so a workload is searched once per
(kernel family, device, tuner version) and served from disk afterwards:

* records are keyed by the workload's *kernel fingerprint family*
  (:meth:`~repro.tune.space.Workload.fingerprint`, which hashes the wide IR
  the frontend builds — so records go stale when the frontend changes), the
  device name, and :data:`TUNER_VERSION` — all under a **tenant namespace**:
  the shared :data:`~repro.tenancy.DEFAULT_TENANT` namespace is the bare
  legacy key (pre-tenant databases need no migration to stay readable), and
  a non-default tenant's records carry a ``tenant::`` key prefix plus an
  explicit ``tenant`` field.  Lookups fall back from the request's tenant
  namespace to the shared default namespace on miss, so a tenant only forks
  a family's record when its own tuning run writes one;
* each record stores the winning candidate, its modeled score, the paper-
  default baseline, and search provenance (strategy, evaluations scored,
  space size, creation time);
* the JSON file is written atomically (temp file + ``os.replace``), and every
  save first *merges* the current on-disk records (newest ``created_at`` per
  key wins) so parallel tuners writing to one database file cannot drop each
  other's winners — a crashed run can never corrupt previously saved ones;
* lookups are counted (:meth:`TuningDatabase.stats`), which is how the
  harnesses verify that a warm database skips the search entirely.

Instances are thread-safe: the serving subsystem (:mod:`repro.serve`) shares
one database across its worker pool, so every record access holds a lock.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import TuningError
from repro.core.rewrite.options import KARATSUBA, SCHOOLBOOK
from repro.tenancy import DEFAULT_TENANT, qualify_key, validate_tenant
from repro.tune.space import Candidate, Workload

__all__ = ["TUNER_VERSION", "DbStats", "TuningRecord", "TuningDatabase"]

#: Bump when the search space, the cost model's candidate axes, or the record
#: schema change incompatibly: old records then miss and workloads re-tune.
TUNER_VERSION = 1

_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class DbStats:
    """Lookup/store counters of one database instance."""

    hits: int
    misses: int
    stores: int
    records: int


@dataclass(frozen=True)
class TuningRecord:
    """One remembered winner for a (workload family, device, version) key.

    Attributes:
        fingerprint: the workload's kernel-family fingerprint.
        workload_key: human-readable workload identity (for provenance only).
        device: device short name the record was tuned for.
        tuner_version: :data:`TUNER_VERSION` at tuning time.
        candidate: the winning configuration.
        score_seconds: the winner's modeled seconds per workload unit.
        baseline_seconds: the paper-default configuration's modeled seconds.
        strategy: search strategy that found the winner.
        evaluations: distinct candidates scored by the search.
        space_size: size of the configuration space that was searched.
        created_at: UNIX timestamp of the tuning run.
        tenant: the tenant namespace the record belongs to
            (:data:`~repro.tenancy.DEFAULT_TENANT` for the shared
            namespace; pre-tenant files load with the default).
    """

    fingerprint: str
    workload_key: str
    device: str
    tuner_version: int
    candidate: Candidate
    score_seconds: float
    baseline_seconds: float
    strategy: str
    evaluations: int
    space_size: int
    created_at: float
    tenant: str = DEFAULT_TENANT

    def key(self) -> str:
        """The database key: tenant namespace + family + device + version.

        The default namespace is the *bare* legacy key (no prefix), which
        is what keeps pre-tenant database files and replicas readable and
        mergeable without rewriting; a non-default tenant's key carries a
        ``tenant::`` prefix.
        """
        return qualify_key(
            self.tenant, f"{self.fingerprint}::{self.device}::v{self.tuner_version}"
        )

    def to_json(self) -> dict:
        """JSON-serializable form of the record."""
        payload = dataclasses.asdict(self)
        payload["candidate"] = dataclasses.asdict(self.candidate)
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> TuningRecord:
        """Rebuild a record from its JSON form (raising on corrupt data).

        Validates semantics, not just structure: a hand-edited database with
        an impossible candidate (unknown algorithm, non-power-of-two word
        width, zero batch) must fail *here* with a :class:`TuningError`, not
        later inside the frontends as a served "winner".  A record with no
        ``tenant`` field (every pre-tenant file) loads into the shared
        :data:`~repro.tenancy.DEFAULT_TENANT` namespace.
        """
        if not isinstance(payload, dict):
            raise TuningError(f"corrupt tuning record: {payload!r}")
        payload = dict(payload)
        payload.setdefault("tenant", DEFAULT_TENANT)
        try:
            validate_tenant(payload["tenant"])
        except ValueError as error:
            raise TuningError(f"corrupt tuning record: {error}") from None
        try:
            candidate = Candidate(**payload["candidate"])
            fields = {f.name: payload[f.name] for f in dataclasses.fields(cls)}
        except (KeyError, TypeError) as error:
            raise TuningError(f"corrupt tuning record: {error}") from None
        _validate_candidate(candidate)
        for name in ("score_seconds", "baseline_seconds"):
            if not isinstance(fields[name], (int, float)) or fields[name] <= 0:
                raise TuningError(f"corrupt tuning record: bad {name} {fields[name]!r}")
        for name in ("evaluations", "space_size", "tuner_version"):
            if not isinstance(fields[name], int) or fields[name] < 0:
                raise TuningError(f"corrupt tuning record: bad {name} {fields[name]!r}")
        fields["candidate"] = candidate
        return cls(**fields)


def _validate_candidate(candidate: Candidate) -> None:
    if candidate.multiplication not in (SCHOOLBOOK, KARATSUBA):
        raise TuningError(
            f"corrupt tuning record: unknown multiplication "
            f"{candidate.multiplication!r}"
        )
    word = candidate.word_bits
    if not isinstance(word, int) or word < 8 or word & (word - 1):
        raise TuningError(f"corrupt tuning record: bad word width {word!r}")
    if not isinstance(candidate.stage_span, int) or candidate.stage_span < 1:
        raise TuningError(
            f"corrupt tuning record: bad stage span {candidate.stage_span!r}"
        )
    if candidate.batch is not None and (
        not isinstance(candidate.batch, int) or candidate.batch < 1
    ):
        raise TuningError(f"corrupt tuning record: bad batch {candidate.batch!r}")


class TuningDatabase:
    """A JSON-backed store of winning configurations, one record per key.

    Args:
        path: JSON file to load from / save to; ``None`` keeps the database
            in memory only (handy for tests and one-shot tuning).
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._records: dict[str, TuningRecord] = {}
        self._hits = 0
        self._misses = 0
        self._stores = 0
        # Tombstones: key -> removal timestamp.  Persisted in the file and
        # merged like records, so a removal in one process cannot be
        # resurrected by another process's later save — unless that process
        # stores a strictly newer record under the key (a re-tune wins).
        self._dropped: dict[str, float] = {}
        self._lock = threading.RLock()
        if self.path is not None and self.path.exists():
            self._load()

    @staticmethod
    def parse_file(path: str | Path) -> tuple[dict[str, TuningRecord], dict[str, float]]:
        """Parse one database file into its (records, tombstones) sections.

        Raises :class:`TuningError` for unreadable, corrupt, or
        schema-mismatched files.  This is the read half that both loading
        and merging (:meth:`merge_file`) are built on.
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise TuningError(f"cannot read tuning database {path}: {error}") from None
        if not isinstance(payload, dict) or "records" not in payload:
            raise TuningError(f"tuning database {path} has no 'records' section")
        if payload.get("schema") != _SCHEMA_VERSION:
            raise TuningError(
                f"tuning database {path} has schema {payload.get('schema')!r}, "
                f"expected {_SCHEMA_VERSION}"
            )
        dropped = payload.get("dropped", {})
        if not isinstance(dropped, dict) or not all(
            isinstance(stamp, (int, float)) for stamp in dropped.values()
        ):
            raise TuningError(f"tuning database {path} has a corrupt 'dropped' section")
        records = {
            key: TuningRecord.from_json(record)
            for key, record in payload["records"].items()
        }
        return records, dict(dropped)

    def _parse_file(self) -> tuple[dict[str, TuningRecord], dict[str, float]]:
        return self.parse_file(self.path)

    def _load(self) -> None:
        records, dropped = self._parse_file()
        self._dropped.update(dropped)
        for key, record in records.items():
            if self._dropped.get(key, float("-inf")) < record.created_at:
                self._records[key] = record

    @staticmethod
    def _key(
        workload: Workload, device_name: str, tenant: str = DEFAULT_TENANT
    ) -> str:
        return qualify_key(
            tenant, f"{workload.fingerprint()}::{device_name}::v{TUNER_VERSION}"
        )

    def lookup(
        self,
        workload: Workload,
        device_name: str,
        tenant: str = DEFAULT_TENANT,
    ) -> TuningRecord | None:
        """The remembered winner for (tenant, workload family, device), if any.

        A non-default tenant's lookup falls back to the shared
        :data:`~repro.tenancy.DEFAULT_TENANT` namespace on miss — a tenant
        inherits the shared winner until its own tuning run stores a
        tenant-scoped record (which then shadows the shared one).  A
        fallback hit counts as a hit.
        """
        with self._lock:
            record = self._records.get(self._key(workload, device_name, tenant))
            if record is None and tenant != DEFAULT_TENANT:
                record = self._records.get(self._key(workload, device_name))
            if record is None:
                self._misses += 1
                return None
            self._hits += 1
            return record

    def store(self, record: TuningRecord, save: bool = True) -> TuningRecord:
        """Remember a winner (and persist the database when file-backed)."""
        with self._lock:
            self._records[record.key()] = record
            self._dropped.pop(record.key(), None)
            self._stores += 1
            if save:
                self.save()
            return record

    def remove(self, key: str, save: bool = True) -> bool:
        """Forget one record by key; True when it was present.

        The key is tombstoned — in this instance and, once saved, in the
        file — so a concurrent writer's copy of the record cannot be
        resurrected by merge-on-save in *any* process; only a record created
        after the removal (a re-tune, via :meth:`store`) outlives it.
        """
        with self._lock:
            present = self._records.pop(key, None) is not None
            self._dropped[key] = self.timestamp()
            if save:
                self.save()
            return present

    def records(self) -> dict[str, TuningRecord]:
        """A snapshot of every record, keyed as stored (sorted by key)."""
        with self._lock:
            return dict(sorted(self._records.items()))

    def merge_sections(
        self, records: dict[str, TuningRecord], dropped: dict[str, float]
    ) -> int:
        """Merge another database's (records, tombstones) into this one.

        The reconciliation primitive behind merge-on-save and replica
        reconciliation: per key, the newest ``created_at`` wins; a tombstone
        beats any record created at or before it, and a strictly newer
        record (a re-tune) beats the tombstone.  Returns the number of
        records adopted or replaced.
        """
        adopted = 0
        with self._lock:
            for key, stamp in dropped.items():
                if stamp > self._dropped.get(key, float("-inf")):
                    self._dropped[key] = stamp
            for key, stamp in self._dropped.items():
                mine = self._records.get(key)
                if mine is not None and mine.created_at <= stamp:
                    del self._records[key]
            for key, record in records.items():
                if self._dropped.get(key, float("-inf")) >= record.created_at:
                    continue
                mine = self._records.get(key)
                if mine is None or record.created_at > mine.created_at:
                    self._records[key] = record
                    self._dropped.pop(key, None)
                    adopted += 1
        return adopted

    def merge_file(self, path: str | Path) -> int:
        """Merge another database *file* (e.g. a shard replica) into this one.

        Returns the number of records adopted; raises :class:`TuningError`
        for an unreadable or corrupt file.  Call :meth:`save` afterwards to
        persist the union.
        """
        records, dropped = self.parse_file(path)
        return self.merge_sections(records, dropped)

    def _merge_from_disk(self) -> None:
        # Parallel tuners share one database file; a blind write would be
        # last-writer-wins and drop their records.  Adopt every on-disk
        # record and tombstone we do not have (or have an older version of).
        # A corrupt or foreign on-disk file is ignored: our snapshot then
        # simply replaces it.
        if not self.path.exists():
            return
        try:
            on_disk, dropped = self._parse_file()
        except TuningError:
            return
        self.merge_sections(on_disk, dropped)

    def save(self) -> None:
        """Atomically write the database to its file (no-op when in-memory).

        Concurrent-writer safe: the current on-disk records are merged in
        (newest ``created_at`` per key wins) before the atomic replace, so
        two processes tuning different workloads against one file both keep
        their winners regardless of save order.
        """
        if self.path is None:
            return
        with self._lock:
            self._merge_from_disk()
            payload = {
                "schema": _SCHEMA_VERSION,
                "tuner_version": TUNER_VERSION,
                "records": {
                    key: record.to_json() for key, record in sorted(self._records.items())
                },
                "dropped": dict(sorted(self._dropped.items())),
            }
            self.path.parent.mkdir(parents=True, exist_ok=True)
            temporary = self.path.with_name(self.path.name + f".tmp.{os.getpid()}")
            temporary.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
            os.replace(temporary, self.path)

    @staticmethod
    def timestamp() -> float:
        """The provenance timestamp used for new records."""
        return time.time()

    def stats(self) -> DbStats:
        """Lookup/store counters and the current record count."""
        with self._lock:
            return DbStats(
                hits=self._hits,
                misses=self._misses,
                stores=self._stores,
                records=len(self._records),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._records
