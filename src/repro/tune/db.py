"""The persistent per-device tuning database.

Winning configurations are remembered so a workload is searched once per
(kernel family, device, tuner version) and served from disk afterwards:

* records are keyed by the workload's *kernel fingerprint family*
  (:meth:`~repro.tune.space.Workload.fingerprint`, which hashes the wide IR
  the frontend builds — so records go stale when the frontend changes), the
  device name, and :data:`TUNER_VERSION`;
* each record stores the winning candidate, its modeled score, the paper-
  default baseline, and search provenance (strategy, evaluations scored,
  space size, creation time);
* the JSON file is written atomically (temp file + ``os.replace``) so a
  crashed tuning run can never corrupt previously saved winners;
* lookups are counted (:meth:`TuningDatabase.stats`), which is how the
  harnesses verify that a warm database skips the search entirely.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import TuningError
from repro.core.rewrite.options import KARATSUBA, SCHOOLBOOK
from repro.tune.space import Candidate, Workload

__all__ = ["TUNER_VERSION", "DbStats", "TuningRecord", "TuningDatabase"]

#: Bump when the search space, the cost model's candidate axes, or the record
#: schema change incompatibly: old records then miss and workloads re-tune.
TUNER_VERSION = 1

_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class DbStats:
    """Lookup/store counters of one database instance."""

    hits: int
    misses: int
    stores: int
    records: int


@dataclass(frozen=True)
class TuningRecord:
    """One remembered winner for a (workload family, device, version) key.

    Attributes:
        fingerprint: the workload's kernel-family fingerprint.
        workload_key: human-readable workload identity (for provenance only).
        device: device short name the record was tuned for.
        tuner_version: :data:`TUNER_VERSION` at tuning time.
        candidate: the winning configuration.
        score_seconds: the winner's modeled seconds per workload unit.
        baseline_seconds: the paper-default configuration's modeled seconds.
        strategy: search strategy that found the winner.
        evaluations: distinct candidates scored by the search.
        space_size: size of the configuration space that was searched.
        created_at: UNIX timestamp of the tuning run.
    """

    fingerprint: str
    workload_key: str
    device: str
    tuner_version: int
    candidate: Candidate
    score_seconds: float
    baseline_seconds: float
    strategy: str
    evaluations: int
    space_size: int
    created_at: float

    def key(self) -> str:
        """The database key: fingerprint family + device + tuner version."""
        return f"{self.fingerprint}::{self.device}::v{self.tuner_version}"

    def to_json(self) -> dict:
        """JSON-serializable form of the record."""
        payload = dataclasses.asdict(self)
        payload["candidate"] = dataclasses.asdict(self.candidate)
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> TuningRecord:
        """Rebuild a record from its JSON form (raising on corrupt data).

        Validates semantics, not just structure: a hand-edited database with
        an impossible candidate (unknown algorithm, non-power-of-two word
        width, zero batch) must fail *here* with a :class:`TuningError`, not
        later inside the frontends as a served "winner".
        """
        try:
            candidate = Candidate(**payload["candidate"])
            fields = {f.name: payload[f.name] for f in dataclasses.fields(cls)}
        except (KeyError, TypeError) as error:
            raise TuningError(f"corrupt tuning record: {error}") from None
        _validate_candidate(candidate)
        for name in ("score_seconds", "baseline_seconds"):
            if not isinstance(fields[name], (int, float)) or fields[name] <= 0:
                raise TuningError(f"corrupt tuning record: bad {name} {fields[name]!r}")
        for name in ("evaluations", "space_size", "tuner_version"):
            if not isinstance(fields[name], int) or fields[name] < 0:
                raise TuningError(f"corrupt tuning record: bad {name} {fields[name]!r}")
        fields["candidate"] = candidate
        return cls(**fields)


def _validate_candidate(candidate: Candidate) -> None:
    if candidate.multiplication not in (SCHOOLBOOK, KARATSUBA):
        raise TuningError(
            f"corrupt tuning record: unknown multiplication "
            f"{candidate.multiplication!r}"
        )
    word = candidate.word_bits
    if not isinstance(word, int) or word < 8 or word & (word - 1):
        raise TuningError(f"corrupt tuning record: bad word width {word!r}")
    if not isinstance(candidate.stage_span, int) or candidate.stage_span < 1:
        raise TuningError(
            f"corrupt tuning record: bad stage span {candidate.stage_span!r}"
        )
    if candidate.batch is not None and (
        not isinstance(candidate.batch, int) or candidate.batch < 1
    ):
        raise TuningError(f"corrupt tuning record: bad batch {candidate.batch!r}")


class TuningDatabase:
    """A JSON-backed store of winning configurations, one record per key.

    Args:
        path: JSON file to load from / save to; ``None`` keeps the database
            in memory only (handy for tests and one-shot tuning).
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._records: dict[str, TuningRecord] = {}
        self._hits = 0
        self._misses = 0
        self._stores = 0
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise TuningError(f"cannot read tuning database {self.path}: {error}") from None
        if not isinstance(payload, dict) or "records" not in payload:
            raise TuningError(f"tuning database {self.path} has no 'records' section")
        if payload.get("schema") != _SCHEMA_VERSION:
            raise TuningError(
                f"tuning database {self.path} has schema {payload.get('schema')!r}, "
                f"expected {_SCHEMA_VERSION}"
            )
        for key, record in payload["records"].items():
            self._records[key] = TuningRecord.from_json(record)

    @staticmethod
    def _key(workload: Workload, device_name: str) -> str:
        return f"{workload.fingerprint()}::{device_name}::v{TUNER_VERSION}"

    def lookup(self, workload: Workload, device_name: str) -> TuningRecord | None:
        """The remembered winner for (workload family, device), if any."""
        record = self._records.get(self._key(workload, device_name))
        if record is None:
            self._misses += 1
            return None
        self._hits += 1
        return record

    def store(self, record: TuningRecord, save: bool = True) -> TuningRecord:
        """Remember a winner (and persist the database when file-backed)."""
        self._records[record.key()] = record
        self._stores += 1
        if save:
            self.save()
        return record

    def save(self) -> None:
        """Atomically write the database to its file (no-op when in-memory)."""
        if self.path is None:
            return
        payload = {
            "schema": _SCHEMA_VERSION,
            "tuner_version": TUNER_VERSION,
            "records": {
                key: record.to_json() for key, record in sorted(self._records.items())
            },
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        temporary = self.path.with_name(self.path.name + f".tmp.{os.getpid()}")
        temporary.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(temporary, self.path)

    @staticmethod
    def timestamp() -> float:
        """The provenance timestamp used for new records."""
        return time.time()

    def stats(self) -> DbStats:
        """Lookup/store counters and the current record count."""
        return DbStats(
            hits=self._hits,
            misses=self._misses,
            stores=self._stores,
            records=len(self._records),
        )

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records
