"""The autotuner's search space: workloads, candidates and their constraints.

The paper fixes one kernel configuration per experiment by hand — schoolbook
multiplication, 64-bit machine words, one butterfly stage per launch.  The
Figure 5 harness shows those choices swing runtime by large factors across
bit-widths and devices, so the tuner treats them as *axes* instead:

* the double-word multiplication algorithm (schoolbook vs. Karatsuba),
* the machine word width the legalizer splits down to (word padding),
* the number of NTT butterfly stages fused per launch once the transform no
  longer fits in shared memory (the radix/stage-split of Figure 3a), and
* the launch batch granularity of the batched execution model (Section 5.1).

A :class:`Workload` names *what* is being tuned (an NTT of a given size and
bit-width, or one BLAS operation over a vector); a :class:`Candidate` is one
point in the configuration space; :class:`TuningSpace` enumerates the valid
candidates for a (workload, device) pair in a deterministic order, which is
what makes every search strategy reproducible under a seed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from functools import cached_property

from repro.errors import TuningError
from repro.core.ir.kernel import Kernel
from repro.core.rewrite.options import KARATSUBA, SCHOOLBOOK
from repro.gpu.device import DeviceSpec
from repro.kernels.config import KernelConfig
from repro.kernels.blas_gen import BLAS_OPERATIONS, build_blas_kernel
from repro.kernels.ntt_gen import BUTTERFLY_VARIANTS, build_butterfly_kernel

__all__ = [
    "NTT",
    "BLAS",
    "Workload",
    "Candidate",
    "TuningSpace",
    "default_candidate",
]

#: Workload kinds the tuner understands.
NTT = "ntt"
BLAS = "blas"

#: Word widths the legalizer (and both C-family backends) support.
_WORD_BITS_AXIS = (64, 32)

#: Candidate butterfly stages fused per launch for out-of-shared-memory NTTs.
_STAGE_SPAN_AXIS = (1, 2, 4)

#: Candidate launch batch sizes (the simulator's steady-state sweep range).
_BATCH_AXIS = (None, 1, 8, 64, 256, 1024)


@dataclass(frozen=True)
class Workload:
    """One tunable workload: what is computed, not how.

    Attributes:
        kind: ``"ntt"`` or ``"blas"``.
        bits: logical operand bit-width (the paper's figure axis).
        operation: the BLAS operation (``vadd``/``vsub``/``vmul``/``axpy``)
            or the butterfly variant (``cooley_tukey``/``gentleman_sande``).
        size: transform length for NTT workloads (power of two).
        elements: total vector elements for BLAS workloads.
        modulus_bits: modulus width; ``None`` follows the paper's ``bits - 4``
            Barrett-headroom convention.
    """

    kind: str
    bits: int
    operation: str = "cooley_tukey"
    size: int = 4096
    elements: int = 1 << 20
    modulus_bits: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in (NTT, BLAS):
            raise TuningError(f"unknown workload kind {self.kind!r}; expected 'ntt' or 'blas'")
        if self.bits < min(_WORD_BITS_AXIS):
            # No supported machine word fits inside the operand, so there is
            # no legal configuration (and no baseline) to tune.
            raise TuningError(
                f"operand width must be at least {min(_WORD_BITS_AXIS)} bits, "
                f"got {self.bits}"
            )
        if self.kind == NTT and self.operation not in BUTTERFLY_VARIANTS:
            raise TuningError(
                f"unknown butterfly variant {self.operation!r}; expected one of "
                f"{BUTTERFLY_VARIANTS}"
            )
        if self.kind == BLAS and self.operation not in BLAS_OPERATIONS:
            raise TuningError(
                f"unknown BLAS operation {self.operation!r}; expected one of "
                f"{BLAS_OPERATIONS}"
            )
        if self.kind == NTT and (self.size < 2 or self.size & (self.size - 1)):
            raise TuningError(f"NTT size must be a power of two >= 2, got {self.size}")
        if self.kind == BLAS and self.elements < 1:
            raise TuningError(f"element count must be positive, got {self.elements}")

    @classmethod
    def from_kernel(cls, kernel: Kernel, size: int = 4096, elements: int = 1 << 20) -> Workload:
        """Derive the workload from a frontend-built kernel's metadata."""
        family = kernel.metadata.get("family")
        bits = kernel.metadata.get("bits")
        if family not in (NTT, BLAS) or not bits:
            raise TuningError(
                f"kernel {kernel.name!r} carries no tunable workload metadata "
                f"(family={family!r}, bits={bits!r}); build it through the "
                f"repro.kernels frontends"
            )
        operation = (
            kernel.metadata.get("variant")
            if family == NTT
            else kernel.metadata.get("operation")
        )
        return cls(
            kind=family,
            bits=bits,
            operation=operation,
            size=size,
            elements=elements,
            modulus_bits=kernel.metadata.get("modulus_bits"),
        )

    @property
    def key(self) -> str:
        """Human-readable identity used in reports and database records."""
        if self.kind == NTT:
            return f"ntt/{self.operation}/n{self.size}/{self.bits}b"
        return f"blas/{self.operation}/e{self.elements}/{self.bits}b"

    def default_config(self) -> KernelConfig:
        """The paper-default configuration (schoolbook, widest legal word)."""
        return default_candidate(self).kernel_config(self)

    def build(self, config: KernelConfig) -> Kernel:
        """The wide-typed IR of this workload under ``config``."""
        if self.kind == NTT:
            return build_butterfly_kernel(config, variant=self.operation)
        return build_blas_kernel(self.operation, config)

    @cached_property
    def _fingerprint(self) -> str:
        from repro.core.ir.fingerprint import kernel_digest

        hasher = hashlib.sha256()
        hasher.update(self.key.encode())
        hasher.update(kernel_digest(self.build(self.default_config())).encode())
        return hasher.hexdigest()[:16]

    def fingerprint(self) -> str:
        """Stable identity of the workload's kernel *family*.

        Hashes the workload description together with a canonical digest of
        the paper-default wide IR, so tuning records go stale (and re-tune)
        when a frontend changes the kernels it builds — not merely when the
        workload parameters change.  Computed once per instance (the IR
        build is not free, and every database lookup needs the value).
        """
        return self._fingerprint


@dataclass(frozen=True)
class Candidate:
    """One point of the configuration space.

    Attributes:
        multiplication: double-word multiplication rule at every recursion
            level (``"schoolbook"`` or ``"karatsuba"``).
        word_bits: machine word width the legalizer splits down to.
        stage_span: butterfly stages fused per launch when an NTT streams
            through global memory (1 = the paper's stage-per-launch plan).
        batch: fixed launch batch size; ``None`` lets the cost model search
            for the steady-state batch (the paper's methodology).
    """

    multiplication: str = SCHOOLBOOK
    word_bits: int = 64
    stage_span: int = 1
    batch: int | None = None

    def kernel_config(self, workload: Workload) -> KernelConfig:
        """The kernel configuration this candidate selects for ``workload``."""
        return KernelConfig(
            bits=workload.bits,
            modulus_bits=workload.modulus_bits,
            word_bits=self.word_bits,
            multiplication=self.multiplication,
        )

    def label(self) -> str:
        """Short human-readable description used in cost tables."""
        batch = "auto" if self.batch is None else str(self.batch)
        return (
            f"{self.multiplication}/w{self.word_bits}/span{self.stage_span}/batch{batch}"
        )


def default_candidate(workload: Workload | None = None) -> Candidate:
    """The paper-default configuration as a candidate (always in the space).

    The paper uses 64-bit machine words; for operands narrower than 64 bits
    the default falls back to the widest word that fits, so every workload
    has a legal baseline.
    """
    if workload is not None and workload.bits < 64:
        return Candidate(word_bits=max(w for w in _WORD_BITS_AXIS if w <= workload.bits))
    return Candidate()


class TuningSpace:
    """The valid candidates for one (workload, device) pair.

    Enumeration order is deterministic — axes are swept in a fixed order with
    the paper default first on every axis — so exhaustive search, seeded
    random sampling and hill-climbing are all reproducible.
    """

    def __init__(self, workload: Workload, device: DeviceSpec) -> None:
        self.workload = workload
        self.device = device
        self._candidates = tuple(self._enumerate())
        if default_candidate(workload) not in self._candidates:  # pragma: no cover
            raise TuningError("internal error: the paper default left the space")

    # -- axes ---------------------------------------------------------------

    def _word_bits_axis(self) -> tuple[int, ...]:
        return tuple(w for w in _WORD_BITS_AXIS if w <= self.workload.bits)

    def _stage_span_axis(self) -> tuple[int, ...]:
        if self.workload.kind != NTT:
            return (1,)
        stages = self.workload.size.bit_length() - 1
        words = self.workload.default_config().operand_words
        shared_bytes = self.device.shared_memory_per_block_kb * 1024
        spans = []
        for span in _STAGE_SPAN_AXIS:
            if span > stages:
                continue
            # Fusing ``span`` stages makes each block stage a 2^span-point
            # tile through shared memory; the tile must fit.
            if span > 1 and (1 << span) * words * 8 > shared_bytes:
                continue
            spans.append(span)
        return tuple(spans)

    def _enumerate(self):
        for multiplication in (SCHOOLBOOK, KARATSUBA):
            for word_bits in self._word_bits_axis():
                for stage_span in self._stage_span_axis():
                    for batch in _BATCH_AXIS:
                        yield Candidate(
                            multiplication=multiplication,
                            word_bits=word_bits,
                            stage_span=stage_span,
                            batch=batch,
                        )

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._candidates)

    def __iter__(self):
        return iter(self._candidates)

    def __contains__(self, candidate: Candidate) -> bool:
        return candidate in self._candidates

    def candidates(self) -> tuple[Candidate, ...]:
        """All valid candidates, in deterministic enumeration order."""
        return self._candidates

    def neighbors(self, candidate: Candidate) -> tuple[Candidate, ...]:
        """Valid candidates differing from ``candidate`` on exactly one axis.

        The hill-climbing strategy's move set; deterministic order.
        """
        moves: list[Candidate] = []
        for multiplication in (SCHOOLBOOK, KARATSUBA):
            moves.append(replace(candidate, multiplication=multiplication))
        for word_bits in self._word_bits_axis():
            moves.append(replace(candidate, word_bits=word_bits))
        for stage_span in self._stage_span_axis():
            moves.append(replace(candidate, stage_span=stage_span))
        for batch in _BATCH_AXIS:
            moves.append(replace(candidate, batch=batch))
        seen: list[Candidate] = []
        for move in moves:
            if move != candidate and move in self._candidates and move not in seen:
                seen.append(move)
        return tuple(seen)
