"""Module entry point: ``python -m repro.tune ...``."""

import sys

from repro.tune.cli import main

sys.exit(main())
