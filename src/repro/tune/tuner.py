"""The autotuner: space → search → evaluate → database, behind one call.

:class:`Autotuner` ties the subsystem together.  ``tune(workload, device)``
first consults the tuning database; on a hit the remembered winner is
returned without scoring a single candidate (a warm lookup performs zero
candidate compilations).  On a miss it builds the :class:`TuningSpace` for
the (workload, device) pair, runs the selected search strategy against a
:class:`CandidateEvaluator`, records the winner — with the paper-default
baseline and full search provenance — and persists the database.

The winner can never be worse than the paper default: every strategy scores
the default candidate (exhaustive/random include it; hill-climbing starts
from it), so the returned configuration's modeled cost is ≤ the default's
by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.driver import CompilerSession
from repro.gpu.device import DeviceSpec, get_device
from repro.kernels.config import KernelConfig
from repro.tenancy import DEFAULT_TENANT, validate_tenant
from repro.tune.db import TUNER_VERSION, TuningDatabase, TuningRecord
from repro.tune.evaluate import CandidateEvaluator
from repro.tune.search import STRATEGIES, SearchResult, Trial, resolve_strategy
from repro.tune.space import Candidate, TuningSpace, Workload

__all__ = ["TuningResult", "TunedCompilation", "Autotuner", "tune_workload"]


@dataclass(frozen=True)
class TuningResult:
    """Outcome of one ``tune()`` call.

    Attributes:
        workload: what was tuned.
        device: device short name.
        candidate: the winning configuration point.
        config: the winning :class:`KernelConfig` (ready for the frontends).
        score_seconds: the winner's modeled seconds per workload unit.
        baseline_seconds: the paper-default configuration's modeled seconds.
        strategy: search strategy used (``"database"`` for warm lookups).
        evaluations: candidates scored by this call (0 on a warm lookup).
        space_size: size of the searched space (as recorded).
        from_database: whether the result came from a warm database record.
        trials: every (candidate, score) the search scored, best first
            (empty on a warm lookup — nothing was scored).
    """

    workload: Workload
    device: str
    candidate: Candidate
    config: KernelConfig
    score_seconds: float
    baseline_seconds: float
    strategy: str
    evaluations: int
    space_size: int
    from_database: bool
    trials: tuple[Trial, ...] = ()

    @property
    def speedup(self) -> float:
        """Modeled baseline/winner runtime ratio (≥ 1.0 by construction)."""
        return self.baseline_seconds / self.score_seconds if self.score_seconds else 1.0


@dataclass(frozen=True)
class TunedCompilation:
    """What :meth:`CompilerSession.compile_tuned` returns.

    Attributes:
        artifact: the target's artifact for the tuned kernel (CUDA/C source
            or an executable ``CompiledKernel``).
        config: the tuned kernel configuration the artifact was built with.
        target: the compilation target name.
        tuning: the full tuning result behind the configuration choice.
    """

    artifact: object
    config: KernelConfig
    target: str
    tuning: TuningResult


class Autotuner:
    """Cost-model-guided configuration search with a persistent memory.

    Args:
        session: compiler session used to compile candidates (its content-
            addressed cache makes repeated candidates free).
        db: tuning database; defaults to a fresh in-memory database.
        strategy: ``"auto"`` (exhaustive for small spaces, hill-climbing
            otherwise), ``"exhaustive"``, ``"random"`` or ``"hillclimb"``.
        seed: determinism seed threaded through every strategy.
        save: persist the database after every stored winner.  The serving
            subsystem batches tuning requests and saves once per batch, so
            its tuners run with ``save=False``.
    """

    def __init__(
        self,
        session: CompilerSession | None = None,
        db: TuningDatabase | None = None,
        strategy: str = "auto",
        seed: int = 0,
        save: bool = True,
    ) -> None:
        self.session = session
        self.db = db if db is not None else TuningDatabase()
        self.strategy = strategy
        self.seed = seed
        self.save = save

    def tune(
        self,
        workload: Workload,
        device: str | DeviceSpec,
        tenant: str = DEFAULT_TENANT,
    ) -> TuningResult:
        """Find (or remember) the best configuration for a workload/device.

        ``tenant`` selects the tuning-db namespace: lookups try the
        tenant's namespace first and fall back to the shared default on
        miss, while a fresh search stores its winner *into* the tenant's
        namespace — so a tenant forks a family's record only when its own
        tuning run writes one.
        """
        validate_tenant(tenant)
        spec = device if isinstance(device, DeviceSpec) else get_device(device)
        record = self.db.lookup(workload, spec.name, tenant=tenant)
        if record is not None:
            return TuningResult(
                workload=workload,
                device=spec.name,
                candidate=record.candidate,
                config=record.candidate.kernel_config(workload),
                score_seconds=record.score_seconds,
                baseline_seconds=record.baseline_seconds,
                strategy="database",
                evaluations=0,
                space_size=record.space_size,
                from_database=True,
            )

        space = TuningSpace(workload, spec)
        evaluator = CandidateEvaluator(workload, spec, session=self.session)
        strategy = resolve_strategy(self.strategy, space)
        result: SearchResult = STRATEGIES[strategy](space, evaluator, seed=self.seed)
        baseline = evaluator.baseline()  # memoized: every strategy scored it

        self.db.store(
            TuningRecord(
                fingerprint=workload.fingerprint(),
                workload_key=workload.key,
                device=spec.name,
                tuner_version=TUNER_VERSION,
                candidate=result.best.candidate,
                score_seconds=result.best.score,
                baseline_seconds=baseline.seconds,
                strategy=strategy,
                evaluations=result.evaluations,
                space_size=len(space),
                created_at=TuningDatabase.timestamp(),
                tenant=tenant,
            ),
            save=self.save,
        )
        return TuningResult(
            workload=workload,
            device=spec.name,
            candidate=result.best.candidate,
            config=result.best.candidate.kernel_config(workload),
            score_seconds=result.best.score,
            baseline_seconds=baseline.seconds,
            strategy=strategy,
            evaluations=result.evaluations,
            space_size=len(space),
            from_database=False,
            trials=tuple(sorted(result.trials, key=lambda t: (t.score, repr(t.candidate)))),
        )

    def tuned_config(self, workload: Workload, device: str | DeviceSpec) -> KernelConfig:
        """Just the winning kernel configuration (tuning on first use)."""
        return self.tune(workload, device).config


def tune_workload(
    workload: Workload,
    device: str | DeviceSpec,
    session: CompilerSession | None = None,
    db: TuningDatabase | None = None,
    strategy: str = "auto",
    seed: int = 0,
) -> TuningResult:
    """One-shot convenience wrapper around :class:`Autotuner`."""
    return Autotuner(session=session, db=db, strategy=strategy, seed=seed).tune(
        workload, device
    )
