"""Candidate scoring: compile through the driver, cost with the GPU model.

The evaluator is the bridge between the search strategies (which only see an
opaque ``candidate -> seconds`` objective) and the rest of the system: each
candidate is compiled through a :class:`CompilerSession` — so repeated
candidates, across strategies or across tuning runs in one session, hit the
content-addressed kernel cache and cost nothing — and then priced on a
:class:`DeviceSpec` by the analytic cost model (:func:`cost_kernel` via
:func:`estimate_blas` / :func:`estimate_ntt`).

No hardware is in the loop: a full exhaustive search over a typical space is
a few dozen cached compilations plus arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.driver import CompilerSession, get_default_session
from repro.gpu.device import DeviceSpec, get_device
from repro.gpu.simulator import BlasEstimate, NttEstimate, estimate_blas, estimate_ntt
from repro.ntt.planner import make_stage_plan
from repro.tune.space import NTT, Candidate, Workload, default_candidate

__all__ = ["CandidateScore", "CandidateEvaluator"]


@dataclass(frozen=True)
class CandidateScore:
    """One candidate's modeled performance on one (workload, device) pair.

    Attributes:
        candidate: the configuration that was scored.
        seconds: the objective — modeled wall time of one workload unit
            (one NTT, or one BLAS element), lower is better.
        estimate: the full cost-model estimate behind the score.
        compile_misses: kernel-cache misses this scoring caused (0 when the
            candidate's kernel was already compiled).
    """

    candidate: Candidate
    seconds: float
    estimate: NttEstimate | BlasEstimate
    compile_misses: int


class CandidateEvaluator:
    """Scores candidates for one workload on one device.

    Args:
        workload: what to tune.
        device: device name (``h100``/``rtx4090``/``v100``) or spec.
        session: compiler session whose kernel cache absorbs repeated
            candidate compilations (defaults to the process-wide session).
    """

    def __init__(
        self,
        workload: Workload,
        device: str | DeviceSpec,
        session: CompilerSession | None = None,
    ) -> None:
        self.workload = workload
        self.device = device if isinstance(device, DeviceSpec) else get_device(device)
        self.session = session if session is not None else get_default_session()
        self._scores: dict[Candidate, CandidateScore] = {}

    def score(self, candidate: Candidate) -> CandidateScore:
        """Score one candidate (memoized per evaluator)."""
        cached = self._scores.get(candidate)
        if cached is not None:
            return cached
        config = candidate.kernel_config(self.workload)
        misses_before = self.session.cache_info().misses
        if self.workload.kind == NTT:
            estimate = estimate_ntt(
                config,
                self.workload.size,
                self.device.name,
                batch=candidate.batch,
                stage_plan=make_stage_plan(self.workload.size, candidate.stage_span),
                session=self.session,
            )
            seconds = estimate.per_ntt_us * 1e-6
        else:
            estimate = estimate_blas(
                self.workload.operation,
                config,
                self.device.name,
                elements=self.workload.elements,
                batch=candidate.batch,
                session=self.session,
            )
            seconds = estimate.per_element_ns * 1e-9
        score = CandidateScore(
            candidate=candidate,
            seconds=seconds,
            estimate=estimate,
            compile_misses=self.session.cache_info().misses - misses_before,
        )
        self._scores[candidate] = score
        return score

    def __call__(self, candidate: Candidate) -> float:
        """The search objective: modeled seconds per workload unit."""
        return self.score(candidate).seconds

    def baseline(self) -> CandidateScore:
        """The paper-default candidate's score (the non-regression anchor)."""
        return self.score(default_candidate(self.workload))

    def scores(self) -> dict[Candidate, CandidateScore]:
        """Every score this evaluator has produced (insertion order)."""
        return dict(self._scores)
