"""``repro.tune`` — cost-model-guided kernel autotuning.

The paper picks one kernel configuration per experiment by hand; this
subsystem makes the system choose for itself.  It is organised as four
layers behind one driver entry point:

* :mod:`repro.tune.space` — the configuration space: :class:`Workload`,
  :class:`Candidate`, and :class:`TuningSpace` (enumeration + constraints);
* :mod:`repro.tune.search` — deterministic search strategies (exhaustive
  grid, seeded random sampling, greedy hill-climb with early stopping);
* :mod:`repro.tune.evaluate` — candidate scoring through the compiler
  driver's content-addressed cache and the analytic GPU cost model;
* :mod:`repro.tune.db` — the persistent per-device tuning database, keyed
  by (kernel fingerprint family, device, tuner version);
* :mod:`repro.tune.reconcile` — folds the sharded serving tier's per-shard
  database replicas back into the primary (merge-on-save semantics);
* :mod:`repro.tune.tuner` — :class:`Autotuner`, which ties them together
  and backs :meth:`CompilerSession.compile_tuned` and the frontends'
  ``autotune=True`` plumbing.

``python -m repro.tune ntt --size 4096 --bits 256 --device rtx4090`` tunes a
single named workload from the command line.
"""

from repro.tune.db import TUNER_VERSION, DbStats, TuningDatabase, TuningRecord
from repro.tune.evaluate import CandidateEvaluator, CandidateScore
from repro.tune.reconcile import (
    ReconcileReport,
    find_quarantined,
    find_replicas,
    prune_quarantine,
    reconcile_replicas,
    replica_path,
)
from repro.tune.search import (
    STRATEGIES,
    SearchResult,
    Trial,
    exhaustive_search,
    get_strategy,
    hillclimb_search,
    random_search,
    resolve_strategy,
)
from repro.tune.space import (
    BLAS,
    NTT,
    Candidate,
    TuningSpace,
    Workload,
    default_candidate,
)
from repro.tune.tuner import Autotuner, TunedCompilation, TuningResult, tune_workload

__all__ = [
    "TUNER_VERSION",
    "DbStats",
    "TuningDatabase",
    "TuningRecord",
    "CandidateEvaluator",
    "CandidateScore",
    "ReconcileReport",
    "find_quarantined",
    "find_replicas",
    "prune_quarantine",
    "reconcile_replicas",
    "replica_path",
    "STRATEGIES",
    "SearchResult",
    "Trial",
    "exhaustive_search",
    "get_strategy",
    "hillclimb_search",
    "random_search",
    "resolve_strategy",
    "BLAS",
    "NTT",
    "Candidate",
    "TuningSpace",
    "Workload",
    "default_candidate",
    "Autotuner",
    "TunedCompilation",
    "TuningResult",
    "tune_workload",
]
