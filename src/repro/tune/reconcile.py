"""Replica reconciliation: fold per-shard tuning databases into the primary.

The sharded serving tier (:mod:`repro.serve.supervisor`) gives every shard
process its **own** tuning-database file — a *replica* — so shards never
contend on one file during traffic.  Reconciliation is the other half of
that bargain: fold every replica back into the primary database using the
same merge semantics as concurrent saves (:meth:`TuningDatabase.merge_file`
— newest record per key wins, tombstones beat older records, a newer
re-tune beats a tombstone), so the primary ends up with the union of every
shard's winners no matter which shard tuned which family.

Replica files live next to the primary under a deterministic name
(:func:`replica_path`), so a restarted shard re-adopts its previous
replica, and :func:`reconcile_replicas` can enumerate them without being
told how many shards ever existed (:func:`find_replicas`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import TuningError
from repro.tune.db import TuningDatabase

__all__ = [
    "replica_path",
    "find_replicas",
    "find_quarantined",
    "prune_quarantine",
    "QUARANTINE_RETENTION_S",
    "ReconcileReport",
    "reconcile_replicas",
]

_REPLICA_TAG = ".shard"

#: Suffix a shard appends when it renames an unreadable replica aside.
_QUARANTINE_SUFFIX = ".corrupt"

#: How long a quarantined replica is kept for post-mortems before
#: :func:`prune_quarantine` drops it (one day).
QUARANTINE_RETENTION_S = 24 * 60 * 60.0


def replica_path(primary: str | Path, shard_id: int) -> Path:
    """The replica file shard ``shard_id`` owns for a primary database path.

    ``tuning.json`` → ``tuning.shard0.json`` and so on — same directory, so
    one deployment's state stays in one place.
    """
    primary = Path(primary)
    return primary.with_name(f"{primary.stem}{_REPLICA_TAG}{shard_id}{primary.suffix}")


def find_replicas(primary: str | Path) -> tuple[Path, ...]:
    """Every replica file of ``primary`` present on disk, sorted by shard id."""
    primary = Path(primary)
    pattern = f"{primary.stem}{_REPLICA_TAG}*{primary.suffix}"
    found = []
    for candidate in primary.parent.glob(pattern):
        tag = candidate.name[len(primary.stem) + len(_REPLICA_TAG) : -len(primary.suffix) or None]
        if tag.isdigit():
            found.append((int(tag), candidate))
    return tuple(path for _, path in sorted(found))


def find_quarantined(primary: str | Path) -> tuple[Path, ...]:
    """Every quarantined replica (``<replica>.corrupt``) of ``primary``.

    These are the files a shard renamed aside after finding its replica
    unreadable (a crashed writer's torn file); they are kept for
    post-mortems, never merged.
    """
    primary = Path(primary)
    pattern = (
        f"{primary.stem}{_REPLICA_TAG}*{primary.suffix}{_QUARANTINE_SUFFIX}"
    )
    return tuple(sorted(primary.parent.glob(pattern)))


def prune_quarantine(
    primary: str | Path,
    max_age_s: float | None = None,
    now: float | None = None,
) -> tuple[Path, ...]:
    """Delete quarantined replicas of ``primary`` older than ``max_age_s``.

    Quarantine files exist so a torn replica can be inspected after the
    fact, but nothing ever rewrites them — without an age-out they
    accumulate for the lifetime of the deployment directory.  The
    supervisor calls this on ``close()``.  Returns the paths it dropped;
    files younger than the retention window (or already gone) are left
    alone, and a file that cannot be deleted is skipped, not fatal.
    """
    if max_age_s is None:  # resolved at call time so tests can shrink it
        max_age_s = QUARANTINE_RETENTION_S
    reference = time.time() if now is None else now
    dropped: list[Path] = []
    for path in find_quarantined(primary):
        try:
            age = reference - path.stat().st_mtime
        except OSError:
            continue  # raced with another pruner; nothing to drop
        if age < max_age_s:
            continue
        try:
            path.unlink()
        except OSError:
            continue
        dropped.append(path)
    return tuple(dropped)


@dataclass(frozen=True)
class ReconcileReport:
    """What one reconciliation pass merged.

    Attributes:
        primary: the primary database path the replicas were folded into.
        replicas: every replica file that was merged.
        skipped: replica files that could not be parsed (corrupt/foreign).
        adopted: records adopted or replaced in the primary, per replica.
        records: total records in the primary after the merge.
    """

    primary: Path
    replicas: tuple[Path, ...]
    skipped: tuple[Path, ...]
    adopted: tuple[int, ...]
    records: int

    def report(self) -> str:
        """Human-readable one-pass summary."""
        lines = [
            f"reconciled {len(self.replicas)} replica(s) into {self.primary}: "
            f"{sum(self.adopted)} records adopted, {self.records} total"
            + (f", {len(self.skipped)} skipped" if self.skipped else "")
        ]
        for path, adopted in zip(self.replicas, self.adopted):
            lines.append(f"  {path.name}: {adopted} adopted")
        for path in self.skipped:
            lines.append(f"  {path.name}: skipped (unreadable)")
        return "\n".join(lines)


def reconcile_replicas(
    primary: str | Path, replicas=None, save: bool = True
) -> ReconcileReport:
    """Merge shard replicas into the primary tuning database.

    Args:
        primary: the primary database file (created if missing).
        replicas: replica paths to merge; ``None`` discovers every
            ``<primary>.shardN`` sibling on disk (:func:`find_replicas`).
        save: persist the merged primary (merge-on-save keeps this safe
            against a concurrent writer of the primary itself).

    Unreadable replicas are skipped and reported, not fatal — one crashed
    shard's torn file must not block reconciling the healthy ones.
    """
    primary = Path(primary)
    paths = tuple(Path(p) for p in replicas) if replicas is not None else find_replicas(primary)
    db = TuningDatabase(primary)
    merged: list[Path] = []
    skipped: list[Path] = []
    adopted: list[int] = []
    for path in paths:
        if not path.exists():
            skipped.append(path)
            continue
        try:
            adopted.append(db.merge_file(path))
            merged.append(path)
        except TuningError:
            skipped.append(path)
    if save:
        db.save()
    return ReconcileReport(
        primary=primary,
        replicas=tuple(merged),
        skipped=tuple(skipped),
        adopted=tuple(adopted),
        records=len(db),
    )
