"""Replica reconciliation: fold per-shard tuning databases into the primary.

The sharded serving tier (:mod:`repro.serve.supervisor`) gives every shard
process its **own** tuning-database file — a *replica* — so shards never
contend on one file during traffic.  Reconciliation is the other half of
that bargain: fold every replica back into the primary database using the
same merge semantics as concurrent saves (:meth:`TuningDatabase.merge_file`
— newest record per key wins, tombstones beat older records, a newer
re-tune beats a tombstone), so the primary ends up with the union of every
shard's winners no matter which shard tuned which family.

Replica files live next to the primary under a deterministic name
(:func:`replica_path`), so a restarted shard re-adopts its previous
replica, and :func:`reconcile_replicas` can enumerate them without being
told how many shards ever existed (:func:`find_replicas`).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import TuningError
from repro.tune.db import TuningDatabase

__all__ = ["replica_path", "find_replicas", "ReconcileReport", "reconcile_replicas"]

_REPLICA_TAG = ".shard"


def replica_path(primary: str | Path, shard_id: int) -> Path:
    """The replica file shard ``shard_id`` owns for a primary database path.

    ``tuning.json`` → ``tuning.shard0.json`` and so on — same directory, so
    one deployment's state stays in one place.
    """
    primary = Path(primary)
    return primary.with_name(f"{primary.stem}{_REPLICA_TAG}{shard_id}{primary.suffix}")


def find_replicas(primary: str | Path) -> tuple[Path, ...]:
    """Every replica file of ``primary`` present on disk, sorted by shard id."""
    primary = Path(primary)
    pattern = f"{primary.stem}{_REPLICA_TAG}*{primary.suffix}"
    found = []
    for candidate in primary.parent.glob(pattern):
        tag = candidate.name[len(primary.stem) + len(_REPLICA_TAG) : -len(primary.suffix) or None]
        if tag.isdigit():
            found.append((int(tag), candidate))
    return tuple(path for _, path in sorted(found))


@dataclass(frozen=True)
class ReconcileReport:
    """What one reconciliation pass merged.

    Attributes:
        primary: the primary database path the replicas were folded into.
        replicas: every replica file that was merged.
        skipped: replica files that could not be parsed (corrupt/foreign).
        adopted: records adopted or replaced in the primary, per replica.
        records: total records in the primary after the merge.
    """

    primary: Path
    replicas: tuple[Path, ...]
    skipped: tuple[Path, ...]
    adopted: tuple[int, ...]
    records: int

    def report(self) -> str:
        """Human-readable one-pass summary."""
        lines = [
            f"reconciled {len(self.replicas)} replica(s) into {self.primary}: "
            f"{sum(self.adopted)} records adopted, {self.records} total"
            + (f", {len(self.skipped)} skipped" if self.skipped else "")
        ]
        for path, adopted in zip(self.replicas, self.adopted):
            lines.append(f"  {path.name}: {adopted} adopted")
        for path in self.skipped:
            lines.append(f"  {path.name}: skipped (unreadable)")
        return "\n".join(lines)


def reconcile_replicas(
    primary: str | Path, replicas=None, save: bool = True
) -> ReconcileReport:
    """Merge shard replicas into the primary tuning database.

    Args:
        primary: the primary database file (created if missing).
        replicas: replica paths to merge; ``None`` discovers every
            ``<primary>.shardN`` sibling on disk (:func:`find_replicas`).
        save: persist the merged primary (merge-on-save keeps this safe
            against a concurrent writer of the primary itself).

    Unreadable replicas are skipped and reported, not fatal — one crashed
    shard's torn file must not block reconciling the healthy ones.
    """
    primary = Path(primary)
    paths = tuple(Path(p) for p in replicas) if replicas is not None else find_replicas(primary)
    db = TuningDatabase(primary)
    merged: list[Path] = []
    skipped: list[Path] = []
    adopted: list[int] = []
    for path in paths:
        if not path.exists():
            skipped.append(path)
            continue
        try:
            adopted.append(db.merge_file(path))
            merged.append(path)
        except TuningError:
            skipped.append(path)
    if save:
        db.save()
    return ReconcileReport(
        primary=primary,
        replicas=tuple(merged),
        skipped=tuple(skipped),
        adopted=tuple(adopted),
        records=len(db),
    )
