"""``python -m repro.tune`` — tune one named workload from the command line.

Examples::

    python -m repro.tune ntt --size 4096 --bits 256 --device rtx4090
    python -m repro.tune blas --op vmul --bits 384 --device h100 \\
        --strategy exhaustive --db tuning_db.json

Prints the winning configuration, its modeled speedup over the paper
default, and a cost table of the best candidates the search scored.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.core.driver import CompilerSession
from repro.gpu.device import DEVICES
from repro.kernels.blas_gen import BLAS_OPERATIONS
from repro.kernels.ntt_gen import BUTTERFLY_VARIANTS
from repro.tune.db import TuningDatabase
from repro.tune.search import STRATEGIES
from repro.tune.space import BLAS, NTT, Workload
from repro.tune.tuner import Autotuner

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.tune`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tune",
        description="Cost-model-guided kernel autotuner with a persistent "
        "per-device tuning database.",
    )
    parser.add_argument("workload", choices=(NTT, BLAS), help="workload kind to tune")
    parser.add_argument("--bits", type=int, default=256, help="operand bit-width")
    parser.add_argument("--size", type=int, default=4096, help="NTT transform length")
    parser.add_argument(
        "--variant",
        choices=BUTTERFLY_VARIANTS,
        default="cooley_tukey",
        help="NTT butterfly dataflow",
    )
    parser.add_argument(
        "--op", choices=BLAS_OPERATIONS, default="vmul", help="BLAS operation"
    )
    parser.add_argument(
        "--elements", type=int, default=1 << 20, help="BLAS vector elements"
    )
    parser.add_argument(
        "--device",
        choices=sorted(DEVICES),
        default="rtx4090",
        help="device model to tune for",
    )
    parser.add_argument(
        "--strategy",
        choices=("auto", *sorted(STRATEGIES)),
        default="auto",
        help="search strategy (auto: exhaustive for small spaces)",
    )
    parser.add_argument("--seed", type=int, default=0, help="determinism seed")
    parser.add_argument(
        "--db", metavar="PATH", default=None, help="persistent tuning database file"
    )
    parser.add_argument(
        "--top", type=int, default=8, help="cost-table rows to print (best first)"
    )
    return parser


def _workload_from_args(args: argparse.Namespace) -> Workload:
    if args.workload == NTT:
        return Workload(kind=NTT, bits=args.bits, operation=args.variant, size=args.size)
    return Workload(kind=BLAS, bits=args.bits, operation=args.op, elements=args.elements)


def _unit(workload: Workload) -> str:
    return "us/NTT" if workload.kind == NTT else "ns/element"


def _scale(workload: Workload, seconds: float) -> float:
    return seconds * (1e6 if workload.kind == NTT else 1e9)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        workload = _workload_from_args(args)
        session = CompilerSession()
        db = TuningDatabase(args.db)
        tuner = Autotuner(session=session, db=db, strategy=args.strategy, seed=args.seed)
        result = tuner.tune(workload, args.device)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    unit = _unit(workload)
    print(f"workload    {workload.key}")
    print(f"device      {result.device}")
    print(f"strategy    {result.strategy} (seed {args.seed})")
    print(f"space       {result.space_size} candidates, {result.evaluations} scored")
    if result.from_database:
        print(f"database    warm hit (tuned previously; no search performed)")
    elif args.db:
        print(f"database    winner saved to {args.db}")
    print()
    print(f"winner      {result.candidate.label()}")
    print(
        f"cost        {_scale(workload, result.score_seconds):.3f} {unit} "
        f"(paper default {_scale(workload, result.baseline_seconds):.3f}, "
        f"speedup {result.speedup:.2f}x)"
    )

    # Cost table: the trials the search actually scored, best first.  A warm
    # database lookup scores nothing, so there is no table to print.
    rows = result.trials[: max(args.top, 1)]
    print()
    if not rows:
        print("(no candidates scored — winner served from the tuning database)")
        return 0
    width = max(len(trial.candidate.label()) for trial in rows)
    print(f"{'candidate'.ljust(width)}  {unit:>12}  vs default")
    for trial in rows:
        ratio = result.baseline_seconds / trial.score
        print(
            f"{trial.candidate.label().ljust(width)}  "
            f"{_scale(workload, trial.score):12.3f}  {ratio:9.2f}x"
        )
    return 0
