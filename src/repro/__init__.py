"""repro — a Python reproduction of "Code Generation for Cryptographic
Kernels using Multi-word Modular Arithmetic on GPU" (CGO 2025).

The package is organised around the paper's pipeline:

* :mod:`repro.arith` — executable multi-word modular arithmetic (MoMA
  semantics, Listings 1-4).
* :mod:`repro.core` — the paper's contribution: a typed abstract-code IR, the
  MoMA rewrite system (Table 1), optimization passes and code generators
  (CUDA, C99, and an executable Python backend).
* :mod:`repro.kernels` — kernel frontends that build BLAS and NTT kernels as
  wide-typed IR for the rewrite system to legalize.
* :mod:`repro.ntheory`, :mod:`repro.poly`, :mod:`repro.ntt`, :mod:`repro.rns`
  — the number-theory, polynomial, NTT and residue-number-system substrates.
* :mod:`repro.baselines` — GMP-like, GRNS-like and published-system baselines.
* :mod:`repro.gpu` — the GPU device catalog and instruction-level cost model
  standing in for the paper's H100 / RTX 4090 / V100 testbed.
* :mod:`repro.tune` — the cost-model-guided kernel autotuner with a
  persistent per-device tuning database.
* :mod:`repro.evaluation` — per-figure harnesses regenerating the paper's
  tables and figures.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
