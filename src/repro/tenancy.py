"""Tenant identity: the namespace that scopes every serving-side key.

A *tenant* is the unit of isolation and accounting in the serving tier —
the "domain" concept borrowed from multi-tenant web stacks, where one id
scopes every model and cache key.  Here the tenant id scopes:

* the server's resident-table and in-flight-dedup keys
  (:func:`repro.serve.server.serve_key`),
* the tuning database's record namespace
  (:meth:`repro.tune.db.TuningRecord.key`, with transparent fallback to
  the shared :data:`DEFAULT_TENANT` namespace on miss),
* per-tenant metrics, quotas, and tenant-scoped warmup/invalidation.

The id travels the wire as an **additive** field on the ``ServeCall``
envelope: absent means :data:`DEFAULT_TENANT`, so v1-era peers and
pre-tenant traces interoperate unchanged.

Because tenant ids become key segments and (potentially) file-name
fragments, they are validated at every boundary — :func:`validate_tenant`
rejects ids that would corrupt a ``::``-joined key or a path.  The
protocol layer converts the :class:`ValueError` raised here into a
:class:`~repro.errors.ProtocolError` at decode time; client APIs let it
propagate as-is.

This module is deliberately dependency-light (stdlib + :mod:`repro.errors`
only) so both :mod:`repro.tune` and :mod:`repro.serve` can import it
without layering cycles.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import QuotaExceededError

__all__ = [
    "DEFAULT_TENANT",
    "TENANT_SEPARATOR",
    "TenantConfig",
    "TenantRegistry",
    "qualify_key",
    "split_tenant",
    "validate_tenant",
]

#: The shared namespace every untenanted request belongs to.  Pre-tenant
#: databases, traces, and wire envelopes all land here, byte-identically
#: to how they behaved before tenancy existed.
DEFAULT_TENANT = "default"

#: The key-segment separator tenant ids are joined with — the same ``::``
#: every other composite key in this codebase uses, which is exactly why
#: a tenant id may not contain it.
TENANT_SEPARATOR = "::"

#: Characters/patterns a tenant id may not contain: the key separator
#: (would alias another key), path separators (ids may appear in file
#: names), and whitespace (ids appear in space-separated reports).
_FORBIDDEN_SUBSTRINGS = (TENANT_SEPARATOR, "/", "\\")


def validate_tenant(tenant: str) -> str:
    """Validate a tenant id; returns it unchanged or raises ``ValueError``.

    A valid id is a non-empty string containing no ``::`` (the key
    separator), no ``/`` or ``\\`` (ids may become file-name fragments),
    and no whitespace.  Everything else — including :data:`DEFAULT_TENANT`
    itself — passes; tenancy does not restrict ids to a registry.
    """
    if not isinstance(tenant, str):
        raise ValueError(f"tenant id must be a string, got {type(tenant).__name__}")
    if not tenant:
        raise ValueError("tenant id must not be empty")
    for forbidden in _FORBIDDEN_SUBSTRINGS:
        if forbidden in tenant:
            raise ValueError(
                f"tenant id {tenant!r} must not contain {forbidden!r}"
            )
    if any(ch.isspace() for ch in tenant):
        raise ValueError(f"tenant id {tenant!r} must not contain whitespace")
    return tenant


def qualify_key(tenant: str, key: str) -> str:
    """Prefix ``key`` with the tenant namespace.

    The :data:`DEFAULT_TENANT` namespace is the *unprefixed* key — that
    invariant is what makes pre-tenant databases, resident tables, and
    wire envelopes readable without migration (the default namespace IS
    the legacy format).
    """
    validate_tenant(tenant)
    if tenant == DEFAULT_TENANT:
        return key
    return f"{tenant}{TENANT_SEPARATOR}{key}"


def split_tenant(qualified: str, known_tenants=None) -> tuple[str, str]:
    """The ``(tenant, bare key)`` behind a possibly-qualified key.

    The inverse of :func:`qualify_key` needs help: a bare key's first
    ``::`` segment could be a tenant id or the first segment of a legacy
    key.  ``known_tenants`` (an iterable of non-default tenant ids)
    disambiguates — a prefix is only split off when it names a known
    tenant.  With no ``known_tenants``, any structurally-valid tenant
    prefix is split off; that is unambiguous for **serve keys** (a bare
    serve key always starts with the workload family key, whose ``/``
    segments can never validate as a tenant id) but not for arbitrary
    ``::``-joined keys — tuning records carry an explicit ``tenant``
    field instead of relying on this.
    """
    head, separator, tail = qualified.partition(TENANT_SEPARATOR)
    if not separator:
        return DEFAULT_TENANT, qualified
    if known_tenants is not None:
        if head in known_tenants:
            return head, tail
        return DEFAULT_TENANT, qualified
    try:
        validate_tenant(head)
    except ValueError:
        return DEFAULT_TENANT, qualified
    if head == DEFAULT_TENANT:
        return DEFAULT_TENANT, qualified
    return head, tail


# -- quotas -------------------------------------------------------------------


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's admission-control budget.

    ``rate_rps`` caps sustained submissions per second (a sliding one-second
    window); ``max_in_flight`` caps concurrently outstanding requests.
    ``None`` means unlimited — the default tenant ships with no limits, so
    tenancy is pay-for-what-you-configure.
    """

    tenant: str
    display_name: str = ""
    rate_rps: float | None = None
    max_in_flight: int | None = None

    def __post_init__(self) -> None:
        validate_tenant(self.tenant)
        if self.rate_rps is not None and not self.rate_rps > 0:
            raise ValueError(
                f"tenant {self.tenant!r} rate_rps must be positive, "
                f"got {self.rate_rps!r}"
            )
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError(
                f"tenant {self.tenant!r} max_in_flight must be positive, "
                f"got {self.max_in_flight!r}"
            )

    @property
    def label(self) -> str:
        """The name shown in reports: the display name, else the id."""
        return self.display_name or self.tenant


class TenantRegistry:
    """Per-tenant configs plus the live admission-control state.

    The supervisor's front door calls :meth:`admit` once per submission
    and :meth:`release` once per completion (wired through the request
    future's done-callback).  Unregistered tenants are admitted without
    limits — the registry constrains only tenants an operator configured,
    so an empty registry is the exact pre-tenancy behaviour.

    Thread-safe: ``admit``/``release`` run under one lock from submitter
    and completion threads alike.
    """

    def __init__(self, configs=()) -> None:
        self._configs: dict[str, TenantConfig] = {}
        self._in_flight: dict[str, int] = {}
        self._recent: dict[str, list[float]] = {}
        self._rejected: dict[str, int] = {}
        self._lock = threading.Lock()
        for config in configs:
            self.register(config)

    def register(self, config: TenantConfig) -> None:
        """Add or replace one tenant's config."""
        if not isinstance(config, TenantConfig):
            raise ValueError(
                f"expected a TenantConfig, got {type(config).__name__}"
            )
        with self._lock:
            self._configs[config.tenant] = config

    def get(self, tenant: str) -> TenantConfig | None:
        """The registered config for ``tenant``, if any."""
        with self._lock:
            return self._configs.get(tenant)

    def tenants(self) -> tuple[str, ...]:
        """Every registered tenant id, sorted."""
        with self._lock:
            return tuple(sorted(self._configs))

    def admit(self, tenant: str, now: float | None = None) -> None:
        """Count one submission against ``tenant``'s budget, or refuse it.

        Raises :class:`~repro.errors.QuotaExceededError` when the tenant's
        sliding-window rate or in-flight cap is exhausted; an admitted
        request **must** be balanced by one :meth:`release` call.
        """
        validate_tenant(tenant)
        timestamp = time.monotonic() if now is None else now
        with self._lock:
            config = self._configs.get(tenant)
            if config is not None:
                if config.max_in_flight is not None:
                    if self._in_flight.get(tenant, 0) >= config.max_in_flight:
                        self._rejected[tenant] = self._rejected.get(tenant, 0) + 1
                        raise QuotaExceededError(
                            f"tenant {config.label!r} has "
                            f"{self._in_flight.get(tenant, 0)} requests in "
                            f"flight (cap {config.max_in_flight})"
                        )
                if config.rate_rps is not None:
                    window = [
                        one
                        for one in self._recent.get(tenant, [])
                        if timestamp - one < 1.0
                    ]
                    self._recent[tenant] = window
                    if len(window) >= config.rate_rps:
                        self._rejected[tenant] = self._rejected.get(tenant, 0) + 1
                        raise QuotaExceededError(
                            f"tenant {config.label!r} exceeded its rate "
                            f"quota of {config.rate_rps:g} req/s"
                        )
                    window.append(timestamp)
            self._in_flight[tenant] = self._in_flight.get(tenant, 0) + 1

    def release(self, tenant: str) -> None:
        """Balance one earlier :meth:`admit` (the request completed)."""
        with self._lock:
            count = self._in_flight.get(tenant, 0)
            if count <= 1:
                self._in_flight.pop(tenant, None)
            else:
                self._in_flight[tenant] = count - 1

    def in_flight(self, tenant: str) -> int:
        """How many of ``tenant``'s requests are outstanding right now."""
        with self._lock:
            return self._in_flight.get(tenant, 0)

    def rejected(self, tenant: str) -> int:
        """How many of ``tenant``'s submissions were refused over quota."""
        with self._lock:
            return self._rejected.get(tenant, 0)

    def snapshot(self) -> dict[str, dict]:
        """Per-tenant admission state, JSON-ready (for stats rollups)."""
        with self._lock:
            tenants = sorted(
                set(self._configs) | set(self._in_flight) | set(self._rejected)
            )
            return {
                tenant: {
                    "in_flight": self._in_flight.get(tenant, 0),
                    "rejected": self._rejected.get(tenant, 0),
                    **(
                        {
                            "rate_rps": config.rate_rps,
                            "max_in_flight": config.max_in_flight,
                        }
                        if (config := self._configs.get(tenant)) is not None
                        else {}
                    ),
                }
                for tenant in tenants
            }
