"""Polynomial and finite-field BLAS layer built on the NTT substrate."""

from repro.poly.blas import (
    BlasEngine,
    MomaBlasEngine,
    PythonBlasEngine,
    axpy,
    vector_addmod,
    vector_mulmod,
    vector_submod,
)
from repro.poly.multiplication import multiply_negacyclic, multiply_ntt, multiply_schoolbook
from repro.poly.polynomial import Polynomial

__all__ = [
    "BlasEngine",
    "MomaBlasEngine",
    "PythonBlasEngine",
    "axpy",
    "vector_addmod",
    "vector_mulmod",
    "vector_submod",
    "multiply_negacyclic",
    "multiply_ntt",
    "multiply_schoolbook",
    "Polynomial",
]
