"""Polynomial multiplication strategies.

Three routes to the product of two polynomials over ``Z_q``:

* schoolbook (O(n^2), Equation 11) — the oracle;
* cyclic NTT-based multiplication (O(n log n)) for full products, padding to
  a transform length at least twice the operand length; and
* negacyclic multiplication modulo ``x^n + 1`` — the FHE-style product.

Each NTT-based route accepts an optional butterfly implementation, so the
same function multiplies polynomials with either the Python reference
butterfly or a MoMA-generated kernel.
"""

from __future__ import annotations

from repro.errors import KernelError
from repro.ntt.iterative import Butterfly, ntt_forward, ntt_inverse, reference_butterfly
from repro.ntt.negacyclic import negacyclic_multiply
from repro.ntt.planner import NTTPlan, make_plan
from repro.poly.polynomial import Polynomial

__all__ = ["multiply_schoolbook", "multiply_ntt", "multiply_negacyclic"]


def multiply_schoolbook(a: Polynomial, b: Polynomial) -> Polynomial:
    """O(n^2) product (Equation 11)."""
    return a.schoolbook_multiply(b)


def _next_power_of_two(value: int) -> int:
    size = 1
    while size < value:
        size *= 2
    return size


def multiply_ntt(
    a: Polynomial,
    b: Polynomial,
    plan: NTTPlan | None = None,
    butterfly: Butterfly = reference_butterfly,
) -> Polynomial:
    """Full polynomial product via cyclic NTT convolution.

    The operands are zero-padded to a power-of-two transform length at least
    ``deg(a) + deg(b) + 1`` so the cyclic convolution equals the full product.
    """
    if a.modulus != b.modulus:
        raise KernelError("operands must share a modulus")
    result_length = a.degree + b.degree + 1
    size = _next_power_of_two(max(2, result_length))
    if plan is None:
        plan = make_plan(size, a.modulus.bit_length(), modulus=a.modulus)
    if plan.size < result_length:
        raise KernelError(
            f"transform of {plan.size} points cannot hold a product of length {result_length}"
        )
    q = plan.modulus
    padded_a = a.padded(plan.size).coefficients
    padded_b = b.padded(plan.size).coefficients
    spectrum_a = ntt_forward(padded_a, plan, butterfly)
    spectrum_b = ntt_forward(padded_b, plan, butterfly)
    pointwise = [(x * y) % q for x, y in zip(spectrum_a, spectrum_b)]
    product = ntt_inverse(pointwise, plan, butterfly)
    return Polynomial(product[:result_length], q)


def multiply_negacyclic(
    a: Polynomial,
    b: Polynomial,
    plan: NTTPlan,
    butterfly: Butterfly = reference_butterfly,
) -> Polynomial:
    """Product in ``Z_q[x] / (x^n + 1)`` (the FHE ring) via the weighted NTT."""
    if a.modulus != b.modulus or a.modulus != plan.modulus:
        raise KernelError("operands and plan must share a modulus")
    padded_a = a.padded(plan.size).coefficients
    padded_b = b.padded(plan.size).coefficients
    return Polynomial(negacyclic_multiply(padded_a, padded_b, plan, butterfly), plan.modulus)
