"""Finite-field BLAS operations on coefficient vectors (Section 2.3 / 5.2).

Point-wise polynomial arithmetic — vector addition, subtraction,
multiplication and ``axpy`` over ``Z_q`` — with two interchangeable
execution engines:

* :class:`PythonBlasEngine` — Python integer arithmetic (the role GMP plays
  on the CPU in the paper's comparison), and
* :class:`MomaBlasEngine` — the MoMA-generated machine-word kernels executed
  through the Python backend, i.e. the code the CUDA backend would run one
  element per thread.

Both produce identical values; the GPU cost model (:mod:`repro.gpu`) and the
wall-clock benchmarks quantify the difference in *how* they compute them.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ArithmeticDomainError
from repro.arith.barrett import BarrettParams
from repro.core.driver import CompilerSession
from repro.kernels.blas_gen import compile_blas_kernel
from repro.kernels.config import KernelConfig

__all__ = [
    "BlasEngine",
    "PythonBlasEngine",
    "MomaBlasEngine",
    "vector_addmod",
    "vector_submod",
    "vector_mulmod",
    "axpy",
]


def _check_vectors(q: int, *vectors: Sequence[int]) -> None:
    if q < 3:
        raise ArithmeticDomainError(f"modulus must be >= 3, got {q}")
    lengths = {len(vector) for vector in vectors}
    if len(lengths) != 1:
        raise ArithmeticDomainError(f"vectors must have equal lengths, got {sorted(lengths)}")
    for vector in vectors:
        for index, value in enumerate(vector):
            if not 0 <= value < q:
                raise ArithmeticDomainError(
                    f"element {index} = {value} is not reduced modulo {q}"
                )


def _check_scalar(scale: int, q: int) -> None:
    if not 0 <= scale < q:
        raise ArithmeticDomainError(f"scalar {scale} is not reduced modulo {q}")


class BlasEngine:
    """Interface for finite-field vector arithmetic engines."""

    def vadd(self, x: Sequence[int], y: Sequence[int], q: int) -> list[int]:
        """Element-wise ``(x + y) mod q``."""
        raise NotImplementedError

    def vsub(self, x: Sequence[int], y: Sequence[int], q: int) -> list[int]:
        """Element-wise ``(x - y) mod q``."""
        raise NotImplementedError

    def vmul(self, x: Sequence[int], y: Sequence[int], q: int) -> list[int]:
        """Element-wise ``(x * y) mod q``."""
        raise NotImplementedError

    def axpy(self, scale: int, x: Sequence[int], y: Sequence[int], q: int) -> list[int]:
        """Element-wise ``(scale * x + y) mod q`` (Equation 10)."""
        raise NotImplementedError


class PythonBlasEngine(BlasEngine):
    """Arbitrary-precision (Python integer) engine — the CPU-library analogue."""

    def vadd(self, x, y, q):
        _check_vectors(q, x, y)
        return [(a + b) % q for a, b in zip(x, y)]

    def vsub(self, x, y, q):
        _check_vectors(q, x, y)
        return [(a - b) % q for a, b in zip(x, y)]

    def vmul(self, x, y, q):
        _check_vectors(q, x, y)
        return [(a * b) % q for a, b in zip(x, y)]

    def axpy(self, scale, x, y, q):
        _check_vectors(q, x, y)
        _check_scalar(scale, q)
        return [(scale * a + b) % q for a, b in zip(x, y)]


class MomaBlasEngine(BlasEngine):
    """Engine that runs the MoMA-generated machine-word kernels per element.

    Args:
        config: operand-width configuration; the modulus used at call time
            must have exactly ``config.effective_modulus_bits`` bits.
        session: compiler session used to compile the kernels (defaults to
            the process-wide session).
        autotune: let the autotuner pick each operation's multiplication
            algorithm and word width for ``device`` (values are unchanged;
            only the generated machine-word code differs).
        device: device model the autotuner optimizes for.
        tuning_db: persistent :class:`repro.tune.TuningDatabase` consulted
            and updated by the autotuner.
        serve: a :class:`repro.serve.KernelServer` to delegate tuning and
            compilation to; each operation's kernel is requested through the
            server's shared caches (``autotune`` selects tuned vs pinned)
            and ``session``/``tuning_db`` are unused.

    Attributes:
        config: the requested (semantic) configuration — bit-widths and
            modulus convention; unchanged by autotuning.
        operation_configs: the configuration each operation's kernel was
            actually generated with (differs from ``config`` only when
            ``autotune=True`` picked a different algorithm or word width).
    """

    def __init__(
        self,
        config: KernelConfig,
        session: CompilerSession | None = None,
        autotune: bool = False,
        device: str = "rtx4090",
        tuning_db=None,
        serve=None,
    ) -> None:
        self.config = config
        self.operation_configs: dict[str, KernelConfig] = {}
        self._kernels = {}
        operations = ("vadd", "vsub", "vmul", "axpy")
        if serve is not None:
            # Imported lazily: repro.serve sits above this frontend.  All
            # four requests are submitted together so cold kernels compile
            # concurrently on the server's pool and share one tuning batch.
            from repro.serve.client import serve_blas_kernels

            for operation, result in serve_blas_kernels(
                serve, operations, config, device=device, tune=autotune
            ).items():
                self.operation_configs[operation] = result.config
                self._kernels[operation] = result.artifact
            return
        for operation in operations:
            generated = config
            if autotune:
                # Imported lazily: repro.tune drives this module's frontends.
                from repro.kernels.blas_gen import _autotuned_config

                generated = _autotuned_config(
                    operation, config, session, device, tuning_db
                )
            self.operation_configs[operation] = generated
            self._kernels[operation] = compile_blas_kernel(
                operation, generated, session=session
            )

    def _mu(self, q: int) -> int:
        modulus_bits = self.config.effective_modulus_bits
        params = BarrettParams.create(q, modulus_bits + 4, modulus_bits)
        return params.mu

    def vadd(self, x, y, q):
        _check_vectors(q, x, y)
        kernel = self._kernels["vadd"]
        return [kernel(x=a, y=b, q=q)["z"] for a, b in zip(x, y)]

    def vsub(self, x, y, q):
        _check_vectors(q, x, y)
        kernel = self._kernels["vsub"]
        return [kernel(x=a, y=b, q=q)["z"] for a, b in zip(x, y)]

    def vmul(self, x, y, q):
        _check_vectors(q, x, y)
        kernel = self._kernels["vmul"]
        mu = self._mu(q)
        return [kernel(x=a, y=b, q=q, mu=mu)["z"] for a, b in zip(x, y)]

    def axpy(self, scale, x, y, q):
        _check_vectors(q, x, y)
        _check_scalar(scale, q)
        kernel = self._kernels["axpy"]
        mu = self._mu(q)
        return [kernel(x=a, y=b, a=scale, q=q, mu=mu)["z"] for a, b in zip(x, y)]


_DEFAULT_ENGINE = PythonBlasEngine()


def vector_addmod(x: Sequence[int], y: Sequence[int], q: int) -> list[int]:
    """Element-wise modular addition with the default (Python) engine."""
    return _DEFAULT_ENGINE.vadd(x, y, q)


def vector_submod(x: Sequence[int], y: Sequence[int], q: int) -> list[int]:
    """Element-wise modular subtraction with the default (Python) engine."""
    return _DEFAULT_ENGINE.vsub(x, y, q)


def vector_mulmod(x: Sequence[int], y: Sequence[int], q: int) -> list[int]:
    """Element-wise modular multiplication with the default (Python) engine."""
    return _DEFAULT_ENGINE.vmul(x, y, q)


def axpy(scale: int, x: Sequence[int], y: Sequence[int], q: int) -> list[int]:
    """``scale * x + y`` element-wise with the default (Python) engine."""
    return _DEFAULT_ENGINE.axpy(scale, x, y, q)
