"""Dense polynomials over ``Z_q``.

A light-weight coefficient-vector polynomial type used by the examples and
the polynomial-multiplication layer.  Coefficients are stored little-endian
(index ``i`` holds the coefficient of ``x^i``) and always reduced modulo the
ring modulus.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ArithmeticDomainError

__all__ = ["Polynomial"]


class Polynomial:
    """A dense polynomial with coefficients in ``Z_q``.

    Args:
        coefficients: little-endian coefficient sequence; values are reduced
            modulo ``modulus``.
        modulus: the coefficient ring modulus ``q``.
    """

    __slots__ = ("coefficients", "modulus")

    def __init__(self, coefficients: Sequence[int], modulus: int) -> None:
        if modulus < 2:
            raise ArithmeticDomainError(f"modulus must be >= 2, got {modulus}")
        if len(coefficients) == 0:
            coefficients = [0]
        self.modulus = modulus
        self.coefficients = [int(value) % modulus for value in coefficients]

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero(cls, length: int, modulus: int) -> "Polynomial":
        """The zero polynomial padded to ``length`` coefficients."""
        return cls([0] * max(1, length), modulus)

    @classmethod
    def from_degree(cls, degree: int, modulus: int, fill: int = 0) -> "Polynomial":
        """A polynomial of the given degree with constant coefficients."""
        return cls([fill] * (degree + 1), modulus)

    # -- structure -----------------------------------------------------------

    @property
    def degree(self) -> int:
        """Degree of the polynomial (ignoring trailing zero coefficients)."""
        for index in range(len(self.coefficients) - 1, -1, -1):
            if self.coefficients[index]:
                return index
        return 0

    def __len__(self) -> int:
        return len(self.coefficients)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        if self.modulus != other.modulus:
            return False
        longest = max(len(self), len(other))
        return self.padded(longest).coefficients == other.padded(longest).coefficients

    def __hash__(self) -> int:
        return hash((self.modulus, tuple(self.coefficients)))

    def __repr__(self) -> str:
        return f"Polynomial(degree={self.degree}, modulus={self.modulus:#x})"

    def padded(self, length: int) -> "Polynomial":
        """The same polynomial padded with zeros to ``length`` coefficients."""
        if length < len(self.coefficients):
            stripped = self.coefficients[length:]
            if any(stripped):
                raise ArithmeticDomainError(
                    f"cannot truncate a polynomial of degree {self.degree} to {length} coefficients"
                )
            return Polynomial(self.coefficients[:length], self.modulus)
        return Polynomial(
            self.coefficients + [0] * (length - len(self.coefficients)), self.modulus
        )

    def _check_compatible(self, other: "Polynomial") -> None:
        if self.modulus != other.modulus:
            raise ArithmeticDomainError(
                f"polynomials have different moduli ({self.modulus:#x} vs {other.modulus:#x})"
            )

    # -- ring operations ------------------------------------------------------

    def __add__(self, other: "Polynomial") -> "Polynomial":
        self._check_compatible(other)
        longest = max(len(self), len(other))
        a = self.padded(longest).coefficients
        b = other.padded(longest).coefficients
        return Polynomial([(x + y) % self.modulus for x, y in zip(a, b)], self.modulus)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        self._check_compatible(other)
        longest = max(len(self), len(other))
        a = self.padded(longest).coefficients
        b = other.padded(longest).coefficients
        return Polynomial([(x - y) % self.modulus for x, y in zip(a, b)], self.modulus)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        self._check_compatible(other)
        return self.schoolbook_multiply(other)

    def scale(self, scalar: int) -> "Polynomial":
        """Multiply every coefficient by a scalar."""
        scalar %= self.modulus
        return Polynomial([(scalar * value) % self.modulus for value in self.coefficients], self.modulus)

    def pointwise_multiply(self, other: "Polynomial") -> "Polynomial":
        """Coefficient-wise (Hadamard) product — evaluation-form multiplication."""
        self._check_compatible(other)
        if len(self) != len(other):
            raise ArithmeticDomainError("point-wise product needs equal lengths")
        return Polynomial(
            [(x * y) % self.modulus for x, y in zip(self.coefficients, other.coefficients)],
            self.modulus,
        )

    def schoolbook_multiply(self, other: "Polynomial") -> "Polynomial":
        """O(n^2) polynomial product (Equation 11)."""
        self._check_compatible(other)
        result = [0] * (len(self) + len(other) - 1)
        for i, coefficient_a in enumerate(self.coefficients):
            if coefficient_a == 0:
                continue
            for j, coefficient_b in enumerate(other.coefficients):
                result[i + j] = (result[i + j] + coefficient_a * coefficient_b) % self.modulus
        return Polynomial(result, self.modulus)

    def evaluate(self, point: int) -> int:
        """Horner evaluation at ``point`` (mod q)."""
        accumulator = 0
        for coefficient in reversed(self.coefficients):
            accumulator = (accumulator * point + coefficient) % self.modulus
        return accumulator
