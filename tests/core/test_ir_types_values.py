"""Tests for IR types, values and operand groups."""

import pytest
from hypothesis import given, strategies as st

from repro.core.ir.types import FLAG, IntType, u64, u128
from repro.core.ir.values import Const, Group, NameGenerator, Var, as_group
from repro.errors import IRError


class TestIntType:
    def test_str(self):
        assert str(IntType(256)) == "u256"

    def test_mask(self):
        assert IntType(8).mask == 0xFF

    def test_fits(self):
        assert u64.fits(2**64 - 1)
        assert not u64.fits(2**64)
        assert not u64.fits(-1)

    def test_half_and_double(self):
        assert IntType(256).half() == u128
        assert u64.double() == u128

    def test_half_of_odd_width_rejected(self):
        with pytest.raises(IRError):
            IntType(65).half()

    def test_is_machine(self):
        assert u64.is_machine(64)
        assert not u128.is_machine(64)
        assert FLAG.is_flag()

    def test_non_positive_width_rejected(self):
        with pytest.raises(IRError):
            IntType(0)


class TestVarConst:
    def test_var_str(self):
        assert str(Var("x", u64)) == "x:u64"

    def test_var_requires_name(self):
        with pytest.raises(IRError):
            Var("", u64)

    def test_effective_bits_range_checked(self):
        with pytest.raises(IRError):
            Var("x", u64, effective_bits=65)
        assert Var("x", u64, effective_bits=60).effective_bits == 60

    def test_effective_bits_not_part_of_equality(self):
        assert Var("x", u64, effective_bits=10) == Var("x", u64)

    def test_const_fits_type(self):
        with pytest.raises(IRError):
            Const(256, IntType(8))
        assert Const(255, IntType(8)).value == 255


class TestGroup:
    def test_requires_parts(self):
        with pytest.raises(IRError):
            Group(())

    def test_str_single_and_multi(self):
        x = Var("x", u64)
        assert str(Group((x,))) == "x:u64"
        assert str(Group((x, Const(1, u64)))).startswith("[")

    def test_bits(self):
        group = Group((Var("c", FLAG), Var("lo", u64)))
        assert group.bits == 65
        assert group.max_part_bits == 64

    @given(st.integers(min_value=0, max_value=2**128 - 1))
    def test_compose_decompose_round_trip(self, value):
        group = Group((Var("hi", u64), Var("lo", u64)))
        assert group.compose(group.decompose(value)) == value

    def test_compose_checks_part_fit(self):
        group = Group((Var("hi", u64), Var("lo", u64)))
        with pytest.raises(IRError):
            group.compose([2**64, 0])

    def test_decompose_checks_total_fit(self):
        group = Group((Var("lo", u64),))
        with pytest.raises(IRError):
            group.decompose(2**64)

    def test_mixed_width_composition(self):
        # [flag, word] composes as flag * 2**64 + word.
        group = Group((Var("c", FLAG), Var("lo", u64)))
        assert group.compose([1, 5]) == (1 << 64) + 5

    def test_variables_skips_consts(self):
        group = Group((Const(0, u64), Var("lo", u64)))
        assert [v.name for v in group.variables()] == ["lo"]

    def test_as_group_coercions(self):
        x = Var("x", u64)
        assert as_group(x).parts == (x,)
        assert as_group((x, x)).parts == (x, x)
        assert as_group(Group((x,))).parts == (x,)
        with pytest.raises(IRError):
            as_group(42)


class TestNameGenerator:
    def test_fresh_uses_hint_verbatim_when_free(self):
        names = NameGenerator()
        assert names.fresh("x_0") == "x_0"
        assert names.fresh("x_0") != "x_0"

    def test_reserved_names_not_reissued(self):
        names = NameGenerator()
        names.reserve("t0")
        assert names.fresh() != "t0"

    def test_all_names_unique(self):
        names = NameGenerator()
        issued = {names.fresh("v") for _ in range(100)}
        assert len(issued) == 100
