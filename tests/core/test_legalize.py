"""End-to-end legalization tests: semantics, pruning, interfaces, errors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codegen.python_exec import compile_kernel
from repro.core.ir.builder import KernelBuilder
from repro.core.ir.interp import interpret
from repro.core.rewrite.legalize import kernel_is_machine_legal, legalize
from repro.core.rewrite.options import RewriteOptions
from repro.errors import RewriteError

WORD = 64


def make_modulus(bits, offset=1):
    q = (1 << bits) - offset
    while q % 2 == 0 or q.bit_length() != bits:
        q -= 1
    return q


def mulmod_kernel(bits, modulus_bits, multiplication="schoolbook"):
    builder = KernelBuilder(f"mulmod_{bits}")
    x = builder.param("x", bits, modulus_bits)
    y = builder.param("y", bits, modulus_bits)
    q = builder.param("q", bits, modulus_bits)
    mu = builder.param("mu", bits)
    builder.output("z", builder.mulmod(x, y, q, mu, algorithm=multiplication))
    return builder.build()


class TestSemanticsAcrossWidths:
    @pytest.mark.parametrize(
        "bits,modulus_bits",
        [(128, 124), (256, 252), (512, 508), (512, 380), (1024, 753)],
    )
    def test_mulmod_matches_big_integer_reference(self, bits, modulus_bits):
        kernel = mulmod_kernel(bits, modulus_bits)
        legalized = legalize(kernel, RewriteOptions(word_bits=WORD))
        assert kernel_is_machine_legal(legalized, WORD)
        compiled = compile_kernel(legalized)
        q = make_modulus(modulus_bits)
        mu = (1 << (2 * modulus_bits + 3)) // q
        a, b = q - 3, (2 * q) // 3
        assert compiled(x=a, y=b, q=q, mu=mu)["z"] == (a * b) % q

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_mulmod_randomised_256(self, data):
        kernel = mulmod_kernel(256, 252)
        legalized = legalize(kernel, RewriteOptions(word_bits=WORD))
        compiled = compile_kernel(legalized)
        q = make_modulus(252, offset=data.draw(st.integers(min_value=1, max_value=501)) * 2 - 1)
        mu = (1 << (2 * 252 + 3)) // q
        a = data.draw(st.integers(min_value=0, max_value=q - 1))
        b = data.draw(st.integers(min_value=0, max_value=q - 1))
        assert compiled(x=a, y=b, q=q, mu=mu)["z"] == (a * b) % q

    def test_karatsuba_and_schoolbook_agree(self):
        q = make_modulus(252)
        mu = (1 << (2 * 252 + 3)) // q
        results = []
        for algorithm in ("schoolbook", "karatsuba"):
            kernel = mulmod_kernel(256, 252, algorithm)
            legalized = legalize(
                kernel, RewriteOptions(word_bits=WORD, multiplication=algorithm)
            )
            compiled = compile_kernel(legalized)
            results.append(compiled(x=q - 5, y=q - 11, q=q, mu=mu)["z"])
        assert results[0] == results[1] == ((q - 5) * (q - 11)) % q

    def test_32_bit_machine_word(self):
        kernel = mulmod_kernel(128, 124)
        legalized = legalize(kernel, RewriteOptions(word_bits=32))
        assert kernel_is_machine_legal(legalized, 32)
        compiled = compile_kernel(legalized)
        q = make_modulus(124)
        mu = (1 << (2 * 124 + 3)) // q
        assert compiled(x=q - 2, y=q - 7, q=q, mu=mu)["z"] == ((q - 2) * (q - 7)) % q

    def test_legalization_preserves_interpreter_semantics(self):
        # The wide kernel and the legalized kernel are both executable; they
        # must agree (the legalized one via the compiled Python backend).
        kernel = mulmod_kernel(128, 124)
        legalized = legalize(kernel, RewriteOptions(word_bits=WORD))
        compiled = compile_kernel(legalized)
        q = make_modulus(124)
        mu = (1 << (2 * 124 + 3)) // q
        a, b = 12345678901234567890 % q, q // 3
        reference = interpret(kernel, {"x": a, "y": b, "q": q, "mu": mu})["z"]
        assert compiled(x=a, y=b, q=q, mu=mu)["z"] == reference


class TestInterfaceFlattening:
    def test_param_and_output_counts(self):
        kernel = mulmod_kernel(256, 252)
        legalized = legalize(kernel, RewriteOptions(word_bits=WORD))
        # 4 original params x 4 limbs each, one output of 4 limbs.
        assert len(legalized.params) == 16
        assert len(legalized.outputs) == 4

    def test_non_power_of_two_pruning_shrinks_interface(self):
        # A 380-bit modulus stored in a 512-bit container: the top two 64-bit
        # words of every operand are provably zero and vanish (Section 4).
        pruned = legalize(mulmod_kernel(512, 380), RewriteOptions(word_bits=WORD))
        full = legalize(mulmod_kernel(512, 508), RewriteOptions(word_bits=WORD))
        assert len(pruned.params) < len(full.params)
        assert len(pruned.body) < len(full.body)
        layout = pruned.metadata["param_layout"]["x"]
        assert layout[0] is None and layout[1] is None  # pruned limbs
        assert all(limb is not None for limb in layout[2:])

    def test_metadata_records_configuration(self):
        legalized = legalize(mulmod_kernel(128, 124), RewriteOptions(word_bits=WORD))
        assert legalized.metadata["word_bits"] == WORD
        assert legalized.metadata["legalized"] is True
        assert legalized.metadata["original_params"][0] == ("x", 128, 124)

    def test_machine_width_kernel_untouched_interface(self):
        builder = KernelBuilder("single_word")
        x = builder.param("x", 64)
        y = builder.param("y", 64)
        q = builder.param("q", 64)
        builder.output("z", builder.addmod(x, y, q))
        legalized = legalize(builder.build(), RewriteOptions(word_bits=64))
        assert [p.name for p in legalized.params] == ["x", "y", "q"]
        assert kernel_is_machine_legal(legalized, 64)
        compiled = compile_kernel(legalized)
        assert compiled(x=5, y=9, q=11)["z"] == 3


class TestErrors:
    def test_mulmod_without_mu_and_non_constant_modulus_rejected(self):
        builder = KernelBuilder("bad")
        x = builder.param("x", 128, 124)
        q = builder.param("q", 128, 124)
        builder.output("z", builder.mulmod(x, x, q))
        with pytest.raises(RewriteError):
            legalize(builder.build(), RewriteOptions(word_bits=WORD))

    def test_mulmod_with_constant_modulus_computes_mu(self):
        q = make_modulus(124)
        builder = KernelBuilder("const_mod")
        x = builder.param("x", 128, 124)
        constant_q = builder.constant(q, 128)
        builder.output("z", builder.mulmod(x, x, constant_q, modulus_bits=124))
        # modulus_bits attr is not part of builder.mulmod; emit manually.
        kernel = builder.build()
        legalized = legalize(kernel, RewriteOptions(word_bits=WORD))
        compiled = compile_kernel(legalized)
        a = q - 12345
        assert compiled(x=a)["z"] == (a * a) % q

    def test_modulus_too_wide_rejected(self):
        builder = KernelBuilder("bad_headroom")
        x = builder.param("x", 128)  # no effective bits: modulus assumed 124
        q = builder.param("q", 128, 126)  # only 2 bits of headroom
        mu = builder.param("mu", 128)
        builder.output("z", builder.mulmod(x, x, q, mu))
        with pytest.raises(RewriteError):
            legalize(builder.build(), RewriteOptions(word_bits=WORD))

    def test_invalid_options_rejected(self):
        with pytest.raises(RewriteError):
            RewriteOptions(word_bits=48)
        with pytest.raises(RewriteError):
            RewriteOptions(multiplication="toom")
        with pytest.raises(RewriteError):
            RewriteOptions(max_iterations=0)
