"""Tests for the unified compiler driver (targets, cache, session, stats)."""

import pytest

from repro.errors import DriverError, UnknownTargetError
from repro.core.driver import (
    CompilerSession,
    ContentAddressedCache,
    Target,
    emit,
    get_default_session,
    get_target,
    list_targets,
    register_target,
    reset_default_session,
    set_default_session,
)
from repro.core.ir.fingerprint import kernel_digest
from repro.core.rewrite import kernel_is_machine_legal
from repro.kernels import KernelConfig, build_blas_kernel, build_butterfly_kernel


@pytest.fixture
def config():
    return KernelConfig(bits=128)


@pytest.fixture
def session():
    return CompilerSession()


class TestTargetRegistry:
    def test_seed_backends_are_registered(self):
        assert {"c99", "cuda", "python_exec"} <= set(list_targets())

    def test_get_target_passes_instances_through(self):
        target = get_target("cuda")
        assert get_target(target) is target

    def test_unknown_target_raises(self):
        with pytest.raises(UnknownTargetError, match="ptx"):
            get_target("ptx")

    def test_session_compile_unknown_target_raises(self, session, config):
        kernel = build_butterfly_kernel(config)
        with pytest.raises(UnknownTargetError):
            session.compile(kernel, target="ptx", options=config.rewrite_options())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(DriverError, match="already registered"):
            register_target(Target(name="cuda", description="dup", emit=lambda k: ""))

    def test_word_width_mismatch_rejected(self, session, config):
        kernel = session.lower(build_butterfly_kernel(config), options=config.rewrite_options())
        narrow = Target(name="w8", description="", emit=lambda k: "", word_bits=(8,))
        with pytest.raises(DriverError, match="machine"):
            emit(kernel, narrow)


class TestContentAddressedCache:
    def test_hit_miss_counters(self):
        cache = ContentAddressedCache(maxsize=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_eviction_bound(self):
        cache = ContentAddressedCache(maxsize=2)
        for index in range(5):
            cache.put(index, index)
        stats = cache.stats()
        assert stats.currsize == 2
        assert stats.evictions == 3
        # Least-recently-used entries were dropped, newest survive.
        assert 4 in cache and 0 not in cache

    def test_invalid_maxsize(self):
        with pytest.raises(DriverError):
            ContentAddressedCache(maxsize=0)

    def test_get_refreshes_lru_order(self):
        cache = ContentAddressedCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "a" becomes most recent, so "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_put_overwrite_refreshes_lru_order_without_evicting(self):
        cache = ContentAddressedCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite: refreshes recency, no eviction
        assert cache.stats().evictions == 0
        cache.put("c", 3)
        assert cache.get("a") == 10 and "b" not in cache

    def test_eviction_is_lru_not_fifo(self):
        cache = ContentAddressedCache(maxsize=3)
        for key in "abc":
            cache.put(key, key)
        cache.get("a")  # insertion order a,b,c but recency order b,c,a
        cache.put("d", "d")
        assert "b" not in cache
        assert all(key in cache for key in "acd")

    def test_counters_under_interleaved_lower_compile(self, config):
        # cache_size=3 holds at most three of {A_low, A_art, B_low, B_art};
        # the trace below interleaves lower/compile so both recency refreshes
        # (hits) and LRU evictions occur, and checks every counter exactly.
        session = CompilerSession(cache_size=3)
        options = config.rewrite_options()
        kernel_a = build_blas_kernel("vadd", config)
        kernel_b = build_blas_kernel("vsub", config)

        session.lower(kernel_a, options=options)  # miss; cache [A_low]
        session.compile(kernel_a, options=options)  # art miss + lower hit; [A_low, A_art]
        session.lower(kernel_b, options=options)  # miss; [A_low, A_art, B_low]
        # art miss + lower hit, then the artifact insert evicts A_low (LRU):
        session.compile(kernel_b, options=options)  # [A_art, B_low, B_art]
        info = session.cache_info()
        assert (info.hits, info.misses, info.evictions) == (2, 4, 1)
        assert info.currsize == 3

        # A's lowering was evicted: re-lowering misses and evicts A_art.
        session.lower(kernel_a, options=options)  # miss; [B_low, B_art, A_low]
        # ... so recompiling A misses its artifact but reuses the fresh
        # lowering, evicting B_low on insert.
        session.compile(kernel_a, options=options)  # [B_art, A_low, A_art]
        info = session.cache_info()
        assert (info.hits, info.misses, info.evictions) == (3, 6, 3)

        # Recency check: A survived (hit), B's lowering did not (miss).
        session.lower(kernel_a, options=options)
        session.lower(kernel_b, options=options)
        info = session.cache_info()
        assert (info.hits, info.misses, info.evictions) == (4, 7, 4)
        assert info.currsize == 3


class TestSessionCaching:
    def test_lower_hits_cache_on_identical_ir(self, session, config):
        options = config.rewrite_options()
        first = session.lower(build_butterfly_kernel(config), options=options)
        second = session.lower(build_butterfly_kernel(config), options=options)
        assert second is first
        info = session.cache_info()
        assert info.hits == 1 and info.misses == 1

    def test_different_options_miss(self, session, config):
        karatsuba = KernelConfig(bits=128, multiplication="karatsuba")
        session.lower(build_butterfly_kernel(config), options=config.rewrite_options())
        session.lower(build_butterfly_kernel(config), options=karatsuba.rewrite_options())
        assert session.cache_info().hits == 0

    def test_targets_cached_independently_share_lowering(self, session, config):
        kernel = build_butterfly_kernel(config)
        options = config.rewrite_options()
        session.compile(kernel, target="cuda", options=options)
        hits_after_cuda = session.cache_info().hits
        session.compile(kernel, target="c99", options=options)
        # The c99 emission misses its own artifact entry but reuses the
        # lowered kernel.
        assert session.cache_info().hits == hits_after_cuda + 1

    def test_compile_returns_cached_artifact(self, session, config):
        kernel = build_blas_kernel("vadd", config)
        options = config.rewrite_options()
        first = session.compile(kernel, target="python_exec", options=options)
        second = session.compile(kernel, target="python_exec", options=options)
        assert second is first

    def test_eviction_bound_applies_to_session(self, config):
        session = CompilerSession(cache_size=2)
        options = config.rewrite_options()
        for operation in ("vadd", "vsub", "vmul"):
            session.lower(build_blas_kernel(operation, config), options=options)
        info = session.cache_info()
        assert info.currsize == 2
        assert info.evictions == 1

    def test_default_session_is_shared_and_resettable(self):
        original = get_default_session()
        assert get_default_session() is original
        try:
            fresh = reset_default_session()
            assert get_default_session() is fresh
            assert fresh is not original
        finally:
            # Restore the shared session (and its warm kernel cache) so the
            # rest of the suite keeps its hits.
            set_default_session(original)


class TestDeterminism:
    def test_emitted_code_identical_across_sessions(self, config):
        options = config.rewrite_options()
        artifacts = []
        for _ in range(2):
            session = CompilerSession()
            artifacts.append(
                session.compile(build_butterfly_kernel(config), target="cuda", options=options)
            )
        assert artifacts[0] == artifacts[1]

    def test_digest_stable_for_equal_ir(self, config):
        first = kernel_digest(build_butterfly_kernel(config))
        second = kernel_digest(build_butterfly_kernel(config))
        assert first == second

    def test_digest_differs_for_different_ir(self, config):
        butterfly = kernel_digest(build_butterfly_kernel(config))
        blas = kernel_digest(build_blas_kernel("vadd", config))
        assert butterfly != blas

    def test_lowered_kernels_are_machine_legal(self, session, config):
        lowered = session.lower(build_butterfly_kernel(config), options=config.rewrite_options())
        assert kernel_is_machine_legal(lowered, config.word_bits)


class TestCompileStats:
    def test_pass_deltas_sum_to_total(self, session, config):
        session.lower(build_butterfly_kernel(config), options=config.rewrite_options())
        records = session.stats().records
        assert len(records) == 1
        record = records[0]
        assert record.passes, "instrumentation recorded no passes"
        assert record.deltas_consistent()
        assert sum(p.delta for p in record.passes) == (
            record.statements_final - record.statements_legalized
        )

    def test_statement_counts_monotone_sensible(self, session, config):
        session.lower(build_butterfly_kernel(config), options=config.rewrite_options())
        record = session.stats().records[0]
        assert record.statements_wide < record.statements_legalized
        assert record.statements_final <= record.statements_legalized
        assert record.seconds >= record.legalize_seconds >= 0.0

    def test_cache_hits_counted_in_stats(self, session, config):
        options = config.rewrite_options()
        session.lower(build_butterfly_kernel(config), options=options)
        session.lower(build_butterfly_kernel(config), options=options)
        stats = session.stats()
        assert stats.compilations == 1
        assert stats.cache_hits == 1

    def test_report_mentions_passes_and_kernel(self, session, config):
        session.lower(build_butterfly_kernel(config), options=config.rewrite_options())
        report = session.stats().report()
        assert "ntt_butterfly" in report
        assert "eliminate_dead_code" in report

    def test_run_passes_false_records_no_passes(self, session, config):
        session.lower(
            build_butterfly_kernel(config), options=config.rewrite_options(), run_passes=False
        )
        record = session.stats().records[0]
        assert record.passes == ()
        assert record.statements_final == record.statements_legalized
