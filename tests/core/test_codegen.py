"""Tests for the CUDA, C99 and Python code generators."""

import pytest

from repro.core.codegen.c99 import generate_c99
from repro.core.codegen.common import CTypes
from repro.core.codegen.cuda import generate_cuda
from repro.core.codegen.python_exec import compile_kernel, generate_python_source
from repro.core.ir.builder import KernelBuilder
from repro.core.ir.interp import interpret
from repro.core.rewrite.legalize import legalize
from repro.core.rewrite.options import RewriteOptions
from repro.errors import CodegenError


def butterfly_kernel(bits=256, modulus_bits=252):
    builder = KernelBuilder(f"bf_{bits}")
    x = builder.param("x", bits, modulus_bits)
    y = builder.param("y", bits, modulus_bits)
    w = builder.param("w", bits, modulus_bits)
    q = builder.param("q", bits, modulus_bits)
    mu = builder.param("mu", bits)
    t = builder.mulmod(w, y, q, mu)
    builder.output("x_out", builder.addmod(x, t, q))
    builder.output("y_out", builder.submod(x, t, q))
    builder.metadata(uniform_params=["w", "q", "mu"])
    return builder.build()


@pytest.fixture(scope="module")
def legalized_butterfly():
    return legalize(butterfly_kernel(), RewriteOptions(word_bits=64))


class TestCTypes:
    def test_64_bit_types(self):
        types = CTypes.for_word_bits(64)
        assert types.word == "uint64_t"
        assert types.double == "unsigned __int128"
        assert types.declared(1) == "unsigned int"
        assert types.declared(64) == "uint64_t"

    def test_32_bit_types(self):
        types = CTypes.for_word_bits(32)
        assert types.word == "uint32_t"
        assert types.double == "uint64_t"

    def test_unsupported_width(self):
        with pytest.raises(CodegenError):
            CTypes.for_word_bits(16)
        with pytest.raises(CodegenError):
            CTypes.for_word_bits(64).declared(128)


class TestCudaBackend:
    def test_contains_device_and_global_functions(self, legalized_butterfly):
        source = generate_cuda(legalized_butterfly)
        assert "__device__ __forceinline__ void bf_256_scalar(" in source
        assert 'extern "C" __global__ void bf_256(' in source
        assert "blockIdx.x" in source and "threadIdx.x" in source
        assert "unsigned __int128" in source

    def test_uniform_parameters_passed_by_value(self, legalized_butterfly):
        source = generate_cuda(legalized_butterfly)
        # Element parameters are pointers; uniform ones are scalars.
        assert "const uint64_t *__restrict__ x" in source
        assert "const uint64_t q_0_0" in source
        assert "const uint64_t *__restrict__ q" not in source

    def test_launcher_uses_1024_thread_blocks(self, legalized_butterfly):
        source = generate_cuda(legalized_butterfly)
        assert "threads_per_block = 1024" in source
        assert f"launch_{legalized_butterfly.name}(" in source

    def test_launcher_can_be_omitted(self, legalized_butterfly):
        source = generate_cuda(legalized_butterfly, include_launcher=False)
        assert "launch_" not in source

    def test_outputs_stored_per_element(self, legalized_butterfly):
        source = generate_cuda(legalized_butterfly)
        assert "x_out[element * 4 + 0]" in source
        assert "y_out[element * 4 + 3]" in source

    def test_rejects_non_legalized_kernel(self):
        with pytest.raises(CodegenError):
            generate_cuda(butterfly_kernel())

    def test_pruned_kernel_has_smaller_signature(self):
        wide = legalize(butterfly_kernel(512, 508), RewriteOptions(word_bits=64))
        pruned = legalize(butterfly_kernel(512, 380), RewriteOptions(word_bits=64))
        assert generate_cuda(pruned).count("uint64_t x_") < generate_cuda(wide).count("uint64_t x_")


class TestC99Backend:
    def test_scalar_and_batch_functions(self, legalized_butterfly):
        source = generate_c99(legalized_butterfly)
        assert "void bf_256(" in source
        assert "void bf_256_batch(" in source
        assert "#include <stdint.h>" in source

    def test_pointer_outputs(self, legalized_butterfly):
        source = generate_c99(legalized_butterfly)
        assert "uint64_t *x_out_0_0" in source
        assert "*x_out_0_0 =" in source

    def test_batch_can_be_omitted(self, legalized_butterfly):
        source = generate_c99(legalized_butterfly, include_batch=False)
        assert "_batch(" not in source

    def test_rejects_non_legalized_kernel(self):
        with pytest.raises(CodegenError):
            generate_c99(butterfly_kernel())


class TestPythonBackend:
    def test_source_is_valid_python(self, legalized_butterfly):
        source = generate_python_source(legalized_butterfly)
        compile(source, "<test>", "exec")
        assert source.startswith("def ")

    def test_compiled_matches_interpreter(self):
        kernel = butterfly_kernel(128, 124)
        legalized = legalize(kernel, RewriteOptions(word_bits=64))
        compiled = compile_kernel(legalized)
        q = (1 << 124) - 159
        mu = (1 << (2 * 124 + 3)) // q
        inputs = {"x": q - 5, "y": q // 3, "w": q // 7, "q": q, "mu": mu}
        expected = interpret(kernel, inputs)
        assert compiled(**inputs) == expected

    def test_rejects_non_legalized_kernel(self):
        with pytest.raises(CodegenError):
            generate_python_source(butterfly_kernel())

    def test_pack_inputs_validates_range(self):
        kernel = legalize(butterfly_kernel(128, 124), RewriteOptions(word_bits=64))
        compiled = compile_kernel(kernel)
        with pytest.raises(CodegenError):
            compiled(x=-1, y=0, w=0, q=3, mu=1)
        with pytest.raises(CodegenError):
            compiled(x=1 << 127, y=0, w=0, q=3, mu=1)  # exceeds effective bits
        with pytest.raises(CodegenError):
            compiled(x=0, y=0, w=0, q=3)  # missing mu

    def test_pruned_limb_with_nonzero_value_rejected(self):
        builder = KernelBuilder("pruned_input")
        x = builder.param("x", 256, 120)
        q = builder.param("q", 256, 120)
        builder.output("z", builder.addmod(x, x, q))
        legalized = legalize(builder.build(), RewriteOptions(word_bits=64))
        compiled = compile_kernel(legalized)
        assert compiled(x=5, q=11)["z"] == 10
        with pytest.raises(CodegenError):
            compiled(x=1 << 200, q=11)

    def test_call_limbs_direct(self):
        kernel = legalize(butterfly_kernel(128, 124), RewriteOptions(word_bits=64))
        compiled = compile_kernel(kernel)
        q = (1 << 124) - 159
        mu = (1 << (2 * 124 + 3)) // q
        packed = compiled.pack_inputs({"x": 1, "y": 2, "w": 3, "q": q, "mu": mu})
        raw = compiled.call_limbs(*packed)
        assert compiled.unpack_outputs(raw)["x_out"] == 7
