"""Tests for the kernel builder, validation, interpreter and printer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ir.builder import KernelBuilder
from repro.core.ir.interp import interpret
from repro.core.ir.kernel import Kernel
from repro.core.ir.ops import OpKind, Statement
from repro.core.ir.printer import format_kernel, format_signature
from repro.core.ir.types import IntType, u64
from repro.core.ir.values import Const, Group, Var
from repro.errors import IRError


def build_addmod_kernel(bits=128):
    builder = KernelBuilder("addmod_test")
    x = builder.param("x", bits)
    y = builder.param("y", bits)
    q = builder.param("q", bits)
    builder.output("z", builder.addmod(x, y, q))
    return builder.build()


class TestBuilder:
    def test_builds_valid_kernel(self):
        kernel = build_addmod_kernel()
        assert kernel.name == "addmod_test"
        assert [p.name for p in kernel.params] == ["x", "y", "q"]
        assert [o.name for o in kernel.outputs] == ["z"]
        assert kernel.statement_count() == 2  # addmod + output mov

    def test_metadata(self):
        builder = KernelBuilder("k")
        builder.param("x", 64)
        builder.output("z", builder.mov(builder.constant(1, 64)))
        builder.metadata(family="demo", bits=64)
        kernel = builder.build()
        assert kernel.metadata["family"] == "demo"

    def test_compare_rejects_non_comparison_op(self):
        builder = KernelBuilder("k")
        x = builder.param("x", 64)
        with pytest.raises(IRError):
            builder.compare(OpKind.ADD, x, x)

    def test_full_op_surface(self):
        builder = KernelBuilder("ops")
        x = builder.param("x", 64)
        y = builder.param("y", 64)
        q = builder.param("q", 64)
        total = builder.add(x, y)
        diff = builder.sub(x, y)
        product = builder.mul(x, y)
        flag = builder.compare(OpKind.LT, x, y)
        picked = builder.select(flag, x, y)
        shifted = builder.shr(product, 64, 64)
        shifted_left = builder.shl(x, 3, 64)
        reduced = builder.reduce(builder.add(x, builder.constant(0, 64), result_bits=65), q)
        builder.output("a", total)
        builder.output("b", diff)
        builder.output("c", picked)
        builder.output("d", shifted)
        builder.output("e", shifted_left)
        builder.output("f", reduced)
        kernel = builder.build()
        assert kernel.statement_count() > 8


class TestKernelValidation:
    def test_use_before_definition_rejected(self):
        ghost = Var("ghost", u64)
        statement = Statement(OpKind.MOV, Group((Var("out", u64),)), (Group((ghost,)),))
        kernel = Kernel("bad", [], [Var("out", u64)], [statement])
        with pytest.raises(IRError):
            kernel.validate()

    def test_redefinition_rejected(self):
        x = Var("x", u64)
        out = Var("out", u64)
        mov = Statement(OpKind.MOV, Group((out,)), (Group((x,)),))
        kernel = Kernel("bad", [x], [out], [mov, mov])
        with pytest.raises(IRError):
            kernel.validate()

    def test_undefined_output_rejected(self):
        x = Var("x", u64)
        kernel = Kernel("bad", [x], [Var("missing", u64)], [])
        with pytest.raises(IRError):
            kernel.validate()

    def test_type_mismatch_rejected(self):
        x = Var("x", u64)
        wrong = Var("x", IntType(32))
        out = Var("out", IntType(32))
        statement = Statement(OpKind.MOV, Group((out,)), (Group((wrong,)),))
        kernel = Kernel("bad", [x], [out], [statement])
        with pytest.raises(IRError):
            kernel.validate()

    def test_statement_arity_checked(self):
        x = Var("x", u64)
        with pytest.raises(IRError):
            Statement(OpKind.ADD, Group((Var("d", u64),)), (Group((x,)),))

    def test_shift_requires_amount(self):
        x = Var("x", u64)
        with pytest.raises(IRError):
            Statement(OpKind.SHR, Group((Var("d", u64),)), (Group((x,)),))


class TestInterpreter:
    @settings(max_examples=100)
    @given(st.data())
    def test_addmod_matches_reference(self, data):
        kernel = build_addmod_kernel(128)
        q = data.draw(st.integers(min_value=3, max_value=(1 << 124) - 1))
        a = data.draw(st.integers(min_value=0, max_value=q - 1))
        b = data.draw(st.integers(min_value=0, max_value=q - 1))
        assert interpret(kernel, {"x": a, "y": b, "q": q})["z"] == (a + b) % q

    def test_missing_parameter_rejected(self):
        kernel = build_addmod_kernel()
        with pytest.raises(IRError):
            interpret(kernel, {"x": 1, "y": 2})

    def test_unknown_parameter_rejected(self):
        kernel = build_addmod_kernel()
        with pytest.raises(IRError):
            interpret(kernel, {"x": 1, "y": 2, "q": 5, "bogus": 1})

    def test_unreduced_modular_operand_rejected(self):
        kernel = build_addmod_kernel()
        with pytest.raises(IRError):
            interpret(kernel, {"x": 10, "y": 0, "q": 5})

    def test_effective_bits_enforced(self):
        builder = KernelBuilder("k")
        x = builder.param("x", 128, effective_bits=100)
        builder.output("z", builder.mov(x))
        kernel = builder.build()
        with pytest.raises(IRError):
            interpret(kernel, {"x": 1 << 120})
        assert interpret(kernel, {"x": 1 << 99})["z"] == 1 << 99

    def test_add_overflow_detected(self):
        builder = KernelBuilder("k")
        x = builder.param("x", 64)
        builder.output("z", builder.add(x, x, result_bits=64))
        kernel = builder.build()
        with pytest.raises(IRError):
            interpret(kernel, {"x": 2**63})

    def test_sub_wraps(self):
        builder = KernelBuilder("k")
        x = builder.param("x", 64)
        y = builder.param("y", 64)
        builder.output("z", builder.sub(x, y))
        kernel = builder.build()
        assert interpret(kernel, {"x": 0, "y": 1})["z"] == 2**64 - 1

    def test_reduce_precondition(self):
        builder = KernelBuilder("k")
        x = builder.param("x", 64)
        q = builder.param("q", 64)
        builder.output("z", builder.reduce(x, q))
        kernel = builder.build()
        assert interpret(kernel, {"x": 7, "q": 5})["z"] == 2
        with pytest.raises(IRError):
            interpret(kernel, {"x": 11, "q": 5})


class TestPrinter:
    def test_signature_and_body(self):
        kernel = build_addmod_kernel(256)
        signature = format_signature(kernel)
        assert "addmod_test" in signature
        assert "x: u256" in signature
        text = format_kernel(kernel)
        assert text.startswith("kernel ")
        assert "addmod(" in text
        assert text.rstrip().endswith("}")

    def test_effective_bits_annotation(self):
        builder = KernelBuilder("k")
        builder.param("x", 512, effective_bits=384)
        builder.output("z", builder.mov(builder.constant(0, 64)))
        text = format_signature(builder.build())
        assert "effective 384" in text
