"""Tests for the optimization passes (folding, simplify, copy-prop, CSE, DCE)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codegen.python_exec import compile_kernel
from repro.core.ir.builder import KernelBuilder
from repro.core.ir.ops import OpKind
from repro.core.ir.values import Const, Group, Var
from repro.core.ir.types import IntType, u64
from repro.core.passes import (
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fold_constants,
    optimize,
    propagate_copies,
    simplify,
)
from repro.core.rewrite.legalize import legalize
from repro.core.rewrite.options import RewriteOptions


def op_histogram(kernel):
    counts = {}
    for statement in kernel.body:
        counts[statement.op] = counts.get(statement.op, 0) + 1
    return counts


class TestConstantFolding:
    def test_fully_constant_chain_collapses(self):
        builder = KernelBuilder("fold")
        a = builder.constant(7, 64)
        b = builder.constant(9, 64)
        total = builder.add(a, b, result_bits=64)
        product = builder.mul(total, builder.constant(3, 64))
        builder.output("z", product)
        kernel = builder.build()
        folded = fold_constants(kernel)
        # Only the output mov should survive, carrying the constant 48.
        movs = [s for s in folded.body if s.op is OpKind.MOV]
        assert len(folded.body) == len(movs)
        compiled_value = [
            part.value
            for statement in movs
            for part in statement.operands[0]
            if isinstance(part, Const)
        ]
        assert (16 * 3) in compiled_value or 48 in compiled_value

    def test_folding_preserves_semantics_on_pruned_kernel(self):
        builder = KernelBuilder("pruned")
        x = builder.param("x", 256, 130)
        y = builder.param("y", 256, 130)
        q = builder.param("q", 256, 130)
        builder.output("z", builder.addmod(x, y, q))
        legalized = legalize(builder.build(), RewriteOptions(word_bits=64))
        folded = fold_constants(legalized)
        compiled = compile_kernel(folded)
        q_value = (1 << 130) - 5
        assert compiled(x=q_value - 1, y=q_value - 2, q=q_value)["z"] == (2 * q_value - 3) % q_value

    def test_constant_comparison_folds(self):
        builder = KernelBuilder("cmp")
        flag = builder.compare(OpKind.LT, builder.constant(3, 64), builder.constant(5, 64))
        builder.output("z", builder.select(flag, builder.constant(1, 64), builder.constant(0, 64)))
        folded = fold_constants(builder.build())
        assert all(s.op is OpKind.MOV for s in folded.body)


class TestSimplify:
    def test_add_zero_becomes_mov(self):
        builder = KernelBuilder("s")
        x = builder.param("x", 64)
        builder.output("z", builder.add(x, builder.constant(0, 64), result_bits=64))
        simplified = simplify(builder.build())
        assert op_histogram(simplified).get(OpKind.ADD, 0) == 0

    def test_mul_by_zero_and_one(self):
        builder = KernelBuilder("s2")
        x = builder.param("x", 64)
        zero_product = builder.mul(x, builder.constant(0, 64))
        one_product = builder.mul(x, builder.constant(1, 64))
        builder.output("a", zero_product)
        builder.output("b", one_product)
        simplified = simplify(builder.build())
        assert op_histogram(simplified).get(OpKind.MUL, 0) == 0

    def test_select_with_constant_condition(self):
        builder = KernelBuilder("s3")
        x = builder.param("x", 64)
        y = builder.param("y", 64)
        builder.output("z", builder.select(builder.constant(1, 1), x, y))
        simplified = simplify(builder.build())
        assert op_histogram(simplified).get(OpKind.SELECT, 0) == 0

    def test_or_with_zero(self):
        builder = KernelBuilder("s4")
        x = builder.param("x", 1)
        flag = builder.logic if hasattr(builder, "logic") else None
        # Build the OR statement directly through emit.
        dest = builder.fresh(1, "f")
        builder.emit(OpKind.OR, dest, [x, builder.constant(0, 1)])
        builder.output("z", dest)
        simplified = simplify(builder.build())
        assert op_histogram(simplified).get(OpKind.OR, 0) == 0

    def test_semantics_preserved(self):
        builder = KernelBuilder("s5")
        x = builder.param("x", 128)
        y = builder.param("y", 128)
        q = builder.param("q", 128)
        builder.output("z", builder.addmod(x, y, q))
        legalized = legalize(builder.build(), RewriteOptions(word_bits=64))
        optimized = optimize(legalized)
        compiled_raw = compile_kernel(legalized)
        compiled_opt = compile_kernel(optimized)
        q_value = (1 << 124) - 59
        for a, b in [(1, 2), (q_value - 1, q_value - 1), (0, 0), (q_value // 2, q_value // 2 + 1)]:
            assert compiled_raw(x=a, y=b, q=q_value) == compiled_opt(x=a, y=b, q=q_value)


class TestCopyPropagationAndDCE:
    def test_copies_forwarded_and_removed(self):
        builder = KernelBuilder("cp")
        x = builder.param("x", 64)
        copy1 = builder.mov(x)
        copy2 = builder.mov(copy1)
        builder.output("z", builder.add(copy2, copy2, result_bits=128))
        kernel = builder.build()
        cleaned = eliminate_dead_code(propagate_copies(kernel))
        # Both intermediate copies should be gone; the add reads x directly.
        assert op_histogram(cleaned).get(OpKind.MOV, 0) == 1  # only the output mov
        add = next(s for s in cleaned.body if s.op is OpKind.ADD)
        assert {part.name for group in add.operands for part in group.variables()} == {"x"}

    def test_output_copies_never_dropped(self):
        builder = KernelBuilder("cp2")
        x = builder.param("x", 64)
        builder.output("z", builder.mov(x))
        cleaned = eliminate_dead_code(propagate_copies(builder.build()))
        assert [o.name for o in cleaned.outputs] == ["z"]
        assert any("z" in [d.name for d in s.defined_vars()] for s in cleaned.body)

    def test_dce_removes_unused_computation(self):
        builder = KernelBuilder("dce")
        x = builder.param("x", 64)
        builder.mul(x, x)  # dead
        builder.output("z", builder.mov(x))
        cleaned = eliminate_dead_code(builder.build())
        assert op_histogram(cleaned).get(OpKind.MUL, 0) == 0

    def test_dce_keeps_partially_used_destinations(self):
        builder = KernelBuilder("dce2")
        x = builder.param("x", 64)
        hi = builder.fresh(64, "hi")
        lo = builder.fresh(64, "lo")
        builder.emit(OpKind.MUL, Group((hi, lo)), [x, x])
        builder.output("z", builder.mov(lo))
        cleaned = eliminate_dead_code(builder.build())
        assert op_histogram(cleaned).get(OpKind.MUL, 0) == 1


class TestCSE:
    def test_duplicate_comparisons_merged(self):
        builder = KernelBuilder("cse")
        x = builder.param("x", 64)
        y = builder.param("y", 64)
        first = builder.compare(OpKind.LT, x, y)
        second = builder.compare(OpKind.LT, x, y)
        builder.output("a", first)
        builder.output("b", second)
        deduplicated = eliminate_common_subexpressions(builder.build())
        assert op_histogram(deduplicated)[OpKind.LT] == 1

    def test_different_operands_not_merged(self):
        builder = KernelBuilder("cse2")
        x = builder.param("x", 64)
        y = builder.param("y", 64)
        builder.output("a", builder.compare(OpKind.LT, x, y))
        builder.output("b", builder.compare(OpKind.LT, y, x))
        deduplicated = eliminate_common_subexpressions(builder.build())
        assert op_histogram(deduplicated)[OpKind.LT] == 2

    def test_shift_attrs_distinguish(self):
        builder = KernelBuilder("cse3")
        x = builder.param("x", 64)
        builder.output("a", builder.shr(x, 3, 64))
        builder.output("b", builder.shr(x, 4, 64))
        deduplicated = eliminate_common_subexpressions(builder.build())
        assert op_histogram(deduplicated)[OpKind.SHR] == 2


class TestOptimizePipeline:
    @pytest.mark.parametrize("bits,modulus_bits", [(128, 124), (256, 252), (512, 380)])
    def test_reduces_statement_count_and_preserves_semantics(self, bits, modulus_bits):
        builder = KernelBuilder(f"pipeline_{bits}")
        x = builder.param("x", bits, modulus_bits)
        y = builder.param("y", bits, modulus_bits)
        q = builder.param("q", bits, modulus_bits)
        mu = builder.param("mu", bits)
        builder.output("z", builder.mulmod(x, y, q, mu))
        legalized = legalize(builder.build(), RewriteOptions(word_bits=64))
        optimized = optimize(legalized)
        assert len(optimized.body) < len(legalized.body)
        q_value = (1 << modulus_bits) - 159
        while q_value.bit_length() != modulus_bits or q_value % 2 == 0:
            q_value -= 1
        mu_value = (1 << (2 * modulus_bits + 3)) // q_value
        a, b = q_value - 3, q_value // 5
        raw = compile_kernel(legalized)(x=a, y=b, q=q_value, mu=mu_value)
        opt = compile_kernel(optimized)(x=a, y=b, q=q_value, mu=mu_value)
        assert raw == opt
        assert opt["z"] == (a * b) % q_value

    def test_idempotent_at_fixed_point(self):
        builder = KernelBuilder("fixed")
        x = builder.param("x", 128, 124)
        y = builder.param("y", 128, 124)
        q = builder.param("q", 128, 124)
        builder.output("z", builder.addmod(x, y, q))
        once = optimize(legalize(builder.build(), RewriteOptions(word_bits=64)))
        twice = optimize(once)
        assert [str(s) for s in once.body] == [str(s) for s in twice.body]
