"""Table 1 rule-by-rule verification.

Each test constructs the smallest statement a given rewrite rule applies to
(a double-word operation over an abstract single word of 64 bits), legalizes
it, and checks both semantic equivalence against the interpreter on the
original statement and the structural properties the paper states (number of
single-word multiplications, carry-chain shape, and so on).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ir.builder import KernelBuilder
from repro.core.ir.interp import interpret
from repro.core.ir.ops import OpKind
from repro.core.rewrite.legalize import is_machine_legal, kernel_is_machine_legal, legalize
from repro.core.rewrite.options import RewriteOptions
from repro.core.rewrite.splitting import SplitContext, group_columns
from repro.core.ir.values import Const, Group, NameGenerator, Var
from repro.core.ir.types import IntType
from repro.core.codegen.python_exec import compile_kernel
from repro.errors import RewriteError

WORD = 64
DOUBLE = 128
double_values = st.integers(min_value=0, max_value=(1 << DOUBLE) - 1)


def legalized_and_compiled(kernel, **options):
    legalized = legalize(kernel, RewriteOptions(word_bits=WORD, **options))
    assert kernel_is_machine_legal(legalized, WORD)
    return legalized, compile_kernel(legalized)


def op_histogram(kernel):
    counts = {}
    for statement in kernel.body:
        counts[statement.op] = counts.get(statement.op, 0) + 1
    return counts


class TestRule19Splitting:
    """Rule (19): a^{2w} -> [a0^w, a1^w], plus rules (20)/(21) on values."""

    def test_split_var_halves(self):
        context = SplitContext(WORD, NameGenerator())
        wide = Var("a", IntType(DOUBLE))
        high, low = context.split_var(wide)
        assert high.bits == WORD and low.bits == WORD
        assert context.split_var(wide) == (high, low)  # stable across uses

    def test_split_const_floor_div_and_mod(self):
        # Rules (20)/(21): the halves are floor(value / 2^w) and value mod 2^w.
        context = SplitContext(WORD, NameGenerator())
        value = (7 << WORD) | 9
        high, low = context.split_const(Const(value, IntType(DOUBLE)))
        assert high.value == value >> WORD == 7
        assert low.value == value % (1 << WORD) == 9

    def test_effective_bits_prune_high_half_to_zero(self):
        # Equation 35: known-zero high words become constants.
        context = SplitContext(WORD, NameGenerator())
        padded = Var("x", IntType(DOUBLE), effective_bits=60)
        high, low = context.split_var(padded)
        assert isinstance(high, Const) and high.value == 0
        assert isinstance(low, Var)

    def test_odd_width_rejected(self):
        context = SplitContext(WORD, NameGenerator())
        with pytest.raises(RewriteError):
            context.split_var(Var("a", IntType(65)))

    def test_group_columns_alignment_enforced(self):
        misaligned = Group((Var("a", IntType(64)), Var("flag", IntType(1))))
        with pytest.raises(RewriteError):
            group_columns(misaligned, 64)


class TestRules22And23Addition:
    """Rules (22)/(23): double-word addition becomes a two-step carry chain."""

    def _kernel(self):
        builder = KernelBuilder("rule22")
        a = builder.param("a", DOUBLE)
        b = builder.param("b", DOUBLE)
        # The sum of two double words needs 2w+1 bits; a quad-word destination
        # keeps widths power-of-two for the splitter (its top limbs fold away).
        builder.output("c", builder.add(a, b, result_bits=2 * DOUBLE))
        return builder.build()

    @settings(max_examples=100)
    @given(double_values, double_values)
    def test_semantics(self, a, b):
        kernel = self._kernel()
        legalized, compiled = legalized_and_compiled(kernel)
        assert compiled(a=a, b=b)["c"] == a + b

    def test_two_word_adds_with_carry_chain(self):
        legalized, _ = legalized_and_compiled(self._kernel())
        adds = [s for s in legalized.body if s.op is OpKind.ADD]
        assert len(adds) == 2
        # The low-limb addition produces a carry consumed by the high-limb one.
        low, high = adds
        carry = low.dests.parts[0]
        assert carry.bits == 1
        assert any(carry.name == part.name for group in high.operands for part in group.variables())


class TestRule29QuadAddition:
    """Rule (29): quad-word addition is a four-step carry chain."""

    def test_carry_chain_length(self):
        builder = KernelBuilder("rule29")
        a = builder.param("a", 256)
        b = builder.param("b", 256)
        builder.output("c", builder.add(a, b, result_bits=512))
        legalized, compiled = legalized_and_compiled(builder.build())
        adds = [s for s in legalized.body if s.op is OpKind.ADD]
        assert len(adds) == 4
        a_value = (1 << 256) - 1
        assert compiled(a=a_value, b=a_value)["c"] == 2 * a_value


class TestRule25Subtraction:
    """Rule (25): subtraction uses a borrow computed by a limb comparison."""

    def _kernel(self):
        builder = KernelBuilder("rule25")
        a = builder.param("a", DOUBLE)
        b = builder.param("b", DOUBLE)
        builder.output("c", builder.sub(a, b))
        return builder.build()

    @settings(max_examples=100)
    @given(double_values, double_values)
    def test_semantics_wrap_around(self, a, b):
        _, compiled = legalized_and_compiled(self._kernel())
        assert compiled(a=a, b=b)["c"] == (a - b) % (1 << DOUBLE)

    def test_structure(self):
        legalized, _ = legalized_and_compiled(self._kernel())
        histogram = op_histogram(legalized)
        assert histogram[OpKind.SUB] == 2
        assert histogram[OpKind.LT] == 1  # the borrow


class TestRules26And27Comparisons:
    """Rules (26)/(27): multi-word comparisons from limb comparisons."""

    @settings(max_examples=100)
    @given(double_values, double_values)
    def test_lt_semantics(self, a, b):
        builder = KernelBuilder("rule26")
        x = builder.param("a", DOUBLE)
        y = builder.param("b", DOUBLE)
        builder.output("f", builder.compare(OpKind.LT, x, y))
        _, compiled = legalized_and_compiled(builder.build())
        assert compiled(a=a, b=b)["f"] == int(a < b)

    @settings(max_examples=100)
    @given(double_values, double_values)
    def test_eq_semantics(self, a, b):
        builder = KernelBuilder("rule27")
        x = builder.param("a", DOUBLE)
        y = builder.param("b", DOUBLE)
        builder.output("f", builder.compare(OpKind.EQ, x, y))
        _, compiled = legalized_and_compiled(builder.build())
        assert compiled(a=a, b=b)["f"] == int(a == b)
        assert compiled(a=a, b=a)["f"] == 1

    def test_lt_structure_matches_rule26(self):
        builder = KernelBuilder("rule26s")
        x = builder.param("a", DOUBLE)
        y = builder.param("b", DOUBLE)
        builder.output("f", builder.compare(OpKind.LT, x, y))
        legalized, _ = legalized_and_compiled(builder.build())
        histogram = op_histogram(legalized)
        # (a0 < b0) or ((a0 == b0) and (a1 < b1)): two LT, one EQ, AND, OR.
        assert histogram[OpKind.LT] == 2
        assert histogram[OpKind.EQ] == 1
        assert histogram[OpKind.AND] == 1
        assert histogram[OpKind.OR] == 1

    def test_eq_structure_matches_rule27(self):
        builder = KernelBuilder("rule27s")
        x = builder.param("a", DOUBLE)
        y = builder.param("b", DOUBLE)
        builder.output("f", builder.compare(OpKind.EQ, x, y))
        legalized, _ = legalized_and_compiled(builder.build())
        histogram = op_histogram(legalized)
        assert histogram[OpKind.EQ] == 2
        assert histogram[OpKind.AND] == 1


class TestRule24ModularReduction:
    """Rule (24): modulo after addition via compare / subtract / select."""

    @settings(max_examples=60)
    @given(st.data())
    def test_addmod_semantics(self, data):
        builder = KernelBuilder("rule24")
        a = builder.param("a", DOUBLE)
        b = builder.param("b", DOUBLE)
        q = builder.param("q", DOUBLE)
        builder.output("c", builder.addmod(a, b, q))
        _, compiled = legalized_and_compiled(builder.build())
        modulus = data.draw(st.integers(min_value=3, max_value=(1 << 124) - 1))
        x = data.draw(st.integers(min_value=0, max_value=modulus - 1))
        y = data.draw(st.integers(min_value=0, max_value=modulus - 1))
        assert compiled(a=x, b=y, q=modulus)["c"] == (x + y) % modulus

    def test_select_count_matches_limbs(self):
        builder = KernelBuilder("rule24s")
        a = builder.param("a", DOUBLE)
        b = builder.param("b", DOUBLE)
        q = builder.param("q", DOUBLE)
        builder.output("c", builder.addmod(a, b, q))
        legalized, _ = legalized_and_compiled(builder.build())
        histogram = op_histogram(legalized)
        assert histogram[OpKind.SELECT] == 2  # one per destination limb


class TestRule28Multiplication:
    """Rule (28): schoolbook double-word multiplication has 4 limb products."""

    def _kernel(self):
        builder = KernelBuilder("rule28")
        a = builder.param("a", DOUBLE)
        b = builder.param("b", DOUBLE)
        builder.output("c", builder.mul(a, b))
        return builder.build()

    @settings(max_examples=100)
    @given(double_values, double_values)
    def test_semantics(self, a, b):
        _, compiled = legalized_and_compiled(self._kernel())
        assert compiled(a=a, b=b)["c"] == a * b

    def test_four_single_word_multiplications(self):
        legalized, _ = legalized_and_compiled(self._kernel(), multiplication="schoolbook")
        histogram = op_histogram(legalized)
        assert histogram[OpKind.MUL] == 4

    def test_karatsuba_uses_three_multiplications(self):
        legalized, compiled = legalized_and_compiled(self._kernel(), multiplication="karatsuba")
        histogram = op_histogram(legalized)
        assert histogram[OpKind.MUL] == 3
        a = (1 << DOUBLE) - 12345
        b = (1 << DOUBLE) - 99991
        assert compiled(a=a, b=b)["c"] == a * b

    def test_karatsuba_trades_multiplications_for_additions(self):
        # Section 5.4: schoolbook = 4 muls + 6 adds, Karatsuba = 3 muls but
        # more additions/subtractions and several comparisons/selects.
        school, _ = legalized_and_compiled(self._kernel(), multiplication="schoolbook")
        karatsuba, _ = legalized_and_compiled(self._kernel(), multiplication="karatsuba")
        school_hist = op_histogram(school)
        karatsuba_hist = op_histogram(karatsuba)
        school_addsub = school_hist.get(OpKind.ADD, 0) + school_hist.get(OpKind.SUB, 0)
        karatsuba_addsub = karatsuba_hist.get(OpKind.ADD, 0) + karatsuba_hist.get(OpKind.SUB, 0)
        assert karatsuba_hist[OpKind.MUL] < school_hist[OpKind.MUL]
        assert karatsuba_addsub > school_addsub


class TestMachineLegalityPredicate:
    def test_modular_ops_never_legal(self):
        builder = KernelBuilder("k")
        x = builder.param("x", 64)
        q = builder.param("q", 64)
        builder.output("z", builder.addmod(x, x, q))
        statement = builder.build().body[0]
        assert not is_machine_legal(statement, 64)

    def test_wide_parts_not_legal(self):
        builder = KernelBuilder("k")
        x = builder.param("x", 128)
        builder.output("z", builder.mov(x))
        statement = builder.build().body[0]
        assert not is_machine_legal(statement, 64)
        assert is_machine_legal(statement, 128)
