"""Tests for the GMP-like, GRNS-like and published-system baselines."""

import random

import pytest

from repro.baselines import (
    BigIntBaseline,
    GrnsBaseline,
    baseline_runtime_ns,
    blas_baselines,
    gmp_cost_model_ns,
    ntt_baselines,
)
from repro.errors import ArithmeticDomainError, EvaluationError
from repro.ntheory import find_ntt_prime
from repro.ntt import make_plan, ntt_forward
from repro.poly import PythonBlasEngine

Q = find_ntt_prime(124, 256)


class TestBigIntBaseline:
    def test_matches_python_engine(self):
        baseline = BigIntBaseline()
        engine = PythonBlasEngine()
        rng = random.Random(0)
        x = [rng.randrange(Q) for _ in range(32)]
        y = [rng.randrange(Q) for _ in range(32)]
        scale = rng.randrange(Q)
        assert baseline.vadd(x, y, Q) == engine.vadd(x, y, Q)
        assert baseline.vsub(x, y, Q) == engine.vsub(x, y, Q)
        assert baseline.vmul(x, y, Q) == engine.vmul(x, y, Q)
        assert baseline.axpy(scale, x, y, Q) == engine.axpy(scale, x, y, Q)

    def test_ntt_round_trip(self):
        baseline = BigIntBaseline()
        plan = make_plan(64, 60)
        rng = random.Random(1)
        values = [rng.randrange(plan.modulus) for _ in range(64)]
        assert baseline.intt(baseline.ntt(values, plan), plan) == values

    def test_validation(self):
        with pytest.raises(ArithmeticDomainError):
            BigIntBaseline().vadd([1], [1, 2], Q)
        with pytest.raises(ArithmeticDomainError):
            BigIntBaseline().vadd([1], [1], 2)

    def test_gmp_cost_model_shapes(self):
        # Addition cost grows slowly with width; multiplication much faster,
        # but sub-quadratically past the crossover.
        assert gmp_cost_model_ns("vadd", 1024) < 3 * gmp_cost_model_ns("vadd", 128)
        assert gmp_cost_model_ns("vmul", 512) > gmp_cost_model_ns("vmul", 128)
        quad_ratio = gmp_cost_model_ns("vmul", 1024) / gmp_cost_model_ns("vmul", 512)
        assert quad_ratio < 4  # sub-quadratic growth past the FFT crossover
        with pytest.raises(ArithmeticDomainError):
            gmp_cost_model_ns("dot", 128)


class TestGrnsBaseline:
    def test_matches_reference_arithmetic(self):
        baseline = GrnsBaseline(124)
        rng = random.Random(2)
        x = [rng.randrange(Q) for _ in range(16)]
        y = [rng.randrange(Q) for _ in range(16)]
        scale = rng.randrange(Q)
        assert baseline.vadd(x, y, Q) == [(a + b) % Q for a, b in zip(x, y)]
        assert baseline.vsub(x, y, Q) == [(a - b) % Q for a, b in zip(x, y)]
        assert baseline.vmul(x, y, Q) == [(a * b) % Q for a, b in zip(x, y)]
        assert baseline.axpy(scale, x, y, Q) == [(scale * a + b) % Q for a, b in zip(x, y)]

    def test_channel_count_grows_with_width(self):
        assert GrnsBaseline(1020).channel_count > GrnsBaseline(124).channel_count

    def test_validation(self):
        baseline = GrnsBaseline(124)
        with pytest.raises(ArithmeticDomainError):
            baseline.vadd([Q], [0], Q)
        with pytest.raises(ArithmeticDomainError):
            baseline.axpy(Q, [0], [0], Q)
        with pytest.raises(ArithmeticDomainError):
            GrnsBaseline(4)


class TestPublishedAnchors:
    def test_ntt_anchor_coverage(self):
        assert {a.name for a in ntt_baselines(256)} == {"ICICLE", "GZKP", "PipeZK", "FPMM"}
        assert {a.name for a in ntt_baselines(128)} >= {"RPU", "FPMM"}
        assert {a.name for a in ntt_baselines(768)} >= {"PipeZK", "GZKP", "Libsnark"}
        with pytest.raises(EvaluationError):
            ntt_baselines(512)

    def test_factors_encode_paper_statements(self):
        by_name = {a.name: a for a in ntt_baselines(256)}
        assert by_name["ICICLE"].factor_at(1 << 16) == pytest.approx(13.0)
        # GZKP crossover: slower than MoMA at small sizes, faster at large.
        assert by_name["GZKP"].factor_at(1 << 10) > 1.0
        assert by_name["GZKP"].factor_at(1 << 20) < 1.0
        # 384-bit: FPMM is 1.7x faster than MoMA.
        fpmm_384 = {a.name: a for a in ntt_baselines(384)}["FPMM"]
        assert fpmm_384.factor_at(1 << 16) < 1.0

    def test_blas_anchor_magnitudes(self):
        gmp_add = {a.name: a for a in blas_baselines("vadd", 1024)}["GMP"]
        assert gmp_add.factor_at(1) >= 527.0
        grns_add = {a.name: a for a in blas_baselines("vadd", 512)}["GRNS"]
        assert grns_add.factor_at(1) >= 31.0
        gmp_mul = {a.name: a for a in blas_baselines("vmul", 1024)}["GMP"]
        assert gmp_mul.factor_at(1) >= 10.0
        with pytest.raises(EvaluationError):
            blas_baselines("vadd", 384)
        with pytest.raises(EvaluationError):
            blas_baselines("dot", 128)

    def test_baseline_runtime_requires_reference_device(self):
        anchor = ntt_baselines(256)[0]
        assert baseline_runtime_ns(anchor, {"h100": 1.0, "v100": 2.0}, 1 << 16) > 0
        with pytest.raises(EvaluationError):
            baseline_runtime_ns(anchor, {"rtx4090": 1.0}, 1 << 16)

    def test_every_anchor_documents_its_source(self):
        for bits in (128, 256, 384, 768):
            for anchor in ntt_baselines(bits):
                assert anchor.source
