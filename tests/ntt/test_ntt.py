"""Tests for NTT planning, reference, iterative and generated-kernel paths."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KernelError
from repro.kernels import KernelConfig
from repro.ntt import (
    GeneratedNTT,
    bit_reverse_permutation,
    intt_definition,
    make_plan,
    negacyclic_convolution_reference,
    negacyclic_multiply,
    ntt_definition,
    ntt_forward,
    ntt_inverse,
)


class TestPlanner:
    @pytest.mark.parametrize("size", [2, 8, 64, 256, 4096])
    def test_plan_properties(self, size):
        plan = make_plan(size, 60)
        assert plan.size == size
        assert (plan.modulus - 1) % (2 * size) == 0
        assert pow(plan.root, size, plan.modulus) == 1
        assert pow(plan.root, size // 2, plan.modulus) == plan.modulus - 1
        assert (plan.root * pow(plan.inverse_root, 1, plan.modulus)) % plan.modulus == 1
        assert (plan.size_inverse * size) % plan.modulus == 1
        assert (plan.psi * plan.psi) % plan.modulus == plan.root

    def test_stage_and_butterfly_counts(self):
        plan = make_plan(1024, 60)
        assert plan.stages == 10
        assert plan.butterflies_per_stage == 512
        assert plan.total_butterflies == 512 * 10  # (n/2) log2 n

    def test_twiddle_tables(self):
        plan = make_plan(16, 28)
        twiddles = plan.forward_twiddles()
        assert len(twiddles) == 8
        assert twiddles[0] == 1
        assert twiddles[1] == plan.root

    def test_explicit_modulus_validation(self):
        plan = make_plan(8, 60)
        again = make_plan(8, 60, modulus=plan.modulus)
        assert again.modulus == plan.modulus
        with pytest.raises(KernelError):
            make_plan(8, 60, modulus=plan.modulus + 2)  # not prime / wrong form
        with pytest.raises(KernelError):
            make_plan(6, 60)  # not a power of two

    def test_bit_reverse_permutation(self):
        assert bit_reverse_permutation(8) == [0, 4, 2, 6, 1, 5, 3, 7]
        with pytest.raises(KernelError):
            bit_reverse_permutation(12)


class TestReferenceAndIterativeAgree:
    @pytest.mark.parametrize("size,bits", [(8, 28), (16, 60), (64, 60), (32, 124)])
    def test_forward_matches_definition(self, size, bits):
        plan = make_plan(size, bits)
        rng = random.Random(size)
        values = [rng.randrange(plan.modulus) for _ in range(size)]
        assert ntt_forward(values, plan) == ntt_definition(values, plan)

    @pytest.mark.parametrize("size,bits", [(8, 28), (32, 60)])
    def test_inverse_matches_definition(self, size, bits):
        plan = make_plan(size, bits)
        rng = random.Random(size + 1)
        values = [rng.randrange(plan.modulus) for _ in range(size)]
        assert ntt_inverse(values, plan) == intt_definition(values, plan)

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_round_trip_property(self, data):
        size = data.draw(st.sampled_from([4, 8, 16, 64, 256]))
        plan = make_plan(size, 60)
        values = [
            data.draw(st.integers(min_value=0, max_value=plan.modulus - 1))
            for _ in range(size)
        ]
        assert ntt_inverse(ntt_forward(values, plan), plan) == values

    def test_linearity_property(self):
        plan = make_plan(64, 60)
        rng = random.Random(7)
        q = plan.modulus
        a = [rng.randrange(q) for _ in range(64)]
        b = [rng.randrange(q) for _ in range(64)]
        lhs = ntt_forward([(x + y) % q for x, y in zip(a, b)], plan)
        rhs = [
            (x + y) % q
            for x, y in zip(ntt_forward(a, plan), ntt_forward(b, plan))
        ]
        assert lhs == rhs

    def test_convolution_theorem(self):
        # INTT(NTT(a) . NTT(b)) is the cyclic convolution of a and b.
        plan = make_plan(16, 60)
        q = plan.modulus
        rng = random.Random(11)
        a = [rng.randrange(q) for _ in range(16)]
        b = [rng.randrange(q) for _ in range(16)]
        spectrum = [(x * y) % q for x, y in zip(ntt_forward(a, plan), ntt_forward(b, plan))]
        got = ntt_inverse(spectrum, plan)
        expected = [0] * 16
        for i in range(16):
            for j in range(16):
                expected[(i + j) % 16] = (expected[(i + j) % 16] + a[i] * b[j]) % q
        assert got == expected

    def test_input_validation(self):
        plan = make_plan(8, 28)
        with pytest.raises(KernelError):
            ntt_forward([0] * 4, plan)
        with pytest.raises(KernelError):
            ntt_forward([plan.modulus] + [0] * 7, plan)


class TestNegacyclic:
    @pytest.mark.parametrize("size,bits", [(8, 28), (16, 60), (64, 60)])
    def test_matches_reference_convolution(self, size, bits):
        plan = make_plan(size, bits)
        rng = random.Random(size * 3)
        q = plan.modulus
        a = [rng.randrange(q) for _ in range(size)]
        b = [rng.randrange(q) for _ in range(size)]
        assert negacyclic_multiply(a, b, plan) == negacyclic_convolution_reference(a, b, q)

    def test_x_to_n_wraps_negatively(self):
        # (x^(n-1)) * x = x^n = -1 in Z_q[x]/(x^n + 1).
        plan = make_plan(8, 28)
        q = plan.modulus
        a = [0] * 8
        a[7] = 1
        b = [0] * 8
        b[1] = 1
        product = negacyclic_multiply(a, b, plan)
        assert product[0] == q - 1
        assert all(value == 0 for value in product[1:])

    def test_length_mismatch_rejected(self):
        plan = make_plan(8, 28)
        with pytest.raises(KernelError):
            negacyclic_multiply([0] * 4, [0] * 8, plan)


class TestGeneratedNTT:
    """The full pipeline: MoMA-generated butterflies driving real transforms."""

    @pytest.mark.parametrize("bits", [128, 256])
    def test_matches_reference_transform(self, bits):
        size = 16
        config = KernelConfig(bits=bits)
        transform = GeneratedNTT(size, config)
        rng = random.Random(bits)
        values = [rng.randrange(transform.modulus) for _ in range(size)]
        assert transform.forward(values) == ntt_forward(values, transform.plan)
        assert transform.inverse(transform.forward(values)) == values

    def test_non_power_of_two_bit_width(self):
        config = KernelConfig(bits=384)
        transform = GeneratedNTT(8, config)
        rng = random.Random(384)
        values = [rng.randrange(transform.modulus) for _ in range(8)]
        assert transform.inverse(transform.forward(values)) == values
        assert transform.modulus.bit_length() == 380

    def test_karatsuba_configuration_agrees(self):
        size = 8
        school = GeneratedNTT(size, KernelConfig(bits=128))
        karatsuba = GeneratedNTT(size, KernelConfig(bits=128, multiplication="karatsuba"),
                                 plan=school.plan)
        rng = random.Random(99)
        values = [rng.randrange(school.modulus) for _ in range(size)]
        assert school.forward(values) == karatsuba.forward(values)

    def test_polynomial_multiply_cyclic(self):
        size = 8
        transform = GeneratedNTT(size, KernelConfig(bits=128))
        q = transform.modulus
        a = [1, 2, 3, 4, 0, 0, 0, 0]
        b = [5, 6, 7, 8, 0, 0, 0, 0]
        expected = [0] * size
        for i in range(size):
            for j in range(size):
                expected[(i + j) % size] = (expected[(i + j) % size] + a[i] * b[j]) % q
        assert transform.polynomial_multiply(a, b) == expected

    def test_plan_mismatch_rejected(self):
        plan = make_plan(16, 124)
        with pytest.raises(KernelError):
            GeneratedNTT(8, KernelConfig(bits=128), plan=plan)
        with pytest.raises(KernelError):
            GeneratedNTT(16, KernelConfig(bits=256), plan=plan)
