"""Tests for the residue number system substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ArithmeticDomainError
from repro.rns import (
    RnsBasis,
    from_rns,
    make_basis,
    rns_add,
    rns_modmul,
    rns_mul,
    rns_sub,
    to_rns,
)


class TestBasis:
    @pytest.mark.parametrize("bits", [128, 256, 512, 1024])
    def test_basis_covers_target(self, bits):
        basis = make_basis(bits)
        assert basis.covers(bits)
        assert basis.range_bits > bits

    def test_channels_fit_word(self):
        basis = make_basis(256, word_bits=64)
        assert all(m.bit_length() <= 64 for m in basis.moduli)
        assert basis.channel_count >= 5  # 60-bit channels for 256+ bits of range

    def test_channels_grow_with_target(self):
        assert make_basis(1024).channel_count > make_basis(128).channel_count

    def test_invalid_configs(self):
        with pytest.raises(ArithmeticDomainError):
            make_basis(0)
        with pytest.raises(ArithmeticDomainError):
            make_basis(128, channel_bits=2)
        with pytest.raises(ArithmeticDomainError):
            RnsBasis((6, 10), 64)  # not coprime
        with pytest.raises(ArithmeticDomainError):
            RnsBasis((), 64)
        with pytest.raises(ArithmeticDomainError):
            RnsBasis(((1 << 65), 3), 64)  # channel too wide


class TestConversion:
    basis = make_basis(256)

    @settings(max_examples=60)
    @given(st.integers(min_value=0, max_value=(1 << 256) - 1))
    def test_round_trip(self, value):
        assert from_rns(to_rns(value, self.basis)) == value

    def test_out_of_range_rejected(self):
        with pytest.raises(ArithmeticDomainError):
            to_rns(self.basis.dynamic_range, self.basis)
        with pytest.raises(ArithmeticDomainError):
            to_rns(-1, self.basis)

    def test_wrong_residue_count_rejected(self):
        from repro.rns.arith import RnsValue

        with pytest.raises(ArithmeticDomainError):
            RnsValue((1, 2), self.basis)


class TestArithmetic:
    basis = make_basis(300)

    @settings(max_examples=60)
    @given(st.data())
    def test_ring_operations_match_integers(self, data):
        limit = self.basis.dynamic_range
        a = data.draw(st.integers(min_value=0, max_value=(1 << 140) - 1))
        b = data.draw(st.integers(min_value=0, max_value=(1 << 140) - 1))
        ra, rb = to_rns(a, self.basis), to_rns(b, self.basis)
        assert from_rns(rns_add(ra, rb)) == (a + b) % limit
        assert from_rns(rns_sub(ra, rb)) == (a - b) % limit
        assert from_rns(rns_mul(ra, rb)) == (a * b) % limit

    def test_modmul_reduces_by_external_modulus(self):
        q = (1 << 124) - 159
        a, b = q - 5, q - 11
        ra, rb = to_rns(a, self.basis), to_rns(b, self.basis)
        assert from_rns(rns_modmul(ra, rb, q)) == (a * b) % q

    def test_mixed_bases_rejected(self):
        other = make_basis(600)
        assert other.channel_count != self.basis.channel_count
        with pytest.raises(ArithmeticDomainError):
            rns_add(to_rns(1, self.basis), to_rns(1, other))
