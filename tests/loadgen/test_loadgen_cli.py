"""The ``python -m repro.loadgen`` front door.

Parser-level behaviour plus one small end-to-end run through ``main()``:
an in-process server replay that saves its trace, writes a standalone SLO
report, and appends to an explicit BENCH file.
"""

import json

import pytest

from repro.loadgen.cli import _connect_addresses, build_parser, main


class TestParser:
    def test_defaults_satisfy_the_acceptance_command(self):
        args = build_parser().parse_args(["--suite", "mixed", "--shards", "2", "--seed", "7"])
        assert args.suite == ["mixed"]
        assert args.shards == 2
        assert args.seed == 7
        assert args.requests >= 16
        assert not args.no_bench

    def test_connect_addresses_flatten(self):
        args = build_parser().parse_args(
            ["--connect", "a:1,b:2", "--connect", "c:3"]
        )
        assert _connect_addresses(args) == ("a:1", "b:2", "c:3")

    def test_list_suites_exits_cleanly(self, capsys):
        assert main(["--list-suites"]) == 0
        out = capsys.readouterr().out
        assert "fhe_pipeline" in out and "mixed" in out

    def test_unknown_suite_is_a_clean_error(self, capsys):
        assert main(["--suite", "nope", "--dry-run"]) == 1
        assert "unknown workload suite" in capsys.readouterr().err

    def test_kill_shard_requires_a_cluster(self, capsys):
        assert main(["--kill-shard", "0", "--shards", "1"]) == 2
        assert "--kill-shard" in capsys.readouterr().err

    def test_dry_run_saves_byte_identical_traces(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        base = ["--suite", "mixed", "--seed", "7", "--dry-run", "--save-trace"]
        assert main(base + [str(first)]) == 0
        assert main(base + [str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()


def test_single_server_replay_end_to_end(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    report_path = tmp_path / "report.json"
    bench_path = tmp_path / "BENCH_local.json"
    code = main(
        [
            "--suite",
            "rns_conversion",
            "--requests",
            "6",
            "--seed",
            "1",
            "--rate",
            "200",
            "--save-trace",
            str(trace_path),
            "--report",
            str(report_path),
            "--bench",
            str(bench_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "replayed" in out

    report = json.loads(report_path.read_text())
    assert report["requests"] == 6
    assert report["lost"] == 0
    assert report["ok"] == 6

    bench = json.loads(bench_path.read_text())
    assert len(bench["loadgen_reports"]) == 1
    assert bench["loadgen_reports"][0]["seed"] == 1

    # The saved trace replays: loading it drives the same schedule.
    replay_code = main(
        [
            "--replay",
            str(trace_path),
            "--no-bench",
        ]
    )
    assert replay_code == 0
